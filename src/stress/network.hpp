#pragma once

/// \file network.hpp
/// Shared structural model for the netlist-level abstract interpretations
/// (signal-probability analysis in analyzer.cpp, switching-activity analysis
/// in activity_bounds.cpp). Building the model resolves every instance
/// against the library, levelizes the combinational instances (Kahn), and
/// computes per-net *support* bitsets — the set of PI/flop sources a net
/// transitively depends on — so both analyses share one validated view of
/// the circuit and one definition of "these inputs may be correlated".

#include <cstdint>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace rw::stress {

/// Truth tables are stored in a single 64-bit word, so cells are capped at
/// six inputs (2^6 patterns).
inline constexpr int kMaxGateInputs = 6;

/// Per-instance data resolved once up front.
struct NetworkNode {
  const liberty::Cell* cell = nullptr;
  std::uint64_t truth = 0;
  int k = 0;
  bool is_flop = false;
  int data_pin = -1;                 ///< flop: fanin index of the non-clock pin
  std::uint64_t clock_pin_mask = 0;  ///< bit j set when input pin j is a clock pin
};

/// Resolved, levelized, support-annotated view of one module. The model
/// borrows the module and library; both must outlive it.
class NetworkModel {
 public:
  /// Builds and validates the model. λ-indexed cell names fall back to their
  /// base cell (the Boolean function is λ-invariant).
  /// \throws std::runtime_error on multi-driven nets, unknown cells,
  /// pin-count mismatches, cells wider than kMaxGateInputs, flops without a
  /// data pin, or combinational cycles.
  static NetworkModel build(const netlist::Module& module, const liberty::Library& library);

  [[nodiscard]] const netlist::Module& module() const { return *module_; }
  /// Index-aligned with `module().instances()`.
  [[nodiscard]] const std::vector<NetworkNode>& nodes() const { return nodes_; }
  /// Combinational instances grouped by topological level, each level sorted
  /// by instance index (deterministic parallel sweeps write disjoint slots).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& levels() const { return levels_; }

  /// Source bit of a net (-1 when the net is not a source). Sources are the
  /// undriven nets (PIs, the clock, danglers) and every flop output.
  [[nodiscard]] int source_bit(netlist::NetId net) const {
    return source_bit_[static_cast<std::size_t>(net)];
  }
  /// Support bitset of a net (`support_words()` 64-bit words).
  [[nodiscard]] const std::vector<std::uint64_t>& support(netlist::NetId net) const {
    return support_[static_cast<std::size_t>(net)];
  }
  [[nodiscard]] std::size_t support_words() const { return words_; }
  /// True when the two nets share at least one source (so their waveforms
  /// may be correlated and independence-based transfers are unsound).
  [[nodiscard]] bool supports_overlap(netlist::NetId a, netlist::NetId b) const;
  /// True when `net` transitively depends on `source` (a source net).
  [[nodiscard]] bool depends_on_source(netlist::NetId net, netlist::NetId source) const;

 private:
  const netlist::Module* module_ = nullptr;
  std::vector<NetworkNode> nodes_;
  std::vector<std::vector<std::size_t>> levels_;
  std::vector<int> source_bit_;
  std::size_t words_ = 0;
  std::vector<std::vector<std::uint64_t>> support_;
};

}  // namespace rw::stress
