#include "stress/stacks.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "stress/activity_bounds.hpp"
#include "stress/analyzer.hpp"

namespace rw::stress {

namespace {

constexpr int kMaxSignals = 6;

/// Probability interval + pin-support mask for one named node of the cell.
struct NodeState {
  Interval value = Interval::full();
  std::uint64_t pin_support = 0;  ///< bit per spec input the node depends on
  bool known = false;
};

/// Build the pull-down conduction truth table over the stage's signals.
std::uint64_t stage_truth(const cells::Stage& stage, const std::vector<std::string>& signals) {
  const int k = static_cast<int>(signals.size());
  std::uint64_t truth = 0;
  for (std::uint64_t pat = 0; pat < (std::uint64_t{1} << k); ++pat) {
    const bool on = stage.pulldown.conducts([&](const std::string& sig) {
      for (int i = 0; i < k; ++i) {
        if (signals[static_cast<std::size_t>(i)] == sig) return ((pat >> i) & 1u) != 0;
      }
      return false;
    });
    if (on) truth |= std::uint64_t{1} << pat;
  }
  return truth;
}

}  // namespace

std::vector<TransistorStress> transistor_stress_bounds(
    const cells::CellSpec& spec, const std::vector<Interval>& pin_intervals) {
  if (spec.is_flop || spec.stages.empty()) {
    throw std::invalid_argument("stress: transistor bounds need a staged combinational cell");
  }
  if (pin_intervals.size() != spec.inputs.size()) {
    throw std::invalid_argument("stress: pin interval count does not match '" + spec.name + "'");
  }
  const std::uint64_t all_pins =
      spec.inputs.size() >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << spec.inputs.size()) - 1;
  std::unordered_map<std::string, NodeState> node;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    node[spec.inputs[i]] =
        NodeState{pin_intervals[i].clamped(), std::uint64_t{1} << i, true};
  }
  // Anything not yet defined (feedback, exotic specs) reads as ⊤ correlated
  // with every pin — sound, just loose.
  auto state_of = [&](const std::string& name) {
    const auto it = node.find(name);
    return it != node.end() ? it->second : NodeState{Interval::full(), all_pins, false};
  };

  for (const cells::Stage& stage : spec.stages) {
    const std::vector<std::string> signals = stage.pulldown.signals();
    const int k = static_cast<int>(signals.size());
    NodeState out;
    out.known = true;
    for (const std::string& s : signals) out.pin_support |= state_of(s).pin_support;
    if (k > kMaxSignals) {
      out.value = Interval::full();
    } else {
      Interval in[kMaxSignals];
      bool correlated = false;
      std::uint64_t seen = 0;
      for (int i = 0; i < k; ++i) {
        const NodeState s = state_of(signals[static_cast<std::size_t>(i)]);
        in[i] = s.value;
        if (!s.value.is_constant()) {
          if ((seen & s.pin_support) != 0) correlated = true;
          seen |= s.pin_support;
        }
      }
      const std::uint64_t truth = stage_truth(stage, signals);
      const Interval conducting = correlated ? transfer_correlated(truth, k, in)
                                             : transfer_independent(truth, k, in);
      out.value = conducting.complement();  // static CMOS stage inverts
    }
    node[stage.out] = out;
  }

  std::vector<TransistorStress> result;
  for (const cells::PlacedTransistor& t : cells::materialize(spec, device::ptm45())) {
    const Interval gate_high = state_of(t.gate).value;
    TransistorStress ts;
    ts.type = t.type;
    ts.gate = t.gate;
    ts.width_um = t.width_um;
    // nMOS stressed while the gate is high (PBTI); pMOS while low (NBTI).
    ts.lambda = t.type == device::MosType::kNmos ? gate_high : gate_high.complement();
    result.push_back(ts);
  }
  return result;
}

std::vector<TransistorActivity> transistor_activity_bounds(
    const cells::CellSpec& spec, const std::vector<Interval>& pin_probabilities,
    const std::vector<Interval>& pin_toggles) {
  if (spec.is_flop || spec.stages.empty()) {
    throw std::invalid_argument("stress: transistor activity needs a staged combinational cell");
  }
  if (pin_probabilities.size() != spec.inputs.size() ||
      pin_toggles.size() != spec.inputs.size()) {
    throw std::invalid_argument("stress: pin interval count does not match '" + spec.name + "'");
  }
  const std::uint64_t all_pins =
      spec.inputs.size() >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << spec.inputs.size()) - 1;
  // Sound fallback density for unknown nodes: at most one change per sample
  // boundary unless a pin itself is intra-cycle (clock-fed, hi > 1).
  double top_hi = 1.0;
  for (const Interval& t : pin_toggles) top_hi = std::max(top_hi, t.hi);
  const Interval top_density{0.0, top_hi};

  struct DynState {
    Interval prob = Interval::full();
    Interval dens = Interval::full();
    std::uint64_t pin_support = 0;
    bool known = false;
  };
  std::unordered_map<std::string, DynState> node;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    node[spec.inputs[i]] = DynState{pin_probabilities[i].clamped(), pin_toggles[i],
                                    std::uint64_t{1} << i, true};
  }
  auto state_of = [&](const std::string& name) {
    const auto it = node.find(name);
    return it != node.end() ? it->second : DynState{Interval::full(), top_density, all_pins, false};
  };

  for (const cells::Stage& stage : spec.stages) {
    const std::vector<std::string> signals = stage.pulldown.signals();
    const int k = static_cast<int>(signals.size());
    DynState out;
    out.known = true;
    for (const std::string& s : signals) out.pin_support |= state_of(s).pin_support;
    if (k > kMaxSignals) {
      double sum = 0.0;
      bool clockish = false;
      for (const std::string& s : signals) {
        const double h = state_of(s).dens.hi;
        sum += h;
        if (h > 1.0) clockish = true;
      }
      out.prob = Interval::full();
      out.dens = Interval{0.0, clockish ? sum : std::min(1.0, sum)};
    } else {
      Interval probs[kMaxSignals];
      Interval dens[kMaxSignals];
      bool correlated = false;
      std::uint64_t seen = 0;
      for (int i = 0; i < k; ++i) {
        const DynState s = state_of(signals[static_cast<std::size_t>(i)]);
        probs[i] = s.prob;
        dens[i] = s.dens;
        if (!s.prob.is_constant()) {
          if ((seen & s.pin_support) != 0) correlated = true;
          seen |= s.pin_support;
        }
      }
      const std::uint64_t truth = stage_truth(stage, signals);
      // The stage output is the complement of the conduction function, and
      // negation preserves toggles: D(out) = D(conducting).
      out.dens = correlated ? density_correlated(truth, k, probs, dens)
                            : density_independent(truth, k, probs, dens);
      const Interval conducting = correlated ? transfer_correlated(truth, k, probs)
                                             : transfer_independent(truth, k, probs);
      out.prob = conducting.complement();
    }
    node[stage.out] = out;
  }

  std::vector<TransistorActivity> result;
  for (const cells::PlacedTransistor& t : cells::materialize(spec, device::ptm45())) {
    TransistorActivity ta;
    ta.type = t.type;
    ta.gate = t.gate;
    ta.width_um = t.width_um;
    ta.toggles = state_of(t.gate).dens;
    result.push_back(ta);
  }
  return result;
}

double max_stack_spread(const std::vector<TransistorStress>& stresses,
                        const Interval& lambda_p, const Interval& lambda_n) {
  double spread = 0.0;
  for (const TransistorStress& t : stresses) {
    const Interval& agg = t.type == device::MosType::kPmos ? lambda_p : lambda_n;
    const double dev_mid = 0.5 * (t.lambda.lo + t.lambda.hi);
    const double agg_mid = 0.5 * (agg.lo + agg.hi);
    spread = std::max(spread, std::abs(dev_mid - agg_mid));
  }
  return spread;
}

}  // namespace rw::stress
