#include "stress/stacks.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "stress/analyzer.hpp"

namespace rw::stress {

namespace {

constexpr int kMaxSignals = 6;

/// Probability interval + pin-support mask for one named node of the cell.
struct NodeState {
  Interval value = Interval::full();
  std::uint64_t pin_support = 0;  ///< bit per spec input the node depends on
  bool known = false;
};

}  // namespace

std::vector<TransistorStress> transistor_stress_bounds(
    const cells::CellSpec& spec, const std::vector<Interval>& pin_intervals) {
  if (spec.is_flop || spec.stages.empty()) {
    throw std::invalid_argument("stress: transistor bounds need a staged combinational cell");
  }
  if (pin_intervals.size() != spec.inputs.size()) {
    throw std::invalid_argument("stress: pin interval count does not match '" + spec.name + "'");
  }
  const std::uint64_t all_pins =
      spec.inputs.size() >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << spec.inputs.size()) - 1;
  std::unordered_map<std::string, NodeState> node;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    node[spec.inputs[i]] =
        NodeState{pin_intervals[i].clamped(), std::uint64_t{1} << i, true};
  }
  // Anything not yet defined (feedback, exotic specs) reads as ⊤ correlated
  // with every pin — sound, just loose.
  auto state_of = [&](const std::string& name) {
    const auto it = node.find(name);
    return it != node.end() ? it->second : NodeState{Interval::full(), all_pins, false};
  };

  for (const cells::Stage& stage : spec.stages) {
    const std::vector<std::string> signals = stage.pulldown.signals();
    const int k = static_cast<int>(signals.size());
    NodeState out;
    out.known = true;
    for (const std::string& s : signals) out.pin_support |= state_of(s).pin_support;
    if (k > kMaxSignals) {
      out.value = Interval::full();
    } else {
      Interval in[kMaxSignals];
      bool correlated = false;
      std::uint64_t seen = 0;
      for (int i = 0; i < k; ++i) {
        const NodeState s = state_of(signals[static_cast<std::size_t>(i)]);
        in[i] = s.value;
        if (!s.value.is_constant()) {
          if ((seen & s.pin_support) != 0) correlated = true;
          seen |= s.pin_support;
        }
      }
      std::uint64_t truth = 0;
      for (std::uint64_t pat = 0; pat < (std::uint64_t{1} << k); ++pat) {
        const bool on = stage.pulldown.conducts([&](const std::string& sig) {
          for (int i = 0; i < k; ++i) {
            if (signals[static_cast<std::size_t>(i)] == sig) return ((pat >> i) & 1u) != 0;
          }
          return false;
        });
        if (on) truth |= std::uint64_t{1} << pat;
      }
      const Interval conducting = correlated ? transfer_correlated(truth, k, in)
                                             : transfer_independent(truth, k, in);
      out.value = conducting.complement();  // static CMOS stage inverts
    }
    node[stage.out] = out;
  }

  std::vector<TransistorStress> result;
  for (const cells::PlacedTransistor& t : cells::materialize(spec, device::ptm45())) {
    const Interval gate_high = state_of(t.gate).value;
    TransistorStress ts;
    ts.type = t.type;
    ts.gate = t.gate;
    ts.width_um = t.width_um;
    // nMOS stressed while the gate is high (PBTI); pMOS while low (NBTI).
    ts.lambda = t.type == device::MosType::kNmos ? gate_high : gate_high.complement();
    result.push_back(ts);
  }
  return result;
}

double max_stack_spread(const std::vector<TransistorStress>& stresses,
                        const Interval& lambda_p, const Interval& lambda_n) {
  double spread = 0.0;
  for (const TransistorStress& t : stresses) {
    const Interval& agg = t.type == device::MosType::kPmos ? lambda_p : lambda_n;
    const double dev_mid = 0.5 * (t.lambda.lo + t.lambda.hi);
    const double agg_mid = 0.5 * (agg.lo + agg.hi);
    spread = std::max(spread, std::abs(dev_mid - agg_mid));
  }
  return spread;
}

}  // namespace rw::stress
