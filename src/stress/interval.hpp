#pragma once

/// \file interval.hpp
/// Probability intervals `[lo, hi] ⊆ [0, 1]` — the abstract domain of the
/// static duty-cycle analysis. An interval bounds the long-run frequency
/// P(net == 1) of a signal over any workload admitted by the analysis
/// contract (see analyzer.hpp). The arithmetic here is deliberately small:
/// hull/intersection for the fixed-point iteration, averaging for the
/// footnote-2 per-cell λ aggregation, and the complement that maps
/// P(gate-input high) onto pMOS stress duty cycles.

#include <string>

namespace rw::stress {

struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  /// The full unit interval — the "no information" element.
  static Interval full() { return Interval{0.0, 1.0}; }
  /// Degenerate interval [p, p] (an exactly known probability).
  static Interval point(double p) { return Interval{p, p}; }

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool is_point() const { return lo == hi; }
  /// Proven constant 0 or 1 (the SP002 condition).
  [[nodiscard]] bool is_constant() const { return (lo == 0.0 && hi == 0.0) || (lo == 1.0 && hi == 1.0); }
  [[nodiscard]] bool contains(double p) const { return p >= lo && p <= hi; }
  [[nodiscard]] bool contains(const Interval& other) const {
    return lo <= other.lo && hi >= other.hi;
  }

  /// λp complement: a transistor gate at P(high) ∈ [lo, hi] sees
  /// P(low) ∈ [1 - hi, 1 - lo].
  [[nodiscard]] Interval complement() const { return Interval{1.0 - hi, 1.0 - lo}; }

  /// Smallest interval containing both (the widening/join of the domain).
  [[nodiscard]] Interval hull(const Interval& other) const;
  /// Clamp to [0, 1]; empty-after-clamp inputs collapse to a point.
  [[nodiscard]] Interval clamped() const;

  [[nodiscard]] bool operator==(const Interval&) const = default;

  /// "[0.25, 0.75]" with fixed decimals (stable across locales/threads).
  [[nodiscard]] std::string str() const;
};

/// An unconstrained real interval `[lo, hi]` — the value domain shared by
/// the certified interval STA (rwprove): arrival/slew/delay bounds in ps.
/// Unlike `Interval` it is not clamped to [0, 1] and its default is the
/// degenerate point [0, 0]. The invariant lo <= hi is the caller's to keep
/// (every constructor here preserves it).
struct RealInterval {
  double lo = 0.0;
  double hi = 0.0;

  static RealInterval point(double v) { return RealInterval{v, v}; }

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool is_point() const { return lo == hi; }
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
  [[nodiscard]] bool contains(const RealInterval& other) const {
    return lo <= other.lo && hi >= other.hi;
  }

  /// Smallest interval containing both.
  [[nodiscard]] RealInterval hull(const RealInterval& other) const;
  /// Exact interval sum: [a.lo + b.lo, a.hi + b.hi].
  [[nodiscard]] RealInterval operator+(const RealInterval& other) const {
    return RealInterval{lo + other.lo, hi + other.hi};
  }
  /// Widen symmetrically by `margin` (>= 0) on both sides.
  [[nodiscard]] RealInterval widened(double margin) const {
    return RealInterval{lo - margin, hi + margin};
  }

  [[nodiscard]] bool operator==(const RealInterval&) const = default;

  /// "[123.4567, 130.0000]" with fixed decimals (stable across locales).
  [[nodiscard]] std::string str() const;
};

/// Mean of `n` intervals accessed via `get(i)` — the footnote-2 pin average.
/// Averaging is monotone, so no independence assumption is needed for it.
template <typename Get>
Interval average(std::size_t n, const Get& get) {
  if (n == 0) return Interval::point(0.5);
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Interval v = get(i);
    lo += v.lo;
    hi += v.hi;
  }
  return Interval{lo / static_cast<double>(n), hi / static_cast<double>(n)};
}

}  // namespace rw::stress
