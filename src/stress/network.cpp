#include "stress/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace rw::stress {

namespace {

const liberty::Cell* resolve_cell(const liberty::Library& library, const std::string& name) {
  if (const liberty::Cell* c = library.find(name)) return c;
  std::string base;
  double lp = 0.0;
  double ln = 0.0;
  if (util::parse_indexed_cell_name(name, base, lp, ln)) return library.find(base);
  return nullptr;
}

}  // namespace

bool NetworkModel::supports_overlap(netlist::NetId a, netlist::NetId b) const {
  const auto& sa = support_[static_cast<std::size_t>(a)];
  const auto& sb = support_[static_cast<std::size_t>(b)];
  for (std::size_t w = 0; w < words_; ++w) {
    if ((sa[w] & sb[w]) != 0) return true;
  }
  return false;
}

bool NetworkModel::depends_on_source(netlist::NetId net, netlist::NetId source) const {
  const int bit = source_bit_[static_cast<std::size_t>(source)];
  if (bit < 0) return false;
  const auto& s = support_[static_cast<std::size_t>(net)];
  return (s[static_cast<std::size_t>(bit) / 64] >>
          (static_cast<std::size_t>(bit) % 64)) & 1u;
}

NetworkModel NetworkModel::build(const netlist::Module& module,
                                 const liberty::Library& library) {
  if (!module.extra_drivers().empty()) {
    throw std::runtime_error("stress: module '" + module.name() +
                             "' has multi-driven nets; lint it first");
  }
  NetworkModel model;
  model.module_ = &module;
  const auto& instances = module.instances();
  const std::size_t n_inst = instances.size();
  const std::size_t n_net = static_cast<std::size_t>(module.net_count());

  // -- Resolve every instance against the library.
  model.nodes_.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const netlist::Instance& inst = instances[i];
    const liberty::Cell* cell = resolve_cell(library, inst.cell);
    if (cell == nullptr) {
      throw std::runtime_error("stress: unknown cell '" + inst.cell + "' on instance '" +
                               inst.name + "'");
    }
    const int k = cell->n_inputs();
    if (static_cast<int>(inst.fanin.size()) != k) {
      throw std::runtime_error("stress: instance '" + inst.name + "' has " +
                               std::to_string(inst.fanin.size()) + " fanins but cell '" +
                               cell->name + "' expects " + std::to_string(k));
    }
    if (k > kMaxGateInputs) {
      throw std::runtime_error("stress: cell '" + cell->name + "' exceeds " +
                               std::to_string(kMaxGateInputs) + " inputs");
    }
    NetworkNode& node = model.nodes_[i];
    node.cell = cell;
    node.k = k;
    node.is_flop = cell->is_flop;
    node.truth = cell->truth;
    int pin_index = 0;
    for (const liberty::Pin* pin : cell->input_pins()) {
      if (pin->is_clock) {
        node.clock_pin_mask |= std::uint64_t{1} << pin_index;
      } else if (node.data_pin < 0) {
        node.data_pin = pin_index;
      }
      ++pin_index;
    }
    if (node.is_flop && node.data_pin < 0) {
      throw std::runtime_error("stress: flop cell '" + cell->name + "' has no data pin");
    }
  }

  // -- Levelize the combinational instances (Kahn). Sources (PIs, undriven
  //    nets, flop outputs) sit at level 0.
  std::vector<int> comb_driver(n_net, -1);
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (!model.nodes_[i].is_flop && instances[i].out != netlist::kNoNet) {
      comb_driver[static_cast<std::size_t>(instances[i].out)] = static_cast<int>(i);
    }
  }
  std::vector<int> level(n_inst, 0);
  std::vector<int> indeg(n_inst, 0);
  std::size_t comb_count = 0;
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (model.nodes_[i].is_flop) continue;
    ++comb_count;
    for (netlist::NetId f : instances[i].fanin) {
      if (f != netlist::kNoNet && comb_driver[static_cast<std::size_t>(f)] >= 0) ++indeg[i];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (!model.nodes_[i].is_flop && indeg[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t i = ready[head];
    ++processed;
    const int lv = level[i];
    if (static_cast<std::size_t>(lv) >= model.levels_.size()) model.levels_.resize(lv + 1);
    model.levels_[static_cast<std::size_t>(lv)].push_back(i);
    if (instances[i].out == netlist::kNoNet) continue;
    for (int s : module.sinks(instances[i].out)) {
      const auto si = static_cast<std::size_t>(s);
      if (model.nodes_[si].is_flop) continue;
      level[si] = std::max(level[si], lv + 1);
      if (--indeg[si] == 0) ready.push_back(si);
    }
  }
  if (processed != comb_count) {
    throw std::runtime_error("stress: combinational cycle in module '" + module.name() + "'");
  }
  for (auto& lv : model.levels_) std::sort(lv.begin(), lv.end());

  // -- Support bitsets. Sources: every undriven net (PIs, the clock,
  //    danglers) plus every flop output.
  model.source_bit_.assign(n_net, -1);
  int n_sources = 0;
  for (std::size_t net = 0; net < n_net; ++net) {
    const auto id = static_cast<netlist::NetId>(net);
    const int drv = module.driver(id);
    const bool flop_out = drv >= 0 && model.nodes_[static_cast<std::size_t>(drv)].is_flop;
    if (drv < 0 || flop_out) model.source_bit_[net] = n_sources++;
  }
  model.words_ = (static_cast<std::size_t>(n_sources) + 63) / 64;
  model.support_.assign(n_net, std::vector<std::uint64_t>(model.words_, 0));
  for (std::size_t net = 0; net < n_net; ++net) {
    if (model.source_bit_[net] >= 0) {
      model.support_[net][static_cast<std::size_t>(model.source_bit_[net]) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(model.source_bit_[net]) % 64);
    }
  }
  // Temporal collapse: support(flop Q) = {Q} ∪ support(D), iterated with the
  // combinational propagation until nothing grows.
  const std::size_t words = model.words_;
  const std::size_t max_passes = n_inst + 2;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (const auto& lv : model.levels_) {
      for (std::size_t i : lv) {
        const netlist::NetId out = instances[i].out;
        if (out == netlist::kNoNet) continue;
        auto& dst = model.support_[static_cast<std::size_t>(out)];
        for (netlist::NetId f : instances[i].fanin) {
          if (f == netlist::kNoNet) continue;
          const auto& src = model.support_[static_cast<std::size_t>(f)];
          for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t merged = dst[w] | src[w];
            if (merged != dst[w]) {
              dst[w] = merged;
              changed = true;
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < n_inst; ++i) {
      if (!model.nodes_[i].is_flop || instances[i].out == netlist::kNoNet) continue;
      const netlist::NetId d = model.nodes_[i].data_pin >= 0
                                   ? instances[i].fanin[model.nodes_[i].data_pin]
                                   : netlist::kNoNet;
      if (d == netlist::kNoNet) continue;
      auto& dst = model.support_[static_cast<std::size_t>(instances[i].out)];
      const auto& src = model.support_[static_cast<std::size_t>(d)];
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t merged = dst[w] | src[w];
        if (merged != dst[w]) {
          dst[w] = merged;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return model;
}

}  // namespace rw::stress
