#pragma once

/// \file stacks.hpp
/// Transistor-level refinement of the per-instance duty-cycle bounds: given
/// interval bounds on a cell's pin probabilities, derive a provable stress
/// duty-cycle interval for every transistor in the cell's stacks. A pMOS
/// device ages (NBTI) while its gate is low — λ bound = complement of the
/// gate-node probability; an nMOS device ages (PBTI) while its gate is high.
/// Internal stage outputs are propagated through each stage's pull-down
/// conduction function with the same independent/correlated transfer split
/// as the netlist analysis: within a cell every stage output is a function
/// of the pins, so any shared pin dependence forces the correlation-safe
/// bound. This quantifies how much the paper's footnote-2 *pin average*
/// smears per-device stress — the spread is reported by bench/stress_bounds.

#include <string>
#include <vector>

#include "cells/topology.hpp"
#include "stress/interval.hpp"

namespace rw::stress {

struct TransistorStress {
  device::MosType type = device::MosType::kNmos;
  std::string gate;    ///< gate node: a pin or an internal stage output
  double width_um = 0.0;
  /// Bound on the fraction of time the device is under BTI stress
  /// (pMOS: gate low → NBTI λp; nMOS: gate high → PBTI λn).
  Interval lambda;
};

/// Per-transistor stress bounds for a combinational cell spec.
/// `pin_intervals` is aligned with `spec.inputs`. \throws std::invalid_argument
/// for flops (no stage structure) or on size mismatch.
std::vector<TransistorStress> transistor_stress_bounds(
    const cells::CellSpec& spec, const std::vector<Interval>& pin_intervals);

struct TransistorActivity {
  device::MosType type = device::MosType::kNmos;
  std::string gate;    ///< gate node: a pin or an internal stage output
  double width_um = 0.0;
  /// Bound on the gate node's toggles per cycle — the HCI stress driver
  /// (hot carriers are injected during switching events, so per-device HCI
  /// exposure scales with gate-node activity, not duty cycle).
  Interval toggles;
};

/// Per-transistor switching-activity bounds for a combinational cell spec:
/// the stage-output toggle intervals are propagated through each stage's
/// pull-down conduction function with the density transfer of
/// activity_bounds.hpp (a static CMOS stage inverts, and negation preserves
/// toggles), using the same independent/correlated split as
/// `transistor_stress_bounds`. `pin_probabilities` and `pin_toggles` are
/// aligned with `spec.inputs`. \throws std::invalid_argument for flops or on
/// size mismatch.
std::vector<TransistorActivity> transistor_activity_bounds(
    const cells::CellSpec& spec, const std::vector<Interval>& pin_probabilities,
    const std::vector<Interval>& pin_toggles);

/// Widest per-device deviation from the cell-level footnote-2 average:
/// max over devices of the distance between the device's λ interval midpoint
/// and the aggregate λ midpoint for its polarity. Used by the bench to
/// report how coarse the paper's per-cell averaging is.
double max_stack_spread(const std::vector<TransistorStress>& stresses,
                        const Interval& lambda_p, const Interval& lambda_n);

}  // namespace rw::stress
