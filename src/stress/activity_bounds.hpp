#pragma once

/// \file activity_bounds.hpp
/// Simulation-free switching-activity analysis: proves per-net
/// transition-density intervals [lo, hi] — expected toggles per clock cycle —
/// over *all* workloads consistent with the declared input model, the same
/// way analyzer.hpp proves signal-probability intervals. The multi-mechanism
/// aging models (EM, HCI, switching power) key on activity, not duty cycle;
/// this is their certified input.
///
/// ## Contract (what a density interval means)
///
/// Nets are sampled once per cycle at the simulator's observation point
/// (post-evaluate, pre-clock-edge); a *toggle* is a change between two
/// consecutive samples. `[lo, hi]` bounds the long-run toggles-per-cycle of
/// the net for any workload satisfying the probability contract of
/// analyzer.hpp plus, per primary input, a declared density interval
/// (default: derived from the probability interval — see ActivityOptions).
/// The clock net is the exception: it is pinned at `clock_transitions`
/// (default 2 = one rising + one falling edge per cycle), the intra-cycle
/// waveform convention matching `extract_duty_cycles`'s 0.5 clock duty.
/// Cycle-sampled simulation never observes intra-cycle edges, so measured
/// rates on clock-fed nets are NOT comparable to these bounds; the report
/// flags such nets (`clock_fed`) and the AC001 oracle skips them.
///
/// ## Transfer functions
///
/// Per gate, with fanin probabilities p_i (from the converged probability
/// pass) and densities d_i:
///   * disjoint fanin supports (independence holds): the Najm-style
///     Boolean-difference bound D(y) ≤ Σ_i P(∂f/∂x_i)·D(x_i), with each
///     P(∂f/∂x_i) the exact vertex-enumerated image of the difference
///     function over the other inputs' probability boxes. Soundness: walk
///     the toggled inputs one at a time between consecutive samples; f
///     changes only if some step flips it, and step i flips it only when
///     ∂f/∂x_i holds at a mixed-time assignment of the others — whose
///     marginals the stationary p_i intervals cover.
///   * additionally, when every fanin's (p_i, d_i) box is small enough
///     (≤ 16 box vertices total and ≤ 4 effective inputs), the *pair-exact*
///     transfer: under stationarity the joint of (x_i at t, x_i at t+1) is
///     exactly (1−p−d/2, d/2, d/2, p−d/2), so E[toggle(f)] is multi-affine
///     per input and its extrema sit on box vertices. Exact for point
///     inputs — this is what makes zero-width inputs collapse to the
///     simulator's rates — and a sound refinement otherwise (the box
///     contains the feasible region d ≤ 2·min(p, 1−p)).
///   * overlapping supports (reconvergent fanout): per-term Fréchet
///     widening, term_i = min(d_i.hi, upper(transfer_correlated(∂f/∂x_i))),
///     lower bound 0 — sound under arbitrary correlation.
///   * every data net is finally capped by the union bound Σ d_i.hi, by 1
///     toggle/cycle (cycle sampling sees at most one change per boundary;
///     clock-fed gates keep the Σ cap instead), and by the stationarity cap
///     d ≤ 2·max_{p ∈ [p.lo, p.hi]} min(p, 1−p) from its own probability
///     interval.
///
/// Inputs whose probability is proven constant are cofactored out before
/// any transfer (a frozen input contributes no toggles and no correlation);
/// a gate that reduces to a single-input identity/negation passes its
/// remaining fanin's density through exactly, which is sound under any
/// correlation and keeps clock buffers at exactly [2, 2].
///
/// ## Sequential circuits
///
/// Flop outputs toggle exactly when D differs from Q at the edge:
/// D(Q) = P(D ⊕ Q) over the converged probability fixed point (Kleene
/// iteration with capped sound truncation, inherited from analyze_network),
/// bounded with the correlation-safe transfer since Q's support contains
/// D's. Combinational densities then need a single levelized sweep — the
/// probability pass already resolved the temporal feedback.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stress/analyzer.hpp"
#include "stress/interval.hpp"

namespace rw::stress {

class NetworkModel;

struct ActivityOptions {
  /// Input model for the underlying signal-probability pass (which runs
  /// first; the density transfer consumes its per-net intervals).
  AnalyzeOptions probability;
  /// Per-PI toggle-density declarations [lo, hi] in toggles/cycle, keyed by
  /// net name (unknown names are ignored). Declarations are intersected
  /// with the stationarity cap implied by the PI's probability interval.
  std::unordered_map<std::string, Interval> input_densities;
  /// Density assumed for PIs without an explicit declaration. Unset: derived
  /// per input as [0, min(1, 2·max_{p} min(p, 1−p))] — the densest
  /// stationary signal admitted by the input's probability interval.
  std::optional<Interval> default_input_density;
  /// Transitions per cycle pinned on the clock net (2 = one rising + one
  /// falling edge, matching extract_duty_cycles's 0.5-duty convention).
  double clock_transitions = 2.0;
};

/// Per-instance activity summary for the multi-mechanism stress models.
struct InstanceActivity {
  /// Toggle bound per input pin; clock pins are pinned at
  /// [clock_transitions, clock_transitions].
  std::vector<Interval> pin_toggles;
  /// Toggle bound on the output net ([0, 0] for dangling outputs).
  Interval output_toggles = Interval::point(0.0);
  /// Capacitive load on the output net: Σ sink input-pin caps (fF).
  double load_ff = 0.0;
  /// Load-weighted switching bound, load_ff × output_toggles — proportional
  /// to dynamic energy per cycle (fF·toggles; multiply by V²/2 for J).
  RealInterval switch_cap_ff;
  /// HCI stress proxy: worst per-transistor gate-node toggle bound. Refined
  /// through the cell's stage topology when the catalog spec is available
  /// (`hci_from_stacks`), else the sound pin-level fallback.
  RealInterval hci;
  bool hci_from_stacks = false;
  /// The output density needed the correlation-safe (Fréchet) transfer.
  bool widened = false;
};

struct ActivityReport {
  /// The underlying signal-probability fixed point (same shape `analyze`
  /// returns — iterations, convergence, λ bounds — computed on the shared
  /// structural model).
  StressReport probability;
  /// Toggles/cycle interval per NetId (index-aligned with the module).
  std::vector<Interval> density;
  /// 1 when the net's density needed the correlation-safe transfer.
  std::vector<char> density_widened;
  /// 1 when the net combinationally depends on the clock net (intra-cycle
  /// toggles; cycle-sampled measurements are not comparable — see \file).
  std::vector<char> clock_fed;
  /// Per-instance summaries, index-aligned with `module.instances()`.
  std::vector<InstanceActivity> instances;
  /// Driven nets proven quiet (density upper bound ≤ 1e-9) — the AC002
  /// candidates.
  std::size_t quiet_driven_nets = 0;

  [[nodiscard]] std::size_t widened_density_count() const;
};

/// Runs the activity analysis (probability pass + density pass + instance
/// summaries). \throws std::runtime_error exactly where `analyze` does.
ActivityReport analyze_activity(const netlist::Module& module,
                                const liberty::Library& library,
                                const ActivityOptions& options = {});

/// Same over a prebuilt structural model (shared with `analyze_network`).
ActivityReport analyze_network_activity(const NetworkModel& model,
                                        const ActivityOptions& options = {});

/// Boolean difference ∂f/∂x_input of a k-input truth table: a (k−1)-input
/// truth table over the remaining inputs in their original relative order.
[[nodiscard]] std::uint64_t boolean_difference(std::uint64_t truth, int k, int input);

/// Density transfer for fanins with pairwise-disjoint supports: Najm bound ∩
/// pair-exact enumeration (when gated on) ∩ the caps described in \file.
/// `prob`/`density` are the fanin probability and density intervals. k ≤ 6.
[[nodiscard]] Interval density_independent(std::uint64_t truth, int k, const Interval* prob,
                                           const Interval* density);

/// Correlation-safe density transfer: per-term Fréchet widening, lower 0.
[[nodiscard]] Interval density_correlated(std::uint64_t truth, int k, const Interval* prob,
                                          const Interval* density);

/// The stationarity cap 2·max_{p ∈ interval} min(p, 1−p): no stationary
/// binary signal with an admissible marginal can toggle more often.
[[nodiscard]] double stationary_density_cap(const Interval& prob);

}  // namespace rw::stress
