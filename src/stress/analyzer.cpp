#include "stress/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "stress/network.hpp"
#include "util/thread_pool.hpp"

namespace rw::stress {

namespace {

constexpr int kMaxInputs = kMaxGateInputs;

/// Multilinear evaluation of the truth table at one probability vector:
/// Shannon reduction over the highest variable first, O(2^k).
double eval_multilinear(std::uint64_t truth, int k, const double* p) {
  double v[1u << kMaxInputs];
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t pat = 0; pat < n; ++pat) v[pat] = (truth >> pat) & 1u ? 1.0 : 0.0;
  for (int i = k - 1; i >= 0; --i) {
    const std::size_t half = std::size_t{1} << i;
    for (std::size_t j = 0; j < half; ++j) v[j] = (1.0 - p[i]) * v[j] + p[i] * v[j + half];
  }
  return v[0];
}

/// Fréchet lower bound: max over implicant cubes of max(0, Σ ℓ_j − (m−1)),
/// where a positive literal contributes lo_i and a negative one 1 − hi_i.
double frechet_lower(std::uint64_t truth, int k, const Interval* in) {
  const std::size_t n = std::size_t{1} << k;
  const std::uint64_t all = n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  if ((truth & all) == all) return 1.0;  // constant 1
  double best = 0.0;
  int digit[kMaxInputs] = {0};  // 0 = free, 1 = positive literal, 2 = negative
  std::size_t cubes = 1;
  for (int i = 0; i < k; ++i) cubes *= 3;
  for (std::size_t c = 0; c < cubes; ++c) {
    // Bound first — skip the implicant check when it cannot improve.
    double sum = 0.0;
    int m = 0;
    std::uint64_t fixed_mask = 0;
    std::uint64_t fixed_val = 0;
    for (int i = 0; i < k; ++i) {
      if (digit[i] == 1) {
        sum += in[i].lo;
        ++m;
        fixed_mask |= std::uint64_t{1} << i;
        fixed_val |= std::uint64_t{1} << i;
      } else if (digit[i] == 2) {
        sum += 1.0 - in[i].hi;
        ++m;
        fixed_mask |= std::uint64_t{1} << i;
      }
    }
    const double bound = m == 0 ? 1.0 : sum - static_cast<double>(m - 1);
    if (bound > best) {
      bool implicant = true;
      for (std::size_t pat = 0; pat < n; ++pat) {
        if ((pat & fixed_mask) != fixed_val) continue;
        if (((truth >> pat) & 1u) == 0) {
          implicant = false;
          break;
        }
      }
      if (implicant) best = bound;
    }
    // Next cube (ternary counter).
    for (int i = 0; i < k; ++i) {
      if (++digit[i] < 3) break;
      digit[i] = 0;
    }
  }
  return std::clamp(best, 0.0, 1.0);
}

}  // namespace

Interval transfer_independent(std::uint64_t truth, int k, const Interval* in) {
  double p[kMaxInputs];
  double lo = 1.0;
  double hi = 0.0;
  const std::size_t vertices = std::size_t{1} << k;
  for (std::size_t v = 0; v < vertices; ++v) {
    for (int i = 0; i < k; ++i) p[i] = (v >> i) & 1u ? in[i].hi : in[i].lo;
    const double val = eval_multilinear(truth, k, p);
    lo = std::min(lo, val);
    hi = std::max(hi, val);
  }
  return Interval{lo, hi}.clamped();
}

Interval transfer_correlated(std::uint64_t truth, int k, const Interval* in) {
  const std::size_t n = std::size_t{1} << k;
  const std::uint64_t all = n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  const double lo = frechet_lower(truth & all, k, in);
  const double hi = 1.0 - frechet_lower(~truth & all, k, in);
  return Interval{lo, hi}.clamped();
}

std::size_t StressReport::widened_net_count() const {
  return static_cast<std::size_t>(std::count(net_widened.begin(), net_widened.end(), char{1}));
}

std::size_t StressReport::constant_net_count() const {
  std::size_t n = 0;
  for (const Interval& v : net) n += v.is_constant() ? 1 : 0;
  return n;
}

StressReport analyze_network(const NetworkModel& model, const AnalyzeOptions& options) {
  const netlist::Module& module = model.module();
  const auto& instances = module.instances();
  const auto& nodes = model.nodes();
  const std::size_t n_inst = instances.size();
  const std::size_t n_net = static_cast<std::size_t>(module.net_count());

  // -- Initial intervals: declared PI intervals; ⊤ for the clock net,
  //    undriven nets, and every flop output.
  StressReport report;
  report.net.assign(n_net, Interval::full());
  report.net_widened.assign(n_net, 0);
  for (netlist::NetId id : module.inputs()) {
    if (id == module.clock()) continue;
    const auto it = options.input_intervals.find(module.net_name(id));
    const Interval v = it != options.input_intervals.end() ? it->second : options.default_input;
    report.net[static_cast<std::size_t>(id)] = v.clamped();
  }

  // -- Evaluate one combinational instance: pick the transfer by support
  //    overlap among the non-constant inputs (proven constants carry no
  //    correlation, so they never force widening).
  auto eval_instance = [&](std::size_t i) {
    const netlist::Instance& inst = instances[i];
    const NetworkNode& node = nodes[i];
    if (inst.out == netlist::kNoNet) return;
    Interval in[kMaxInputs];
    for (int j = 0; j < node.k; ++j) {
      const netlist::NetId f = inst.fanin[static_cast<std::size_t>(j)];
      in[j] = f == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(f)];
    }
    bool overlap = false;
    for (int a = 0; a < node.k && !overlap; ++a) {
      if (in[a].is_constant()) continue;
      const netlist::NetId fa = inst.fanin[static_cast<std::size_t>(a)];
      for (int b = a + 1; b < node.k && !overlap; ++b) {
        if (in[b].is_constant()) continue;
        const netlist::NetId fb = inst.fanin[static_cast<std::size_t>(b)];
        if (fa == fb || fa == netlist::kNoNet || fb == netlist::kNoNet ||
            model.supports_overlap(fa, fb)) {
          overlap = true;
        }
      }
    }
    const std::size_t out = static_cast<std::size_t>(inst.out);
    report.net[out] = overlap ? transfer_correlated(node.truth, node.k, in)
                              : transfer_independent(node.truth, node.k, in);
    report.net_widened[out] = overlap ? 1 : 0;
  };

  // -- Kleene iteration from ⊤: comb sweep (levelized, deterministic under
  //    parallelism — each instance writes only its own output slot), then the
  //    flop cut-point update Q ← I(D), intersected with the previous value to
  //    keep the sequence monotone under floating-point noise.
  util::ThreadPool& pool = util::ThreadPool::shared();
  report.converged = false;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    report.iterations = iter;
    for (const auto& lv : model.levels()) {
      if (options.parallel && lv.size() > 1) {
        pool.parallel_for(lv.size(), [&](std::size_t idx) { eval_instance(lv[idx]); });
      } else {
        for (std::size_t i : lv) eval_instance(i);
      }
    }
    double max_change = 0.0;
    for (std::size_t i = 0; i < n_inst; ++i) {
      if (!nodes[i].is_flop || instances[i].out == netlist::kNoNet) continue;
      const std::size_t out = static_cast<std::size_t>(instances[i].out);
      const netlist::NetId d = nodes[i].data_pin >= 0 ? instances[i].fanin[nodes[i].data_pin]
                                                      : netlist::kNoNet;
      const Interval dv =
          d == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(d)];
      const Interval old = report.net[out];
      const Interval next =
          Interval{std::max(old.lo, dv.lo), std::min(old.hi, dv.hi)}.clamped();
      max_change = std::max(max_change, std::abs(next.lo - old.lo));
      max_change = std::max(max_change, std::abs(next.hi - old.hi));
      report.net[out] = next;
    }
    if (max_change <= options.tolerance) {
      report.converged = true;
      break;
    }
  }

  // -- Footnote-2 aggregation: λn = mean over input pins of P(pin high),
  //    clock pins pinned to the simulator's convention.
  report.instances.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const netlist::Instance& inst = instances[i];
    const NetworkNode& node = nodes[i];
    const Interval ln = average(static_cast<std::size_t>(node.k), [&](std::size_t j) {
      if ((node.clock_pin_mask >> j) & 1u) return Interval::point(options.clock_probability);
      const netlist::NetId f = inst.fanin[j];
      return f == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(f)];
    });
    report.instances[i].lambda_n = ln;
    report.instances[i].lambda_p = ln.complement();
    report.instances[i].widened =
        inst.out != netlist::kNoNet && !node.is_flop &&
        report.net_widened[static_cast<std::size_t>(inst.out)] != 0;
  }
  return report;
}

StressReport analyze(const netlist::Module& module, const liberty::Library& library,
                     const AnalyzeOptions& options) {
  return analyze_network(NetworkModel::build(module, library), options);
}

}  // namespace rw::stress
