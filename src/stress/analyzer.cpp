#include "stress/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rw::stress {

namespace {

constexpr int kMaxInputs = 6;

/// Per-instance data resolved once up front.
struct Node {
  const liberty::Cell* cell = nullptr;
  std::uint64_t truth = 0;
  int k = 0;
  bool is_flop = false;
  int data_pin = -1;               ///< flop: fanin index of the non-clock pin
  std::uint64_t clock_pin_mask = 0;  ///< bit j set when input pin j is a clock pin
};

const liberty::Cell* resolve_cell(const liberty::Library& library, const std::string& name) {
  if (const liberty::Cell* c = library.find(name)) return c;
  std::string base;
  double lp = 0.0;
  double ln = 0.0;
  if (util::parse_indexed_cell_name(name, base, lp, ln)) return library.find(base);
  return nullptr;
}

/// Multilinear evaluation of the truth table at one probability vector:
/// Shannon reduction over the highest variable first, O(2^k).
double eval_multilinear(std::uint64_t truth, int k, const double* p) {
  double v[1u << kMaxInputs];
  const std::size_t n = std::size_t{1} << k;
  for (std::size_t pat = 0; pat < n; ++pat) v[pat] = (truth >> pat) & 1u ? 1.0 : 0.0;
  for (int i = k - 1; i >= 0; --i) {
    const std::size_t half = std::size_t{1} << i;
    for (std::size_t j = 0; j < half; ++j) v[j] = (1.0 - p[i]) * v[j] + p[i] * v[j + half];
  }
  return v[0];
}

/// Fréchet lower bound: max over implicant cubes of max(0, Σ ℓ_j − (m−1)),
/// where a positive literal contributes lo_i and a negative one 1 − hi_i.
double frechet_lower(std::uint64_t truth, int k, const Interval* in) {
  const std::size_t n = std::size_t{1} << k;
  const std::uint64_t all = n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  if ((truth & all) == all) return 1.0;  // constant 1
  double best = 0.0;
  int digit[kMaxInputs] = {0};  // 0 = free, 1 = positive literal, 2 = negative
  std::size_t cubes = 1;
  for (int i = 0; i < k; ++i) cubes *= 3;
  for (std::size_t c = 0; c < cubes; ++c) {
    // Bound first — skip the implicant check when it cannot improve.
    double sum = 0.0;
    int m = 0;
    std::uint64_t fixed_mask = 0;
    std::uint64_t fixed_val = 0;
    for (int i = 0; i < k; ++i) {
      if (digit[i] == 1) {
        sum += in[i].lo;
        ++m;
        fixed_mask |= std::uint64_t{1} << i;
        fixed_val |= std::uint64_t{1} << i;
      } else if (digit[i] == 2) {
        sum += 1.0 - in[i].hi;
        ++m;
        fixed_mask |= std::uint64_t{1} << i;
      }
    }
    const double bound = m == 0 ? 1.0 : sum - static_cast<double>(m - 1);
    if (bound > best) {
      bool implicant = true;
      for (std::size_t pat = 0; pat < n; ++pat) {
        if ((pat & fixed_mask) != fixed_val) continue;
        if (((truth >> pat) & 1u) == 0) {
          implicant = false;
          break;
        }
      }
      if (implicant) best = bound;
    }
    // Next cube (ternary counter).
    for (int i = 0; i < k; ++i) {
      if (++digit[i] < 3) break;
      digit[i] = 0;
    }
  }
  return std::clamp(best, 0.0, 1.0);
}

}  // namespace

Interval transfer_independent(std::uint64_t truth, int k, const Interval* in) {
  double p[kMaxInputs];
  double lo = 1.0;
  double hi = 0.0;
  const std::size_t vertices = std::size_t{1} << k;
  for (std::size_t v = 0; v < vertices; ++v) {
    for (int i = 0; i < k; ++i) p[i] = (v >> i) & 1u ? in[i].hi : in[i].lo;
    const double val = eval_multilinear(truth, k, p);
    lo = std::min(lo, val);
    hi = std::max(hi, val);
  }
  return Interval{lo, hi}.clamped();
}

Interval transfer_correlated(std::uint64_t truth, int k, const Interval* in) {
  const std::size_t n = std::size_t{1} << k;
  const std::uint64_t all = n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  const double lo = frechet_lower(truth & all, k, in);
  const double hi = 1.0 - frechet_lower(~truth & all, k, in);
  return Interval{lo, hi}.clamped();
}

std::size_t StressReport::widened_net_count() const {
  return static_cast<std::size_t>(std::count(net_widened.begin(), net_widened.end(), char{1}));
}

std::size_t StressReport::constant_net_count() const {
  std::size_t n = 0;
  for (const Interval& v : net) n += v.is_constant() ? 1 : 0;
  return n;
}

StressReport analyze(const netlist::Module& module, const liberty::Library& library,
                     const AnalyzeOptions& options) {
  if (!module.extra_drivers().empty()) {
    throw std::runtime_error("stress: module '" + module.name() +
                             "' has multi-driven nets; lint it first");
  }
  const auto& instances = module.instances();
  const std::size_t n_inst = instances.size();
  const std::size_t n_net = static_cast<std::size_t>(module.net_count());

  // -- Resolve every instance against the library (λ-indexed names fall back
  //    to their base cell: the function is λ-invariant).
  std::vector<Node> nodes(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const netlist::Instance& inst = instances[i];
    const liberty::Cell* cell = resolve_cell(library, inst.cell);
    if (cell == nullptr) {
      throw std::runtime_error("stress: unknown cell '" + inst.cell + "' on instance '" +
                               inst.name + "'");
    }
    const int k = cell->n_inputs();
    if (static_cast<int>(inst.fanin.size()) != k) {
      throw std::runtime_error("stress: instance '" + inst.name + "' has " +
                               std::to_string(inst.fanin.size()) + " fanins but cell '" +
                               cell->name + "' expects " + std::to_string(k));
    }
    if (k > kMaxInputs) {
      throw std::runtime_error("stress: cell '" + cell->name + "' exceeds " +
                               std::to_string(kMaxInputs) + " inputs");
    }
    Node& node = nodes[i];
    node.cell = cell;
    node.k = k;
    node.is_flop = cell->is_flop;
    node.truth = cell->truth;
    int pin_index = 0;
    for (const liberty::Pin* pin : cell->input_pins()) {
      if (pin->is_clock) {
        node.clock_pin_mask |= std::uint64_t{1} << pin_index;
      } else if (node.data_pin < 0) {
        node.data_pin = pin_index;
      }
      ++pin_index;
    }
    if (node.is_flop && node.data_pin < 0) {
      throw std::runtime_error("stress: flop cell '" + cell->name + "' has no data pin");
    }
  }

  // -- Levelize the combinational instances (Kahn). Sources (PIs, undriven
  //    nets, flop outputs) sit at level 0.
  std::vector<int> comb_driver(n_net, -1);  // combinational driver per net
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (!nodes[i].is_flop && instances[i].out != netlist::kNoNet) {
      comb_driver[static_cast<std::size_t>(instances[i].out)] = static_cast<int>(i);
    }
  }
  std::vector<int> level(n_inst, 0);
  std::vector<int> indeg(n_inst, 0);
  std::size_t comb_count = 0;
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (nodes[i].is_flop) continue;
    ++comb_count;
    for (netlist::NetId f : instances[i].fanin) {
      if (f != netlist::kNoNet && comb_driver[static_cast<std::size_t>(f)] >= 0) ++indeg[i];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (!nodes[i].is_flop && indeg[i] == 0) ready.push_back(i);
  }
  std::vector<std::vector<std::size_t>> levels;
  std::size_t processed = 0;
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t i = ready[head];
    ++processed;
    const int lv = level[i];
    if (static_cast<std::size_t>(lv) >= levels.size()) levels.resize(lv + 1);
    levels[static_cast<std::size_t>(lv)].push_back(i);
    if (instances[i].out == netlist::kNoNet) continue;
    for (int s : module.sinks(instances[i].out)) {
      const auto si = static_cast<std::size_t>(s);
      if (nodes[si].is_flop) continue;
      level[si] = std::max(level[si], lv + 1);
      if (--indeg[si] == 0) ready.push_back(si);
    }
  }
  if (processed != comb_count) {
    throw std::runtime_error("stress: combinational cycle in module '" + module.name() + "'");
  }
  for (auto& lv : levels) std::sort(lv.begin(), lv.end());

  // -- Support bitsets. Sources: every undriven net (PIs, the clock, danglers)
  //    plus every flop output.
  std::vector<int> source_bit(n_net, -1);
  int n_sources = 0;
  for (std::size_t net = 0; net < n_net; ++net) {
    const auto id = static_cast<netlist::NetId>(net);
    const int drv = module.driver(id);
    const bool flop_out = drv >= 0 && nodes[static_cast<std::size_t>(drv)].is_flop;
    if (drv < 0 || flop_out) source_bit[net] = n_sources++;
  }
  const std::size_t words = (static_cast<std::size_t>(n_sources) + 63) / 64;
  std::vector<std::vector<std::uint64_t>> support(n_net, std::vector<std::uint64_t>(words, 0));
  for (std::size_t net = 0; net < n_net; ++net) {
    if (source_bit[net] >= 0) {
      support[net][static_cast<std::size_t>(source_bit[net]) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(source_bit[net]) % 64);
    }
  }
  // Temporal collapse: support(flop Q) = {Q} ∪ support(D), iterated with the
  // combinational propagation until nothing grows.
  const std::size_t max_passes = n_inst + 2;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (const auto& lv : levels) {
      for (std::size_t i : lv) {
        const netlist::NetId out = instances[i].out;
        if (out == netlist::kNoNet) continue;
        auto& dst = support[static_cast<std::size_t>(out)];
        for (netlist::NetId f : instances[i].fanin) {
          if (f == netlist::kNoNet) continue;
          const auto& src = support[static_cast<std::size_t>(f)];
          for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t merged = dst[w] | src[w];
            if (merged != dst[w]) {
              dst[w] = merged;
              changed = true;
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < n_inst; ++i) {
      if (!nodes[i].is_flop || instances[i].out == netlist::kNoNet) continue;
      const netlist::NetId d = nodes[i].data_pin >= 0 ? instances[i].fanin[nodes[i].data_pin]
                                                      : netlist::kNoNet;
      if (d == netlist::kNoNet) continue;
      auto& dst = support[static_cast<std::size_t>(instances[i].out)];
      const auto& src = support[static_cast<std::size_t>(d)];
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t merged = dst[w] | src[w];
        if (merged != dst[w]) {
          dst[w] = merged;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // -- Initial intervals: declared PI intervals; ⊤ for the clock net,
  //    undriven nets, and every flop output.
  StressReport report;
  report.net.assign(n_net, Interval::full());
  report.net_widened.assign(n_net, 0);
  for (netlist::NetId id : module.inputs()) {
    if (id == module.clock()) continue;
    const auto it = options.input_intervals.find(module.net_name(id));
    const Interval v = it != options.input_intervals.end() ? it->second : options.default_input;
    report.net[static_cast<std::size_t>(id)] = v.clamped();
  }

  // -- Evaluate one combinational instance: pick the transfer by support
  //    overlap among the non-constant inputs (proven constants carry no
  //    correlation, so they never force widening).
  auto eval_instance = [&](std::size_t i) {
    const netlist::Instance& inst = instances[i];
    const Node& node = nodes[i];
    if (inst.out == netlist::kNoNet) return;
    Interval in[kMaxInputs];
    for (int j = 0; j < node.k; ++j) {
      const netlist::NetId f = inst.fanin[static_cast<std::size_t>(j)];
      in[j] = f == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(f)];
    }
    bool overlap = false;
    for (int a = 0; a < node.k && !overlap; ++a) {
      if (in[a].is_constant()) continue;
      const netlist::NetId fa = inst.fanin[static_cast<std::size_t>(a)];
      for (int b = a + 1; b < node.k && !overlap; ++b) {
        if (in[b].is_constant()) continue;
        const netlist::NetId fb = inst.fanin[static_cast<std::size_t>(b)];
        if (fa == fb || fa == netlist::kNoNet || fb == netlist::kNoNet) {
          overlap = true;
          break;
        }
        const auto& sa = support[static_cast<std::size_t>(fa)];
        const auto& sb = support[static_cast<std::size_t>(fb)];
        for (std::size_t w = 0; w < words; ++w) {
          if ((sa[w] & sb[w]) != 0) {
            overlap = true;
            break;
          }
        }
      }
    }
    const std::size_t out = static_cast<std::size_t>(inst.out);
    report.net[out] = overlap ? transfer_correlated(node.truth, node.k, in)
                              : transfer_independent(node.truth, node.k, in);
    report.net_widened[out] = overlap ? 1 : 0;
  };

  // -- Kleene iteration from ⊤: comb sweep (levelized, deterministic under
  //    parallelism — each instance writes only its own output slot), then the
  //    flop cut-point update Q ← I(D), intersected with the previous value to
  //    keep the sequence monotone under floating-point noise.
  util::ThreadPool& pool = util::ThreadPool::shared();
  report.converged = false;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    report.iterations = iter;
    for (const auto& lv : levels) {
      if (options.parallel && lv.size() > 1) {
        pool.parallel_for(lv.size(), [&](std::size_t idx) { eval_instance(lv[idx]); });
      } else {
        for (std::size_t i : lv) eval_instance(i);
      }
    }
    double max_change = 0.0;
    for (std::size_t i = 0; i < n_inst; ++i) {
      if (!nodes[i].is_flop || instances[i].out == netlist::kNoNet) continue;
      const std::size_t out = static_cast<std::size_t>(instances[i].out);
      const netlist::NetId d = nodes[i].data_pin >= 0 ? instances[i].fanin[nodes[i].data_pin]
                                                      : netlist::kNoNet;
      const Interval dv =
          d == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(d)];
      const Interval old = report.net[out];
      const Interval next =
          Interval{std::max(old.lo, dv.lo), std::min(old.hi, dv.hi)}.clamped();
      max_change = std::max(max_change, std::abs(next.lo - old.lo));
      max_change = std::max(max_change, std::abs(next.hi - old.hi));
      report.net[out] = next;
    }
    if (max_change <= options.tolerance) {
      report.converged = true;
      break;
    }
  }

  // -- Footnote-2 aggregation: λn = mean over input pins of P(pin high),
  //    clock pins pinned to the simulator's convention.
  report.instances.resize(n_inst);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const netlist::Instance& inst = instances[i];
    const Node& node = nodes[i];
    const Interval ln = average(static_cast<std::size_t>(node.k), [&](std::size_t j) {
      if ((node.clock_pin_mask >> j) & 1u) return Interval::point(options.clock_probability);
      const netlist::NetId f = inst.fanin[j];
      return f == netlist::kNoNet ? Interval::full() : report.net[static_cast<std::size_t>(f)];
    });
    report.instances[i].lambda_n = ln;
    report.instances[i].lambda_p = ln.complement();
    report.instances[i].widened =
        inst.out != netlist::kNoNet && !node.is_flop &&
        report.net_widened[static_cast<std::size_t>(inst.out)] != 0;
  }
  return report;
}

}  // namespace rw::stress
