#include "stress/activity_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "cells/catalog.hpp"
#include "stress/network.hpp"
#include "stress/stacks.hpp"
#include "util/thread_pool.hpp"

namespace rw::stress {

namespace {

constexpr int kMaxInputs = kMaxGateInputs;
constexpr std::uint64_t kXor2Truth = 0b0110;  // Q toggles iff D ⊕ Q at the edge

/// Gate after cofactoring out probability-constant inputs and dropping
/// inputs the function does not depend on.
struct Reduced {
  std::uint64_t truth = 0;
  int k = 0;
  int map[kMaxInputs] = {};  ///< reduced index → original fanin index
};

/// Remove dimension `input` by taking the x_input = 0 cofactor (callers only
/// use this when the function does not depend on that input).
std::uint64_t drop_input(std::uint64_t truth, int k, int input) {
  std::uint64_t out = 0;
  const std::size_t n = std::size_t{1} << (k - 1);
  const std::uint64_t low_mask = (std::uint64_t{1} << input) - 1;
  for (std::size_t q = 0; q < n; ++q) {
    const std::uint64_t pat = (q & low_mask) | ((q & ~low_mask) << 1);
    out |= ((truth >> pat) & 1u) << q;
  }
  return out;
}

Reduced reduce_gate(std::uint64_t truth, int k, const Interval* prob) {
  Reduced r;
  std::uint64_t const_val = 0;
  for (int i = 0; i < k; ++i) {
    if (prob[i].is_constant()) {
      if (prob[i].lo == 1.0) const_val |= std::uint64_t{1} << i;
    } else {
      r.map[r.k++] = i;
    }
  }
  const std::size_t n = std::size_t{1} << r.k;
  for (std::size_t q = 0; q < n; ++q) {
    std::uint64_t pat = const_val;
    for (int j = 0; j < r.k; ++j) {
      if ((q >> j) & 1u) pat |= std::uint64_t{1} << r.map[j];
    }
    r.truth |= ((truth >> pat) & 1u) << q;
  }
  // Drop inputs the cofactored function no longer depends on (they carry no
  // toggles into the output and no correlation into the transfer).
  for (int j = r.k - 1; j >= 0; --j) {
    if (boolean_difference(r.truth, r.k, j) != 0) continue;
    r.truth = drop_input(r.truth, r.k, j);
    for (int l = j; l + 1 < r.k; ++l) r.map[l] = r.map[l + 1];
    --r.k;
  }
  return r;
}

/// Exact E[toggle(f)] for point (p_i, d_i): per input the stationary pair
/// (x_i at t, x_i at t+1) has distribution θ = (1−p−d/2, d/2, d/2, p−d/2);
/// reduce the 4^k toggle-indicator table one base-4 digit at a time
/// (digit i of an index: bit 0 = x_i(t), bit 1 = x_i(t+1), weight 4^i).
double pair_expectation(std::uint64_t truth, int k, const double* p, const double* d) {
  static constexpr std::size_t kPow4[5] = {1, 4, 16, 64, 256};
  const std::size_t n = kPow4[k];
  double v[256];
  for (std::size_t pp = 0; pp < n; ++pp) {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::size_t t = pp;
    for (int i = 0; i < k; ++i) {
      x |= (t & 1u) << i;
      y |= ((t >> 1) & 1u) << i;
      t >>= 2;
    }
    v[pp] = ((truth >> x) & 1u) != ((truth >> y) & 1u) ? 1.0 : 0.0;
  }
  for (int i = k - 1; i >= 0; --i) {
    const std::size_t s = kPow4[i];
    const double t00 = 1.0 - p[i] - 0.5 * d[i];
    const double t01 = 0.5 * d[i];
    const double t11 = p[i] - 0.5 * d[i];
    for (std::size_t j = 0; j < s; ++j) {
      v[j] = t00 * v[j] + t01 * (v[j + s] + v[j + 2 * s]) + t11 * v[j + 3 * s];
    }
  }
  return v[0];
}

}  // namespace

std::uint64_t boolean_difference(std::uint64_t truth, int k, int input) {
  std::uint64_t out = 0;
  const std::size_t n = std::size_t{1} << (k - 1);
  const std::uint64_t low_mask = (std::uint64_t{1} << input) - 1;
  for (std::size_t q = 0; q < n; ++q) {
    const std::uint64_t pat0 = (q & low_mask) | ((q & ~low_mask) << 1);
    const std::uint64_t pat1 = pat0 | (std::uint64_t{1} << input);
    out |= (((truth >> pat0) ^ (truth >> pat1)) & 1u) << q;
  }
  return out;
}

double stationary_density_cap(const Interval& prob) {
  double maxmin = 0.5;
  if (prob.hi <= 0.5) {
    maxmin = prob.hi;
  } else if (prob.lo >= 0.5) {
    maxmin = 1.0 - prob.lo;
  }
  return 2.0 * maxmin;
}

Interval density_independent(std::uint64_t truth, int k, const Interval* prob,
                             const Interval* density) {
  const Reduced r = reduce_gate(truth, k, prob);
  if (r.k == 0) return Interval::point(0.0);
  if (r.k == 1) {
    // ±identity after reduction: toggles pass through exactly (sound under
    // any correlation; keeps clock buffers/inverters at the clock density).
    return density[r.map[0]];
  }
  // Najm bound: D(y) ≤ Σ_i P(∂f/∂x_i)·D(x_i), the ∂-probability evaluated
  // over the other inputs' boxes by exact vertex enumeration.
  double najm = 0.0;
  double sum_hi = 0.0;
  bool clockish = false;
  for (int j = 0; j < r.k; ++j) {
    const Interval d = density[r.map[j]];
    sum_hi += d.hi;
    if (d.hi > 1.0) clockish = true;
    const std::uint64_t dt = boolean_difference(r.truth, r.k, j);
    Interval others[kMaxInputs];
    int n_others = 0;
    for (int l = 0; l < r.k; ++l) {
      if (l != j) others[n_others++] = prob[r.map[l]];
    }
    najm += transfer_independent(dt, r.k - 1, others).hi * d.hi;
  }
  // Cycle sampling sees at most one change per boundary on data nets; gates
  // fed by intra-cycle (clock-derived) signals keep the union bound instead.
  const double cap = clockish ? sum_hi : std::min(1.0, sum_hi);
  double hi = std::min(najm, cap);
  double lo = 0.0;
  // Pair-exact refinement: enumerate the (p, d) box vertices when the box is
  // small and informative (full [0,1]² boxes cannot tighten anything).
  if (!clockish && r.k <= 4) {
    double pc[kMaxInputs][2];
    double dc[kMaxInputs][2];
    int np[kMaxInputs];
    int nd[kMaxInputs];
    std::size_t vertices = 1;
    bool informative = false;
    for (int j = 0; j < r.k; ++j) {
      const Interval p = prob[r.map[j]];
      Interval d = density[r.map[j]];
      d.hi = std::min(d.hi, stationary_density_cap(p));
      d.lo = std::min(d.lo, d.hi);
      pc[j][0] = p.lo;
      pc[j][1] = p.hi;
      np[j] = p.is_point() ? 1 : 2;
      dc[j][0] = d.lo;
      dc[j][1] = d.hi;
      nd[j] = d.is_point() ? 1 : 2;
      vertices *= static_cast<std::size_t>(np[j]) * static_cast<std::size_t>(nd[j]);
      if (p.width() < 1.0 || d.width() < 1.0) informative = true;
    }
    if (informative && vertices <= 16) {
      double emin = 1.0;
      double emax = 0.0;
      double pv[kMaxInputs];
      double dv[kMaxInputs];
      for (std::size_t v = 0; v < vertices; ++v) {
        std::size_t t = v;
        for (int j = 0; j < r.k; ++j) {
          pv[j] = pc[j][t % static_cast<std::size_t>(np[j])];
          t /= static_cast<std::size_t>(np[j]);
          dv[j] = dc[j][t % static_cast<std::size_t>(nd[j])];
          t /= static_cast<std::size_t>(nd[j]);
        }
        const double e = pair_expectation(r.truth, r.k, pv, dv);
        emin = std::min(emin, e);
        emax = std::max(emax, e);
      }
      // The box contains the feasible region (d ≤ 2·min(p, 1−p)), so the
      // box extrema bracket the true extrema; clamp away the infeasible
      // vertices' excursions outside [0, cap].
      hi = std::min(hi, std::clamp(emax, 0.0, cap));
      lo = std::clamp(emin, 0.0, hi);
    }
  }
  return Interval{lo, hi};
}

Interval density_correlated(std::uint64_t truth, int k, const Interval* prob,
                            const Interval* density) {
  const Reduced r = reduce_gate(truth, k, prob);
  if (r.k == 0) return Interval::point(0.0);
  if (r.k == 1) return density[r.map[0]];
  double upper = 0.0;
  double sum_hi = 0.0;
  bool clockish = false;
  for (int j = 0; j < r.k; ++j) {
    const Interval d = density[r.map[j]];
    sum_hi += d.hi;
    if (d.hi > 1.0) clockish = true;
    const std::uint64_t dt = boolean_difference(r.truth, r.k, j);
    Interval others[kMaxInputs];
    int n_others = 0;
    for (int l = 0; l < r.k; ++l) {
      if (l != j) others[n_others++] = prob[r.map[l]];
    }
    // Fréchet widening per term: input i contributes at most its own
    // toggles, and at most the correlation-safe P(∂f/∂x_i).
    upper += std::min(d.hi, transfer_correlated(dt, r.k - 1, others).hi);
  }
  const double cap = clockish ? sum_hi : std::min(1.0, sum_hi);
  return Interval{0.0, std::min(upper, cap)};
}

std::size_t ActivityReport::widened_density_count() const {
  return static_cast<std::size_t>(
      std::count(density_widened.begin(), density_widened.end(), char{1}));
}

ActivityReport analyze_network_activity(const NetworkModel& model,
                                        const ActivityOptions& options) {
  const netlist::Module& module = model.module();
  const auto& instances = module.instances();
  const auto& nodes = model.nodes();
  const std::size_t n_inst = instances.size();
  const std::size_t n_net = static_cast<std::size_t>(module.net_count());
  const netlist::NetId clock = module.clock();

  ActivityReport report;
  report.probability = analyze_network(model, options.probability);
  const std::vector<Interval>& prob = report.probability.net;
  report.density.assign(n_net, Interval::full());
  report.density_widened.assign(n_net, 0);
  report.clock_fed.assign(n_net, 0);
  if (clock != netlist::kNoNet) {
    for (std::size_t net = 0; net < n_net; ++net) {
      report.clock_fed[net] =
          model.depends_on_source(static_cast<netlist::NetId>(net), clock) ? 1 : 0;
    }
  }

  // -- Source densities: the clock net is pinned; other undriven nets get
  //    their declared/default interval, intersected with the stationarity
  //    cap implied by their probability interval.
  for (std::size_t net = 0; net < n_net; ++net) {
    const auto id = static_cast<netlist::NetId>(net);
    if (id == clock) {
      report.density[net] = Interval::point(options.clock_transitions);
      continue;
    }
    if (module.driver(id) >= 0) continue;
    const auto it = options.input_densities.find(module.net_name(id));
    Interval d;
    if (it != options.input_densities.end()) {
      d = it->second.clamped();
    } else if (options.default_input_density) {
      d = options.default_input_density->clamped();
    } else {
      d = Interval{0.0, std::min(1.0, stationary_density_cap(prob[net]))};
    }
    d.hi = std::min(d.hi, stationary_density_cap(prob[net]));
    d.lo = std::min(d.lo, d.hi);
    report.density[net] = d;
  }

  // -- Flop outputs: Q toggles at an edge exactly when D ⊕ Q held before
  //    it, so D(Q) = P(D ⊕ Q) over the converged probability fixed point —
  //    correlation-safe, since support(Q) ⊇ support(D).
  for (std::size_t i = 0; i < n_inst; ++i) {
    if (!nodes[i].is_flop || instances[i].out == netlist::kNoNet) continue;
    const std::size_t out = static_cast<std::size_t>(instances[i].out);
    const netlist::NetId dnet =
        nodes[i].data_pin >= 0 ? instances[i].fanin[nodes[i].data_pin] : netlist::kNoNet;
    Interval in2[2];
    in2[0] = dnet == netlist::kNoNet ? Interval::full() : prob[static_cast<std::size_t>(dnet)];
    in2[1] = prob[out];
    Interval d = transfer_correlated(kXor2Truth, 2, in2);
    d.hi = std::min(d.hi, stationary_density_cap(prob[out]));
    d.lo = std::min(d.lo, d.hi);
    report.density[out] = d;
  }

  // -- One levelized density sweep: the probability pass already resolved
  //    the sequential feedback, so combinational densities are a single
  //    forward pass (deterministic under parallelism — each instance writes
  //    only its own output slot).
  auto eval_density = [&](std::size_t i) {
    const netlist::Instance& inst = instances[i];
    const NetworkNode& node = nodes[i];
    if (inst.out == netlist::kNoNet) return;
    Interval p[kMaxInputs];
    Interval d[kMaxInputs];
    for (int j = 0; j < node.k; ++j) {
      const netlist::NetId f = inst.fanin[static_cast<std::size_t>(j)];
      p[j] = f == netlist::kNoNet ? Interval::full() : prob[static_cast<std::size_t>(f)];
      d[j] = f == netlist::kNoNet ? Interval::full()
                                  : report.density[static_cast<std::size_t>(f)];
    }
    bool overlap = false;
    for (int a = 0; a < node.k && !overlap; ++a) {
      if (p[a].is_constant()) continue;
      const netlist::NetId fa = inst.fanin[static_cast<std::size_t>(a)];
      for (int b = a + 1; b < node.k && !overlap; ++b) {
        if (p[b].is_constant()) continue;
        const netlist::NetId fb = inst.fanin[static_cast<std::size_t>(b)];
        if (fa == fb || fa == netlist::kNoNet || fb == netlist::kNoNet ||
            model.supports_overlap(fa, fb)) {
          overlap = true;
        }
      }
    }
    const std::size_t out = static_cast<std::size_t>(inst.out);
    Interval dv = overlap ? density_correlated(node.truth, node.k, p, d)
                          : density_independent(node.truth, node.k, p, d);
    if (report.clock_fed[out] == 0) {
      dv.hi = std::min(dv.hi, stationary_density_cap(prob[out]));
      dv.lo = std::min(dv.lo, dv.hi);
    }
    report.density[out] = dv;
    report.density_widened[out] = overlap ? 1 : 0;
  };
  util::ThreadPool& pool = util::ThreadPool::shared();
  const bool parallel = options.probability.parallel;
  for (const auto& lv : model.levels()) {
    if (parallel && lv.size() > 1) {
      pool.parallel_for(lv.size(), [&](std::size_t idx) { eval_density(lv[idx]); });
    } else {
      for (std::size_t i : lv) eval_density(i);
    }
  }

  // -- Per-instance summaries: pin toggles, load-weighted switching bound,
  //    and the HCI proxy (stage-refined when the catalog spec is known).
  //    Net loads are accumulated in one serial pass (Module::sinks() is a
  //    full-instance scan — per-instance lookups would be quadratic).
  std::vector<double> net_load_ff(n_net, 0.0);
  for (std::size_t i = 0; i < n_inst; ++i) {
    const auto& fanin = instances[i].fanin;
    const auto pins = nodes[i].cell->input_pins();
    for (std::size_t j = 0; j < fanin.size() && j < pins.size(); ++j) {
      if (fanin[j] == netlist::kNoNet) continue;
      net_load_ff[static_cast<std::size_t>(fanin[j])] +=
          nodes[i].cell->input_cap_ff(pins[j]->name);
    }
  }
  report.instances.assign(n_inst, InstanceActivity{});
  auto summarize = [&](std::size_t i) {
    const netlist::Instance& inst = instances[i];
    const NetworkNode& node = nodes[i];
    InstanceActivity& ia = report.instances[i];
    ia.pin_toggles.resize(static_cast<std::size_t>(node.k));
    for (int j = 0; j < node.k; ++j) {
      if ((node.clock_pin_mask >> j) & 1u) {
        ia.pin_toggles[static_cast<std::size_t>(j)] = Interval::point(options.clock_transitions);
        continue;
      }
      const netlist::NetId f = inst.fanin[static_cast<std::size_t>(j)];
      ia.pin_toggles[static_cast<std::size_t>(j)] =
          f == netlist::kNoNet ? Interval::full()
                               : report.density[static_cast<std::size_t>(f)];
    }
    if (inst.out != netlist::kNoNet) {
      const std::size_t out = static_cast<std::size_t>(inst.out);
      ia.output_toggles = report.density[out];
      ia.widened = report.density_widened[out] != 0;
      ia.load_ff = net_load_ff[out];
      ia.switch_cap_ff =
          RealInterval{ia.load_ff * ia.output_toggles.lo, ia.load_ff * ia.output_toggles.hi};
    }
    if (!node.is_flop && node.k > 0) {
      try {
        const cells::CellSpec& spec = cells::find_cell(node.cell->name);
        if (!spec.is_flop && !spec.stages.empty() &&
            static_cast<int>(spec.inputs.size()) == node.k) {
          std::vector<Interval> probs(static_cast<std::size_t>(node.k));
          std::vector<Interval> dens(static_cast<std::size_t>(node.k));
          for (int j = 0; j < node.k; ++j) {
            const netlist::NetId f = inst.fanin[static_cast<std::size_t>(j)];
            probs[static_cast<std::size_t>(j)] =
                f == netlist::kNoNet ? Interval::full() : prob[static_cast<std::size_t>(f)];
            dens[static_cast<std::size_t>(j)] = ia.pin_toggles[static_cast<std::size_t>(j)];
          }
          const auto devices = transistor_activity_bounds(spec, probs, dens);
          if (!devices.empty()) {
            RealInterval worst{0.0, 0.0};
            for (const TransistorActivity& t : devices) {
              worst.lo = std::max(worst.lo, t.toggles.lo);
              worst.hi = std::max(worst.hi, t.toggles.hi);
            }
            ia.hci = worst;
            ia.hci_from_stacks = true;
          }
        }
      } catch (const std::exception&) {
        ia.hci_from_stacks = false;
      }
    }
    if (!ia.hci_from_stacks) {
      // Pin-level fallback: every pin drives at least one gate node, and any
      // internal node's toggle needs at least one pin toggle per boundary.
      double lo = 0.0;
      double hi = 0.0;
      bool clockish = false;
      for (const Interval& pin : ia.pin_toggles) {
        lo = std::max(lo, pin.lo);
        hi += pin.hi;
        if (pin.hi > 1.0) clockish = true;
      }
      if (!clockish) hi = std::min(hi, 1.0);
      ia.hci = RealInterval{lo, std::max(hi, lo)};
    }
  };
  if (parallel && n_inst > 1) {
    pool.parallel_for(n_inst, [&](std::size_t i) { summarize(i); });
  } else {
    for (std::size_t i = 0; i < n_inst; ++i) summarize(i);
  }

  for (std::size_t net = 0; net < n_net; ++net) {
    if (module.driver(static_cast<netlist::NetId>(net)) >= 0 &&
        report.density[net].hi <= 1e-9) {
      ++report.quiet_driven_nets;
    }
  }
  return report;
}

ActivityReport analyze_activity(const netlist::Module& module, const liberty::Library& library,
                                const ActivityOptions& options) {
  return analyze_network_activity(NetworkModel::build(module, library), options);
}

}  // namespace rw::stress
