#pragma once

/// \file analyzer.hpp
/// Simulation-free duty-cycle analysis: propagates signal-probability
/// intervals from the primary inputs through the gate network and returns,
/// per instance, provable bounds on the paper's footnote-2 duty cycles
/// (λn = mean over input pins of P(pin high), λp = 1 − λn).
///
/// ## Contract (what the bounds mean)
///
/// An interval `[lo, hi]` on a net bounds the long-run empirical frequency of
/// that net being logic-1 over post-warm-up measurement windows, for *any*
/// workload satisfying:
///   * each primary input's marginal frequency lies inside its declared
///     interval (default: the full `[0, 1]`, i.e. nothing assumed);
///   * distinct primary inputs are uncorrelated at any lag. A PI may be
///     arbitrarily self-correlated over time (bursts, periodic patterns).
///     If two PIs are correlated, declare both as `[0, 1]` — with the full
///     interval the analysis never exploits independence, so the result
///     stays sound.
///
/// ## Transfer functions
///
/// Per gate, the analysis picks the strongest sound bound available:
///   * inputs with pairwise-disjoint *support* (the set of PI/flop sources a
///     net transitively depends on): the multilinear probability polynomial
///     is evaluated at every vertex of the input box — exact under
///     independence, and extrema of a multilinear function lie on vertices;
///   * overlapping supports (reconvergent fanout) or a net repeated on two
///     pins: Fréchet-style cube bounds, sound under *arbitrary* correlation
///     (lower(f) = max over implicant cubes of Σ literal-bounds − (m−1);
///     upper by duality). Naive independence products are unsound here —
///     AND(a, ¬a) ≡ 0, yet the product bound would exclude 0.
///
/// ## Sequential circuits
///
/// Flop outputs are cut-points: every flop Q starts at ⊤ = [0, 1] and is
/// iterated (Q ← interval of D) to a fixed point. The transfer is monotone,
/// so every iterate over-approximates the limit and truncating the iteration
/// (`max_iterations`) is sound. A flop's support is {Q} ∪ support(D):
/// collapsing the temporal axis is required for soundness — AND(a, reg(a))
/// with an alternating `a` is identically 0, which independence would miss.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "stress/interval.hpp"

namespace rw::stress {

struct AnalyzeOptions {
  /// Interval assumed for primary inputs without an explicit override.
  Interval default_input = Interval::full();
  /// Per-PI overrides keyed by net name (unknown names are ignored).
  std::unordered_map<std::string, Interval> input_intervals;
  /// Duty cycle used for clock *pins* in λ aggregation (matches the
  /// simulator's `extract_duty_cycles`, which pins clocks at 0.5). The clock
  /// *net* itself is kept at [0, 1] so gating logic fed by it stays sound.
  double clock_probability = 0.5;
  int max_iterations = 64;       ///< cap on sequential fixed-point rounds
  double tolerance = 1e-9;       ///< convergence threshold on flop intervals
  bool parallel = true;          ///< levelized evaluation on ThreadPool::shared()
};

/// Provable per-instance duty-cycle bounds (footnote-2 aggregation).
struct InstanceBounds {
  Interval lambda_n;     ///< mean over input pins of P(pin high)
  Interval lambda_p;     ///< complement of lambda_n
  bool widened = false;  ///< correlation-safe (Fréchet) transfer was required
};

struct StressReport {
  /// Net-probability interval per NetId (index-aligned with the module).
  std::vector<Interval> net;
  /// 1 when the net's driver needed the correlation-safe transfer.
  std::vector<char> net_widened;
  /// Per-instance λ bounds, index-aligned with `module.instances()`.
  std::vector<InstanceBounds> instances;
  int iterations = 0;      ///< sequential rounds executed
  bool converged = true;   ///< false when `max_iterations` truncated the run

  [[nodiscard]] std::size_t widened_net_count() const;
  [[nodiscard]] std::size_t constant_net_count() const;
};

/// Runs the analysis. \throws std::runtime_error on combinational cycles,
/// unknown cells, pin-count mismatches, or multi-driven nets.
StressReport analyze(const netlist::Module& module, const liberty::Library& library,
                     const AnalyzeOptions& options = {});

class NetworkModel;

/// Same analysis over a prebuilt structural model (see network.hpp), so a
/// caller running several interpretations — e.g. the switching-activity
/// analysis — resolves and levelizes the netlist exactly once.
StressReport analyze_network(const NetworkModel& model, const AnalyzeOptions& options = {});

/// Exact interval image of a k-input Boolean function (truth-table bit `p` =
/// output for pattern `p`) assuming the inputs are independent: the
/// multilinear polynomial evaluated over all 2^k box vertices. k ≤ 6.
[[nodiscard]] Interval transfer_independent(std::uint64_t truth, int k, const Interval* in);

/// Correlation-safe interval image of the same function: Fréchet cube
/// bounds, valid for arbitrarily correlated inputs with the given marginals.
[[nodiscard]] Interval transfer_correlated(std::uint64_t truth, int k, const Interval* in);

}  // namespace rw::stress
