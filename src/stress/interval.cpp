#include "stress/interval.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace rw::stress {

Interval Interval::hull(const Interval& other) const {
  return Interval{std::min(lo, other.lo), std::max(hi, other.hi)};
}

Interval Interval::clamped() const {
  Interval r{std::clamp(lo, 0.0, 1.0), std::clamp(hi, 0.0, 1.0)};
  if (r.lo > r.hi) r.lo = r.hi;
  return r;
}

std::string Interval::str() const {
  return "[" + util::format_fixed(lo, 4) + ", " + util::format_fixed(hi, 4) + "]";
}

RealInterval RealInterval::hull(const RealInterval& other) const {
  return RealInterval{std::min(lo, other.lo), std::max(hi, other.hi)};
}

std::string RealInterval::str() const {
  return "[" + util::format_fixed(lo, 4) + ", " + util::format_fixed(hi, 4) + "]";
}

}  // namespace rw::stress
