#include "logicsim/value.hpp"

namespace rw::logicsim {

bool eval_truth(std::uint64_t truth, unsigned pattern) {
  return ((truth >> pattern) & 1ULL) != 0;
}

unsigned pack_pattern(const bool* values, unsigned count) {
  unsigned pattern = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (values[i]) pattern |= 1U << i;
  }
  return pattern;
}

}  // namespace rw::logicsim
