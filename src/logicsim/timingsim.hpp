#pragma once

/// \file timingsim.hpp
/// Event-driven gate-level timing simulation with SDF-style per-arc delays.
/// Flops capture whatever logic value is present on D at the clock edge —
/// if the combinational cloud has not settled (aged delays exceeding the
/// clock period), the wrong value is captured, which is precisely the timing
/// -error mechanism behind the paper's image-quality experiments
/// (Figs. 6(c), 7).

#include <queue>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sdf.hpp"
#include "sta/graph.hpp"

namespace rw::logicsim {

class TimingSimulator {
 public:
  /// `period_ps` is the clock period all scenarios share (the paper runs
  /// every scenario at the fresh design's maximum frequency).
  TimingSimulator(const netlist::Module& module, const liberty::Library& library,
                  const netlist::DelayAnnotation& annotation, double period_ps);

  /// Sets a primary-input value to be applied at the *next* clock edge.
  void set_input(netlist::NetId net, bool value);

  /// Advances one clock period: applies pending input changes and flop
  /// outputs at the edge, propagates events until the next edge, then
  /// captures flop D values there. After the call, `sampled(net)` returns
  /// the value each net held at the capture instant.
  void run_cycle();

  /// Net value at the most recent clock edge (capture time).
  [[nodiscard]] bool sampled(netlist::NetId net) const;

  /// Current simulation time (ps).
  [[nodiscard]] double now_ps() const { return now_ps_; }

  [[nodiscard]] const netlist::Module& module() const { return module_; }

  /// Resets to time 0 with all state initialized from a zero-delay
  /// evaluation of current inputs and zeroed flops.
  void reset();

 private:
  void schedule(double t_ps, netlist::NetId net, bool value);
  void evaluate_sinks(netlist::NetId net, double t_ps);
  void process_until(double t_ps);

  struct Event {
    double t_ps;
    long seq;  ///< FIFO tie-break for same-time events
    netlist::NetId net;
    bool value;
    long version;  ///< inertial semantics: only the newest event per net applies
    bool operator>(const Event& other) const {
      return t_ps != other.t_ps ? t_ps > other.t_ps : seq > other.seq;
    }
  };

  const netlist::Module& module_;
  const liberty::Library& library_;
  const netlist::DelayAnnotation& annotation_;
  double period_ps_;
  sta::Adjacency adj_;

  std::vector<bool> net_value_;
  std::vector<bool> sampled_value_;
  std::vector<bool> pending_input_;      ///< value to apply at next edge
  std::vector<bool> has_pending_input_;
  std::vector<std::uint64_t> truth_;
  std::vector<int> flop_instances_;
  std::vector<bool> flop_state_;
  std::vector<bool> last_scheduled_;     ///< per instance: last scheduled output value
  std::vector<long> net_version_;        ///< per net: newest scheduled event version

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ps_ = 0.0;
  long seq_ = 0;
};

}  // namespace rw::logicsim
