#include "logicsim/simulator.hpp"

#include <stdexcept>

#include "logicsim/value.hpp"

namespace rw::logicsim {

CycleSimulator::CycleSimulator(const netlist::Module& module, const liberty::Library& library)
    : module_(module), library_(library), adj_(sta::Adjacency::build(module, library)) {
  net_value_.assign(static_cast<std::size_t>(module.net_count()), false);
  truth_.assign(module.instances().size(), 0);
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const liberty::Cell& cell = library.at(module.instances()[i].cell);
    if (cell.is_flop) {
      flop_instances_.push_back(static_cast<int>(i));
    } else {
      truth_[i] = cell.truth;
    }
  }
  flop_state_.assign(flop_instances_.size(), false);
}

void CycleSimulator::set_input(netlist::NetId net, bool value) {
  if (!module_.is_input(net)) {
    throw std::invalid_argument("CycleSimulator::set_input: not a primary input: " +
                                module_.net_name(net));
  }
  net_value_[static_cast<std::size_t>(net)] = value;
}

void CycleSimulator::evaluate() {
  // Flop outputs first.
  for (std::size_t f = 0; f < flop_instances_.size(); ++f) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(flop_instances_[f])];
    net_value_[static_cast<std::size_t>(inst.out)] = flop_state_[f];
  }
  // Combinational cloud in topological order.
  bool pins[8];
  for (const int idx : adj_.comb_topo) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(idx)];
    const auto n = inst.fanin.size();
    for (std::size_t p = 0; p < n; ++p) {
      pins[p] = net_value_[static_cast<std::size_t>(inst.fanin[p])];
    }
    const unsigned pattern = pack_pattern(pins, static_cast<unsigned>(n));
    net_value_[static_cast<std::size_t>(inst.out)] =
        eval_truth(truth_[static_cast<std::size_t>(idx)], pattern);
  }
}

void CycleSimulator::clock_edge() {
  for (std::size_t f = 0; f < flop_instances_.size(); ++f) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(flop_instances_[f])];
    flop_state_[f] = net_value_[static_cast<std::size_t>(inst.fanin[0])];  // D pin
  }
}

bool CycleSimulator::value(netlist::NetId net) const {
  return net_value_[static_cast<std::size_t>(net)];
}

void CycleSimulator::reset() {
  std::fill(net_value_.begin(), net_value_.end(), false);
  std::fill(flop_state_.begin(), flop_state_.end(), false);
}

}  // namespace rw::logicsim
