#pragma once

/// \file simulator.hpp
/// Cycle-based (zero-delay) gate-level simulator: evaluates the
/// combinational cloud in topological order once per clock cycle, then
/// captures flop inputs on the clock edge. This is the functional golden
/// model and the activity/duty-cycle extractor of the dynamic-aging flow
/// (Modelsim's role in Fig. 4(b)).

#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/graph.hpp"

namespace rw::logicsim {

class CycleSimulator {
 public:
  /// Flops reset to 0; inputs default to 0.
  CycleSimulator(const netlist::Module& module, const liberty::Library& library);

  void set_input(netlist::NetId net, bool value);
  /// Evaluates combinational logic with current inputs and flop states.
  /// Call before reading values; `clock_edge()` then advances state.
  void evaluate();
  /// Rising clock edge: every flop captures its D value.
  void clock_edge();
  /// Convenience: evaluate + capture.
  void step() {
    evaluate();
    clock_edge();
  }

  [[nodiscard]] bool value(netlist::NetId net) const;
  [[nodiscard]] const netlist::Module& module() const { return module_; }
  [[nodiscard]] const liberty::Library& library() const { return library_; }

  void reset();

 private:
  const netlist::Module& module_;
  const liberty::Library& library_;
  sta::Adjacency adj_;
  std::vector<bool> net_value_;
  std::vector<std::uint64_t> truth_;       ///< per instance (flops: unused)
  std::vector<int> flop_instances_;
  std::vector<bool> flop_state_;           ///< aligned with flop_instances_
};

}  // namespace rw::logicsim
