#pragma once

/// \file activity.hpp
/// Signal-activity collection and transistor duty-cycle extraction. BTI
/// stress conditions follow from pin logic values: an nMOS is stressed
/// (PBTI) while its gate input is high, a pMOS (NBTI) while its gate input
/// is low. Per the paper's simplification (footnote 2), all nMOS of a cell
/// share Avg(λn) and all pMOS share Avg(λp), computed from the cell's input
/// pins — which makes λp = 1 − λn exactly, as in the paper's AND2_0.40_0.60
/// example.

#include <cstddef>
#include <vector>

#include "logicsim/simulator.hpp"
#include "netlist/annotate.hpp"

namespace rw::logicsim {

class ActivityCollector {
 public:
  explicit ActivityCollector(int net_count);

  /// Samples every net of an evaluated simulator (call once per cycle, after
  /// evaluate() and before clock_edge()).
  void observe(const CycleSimulator& sim);

  [[nodiscard]] std::size_t cycles() const { return cycles_; }
  /// P(net == 1); 0.5 when no cycles were observed.
  [[nodiscard]] double probability_high(netlist::NetId net) const;

 private:
  std::vector<std::size_t> high_counts_;
  std::size_t cycles_ = 0;
};

/// Per-instance average duty cycles. Clock pins are assigned P(high) = 0.5
/// (an ideal 50 % duty clock, which the cycle simulator does not model as a
/// net value).
std::vector<netlist::InstanceDuty> extract_duty_cycles(const netlist::Module& module,
                                                       const liberty::Library& library,
                                                       const ActivityCollector& activity);

}  // namespace rw::logicsim
