#pragma once

/// \file activity.hpp
/// Signal-activity collection and transistor duty-cycle extraction. BTI
/// stress conditions follow from pin logic values: an nMOS is stressed
/// (PBTI) while its gate input is high, a pMOS (NBTI) while its gate input
/// is low. Per the paper's simplification (footnote 2), all nMOS of a cell
/// share Avg(λn) and all pMOS share Avg(λp), computed from the cell's input
/// pins — which makes λp = 1 − λn exactly, as in the paper's AND2_0.40_0.60
/// example. The collector also counts per-net transitions between
/// consecutive observations — the measured toggle rates the AC001 activity
/// oracle compares against the proven bounds of stress/activity_bounds.hpp.

#include <cstddef>
#include <optional>
#include <vector>

#include "logicsim/simulator.hpp"
#include "netlist/annotate.hpp"

namespace rw::logicsim {

class ActivityCollector {
 public:
  explicit ActivityCollector(int net_count);

  /// Samples every net of an evaluated simulator (call once per cycle, after
  /// evaluate() and before clock_edge()).
  void observe(const CycleSimulator& sim);

  [[nodiscard]] std::size_t cycles() const { return cycles_; }
  /// P(net == 1) over the observed cycles; nullopt when nothing was observed
  /// (there is no meaningful default — callers must decide, not trust 0.5).
  [[nodiscard]] std::optional<double> probability_high(netlist::NetId net) const;
  /// Measured toggles per cycle: the fraction of consecutive observation
  /// pairs on which the net changed value. nullopt with fewer than two
  /// observations (no boundary has been seen).
  [[nodiscard]] std::optional<double> toggle_rate(netlist::NetId net) const;

 private:
  std::vector<std::size_t> high_counts_;
  std::vector<std::size_t> toggle_counts_;
  std::vector<char> last_;  ///< value at the previous observation
  std::size_t cycles_ = 0;
};

/// Per-instance average duty cycles. Clock pins are assigned P(high) = 0.5
/// (an ideal 50 % duty clock, which the cycle simulator does not model as a
/// net value). \throws std::invalid_argument when the collector observed no
/// cycles — extracting duties from no data would silently pin every net at
/// an invented 0.5.
std::vector<netlist::InstanceDuty> extract_duty_cycles(const netlist::Module& module,
                                                       const liberty::Library& library,
                                                       const ActivityCollector& activity);

}  // namespace rw::logicsim
