#include "logicsim/activity.hpp"

namespace rw::logicsim {

ActivityCollector::ActivityCollector(int net_count) {
  high_counts_.assign(static_cast<std::size_t>(net_count), 0);
}

void ActivityCollector::observe(const CycleSimulator& sim) {
  for (netlist::NetId n = 0; n < sim.module().net_count(); ++n) {
    if (sim.value(n)) ++high_counts_[static_cast<std::size_t>(n)];
  }
  ++cycles_;
}

double ActivityCollector::probability_high(netlist::NetId net) const {
  if (cycles_ == 0) return 0.5;
  return static_cast<double>(high_counts_[static_cast<std::size_t>(net)]) /
         static_cast<double>(cycles_);
}

std::vector<netlist::InstanceDuty> extract_duty_cycles(const netlist::Module& module,
                                                       const liberty::Library& library,
                                                       const ActivityCollector& activity) {
  std::vector<netlist::InstanceDuty> duties;
  duties.reserve(module.instances().size());
  for (const auto& inst : module.instances()) {
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    double sum_high = 0.0;
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const bool is_clock_pin = input_pins[p]->is_clock;
      sum_high += is_clock_pin ? 0.5 : activity.probability_high(inst.fanin[p]);
    }
    const double avg_high =
        inst.fanin.empty() ? 0.5 : sum_high / static_cast<double>(inst.fanin.size());
    // nMOS stressed while gate high; pMOS stressed while gate low.
    duties.push_back(netlist::InstanceDuty{1.0 - avg_high, avg_high});
  }
  return duties;
}

}  // namespace rw::logicsim
