#include "logicsim/activity.hpp"

#include <stdexcept>

namespace rw::logicsim {

ActivityCollector::ActivityCollector(int net_count) {
  high_counts_.assign(static_cast<std::size_t>(net_count), 0);
  toggle_counts_.assign(static_cast<std::size_t>(net_count), 0);
  last_.assign(static_cast<std::size_t>(net_count), 0);
}

void ActivityCollector::observe(const CycleSimulator& sim) {
  for (netlist::NetId n = 0; n < sim.module().net_count(); ++n) {
    const auto i = static_cast<std::size_t>(n);
    const char v = sim.value(n) ? 1 : 0;
    if (v) ++high_counts_[i];
    if (cycles_ > 0 && v != last_[i]) ++toggle_counts_[i];
    last_[i] = v;
  }
  ++cycles_;
}

std::optional<double> ActivityCollector::probability_high(netlist::NetId net) const {
  if (cycles_ == 0) return std::nullopt;
  return static_cast<double>(high_counts_[static_cast<std::size_t>(net)]) /
         static_cast<double>(cycles_);
}

std::optional<double> ActivityCollector::toggle_rate(netlist::NetId net) const {
  if (cycles_ < 2) return std::nullopt;
  return static_cast<double>(toggle_counts_[static_cast<std::size_t>(net)]) /
         static_cast<double>(cycles_ - 1);
}

std::vector<netlist::InstanceDuty> extract_duty_cycles(const netlist::Module& module,
                                                       const liberty::Library& library,
                                                       const ActivityCollector& activity) {
  if (activity.cycles() == 0) {
    throw std::invalid_argument("logicsim: duty extraction needs at least one observed cycle");
  }
  std::vector<netlist::InstanceDuty> duties;
  duties.reserve(module.instances().size());
  for (const auto& inst : module.instances()) {
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    double sum_high = 0.0;
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const bool is_clock_pin = input_pins[p]->is_clock;
      sum_high += is_clock_pin ? 0.5 : activity.probability_high(inst.fanin[p]).value();
    }
    const double avg_high =
        inst.fanin.empty() ? 0.5 : sum_high / static_cast<double>(inst.fanin.size());
    // nMOS stressed while gate high; pMOS stressed while gate low.
    duties.push_back(netlist::InstanceDuty{1.0 - avg_high, avg_high});
  }
  return duties;
}

}  // namespace rw::logicsim
