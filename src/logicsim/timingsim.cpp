#include "logicsim/timingsim.hpp"

#include <stdexcept>

#include "logicsim/value.hpp"

namespace rw::logicsim {

TimingSimulator::TimingSimulator(const netlist::Module& module, const liberty::Library& library,
                                 const netlist::DelayAnnotation& annotation, double period_ps)
    : module_(module),
      library_(library),
      annotation_(annotation),
      period_ps_(period_ps),
      adj_(sta::Adjacency::build(module, library)) {
  if (period_ps <= 0.0) throw std::invalid_argument("TimingSimulator: period must be positive");
  const auto n_nets = static_cast<std::size_t>(module.net_count());
  net_value_.assign(n_nets, false);
  sampled_value_.assign(n_nets, false);
  pending_input_.assign(n_nets, false);
  has_pending_input_.assign(n_nets, false);
  truth_.assign(module.instances().size(), 0);
  last_scheduled_.assign(module.instances().size(), false);
  net_version_.assign(n_nets, 0);
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const liberty::Cell& cell = library.at(module.instances()[i].cell);
    if (cell.is_flop) {
      flop_instances_.push_back(static_cast<int>(i));
    } else {
      truth_[i] = cell.truth;
    }
  }
  flop_state_.assign(flop_instances_.size(), false);
  reset();
}

void TimingSimulator::reset() {
  queue_ = {};
  now_ps_ = 0.0;
  seq_ = 0;
  std::fill(net_value_.begin(), net_value_.end(), false);
  std::fill(flop_state_.begin(), flop_state_.end(), false);
  std::fill(has_pending_input_.begin(), has_pending_input_.end(), false);

  // Zero-delay settle of the initial state.
  for (std::size_t f = 0; f < flop_instances_.size(); ++f) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(flop_instances_[f])];
    net_value_[static_cast<std::size_t>(inst.out)] = flop_state_[f];
  }
  bool pins[8];
  for (const int idx : adj_.comb_topo) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(idx)];
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      pins[p] = net_value_[static_cast<std::size_t>(inst.fanin[p])];
    }
    const bool out = eval_truth(truth_[static_cast<std::size_t>(idx)],
                                pack_pattern(pins, static_cast<unsigned>(inst.fanin.size())));
    net_value_[static_cast<std::size_t>(inst.out)] = out;
    last_scheduled_[static_cast<std::size_t>(idx)] = out;
  }
  sampled_value_ = net_value_;
}

void TimingSimulator::set_input(netlist::NetId net, bool value) {
  if (!module_.is_input(net)) {
    throw std::invalid_argument("TimingSimulator::set_input: not a primary input");
  }
  pending_input_[static_cast<std::size_t>(net)] = value;
  has_pending_input_[static_cast<std::size_t>(net)] = true;
}

void TimingSimulator::schedule(double t_ps, netlist::NetId net, bool value) {
  // Inertial delay: a newly scheduled transition supersedes any pending one
  // on the same net (narrow glitches at a gate's output are swallowed, and
  // a later re-evaluation always wins).
  const long version = ++net_version_[static_cast<std::size_t>(net)];
  queue_.push(Event{t_ps, seq_++, net, value, version});
}

void TimingSimulator::evaluate_sinks(netlist::NetId net, double t_ps) {
  for (const int sink : adj_.net_sinks[static_cast<std::size_t>(net)]) {
    if (adj_.is_flop[static_cast<std::size_t>(sink)]) continue;  // flops sample at edges only
    const auto& inst = module_.instances()[static_cast<std::size_t>(sink)];
    bool pins[8];
    int cause_pin = -1;
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      pins[p] = net_value_[static_cast<std::size_t>(inst.fanin[p])];
      if (inst.fanin[p] == net) cause_pin = static_cast<int>(p);
    }
    const bool out = eval_truth(truth_[static_cast<std::size_t>(sink)],
                                pack_pattern(pins, static_cast<unsigned>(inst.fanin.size())));
    if (out == last_scheduled_[static_cast<std::size_t>(sink)]) continue;
    last_scheduled_[static_cast<std::size_t>(sink)] = out;
    const auto& d = annotation_.arcs[static_cast<std::size_t>(sink)]
                                    [static_cast<std::size_t>(cause_pin)];
    const double delay = out ? d.out_rise_ps : d.out_fall_ps;
    schedule(t_ps + delay, inst.out, out);
  }
}

void TimingSimulator::process_until(double t_ps) {
  while (!queue_.empty() && queue_.top().t_ps < t_ps) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.version != net_version_[static_cast<std::size_t>(ev.net)]) continue;  // superseded
    if (net_value_[static_cast<std::size_t>(ev.net)] == ev.value) continue;
    net_value_[static_cast<std::size_t>(ev.net)] = ev.value;
    evaluate_sinks(ev.net, ev.t_ps);
  }
}

void TimingSimulator::run_cycle() {
  const double edge = now_ps_;            // inputs/flop outputs change here
  const double next_edge = edge + period_ps_;

  // Apply pending primary-input changes at the edge.
  for (netlist::NetId pi : module_.inputs()) {
    const auto i = static_cast<std::size_t>(pi);
    if (!has_pending_input_[i]) continue;
    has_pending_input_[i] = false;
    if (net_value_[i] != pending_input_[i]) {
      net_value_[i] = pending_input_[i];
      evaluate_sinks(pi, edge);
    }
  }
  // Flop outputs transition after CK->Q delay.
  for (std::size_t f = 0; f < flop_instances_.size(); ++f) {
    const auto fi = static_cast<std::size_t>(flop_instances_[f]);
    const auto& inst = module_.instances()[fi];
    const bool q = flop_state_[f];
    if (net_value_[static_cast<std::size_t>(inst.out)] != q) {
      // CK pin is index 1 of {D, CK}; its annotation holds the CK->Q delay.
      const auto& d = annotation_.arcs[fi][1];
      schedule(edge + (q ? d.out_rise_ps : d.out_fall_ps), inst.out, q);
    }
  }

  // Propagate until (just before) the next edge, then sample and capture.
  process_until(next_edge);
  sampled_value_ = net_value_;
  for (std::size_t f = 0; f < flop_instances_.size(); ++f) {
    const auto& inst = module_.instances()[static_cast<std::size_t>(flop_instances_[f])];
    flop_state_[f] = net_value_[static_cast<std::size_t>(inst.fanin[0])];  // D at the edge
  }
  now_ps_ = next_edge;
}

bool TimingSimulator::sampled(netlist::NetId net) const {
  return sampled_value_[static_cast<std::size_t>(net)];
}

}  // namespace rw::logicsim
