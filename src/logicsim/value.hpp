#pragma once

/// \file value.hpp
/// Logic value helpers shared by the gate-level simulators. Cells are
/// single-output with truth tables over their input pin order, so evaluation
/// is a single bit extraction.

#include <cstdint>

namespace rw::logicsim {

/// Evaluates a cell truth table for a packed input pattern (bit i = value of
/// input pin i).
bool eval_truth(std::uint64_t truth, unsigned pattern);

/// Packs boolean pin values (low index = bit 0) into a pattern.
unsigned pack_pattern(const bool* values, unsigned count);

}  // namespace rw::logicsim
