#include "sta/guardband.hpp"

#include "sta/analysis.hpp"

namespace rw::sta {

GuardbandReport estimate_guardband(const netlist::Module& module,
                                   const liberty::Library& fresh_library,
                                   const liberty::Library& aged_library,
                                   const StaOptions& options) {
  GuardbandReport report;
  report.fresh_cp_ps = Sta(module, fresh_library, options).critical_delay_ps();
  report.aged_cp_ps = Sta(module, aged_library, options).critical_delay_ps();
  return report;
}

}  // namespace rw::sta
