#pragma once

/// \file analysis.hpp
/// Graph-based static timing analysis with slew propagation over NLDM
/// tables, rise/fall tracked separately. Start points: primary inputs and
/// flop CK->Q arcs; endpoints: primary outputs and flop D pins (+ setup).
/// This is the "Synopsys Timing Analysis" box of Fig. 4(b)/(c).

#include <limits>
#include <string>
#include <vector>

#include "sta/graph.hpp"

namespace rw::sta {

inline constexpr double kNeverArrives = std::numeric_limits<double>::lowest();

/// Per-net timing state, indexed by edge (0 = rise, 1 = fall).
struct NetTiming {
  double arrival_ps[2] = {kNeverArrives, kNeverArrives};
  double slew_ps[2] = {0.0, 0.0};
  // Backpointers for path reconstruction (worst contributor per edge).
  int from_instance[2] = {-1, -1};  ///< driver instance, -1 = start point
  int from_pin[2] = {-1, -1};       ///< driver input-pin index
  bool from_in_rising[2] = {false, false};
};

struct Endpoint {
  netlist::NetId net = netlist::kNoNet;
  bool rising = false;       ///< worst edge at the endpoint
  bool is_flop_d = false;
  int flop_instance = -1;
  double setup_ps = 0.0;     ///< added for flop D endpoints
  double arrival_ps = 0.0;   ///< data arrival at the endpoint net
  /// Arrival + setup: what the clock period must cover.
  [[nodiscard]] double cost_ps() const { return arrival_ps + setup_ps; }
};

class Sta {
 public:
  /// Runs the analysis immediately. \throws std::runtime_error on
  /// combinational loops or missing cells.
  Sta(const netlist::Module& module, const liberty::Library& library, StaOptions options = {});

  [[nodiscard]] const NetTiming& timing(netlist::NetId net) const;
  [[nodiscard]] double load_ff(netlist::NetId net) const;

  /// Slack of a net against the critical delay (worst over edges);
  /// +infinity for nets with no downstream endpoint.
  [[nodiscard]] double slack_ps(netlist::NetId net) const;

  /// Worst arrival over a net's two edges (kNeverArrives if unreachable).
  [[nodiscard]] double worst_arrival_ps(netlist::NetId net) const;

  /// All endpoints sorted by cost (descending).
  [[nodiscard]] const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  /// Critical-path delay: the minimum clock period the circuit supports
  /// (max endpoint cost). \throws std::runtime_error when there are no
  /// endpoints.
  [[nodiscard]] double critical_delay_ps() const;

  [[nodiscard]] const netlist::Module& module() const { return module_; }
  [[nodiscard]] const liberty::Library& library() const { return library_; }
  [[nodiscard]] const StaOptions& options() const { return options_; }
  [[nodiscard]] const Adjacency& adjacency() const { return adj_; }

 private:
  void propagate();
  void compute_endpoints();
  void compute_required();

  const netlist::Module& module_;
  const liberty::Library& library_;
  StaOptions options_;
  Adjacency adj_;
  std::vector<double> load_ff_;
  std::vector<NetTiming> net_timing_;
  std::vector<Endpoint> endpoints_;
  std::vector<double> required_ps_;  ///< 2 entries per net (rise, fall)
};

/// Delay/slew lookup for one arc edge; shared with path re-evaluation.
struct ArcEdge {
  double delay_ps = 0.0;
  double out_slew_ps = 0.0;
};
ArcEdge lookup_arc_edge(const liberty::TimingArc& arc, bool out_rising, double in_slew_ps,
                        double load_ff);

}  // namespace rw::sta
