#pragma once

/// \file paths.hpp
/// Timing-path extraction and fixed-path re-evaluation. The latter is what
/// state-of-the-art flows that "neglect CP switching" effectively do: they
/// age only the initially-critical path (Fig. 5(c) ablation).

#include <string>
#include <vector>

#include "sta/analysis.hpp"

namespace rw::sta {

struct PathStep {
  int instance = -1;       ///< instance traversed (its output is `net`)
  int input_pin = -1;      ///< index of the input pin entered (-1 for start nets)
  bool in_rising = false;  ///< edge at that input pin
  bool out_rising = false; ///< edge on `net`
  netlist::NetId net = netlist::kNoNet;
  double arrival_ps = 0.0;
  double incr_ps = 0.0;  ///< delay contribution of this step
};

struct TimingPath {
  std::vector<PathStep> steps;  ///< launch -> endpoint order
  Endpoint endpoint;
  double delay_ps = 0.0;  ///< endpoint cost (arrival + setup)

  /// Human-readable report (instance/cell/net/edge/delay per line).
  [[nodiscard]] std::string report(const netlist::Module& module) const;
};

/// Reconstructs the worst path ending at `endpoint`.
TimingPath extract_path(const Sta& sta, const Endpoint& endpoint);

/// The overall critical path.
TimingPath worst_path(const Sta& sta);

/// Worst path per endpoint, sorted by delay (descending), up to k paths.
std::vector<TimingPath> worst_endpoint_paths(const Sta& sta, std::size_t k);

/// Re-computes the delay of a structurally fixed path under a different
/// library (same cell names must exist), propagating slew along the path
/// only. Loads are taken from the netlist against `library`. This models
/// "track the initial critical path through aging".
double evaluate_path_ps(const netlist::Module& module, const liberty::Library& library,
                        const TimingPath& path, const StaOptions& options);

}  // namespace rw::sta
