#include "sta/paths.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rw::sta {

std::string TimingPath::report(const netlist::Module& module) const {
  std::ostringstream os;
  for (const auto& step : steps) {
    os.setf(std::ios::fixed);
    os.precision(1);
    if (step.instance >= 0) {
      const auto& inst = module.instances()[static_cast<std::size_t>(step.instance)];
      os << "  " << inst.name << " (" << inst.cell << ")";
    } else {
      os << "  <start>";
    }
    os << " -> " << module.net_name(step.net) << (step.out_rising ? " r " : " f ") << "+"
       << step.incr_ps << " = " << step.arrival_ps << " ps\n";
  }
  os << "  endpoint cost: " << delay_ps << " ps"
     << (endpoint.is_flop_d ? " (incl. setup)" : "") << "\n";
  return os.str();
}

TimingPath extract_path(const Sta& sta, const Endpoint& endpoint) {
  TimingPath path;
  path.endpoint = endpoint;
  path.delay_ps = endpoint.cost_ps();

  netlist::NetId net = endpoint.net;
  bool rising = endpoint.rising;
  std::vector<PathStep> reversed;
  while (true) {
    const NetTiming& t = sta.timing(net);
    const int edge = rising ? 0 : 1;
    PathStep step;
    step.net = net;
    step.out_rising = rising;
    step.arrival_ps = t.arrival_ps[edge];
    step.instance = t.from_instance[edge];
    step.input_pin = t.from_pin[edge];
    step.in_rising = t.from_in_rising[edge];
    if (step.instance < 0) {
      step.incr_ps = step.arrival_ps;  // start point (PI: 0, flop Q: CK->Q delay)
      reversed.push_back(step);
      break;
    }
    const auto& inst = sta.module().instances()[static_cast<std::size_t>(step.instance)];
    const netlist::NetId prev_net = inst.fanin[static_cast<std::size_t>(step.input_pin)];
    const NetTiming& pt = sta.timing(prev_net);
    step.incr_ps = step.arrival_ps - pt.arrival_ps[step.in_rising ? 0 : 1];
    reversed.push_back(step);
    net = prev_net;
    rising = step.in_rising;
  }
  path.steps.assign(reversed.rbegin(), reversed.rend());
  return path;
}

TimingPath worst_path(const Sta& sta) {
  if (sta.endpoints().empty()) throw std::runtime_error("worst_path: no endpoints");
  return extract_path(sta, sta.endpoints().front());
}

std::vector<TimingPath> worst_endpoint_paths(const Sta& sta, std::size_t k) {
  std::vector<TimingPath> out;
  for (const auto& ep : sta.endpoints()) {
    if (out.size() >= k) break;
    out.push_back(extract_path(sta, ep));
  }
  return out;
}

double evaluate_path_ps(const netlist::Module& module, const liberty::Library& library,
                        const TimingPath& path, const StaOptions& options) {
  if (path.steps.empty()) throw std::invalid_argument("evaluate_path_ps: empty path");
  const Adjacency adj = Adjacency::build(module, library);

  double arrival = 0.0;
  double slew = options.input_slew_ps;

  for (const auto& step : path.steps) {
    if (step.instance < 0) {
      // Start point. Flop starts were folded into the first step's driver
      // being -1 with incr = CK->Q; re-derive it against the new library if
      // the start net is a flop output.
      const int drv = module.driver(step.net);
      if (drv >= 0) {
        const auto& inst = module.instances()[static_cast<std::size_t>(drv)];
        const liberty::Cell& cell = library.at(inst.cell);
        if (cell.is_flop) {
          const liberty::TimingArc* arc = cell.arc_from("CK");
          if (arc == nullptr) throw std::runtime_error("evaluate_path_ps: flop without CK arc");
          const double load = net_load_ff(module, library, options, adj, step.net);
          const ArcEdge e =
              lookup_arc_edge(*arc, step.out_rising, options.input_slew_ps, load);
          arrival = e.delay_ps;
          slew = e.out_slew_ps;
          continue;
        }
      }
      arrival = 0.0;
      slew = options.input_slew_ps;
      continue;
    }
    const auto& inst = module.instances()[static_cast<std::size_t>(step.instance)];
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    const liberty::TimingArc* arc =
        cell.arc_from(input_pins[static_cast<std::size_t>(step.input_pin)]->name);
    if (arc == nullptr) throw std::runtime_error("evaluate_path_ps: missing arc");
    const double load = net_load_ff(module, library, options, adj, step.net);
    const ArcEdge e = lookup_arc_edge(*arc, step.out_rising, slew, load);
    arrival += e.delay_ps;
    slew = e.out_slew_ps;
  }
  // Setup of the capturing flop, re-derived against the evaluation library.
  double setup = 0.0;
  if (path.endpoint.is_flop_d && path.endpoint.flop_instance >= 0) {
    const auto& flop =
        module.instances()[static_cast<std::size_t>(path.endpoint.flop_instance)];
    setup = library.at(flop.cell).setup_ps;
  }
  return arrival + setup;
}

}  // namespace rw::sta
