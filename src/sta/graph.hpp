#pragma once

/// \file graph.hpp
/// Structural helpers for timing analysis: sink adjacency, combinational
/// levelization (flops cut the graph), and the net load model (pin caps +
/// fanout-proportional wire capacitance).

#include <vector>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace rw::sta {

struct StaOptions {
  double input_slew_ps = 40.0;  ///< slew assumed at primary inputs and the clock pin
  double po_load_ff = 2.0;      ///< capacitance assumed at primary outputs
  double wire_cap_per_fanout_ff = 0.15;  ///< crude wire-load model
};

/// Precomputed adjacency and topological order of combinational instances.
/// \throws std::runtime_error on a combinational loop.
struct Adjacency {
  std::vector<std::vector<int>> net_sinks;  ///< per net: sink instance indices
  std::vector<int> comb_topo;               ///< combinational instances, topo order
  std::vector<bool> is_flop;                ///< per instance

  static Adjacency build(const netlist::Module& module, const liberty::Library& library);
};

/// Total capacitive load on a net (sink pin caps + wire + PO load).
double net_load_ff(const netlist::Module& module, const liberty::Library& library,
                   const StaOptions& options, const Adjacency& adj, netlist::NetId net);

}  // namespace rw::sta
