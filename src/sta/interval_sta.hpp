#pragma once

/// \file interval_sta.hpp
/// Interval-domain static timing analysis — the `rwprove` engine. Propagates
/// `[lo, hi]` arrival and slew intervals (stress::RealInterval) through the
/// timing graph, looking every arc up over an instance's *bracketing
/// λ-lattice corner cells* (charlib/interval_query.hpp) instead of one
/// library cell. The resulting per-endpoint interval is a proof obligation:
/// the aged critical-path delay under ANY workload consistent with the input
/// model lies inside it.
///
/// ## Soundness argument (what is bounded where)
///
///  1. λ coverage — each instance's proven (λp, λn) interval is bracketed by
///     the ≤ 4 extreme quantized lattice corners; per-axis monotone aging
///     response (the adaptive-grid assumption, charlib/adaptive.hpp) puts
///     every admissible corner's table entries inside the bracket's entry
///     ranges. Delay/slew lookups take the hull over the bracket cells.
///  2. NLDM slew/load interpolation — the input slew is itself an interval,
///     so lookups use `util::table_range`, the *exact* min/max of the
///     piecewise-bilinear surface over the slew × load query rectangle
///     (extrema lie on query corners or interior grid knots; no error term
///     is needed inside the NLDM model).
///  3. Certified λ-interpolation error — corners served by the adaptive grid
///     carry an `rw_interp` per-entry bound (LB007 machinery); every lookup
///     over such a corner is widened by `amp * bound_ps`, where `amp` is the
///     extrapolation amplification reported by `table_range` (bilinear
///     weights can exceed 1 outside the characterized axes).
///  4. max/+ propagation — an output arrival is max over contributing
///     (input, edge) candidates of arrival + delay; the max of lower bounds
///     lower-bounds the max, the max of upper bounds upper-bounds it. The
///     output slew hulls over every candidate that can still win (candidate
///     upper ≥ best lower), which contains the realized winner's slew.
///
/// An instance whose bracketing corner set is incomplete (any corner missing
/// or quarantined — a partial bracket does not bound the λ interval) makes
/// every downstream interval *vacuous*: propagation continues on the
/// resolved corners (or the fresh cell's tables when none resolved) so the
/// numbers stay finite, but the vacuous flag travels with them and PV003
/// refuses to treat the result as a proof.
///
/// Propagation is a deterministic serial topological pass (like sta::Sta),
/// so results are bitwise identical for any thread count; with exactly one
/// corner per instance, point input slews, and no interp markers it
/// reproduces scalar `Sta` arithmetic bitwise.

#include <string>
#include <vector>

#include "charlib/interval_query.hpp"
#include "sta/analysis.hpp"
#include "sta/graph.hpp"
#include "stress/interval.hpp"

namespace rw::sta {

/// Per-net interval timing state, indexed by edge (0 = rise, 1 = fall).
struct NetIntervalTiming {
  stress::RealInterval arrival[2] = {{kNeverArrives, kNeverArrives},
                                     {kNeverArrives, kNeverArrives}};
  stress::RealInterval slew[2] = {{0.0, 0.0}, {0.0, 0.0}};
  /// Backpointers along the upper-bound path (worst hi contributor).
  int from_instance[2] = {-1, -1};
  int from_pin[2] = {-1, -1};
  bool from_in_rising[2] = {false, false};
  /// The winning hi arc's delay-interval width and the certified-interp
  /// share of it — the per-edge blame quantities (PV002 ranking).
  double edge_width_ps[2] = {0.0, 0.0};
  double edge_interp_ps[2] = {0.0, 0.0};
  /// True when any arc on any path into this edge had an incomplete
  /// bracketing corner set: the numeric bounds are a proxy, not a proof.
  bool vacuous[2] = {false, false};
};

struct IntervalEndpoint {
  netlist::NetId net = netlist::kNoNet;
  bool rising = false;  ///< edge with the worst upper bound
  bool is_flop_d = false;
  int flop_instance = -1;
  stress::RealInterval setup_ps;    ///< hull over the flop's bracket corners
  stress::RealInterval arrival_ps;  ///< [max of lo, max of hi] over edges
  bool vacuous = false;
  [[nodiscard]] stress::RealInterval cost_ps() const { return arrival_ps + setup_ps; }
};

/// One edge of the proven worst (upper-bound) path, for blame ranking.
struct PathBlame {
  std::string instance;
  std::string cell;   ///< base cell name
  std::string pin;    ///< input pin the path enters through
  double width_ps = 0.0;   ///< this arc's delay-interval width contribution
  double interp_ps = 0.0;  ///< certified λ-interpolation share of the width
};

/// Everything the PV lint rules (PV001..PV003) need from a completed run.
struct ProveSummary {
  double fresh_cp_ps = 0.0;           ///< scalar fresh critical path
  stress::RealInterval aged_cp_ps;    ///< proven aged critical-path interval
  bool vacuous = false;               ///< the interval proves nothing (PV003)
  std::vector<std::string> vacuous_instances;  ///< zero-corner instances, det. order
  std::vector<PathBlame> blame;       ///< worst-path edges ranked by width desc
  double guardband_ps = -1.0;         ///< candidate to certify; < 0 disables PV001
  double width_budget_ps = -1.0;      ///< slack budget; < 0 disables PV002
};

class IntervalSta {
 public:
  /// Runs the analysis immediately. `corners` must be index-aligned with
  /// `module.instances()` (see charlib::corners_from_factory /
  /// corners_from_library). \throws std::runtime_error on combinational
  /// loops or missing cells.
  IntervalSta(const netlist::Module& module, const liberty::Library& fresh,
              const std::vector<charlib::InstanceCorners>& corners, StaOptions options = {});

  [[nodiscard]] const NetIntervalTiming& timing(netlist::NetId net) const;
  [[nodiscard]] const stress::RealInterval& load_ff(netlist::NetId net) const;

  /// All endpoints sorted by upper-bound cost (descending; ties by net id).
  [[nodiscard]] const std::vector<IntervalEndpoint>& endpoints() const { return endpoints_; }

  /// Proven critical-path interval: [max cost.lo, max cost.hi] over
  /// endpoints. \throws std::runtime_error when there are no endpoints.
  [[nodiscard]] stress::RealInterval critical_interval_ps() const;

  /// True when any endpoint's interval is vacuous.
  [[nodiscard]] bool vacuous() const;

  /// Instances with an incomplete bracketing corner set, in instance order.
  [[nodiscard]] const std::vector<int>& vacuous_instances() const { return vacuous_instances_; }

  /// Worst (upper-bound) path edges of the top endpoint, ranked by
  /// delay-interval width descending (ties: path order). Empty when there
  /// are no endpoints.
  [[nodiscard]] std::vector<PathBlame> blame() const;

  /// Packages the run for the PV lint rules; `fresh_cp_ps` is the scalar
  /// fresh critical path the guardband is measured against.
  [[nodiscard]] ProveSummary summarize(double fresh_cp_ps) const;

  [[nodiscard]] const netlist::Module& module() const { return module_; }
  [[nodiscard]] const StaOptions& options() const { return options_; }

 private:
  void compute_loads();
  void propagate();
  void compute_endpoints();

  const netlist::Module& module_;
  const liberty::Library& fresh_;
  const std::vector<charlib::InstanceCorners>& corners_;
  StaOptions options_;
  Adjacency adj_;
  std::vector<stress::RealInterval> load_ff_;
  std::vector<NetIntervalTiming> net_timing_;
  std::vector<IntervalEndpoint> endpoints_;
  std::vector<int> vacuous_instances_;
};

}  // namespace rw::sta
