#include "sta/interval_sta.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/cancel.hpp"
#include "util/interp.hpp"

namespace rw::sta {

namespace {

constexpr int kRise = 0;
constexpr int kFall = 1;

/// Input edges that can cause the given output edge under an arc's sense
/// (bit0 = input rise, bit1 = input fall) — identical to scalar STA.
unsigned contributing_input_edges(liberty::TimingSense sense, bool out_rising) {
  switch (sense) {
    case liberty::TimingSense::kPositiveUnate:
      return out_rising ? 0b01U : 0b10U;
    case liberty::TimingSense::kNegativeUnate:
      return out_rising ? 0b10U : 0b01U;
    case liberty::TimingSense::kNonUnate:
      return 0b11U;
  }
  return 0b11U;
}

/// Interval delay/slew for one arc edge, hulled over an instance's
/// bracketing corner cells.
struct IntervalArcEdge {
  stress::RealInterval delay;
  stress::RealInterval slew;
  double interp_ps = 0.0;  ///< max certified widening applied per side
  bool valid = false;      ///< fresh cell characterizes this (pin, edge)
  bool vacuous = false;    ///< no usable corner: fresh-proxy numbers
};

/// Range of `table` over the slew × load query rectangle, widened per side
/// by the corner's certified interpolation bound scaled by the
/// extrapolation amplification; `clamp_floor` applies the scalar STA's
/// max(1, slew) floor.
stress::RealInterval widened_range(const util::Table2D& table, const stress::RealInterval& in_slew,
                                   const stress::RealInterval& load, double bound_ps,
                                   bool clamp_floor, double& interp_ps) {
  const util::TableRange r = util::table_range(table, in_slew.lo, in_slew.hi, load.lo, load.hi);
  const double widen = r.amp * bound_ps;
  if (widen > interp_ps) interp_ps = widen;
  stress::RealInterval out{r.lo - widen, r.hi + widen};
  if (clamp_floor) {
    out.lo = std::max(1.0, out.lo);
    out.hi = std::max(1.0, out.hi);
  }
  return out;
}

/// Hull over the bracketing corners of the (pin, output-edge) lookup. The
/// fresh cell is the structural reference: an edge it does not characterize
/// is skipped, like scalar STA skips it. When no corner resolves, the fresh
/// tables stand in numerically and the result is flagged vacuous.
IntervalArcEdge lookup_interval_arc_edge(const charlib::InstanceCorners& ic,
                                         const std::string& pin, bool out_rising,
                                         const stress::RealInterval& in_slew,
                                         const stress::RealInterval& load) {
  IntervalArcEdge e;
  const liberty::TimingArc* fresh_arc = ic.fresh->arc_from(pin);
  if (fresh_arc == nullptr) return e;
  const liberty::TimingTable& fresh_table = out_rising ? fresh_arc->rise : fresh_arc->fall;
  if (fresh_table.empty()) return e;
  e.valid = true;

  bool first = true;
  for (const liberty::Cell* cell : ic.corners) {
    const liberty::TimingArc* arc = cell->arc_from(pin);
    if (arc == nullptr) continue;
    const liberty::TimingTable& table = out_rising ? arc->rise : arc->fall;
    if (table.empty()) continue;
    const double bound = cell->interp.has_value() ? cell->interp->bound_ps : 0.0;
    const stress::RealInterval delay =
        widened_range(table.delay_ps, in_slew, load, bound, false, e.interp_ps);
    const stress::RealInterval slew =
        widened_range(table.out_slew_ps, in_slew, load, bound, true, e.interp_ps);
    if (first) {
      e.delay = delay;
      e.slew = slew;
      first = false;
    } else {
      e.delay = e.delay.hull(delay);
      e.slew = e.slew.hull(slew);
    }
  }
  if (first) {
    // Zero usable corners: propagate fresh numbers so downstream intervals
    // stay finite, but nothing is proven (PV003).
    e.vacuous = true;
    double unused = 0.0;
    e.delay = widened_range(fresh_table.delay_ps, in_slew, load, 0.0, false, unused);
    e.slew = widened_range(fresh_table.out_slew_ps, in_slew, load, 0.0, true, unused);
  }
  return e;
}

}  // namespace

IntervalSta::IntervalSta(const netlist::Module& module, const liberty::Library& fresh,
                         const std::vector<charlib::InstanceCorners>& corners, StaOptions options)
    : module_(module),
      fresh_(fresh),
      corners_(corners),
      options_(options),
      adj_(Adjacency::build(module, fresh)) {
  if (corners_.size() != module.instances().size()) {
    throw std::runtime_error("IntervalSta: corners not aligned with instances");
  }
  for (std::size_t i = 0; i < corners_.size(); ++i) {
    if (corners_[i].fresh == nullptr) {
      throw std::runtime_error("IntervalSta: null fresh cell for instance " +
                               module.instances()[i].name);
    }
    // A *partial* bracket proves nothing either: without every extreme
    // corner the hull does not bound the instance's λ interval.
    if (corners_[i].corners.empty() || corners_[i].missing > 0) {
      vacuous_instances_.push_back(static_cast<int>(i));
    }
  }
  net_timing_.assign(static_cast<std::size_t>(module.net_count()), NetIntervalTiming{});
  compute_loads();
  propagate();
  compute_endpoints();
}

void IntervalSta::compute_loads() {
  // Mirrors sta::net_load_ff term by term (and in the same accumulation
  // order, so a single-corner run collapses to the scalar loads bitwise);
  // each sink pin cap becomes the [min, max] over the sink's corner cells.
  const auto& instances = module_.instances();
  load_ff_.assign(static_cast<std::size_t>(module_.net_count()), stress::RealInterval{});
  for (netlist::NetId net = 0; net < module_.net_count(); ++net) {
    stress::RealInterval load{0.0, 0.0};
    int fanout = 0;
    for (const int sink : adj_.net_sinks[static_cast<std::size_t>(net)]) {
      const auto& inst = instances[static_cast<std::size_t>(sink)];
      const charlib::InstanceCorners& ic = corners_[static_cast<std::size_t>(sink)];
      const auto fresh_pins = ic.fresh->input_pins();
      for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
        if (inst.fanin[p] != net) continue;
        double cap_lo = 0.0;
        double cap_hi = 0.0;
        bool first = true;
        for (const liberty::Cell* cell : ic.corners) {
          const double cap = cell->input_pins()[p]->cap_ff;
          if (first) {
            cap_lo = cap;
            cap_hi = cap;
            first = false;
          } else {
            cap_lo = std::min(cap_lo, cap);
            cap_hi = std::max(cap_hi, cap);
          }
        }
        if (first) {  // vacuous instance: fresh pin cap as proxy
          cap_lo = fresh_pins[p]->cap_ff;
          cap_hi = cap_lo;
        }
        load.lo += cap_lo;
        load.hi += cap_hi;
        ++fanout;
      }
    }
    for (netlist::NetId po : module_.outputs()) {
      if (po == net) {
        load.lo += options_.po_load_ff;
        load.hi += options_.po_load_ff;
        ++fanout;
      }
    }
    load.lo += options_.wire_cap_per_fanout_ff * fanout;
    load.hi += options_.wire_cap_per_fanout_ff * fanout;
    load_ff_[static_cast<std::size_t>(net)] = load;
  }
}

void IntervalSta::propagate() {
  // Start points: primary inputs (arrival 0, point slew)...
  for (netlist::NetId pi : module_.inputs()) {
    auto& t = net_timing_[static_cast<std::size_t>(pi)];
    for (int e : {kRise, kFall}) {
      t.arrival[e] = stress::RealInterval::point(0.0);
      t.slew[e] = stress::RealInterval::point(options_.input_slew_ps);
    }
  }
  // ...and flop outputs (CK->Q arc at clock slew).
  const auto& instances = module_.instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj_.is_flop[i]) continue;
    const auto& inst = instances[i];
    const charlib::InstanceCorners& ic = corners_[i];
    if (ic.fresh->arc_from("CK") == nullptr) {
      throw std::runtime_error("IntervalSta: flop " + inst.cell + " has no CK arc");
    }
    auto& t = net_timing_[static_cast<std::size_t>(inst.out)];
    const stress::RealInterval& load = load_ff_[static_cast<std::size_t>(inst.out)];
    const stress::RealInterval ck_slew = stress::RealInterval::point(options_.input_slew_ps);
    for (int e : {kRise, kFall}) {
      const IntervalArcEdge edge = lookup_interval_arc_edge(ic, "CK", e == kRise, ck_slew, load);
      if (!edge.valid) {
        throw std::runtime_error("IntervalSta: flop " + inst.cell + " CK arc has no table");
      }
      t.arrival[e] = edge.delay;
      t.slew[e] = edge.slew;
      t.from_instance[e] = -1;  // flop Q is a start point for path tracing
      t.edge_width_ps[e] = edge.delay.width();
      t.edge_interp_ps[e] = edge.interp_ps;
      t.vacuous[e] = edge.vacuous || ic.missing > 0;
    }
  }

  // Propagate through combinational instances in topological order. The
  // traversal is serial and mirrors sta::Sta::propagate exactly; on point
  // inputs with one corner per instance the arithmetic collapses to the
  // scalar pass bitwise.
  struct Cand {
    double arrival_lo;
    double arrival_hi;
    stress::RealInterval slew;
    bool vacuous;
  };
  std::vector<Cand> cands[2];
  std::size_t visited = 0;
  for (const int idx : adj_.comb_topo) {
    if ((++visited & 0xFFU) == 0U) flow::throw_if_cancelled();
    const auto& inst = instances[static_cast<std::size_t>(idx)];
    const charlib::InstanceCorners& ic = corners_[static_cast<std::size_t>(idx)];
    const bool inst_vacuous = ic.corners.empty() || ic.missing > 0;
    const stress::RealInterval& load = load_ff_[static_cast<std::size_t>(inst.out)];
    auto& out_t = net_timing_[static_cast<std::size_t>(inst.out)];
    const auto fresh_pins = ic.fresh->input_pins();
    cands[kRise].clear();
    cands[kFall].clear();

    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const liberty::TimingArc* arc = ic.fresh->arc_from(fresh_pins[p]->name);
      if (arc == nullptr) continue;
      const auto& in_t = net_timing_[static_cast<std::size_t>(inst.fanin[p])];
      for (const bool out_rising : {true, false}) {
        const liberty::TimingTable& table = out_rising ? arc->rise : arc->fall;
        if (table.empty()) continue;
        const unsigned in_edges = contributing_input_edges(arc->sense, out_rising);
        for (int ie : {kRise, kFall}) {
          if ((in_edges & (ie == kRise ? 0b01U : 0b10U)) == 0U) continue;
          if (in_t.arrival[ie].hi == kNeverArrives) continue;
          const IntervalArcEdge edge =
              lookup_interval_arc_edge(ic, fresh_pins[p]->name, out_rising, in_t.slew[ie], load);
          const double arrival_hi = in_t.arrival[ie].hi + edge.delay.hi;
          const double arrival_lo = in_t.arrival[ie].lo + edge.delay.lo;
          const int oe = out_rising ? kRise : kFall;
          cands[oe].push_back(Cand{arrival_lo, arrival_hi, edge.slew,
                                   inst_vacuous || edge.vacuous || in_t.vacuous[ie]});
          // Upper-bound winner: same strict comparison (first wins ties) as
          // the scalar pass, so backpointers match under collapse.
          if (arrival_hi > out_t.arrival[oe].hi) {
            out_t.arrival[oe].hi = arrival_hi;
            out_t.from_instance[oe] = idx;
            out_t.from_pin[oe] = static_cast<int>(p);
            out_t.from_in_rising[oe] = (ie == kRise);
            out_t.edge_width_ps[oe] = edge.delay.width();
            out_t.edge_interp_ps[oe] = edge.interp_ps;
          }
        }
      }
    }

    // Lower bound is the max of candidate lower bounds; the output slew
    // hulls every candidate that can still realize the max (upper bound not
    // dominated by the best lower bound), which contains the true winner.
    for (int oe : {kRise, kFall}) {
      if (cands[oe].empty()) continue;
      double best_lo = kNeverArrives;
      bool vac = false;
      for (const Cand& c : cands[oe]) {
        if (c.arrival_lo > best_lo) best_lo = c.arrival_lo;
        vac = vac || c.vacuous;
      }
      out_t.arrival[oe].lo = best_lo;
      out_t.vacuous[oe] = vac;
      bool first = true;
      for (const Cand& c : cands[oe]) {
        if (c.arrival_hi < best_lo) continue;
        if (first) {
          out_t.slew[oe] = c.slew;
          first = false;
        } else {
          out_t.slew[oe] = out_t.slew[oe].hull(c.slew);
        }
      }
    }
  }
}

void IntervalSta::compute_endpoints() {
  const auto add_endpoint = [&](netlist::NetId net, bool is_flop_d, int flop_inst,
                                const stress::RealInterval& setup_ps, bool setup_vacuous) {
    const auto& t = net_timing_[static_cast<std::size_t>(net)];
    const bool has_rise = t.arrival[kRise].hi != kNeverArrives;
    const bool has_fall = t.arrival[kFall].hi != kNeverArrives;
    if (!has_rise && !has_fall) return;
    IntervalEndpoint ep;
    ep.net = net;
    ep.is_flop_d = is_flop_d;
    ep.flop_instance = flop_inst;
    ep.setup_ps = setup_ps;
    ep.rising = t.arrival[kRise].hi >= t.arrival[kFall].hi;
    if (has_rise && has_fall) {
      ep.arrival_ps = stress::RealInterval{std::max(t.arrival[kRise].lo, t.arrival[kFall].lo),
                                           std::max(t.arrival[kRise].hi, t.arrival[kFall].hi)};
      ep.vacuous = t.vacuous[kRise] || t.vacuous[kFall];
    } else {
      const int e = has_rise ? kRise : kFall;
      ep.arrival_ps = t.arrival[e];
      ep.vacuous = t.vacuous[e];
    }
    ep.vacuous = ep.vacuous || setup_vacuous;
    endpoints_.push_back(ep);
  };

  for (netlist::NetId po : module_.outputs()) {
    add_endpoint(po, false, -1, stress::RealInterval{}, false);
  }
  const auto& instances = module_.instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj_.is_flop[i]) continue;
    const charlib::InstanceCorners& ic = corners_[i];
    // Setup over the flop's bracket corners, widened by the certified
    // interpolation bound (amp = 1: setup is a direct entry, not a lookup).
    stress::RealInterval setup;
    bool setup_vacuous = false;
    bool first = true;
    for (const liberty::Cell* cell : ic.corners) {
      const double bound = cell->interp.has_value() ? cell->interp->bound_ps : 0.0;
      const stress::RealInterval s{cell->setup_ps - bound, cell->setup_ps + bound};
      setup = first ? s : setup.hull(s);
      first = false;
    }
    if (first) {
      setup = stress::RealInterval::point(ic.fresh->setup_ps);
      setup_vacuous = true;
    }
    setup_vacuous = setup_vacuous || ic.missing > 0;
    // Pin order of DFF is {D, CK}; endpoint is the D net.
    add_endpoint(instances[i].fanin[0], true, static_cast<int>(i), setup, setup_vacuous);
  }
  std::sort(endpoints_.begin(), endpoints_.end(),
            [](const IntervalEndpoint& a, const IntervalEndpoint& b) {
              const stress::RealInterval ca = a.cost_ps();
              const stress::RealInterval cb = b.cost_ps();
              if (ca.hi != cb.hi) return ca.hi > cb.hi;
              if (ca.lo != cb.lo) return ca.lo > cb.lo;
              return a.net < b.net;
            });
}

const NetIntervalTiming& IntervalSta::timing(netlist::NetId net) const {
  return net_timing_[static_cast<std::size_t>(net)];
}

const stress::RealInterval& IntervalSta::load_ff(netlist::NetId net) const {
  return load_ff_[static_cast<std::size_t>(net)];
}

stress::RealInterval IntervalSta::critical_interval_ps() const {
  if (endpoints_.empty()) {
    throw std::runtime_error("IntervalSta::critical_interval_ps: no endpoints");
  }
  stress::RealInterval cp = endpoints_.front().cost_ps();
  // The sort fixes hi = front's hi; lo is the max over ALL endpoints (the
  // true critical path could be any endpoint whose upper bound reaches it).
  for (const IntervalEndpoint& ep : endpoints_) {
    cp.lo = std::max(cp.lo, ep.cost_ps().lo);
  }
  return cp;
}

bool IntervalSta::vacuous() const {
  if (!vacuous_instances_.empty()) return true;
  for (const IntervalEndpoint& ep : endpoints_) {
    if (ep.vacuous) return true;
  }
  return false;
}

std::vector<PathBlame> IntervalSta::blame() const {
  std::vector<PathBlame> path;
  if (endpoints_.empty()) return path;
  const IntervalEndpoint& top = endpoints_.front();
  netlist::NetId net = top.net;
  int e = top.rising ? kRise : kFall;
  const auto& instances = module_.instances();
  while (true) {
    const NetIntervalTiming& t = net_timing_[static_cast<std::size_t>(net)];
    const int inst = t.from_instance[e];
    if (inst < 0) break;
    const auto& instance = instances[static_cast<std::size_t>(inst)];
    PathBlame b;
    b.instance = instance.name;
    b.cell = instance.cell;
    b.pin = corners_[static_cast<std::size_t>(inst)].fresh->input_pins()[static_cast<std::size_t>(
        t.from_pin[e])]->name;
    b.width_ps = t.edge_width_ps[e];
    b.interp_ps = t.edge_interp_ps[e];
    path.push_back(std::move(b));
    net = instance.fanin[static_cast<std::size_t>(t.from_pin[e])];
    e = t.from_in_rising[e] ? kRise : kFall;
  }
  std::stable_sort(path.begin(), path.end(),
                   [](const PathBlame& a, const PathBlame& b) { return a.width_ps > b.width_ps; });
  return path;
}

ProveSummary IntervalSta::summarize(double fresh_cp_ps) const {
  ProveSummary s;
  s.fresh_cp_ps = fresh_cp_ps;
  s.aged_cp_ps = critical_interval_ps();
  s.vacuous = vacuous();
  for (const int i : vacuous_instances_) {
    s.vacuous_instances.push_back(module_.instances()[static_cast<std::size_t>(i)].name);
  }
  s.blame = blame();
  return s;
}

}  // namespace rw::sta
