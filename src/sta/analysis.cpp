#include "sta/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flow/cancel.hpp"

namespace rw::sta {

namespace {

constexpr int kRise = 0;
constexpr int kFall = 1;

/// Input edges that can cause the given output edge under an arc's sense.
/// Returns a bitmask: bit0 = input rise contributes, bit1 = input fall.
unsigned contributing_input_edges(liberty::TimingSense sense, bool out_rising) {
  switch (sense) {
    case liberty::TimingSense::kPositiveUnate:
      return out_rising ? 0b01U : 0b10U;
    case liberty::TimingSense::kNegativeUnate:
      return out_rising ? 0b10U : 0b01U;
    case liberty::TimingSense::kNonUnate:
      return 0b11U;
  }
  return 0b11U;
}

}  // namespace

ArcEdge lookup_arc_edge(const liberty::TimingArc& arc, bool out_rising, double in_slew_ps,
                        double load_ff) {
  const liberty::TimingTable& table = out_rising ? arc.rise : arc.fall;
  if (table.empty()) {
    throw std::runtime_error("lookup_arc_edge: arc from " + arc.related_pin +
                             " has no table for this output edge");
  }
  ArcEdge e;
  e.delay_ps = table.delay_ps.lookup(in_slew_ps, load_ff);
  e.out_slew_ps = std::max(1.0, table.out_slew_ps.lookup(in_slew_ps, load_ff));
  return e;
}

Sta::Sta(const netlist::Module& module, const liberty::Library& library, StaOptions options)
    : module_(module),
      library_(library),
      options_(options),
      adj_(Adjacency::build(module, library)) {
  const auto n_nets = static_cast<std::size_t>(module.net_count());
  load_ff_.resize(n_nets);
  for (netlist::NetId n = 0; n < module.net_count(); ++n) {
    load_ff_[static_cast<std::size_t>(n)] = net_load_ff(module, library, options_, adj_, n);
  }
  net_timing_.assign(n_nets, NetTiming{});
  propagate();
  compute_endpoints();
  compute_required();
}

void Sta::compute_required() {
  const auto n_nets = static_cast<std::size_t>(module_.net_count());
  required_ps_.assign(2 * n_nets, std::numeric_limits<double>::infinity());
  if (endpoints_.empty()) return;
  const double target = endpoints_.front().cost_ps();
  for (const auto& ep : endpoints_) {
    const auto i = static_cast<std::size_t>(ep.net);
    required_ps_[2 * i + kRise] = std::min(required_ps_[2 * i + kRise], target - ep.setup_ps);
    required_ps_[2 * i + kFall] = std::min(required_ps_[2 * i + kFall], target - ep.setup_ps);
  }
  const auto& instances = module_.instances();
  for (auto it = adj_.comb_topo.rbegin(); it != adj_.comb_topo.rend(); ++it) {
    const auto& inst = instances[static_cast<std::size_t>(*it)];
    const liberty::Cell& cell = library_.at(inst.cell);
    const double load = load_ff_[static_cast<std::size_t>(inst.out)];
    const auto out_i = static_cast<std::size_t>(inst.out);
    const auto input_pins = cell.input_pins();
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const liberty::TimingArc* arc = cell.arc_from(input_pins[p]->name);
      if (arc == nullptr) continue;
      const auto& in_t = net_timing_[static_cast<std::size_t>(inst.fanin[p])];
      const auto in_i = static_cast<std::size_t>(inst.fanin[p]);
      for (const bool out_rising : {true, false}) {
        const liberty::TimingTable& table = out_rising ? arc->rise : arc->fall;
        if (table.empty()) continue;
        const int oe = out_rising ? kRise : kFall;
        if (!std::isfinite(required_ps_[2 * out_i + oe])) continue;
        const unsigned in_edges = contributing_input_edges(arc->sense, out_rising);
        for (int ie : {kRise, kFall}) {
          if ((in_edges & (ie == kRise ? 0b01U : 0b10U)) == 0U) continue;
          if (in_t.arrival_ps[ie] == kNeverArrives) continue;
          const ArcEdge edge = lookup_arc_edge(*arc, out_rising, in_t.slew_ps[ie], load);
          required_ps_[2 * in_i + ie] =
              std::min(required_ps_[2 * in_i + ie], required_ps_[2 * out_i + oe] - edge.delay_ps);
        }
      }
    }
  }
}

double Sta::slack_ps(netlist::NetId net) const {
  const auto i = static_cast<std::size_t>(net);
  const auto& t = net_timing_[i];
  double slack = std::numeric_limits<double>::infinity();
  for (int e : {kRise, kFall}) {
    if (t.arrival_ps[e] == kNeverArrives) continue;
    slack = std::min(slack, required_ps_[2 * i + e] - t.arrival_ps[e]);
  }
  return slack;
}

void Sta::propagate() {
  // Start points: primary inputs (arrival 0, default slew)...
  for (netlist::NetId pi : module_.inputs()) {
    auto& t = net_timing_[static_cast<std::size_t>(pi)];
    for (int e : {kRise, kFall}) {
      t.arrival_ps[e] = 0.0;
      t.slew_ps[e] = options_.input_slew_ps;
    }
  }
  // ...and flop outputs (CK->Q arc at clock slew).
  const auto& instances = module_.instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj_.is_flop[i]) continue;
    const auto& inst = instances[i];
    const liberty::Cell& cell = library_.at(inst.cell);
    const liberty::TimingArc* arc = cell.arc_from("CK");
    if (arc == nullptr) {
      throw std::runtime_error("Sta: flop " + inst.cell + " has no CK arc");
    }
    auto& t = net_timing_[static_cast<std::size_t>(inst.out)];
    const double load = load_ff_[static_cast<std::size_t>(inst.out)];
    for (int e : {kRise, kFall}) {
      const ArcEdge edge = lookup_arc_edge(*arc, e == kRise, options_.input_slew_ps, load);
      t.arrival_ps[e] = edge.delay_ps;
      t.slew_ps[e] = edge.out_slew_ps;
      t.from_instance[e] = -1;  // flop Q is a start point for path tracing
    }
  }

  // Propagate through combinational instances in topological order.
  std::size_t visited = 0;
  for (const int idx : adj_.comb_topo) {
    // Cancellation poll, amortized: large designs make propagate() the
    // longest serial section between parallel regions.
    if ((++visited & 0xFFU) == 0U) flow::throw_if_cancelled();
    const auto& inst = instances[static_cast<std::size_t>(idx)];
    const liberty::Cell& cell = library_.at(inst.cell);
    const double load = load_ff_[static_cast<std::size_t>(inst.out)];
    auto& out_t = net_timing_[static_cast<std::size_t>(inst.out)];
    const auto input_pins = cell.input_pins();

    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const liberty::TimingArc* arc = cell.arc_from(input_pins[p]->name);
      if (arc == nullptr) continue;
      const auto& in_t = net_timing_[static_cast<std::size_t>(inst.fanin[p])];
      for (const bool out_rising : {true, false}) {
        const liberty::TimingTable& table = out_rising ? arc->rise : arc->fall;
        if (table.empty()) continue;
        const unsigned in_edges = contributing_input_edges(arc->sense, out_rising);
        for (int ie : {kRise, kFall}) {
          if ((in_edges & (ie == kRise ? 0b01U : 0b10U)) == 0U) continue;
          if (in_t.arrival_ps[ie] == kNeverArrives) continue;
          const ArcEdge edge = lookup_arc_edge(*arc, out_rising, in_t.slew_ps[ie], load);
          const double arrival = in_t.arrival_ps[ie] + edge.delay_ps;
          const int oe = out_rising ? kRise : kFall;
          if (arrival > out_t.arrival_ps[oe]) {
            out_t.arrival_ps[oe] = arrival;
            out_t.slew_ps[oe] = edge.out_slew_ps;
            out_t.from_instance[oe] = idx;
            out_t.from_pin[oe] = static_cast<int>(p);
            out_t.from_in_rising[oe] = (ie == kRise);
          }
        }
      }
    }
  }
}

void Sta::compute_endpoints() {
  const auto add_endpoint = [&](netlist::NetId net, bool is_flop_d, int flop_inst,
                                double setup_ps) {
    const auto& t = net_timing_[static_cast<std::size_t>(net)];
    if (t.arrival_ps[kRise] == kNeverArrives && t.arrival_ps[kFall] == kNeverArrives) return;
    Endpoint ep;
    ep.net = net;
    ep.is_flop_d = is_flop_d;
    ep.flop_instance = flop_inst;
    ep.setup_ps = setup_ps;
    ep.rising = t.arrival_ps[kRise] >= t.arrival_ps[kFall];
    ep.arrival_ps = std::max(t.arrival_ps[kRise], t.arrival_ps[kFall]);
    endpoints_.push_back(ep);
  };

  for (netlist::NetId po : module_.outputs()) add_endpoint(po, false, -1, 0.0);
  const auto& instances = module_.instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj_.is_flop[i]) continue;
    const liberty::Cell& cell = library_.at(instances[i].cell);
    // Pin order of DFF is {D, CK}; endpoint is the D net.
    add_endpoint(instances[i].fanin[0], true, static_cast<int>(i), cell.setup_ps);
  }
  std::sort(endpoints_.begin(), endpoints_.end(),
            [](const Endpoint& a, const Endpoint& b) { return a.cost_ps() > b.cost_ps(); });
}

const NetTiming& Sta::timing(netlist::NetId net) const {
  return net_timing_[static_cast<std::size_t>(net)];
}

double Sta::load_ff(netlist::NetId net) const { return load_ff_[static_cast<std::size_t>(net)]; }

double Sta::worst_arrival_ps(netlist::NetId net) const {
  const auto& t = net_timing_[static_cast<std::size_t>(net)];
  return std::max(t.arrival_ps[kRise], t.arrival_ps[kFall]);
}

double Sta::critical_delay_ps() const {
  if (endpoints_.empty()) throw std::runtime_error("Sta::critical_delay_ps: no endpoints");
  return endpoints_.front().cost_ps();
}

}  // namespace rw::sta
