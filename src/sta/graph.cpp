#include "sta/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace rw::sta {

Adjacency Adjacency::build(const netlist::Module& module, const liberty::Library& library) {
  Adjacency adj;
  const auto n_nets = static_cast<std::size_t>(module.net_count());
  const auto& instances = module.instances();
  adj.net_sinks.assign(n_nets, {});
  adj.is_flop.assign(instances.size(), false);

  std::vector<int> pending(instances.size(), 0);  // un-arrived fanins per comb instance
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& inst = instances[i];
    adj.is_flop[i] = library.at(inst.cell).is_flop;
    for (netlist::NetId f : inst.fanin) {
      adj.net_sinks[static_cast<std::size_t>(f)].push_back(static_cast<int>(i));
    }
  }

  // Kahn levelization over combinational instances. A net is "ready" when it
  // is a PI, a flop output, or its combinational driver has been ordered.
  std::vector<bool> net_ready(n_nets, false);
  for (netlist::NetId n = 0; n < module.net_count(); ++n) {
    const int drv = module.driver(n);
    if (drv == -1 || adj.is_flop[static_cast<std::size_t>(drv)]) {
      net_ready[static_cast<std::size_t>(n)] = true;
    }
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (adj.is_flop[i]) continue;
    for (netlist::NetId f : instances[i].fanin) {
      if (!net_ready[static_cast<std::size_t>(f)]) ++pending[i];
    }
  }

  std::vector<int> queue;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj.is_flop[i] && pending[i] == 0) queue.push_back(static_cast<int>(i));
  }
  while (!queue.empty()) {
    const int i = queue.back();
    queue.pop_back();
    adj.comb_topo.push_back(i);
    const netlist::NetId out = instances[static_cast<std::size_t>(i)].out;
    net_ready[static_cast<std::size_t>(out)] = true;
    for (const int sink : adj.net_sinks[static_cast<std::size_t>(out)]) {
      if (adj.is_flop[static_cast<std::size_t>(sink)]) continue;
      // A sink may reference the net on several pins; decrement per pin.
      const auto& fanin = instances[static_cast<std::size_t>(sink)].fanin;
      const auto uses =
          static_cast<int>(std::count(fanin.begin(), fanin.end(), out));
      pending[static_cast<std::size_t>(sink)] -= uses;
      if (pending[static_cast<std::size_t>(sink)] == 0) queue.push_back(sink);
    }
  }

  std::size_t comb_count = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!adj.is_flop[i]) ++comb_count;
  }
  if (adj.comb_topo.size() != comb_count) {
    throw std::runtime_error("Adjacency::build: combinational loop in module " + module.name());
  }
  return adj;
}

double net_load_ff(const netlist::Module& module, const liberty::Library& library,
                   const StaOptions& options, const Adjacency& adj, netlist::NetId net) {
  double load = 0.0;
  int fanout = 0;
  for (const int sink : adj.net_sinks[static_cast<std::size_t>(net)]) {
    const auto& inst = module.instances()[static_cast<std::size_t>(sink)];
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      if (inst.fanin[p] == net) {
        load += input_pins[p]->cap_ff;
        ++fanout;
      }
    }
  }
  for (netlist::NetId po : module.outputs()) {
    if (po == net) {
      load += options.po_load_ff;
      ++fanout;
    }
  }
  load += options.wire_cap_per_fanout_ff * fanout;
  return load;
}

}  // namespace rw::sta
