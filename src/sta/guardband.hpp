#pragma once

/// \file guardband.hpp
/// Guardband computation (Section 4.2): the timing margin that must be added
/// on top of the fresh critical-path delay so the circuit still meets timing
/// after aging:   T(lifetime) = T(0) + TG.

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/graph.hpp"

namespace rw::sta {

struct GuardbandReport {
  double fresh_cp_ps = 0.0;  ///< critical delay against the fresh library
  double aged_cp_ps = 0.0;   ///< critical delay against the degradation-aware library
  [[nodiscard]] double guardband_ps() const { return aged_cp_ps - fresh_cp_ps; }
  [[nodiscard]] double guardband_pct() const {
    return fresh_cp_ps > 0.0 ? 100.0 * guardband_ps() / fresh_cp_ps : 0.0;
  }
  /// Achievable frequencies (GHz) before/after aging.
  [[nodiscard]] double fresh_freq_ghz() const { return 1000.0 / fresh_cp_ps; }
  [[nodiscard]] double aged_freq_ghz() const { return 1000.0 / aged_cp_ps; }
};

/// STA of the same netlist against fresh and aged libraries (static aging
/// stress flow of Fig. 4(b)). Cell names must exist in both libraries.
GuardbandReport estimate_guardband(const netlist::Module& module,
                                   const liberty::Library& fresh_library,
                                   const liberty::Library& aged_library,
                                   const StaOptions& options = {});

}  // namespace rw::sta
