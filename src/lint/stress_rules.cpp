#include <memory>
#include <string>
#include <vector>

#include "aging/scenario.hpp"
#include "lint/rules.hpp"
#include "stress/analyzer.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

/// SP001 / SP002 / SP003 from one static duty-cycle analysis pass.
///
/// The rule is a *cross-check*: the stress analyzer proves workload-
/// independent bounds, and any artifact that contradicts them — a simulated
/// annotation outside the proven interval, logic that can never toggle —
/// indicates a bug upstream (simulator warm-up, duty-cycle extraction,
/// quantization, or the RTL itself). It deliberately stays silent on
/// structurally broken modules: cycles, unknown cells, arity mismatches and
/// out-of-range λ indices belong to NL001/NL005/NL006/AN001, and the
/// analysis could not run soundly on top of them anyway.
class StressRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.stress"; }
  [[nodiscard]] std::string_view description() const override {
    return "annotations and net activity respect statically proven duty-cycle bounds";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr || subject.library == nullptr) return;
    const netlist::Module& m = *subject.module;
    const liberty::Library& lib = *subject.library;
    if (!m.check().empty()) return;
    for (const auto& inst : m.instances()) {
      const ResolvedCell r = resolve_cell(lib, inst.cell);
      if (r.cell == nullptr) return;
      if (inst.fanin.size() != static_cast<std::size_t>(r.cell->n_inputs())) return;
      if (r.indexed && (r.lambda_p < 0.0 || r.lambda_p > 1.0 || r.lambda_n < 0.0 ||
                        r.lambda_n > 1.0)) {
        return;
      }
    }

    const stress::AnalyzeOptions options =
        subject.stress != nullptr ? *subject.stress : stress::AnalyzeOptions{};
    stress::StressReport report;
    try {
      report = stress::analyze(m, lib, options);
    } catch (const std::exception&) {
      return;  // structural problems are other rules' findings
    }

    // SP001 — a simulated/annotated λ index that escapes the proven bounds.
    // Quantization is monotone, so any honest annotation q = quantize(λ) with
    // λ ∈ [lo, hi] satisfies quantize(lo) ≤ q ≤ quantize(hi).
    const double step = subject.lambda_step;
    for (std::size_t i = 0; i < m.instances().size(); ++i) {
      const auto& inst = m.instances()[i];
      const ResolvedCell r = resolve_cell(lib, inst.cell);
      if (!r.indexed) continue;
      const stress::InstanceBounds& b = report.instances[i];
      const auto check = [&](const char* which, double q, const stress::Interval& bound) {
        const double qlo = aging::quantize_lambda(bound.lo, step);
        const double qhi = aging::quantize_lambda(bound.hi, step);
        // The annotation is re-parsed from the cell-name suffix while the
        // bound is quantized arithmetically; a grid-relative epsilon absorbs
        // the representation gap (0.30 parsed vs 3 * 0.1 computed).
        const double eps = step * 1e-6;
        if (q >= qlo - eps && q <= qhi + eps) return;
        out.push_back(Diagnostic{
            rules::kLambdaOutsideBounds, Severity::kError, m.name() + ":inst " + inst.name,
            std::string("annotated ") + which + " = " + util::format_lambda(q) +
                " escapes the proven bound " + bound.str() + " (quantized [" +
                util::format_lambda(qlo) + ", " + util::format_lambda(qhi) + "])",
            "the annotation contradicts a workload-independent bound; check the "
            "simulator warm-up, duty-cycle extraction, and quantization"});
      };
      check("λn", r.lambda_n, b.lambda_n);
      check("λp", r.lambda_p, b.lambda_p);
    }

    // SP002 — nets proven constant under the declared input model. With the
    // default all-[0,1] model this only fires for genuinely dead logic.
    for (std::size_t net = 0; net < report.net.size(); ++net) {
      const stress::Interval& v = report.net[net];
      if (!v.is_constant()) continue;
      const auto id = static_cast<netlist::NetId>(net);
      if (m.driver(id) < 0) continue;  // a declared-constant PI is an assumption, not a finding
      out.push_back(Diagnostic{
          rules::kProvenConstant, Severity::kWarning,
          m.name() + ":net " + m.net_name(id),
          "net is proven stuck at " + std::string(v.lo == 0.0 ? "0" : "1") +
              " for every workload admitted by the input model",
          "remove the stuck logic, or widen the primary-input interval if it "
          "should toggle"});
    }

    // SP003 — the caller declared a non-trivial input model, yet widening
    // left an instance with the vacuous [0,1] bound. Advisory only.
    const bool declared = [&] {
      if (subject.stress == nullptr) return false;
      if (options.default_input != stress::Interval::full()) return true;
      for (const auto& [name, v] : options.input_intervals) {
        (void)name;
        if (v != stress::Interval::full()) return true;
      }
      return false;
    }();
    if (declared) {
      for (std::size_t i = 0; i < m.instances().size(); ++i) {
        const stress::InstanceBounds& b = report.instances[i];
        if (b.lambda_n != stress::Interval::full()) continue;
        out.push_back(Diagnostic{
            rules::kVacuousBound, Severity::kInfo,
            m.name() + ":inst " + m.instances()[i].name,
            "static λ bound is the vacuous [0,1] despite declared input intervals",
            "reconvergent-fanout widening discarded the information; tighten or "
            "decorrelate the inputs feeding this cone"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> stress_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<StressRule>());
  return rules;
}

}  // namespace rw::lint
