#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "util/io.hpp"
#include "util/proc_lease.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

namespace fs = std::filesystem;

/// SV001 over the characterization service's disk-cache root.
///
/// The serve data plane leaves two kinds of droppings behind when processes
/// die uncleanly: `*.lease` files (cross-process dedup leader election; a
/// SIGKILLed leader's lease survives until the next contender breaks it) and
/// `*.sock` files (a daemon's listening socket; a SIGKILLed daemon cannot
/// unlink it). Both are harmless to correctness — leases are broken as stale
/// by design and `listen_unix` rebinds over dead sockets — but they are the
/// forensic signature of a crash, so the linter surfaces them as warnings
/// with the evidence (dead pid, expired TTL, refused connection) spelled
/// out. Live leases and live sockets are NOT flagged.
class ServeArtifactsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "serve.artifacts"; }
  [[nodiscard]] std::string_view description() const override {
    return "serve cache holds no stale worker leases or dead daemon sockets";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.cache_dir.empty()) return;
    std::error_code ec;
    if (!fs::is_directory(subject.cache_dir, ec)) {
      out.push_back(Diagnostic{rules::kStaleServeArtifact, Severity::kWarning,
                               subject.cache_dir, "cache directory does not exist",
                               "point --cache-dir at a characterization cache root"});
      return;
    }
    // Directory iteration order is unspecified; sort for a deterministic
    // report (the linter's contract).
    std::vector<std::string> leases;
    std::vector<std::string> sockets;
    for (fs::recursive_directory_iterator it(subject.cache_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      const std::string path = it->path().string();
      if (it->is_regular_file(ec) && path.ends_with(".lease")) leases.push_back(path);
      if (it->is_socket(ec) && path.ends_with(".sock")) sockets.push_back(path);
    }
    std::sort(leases.begin(), leases.end());
    std::sort(sockets.begin(), sockets.end());

    for (const std::string& path : leases) {
      const util::LeaseObservation obs = util::observe_lease(path);
      if (!util::lease_is_stale(obs)) continue;  // absent or live holder
      std::string why;
      if (!obs.parsed) {
        why = "unparsable (torn) lease file";
      } else if (!obs.pid_alive) {
        why = "holder pid " + std::to_string(obs.pid) + " is dead";
      } else {
        why = "TTL expired (age " + util::format_fixed(obs.age_ms, 0) + " ms > " +
              util::format_fixed(obs.ttl_ms, 0) + " ms)";
      }
      out.push_back(Diagnostic{rules::kStaleServeArtifact, Severity::kWarning, path,
                               "stale characterization lease: " + why,
                               "safe to delete; the next leader breaks it automatically"});
    }
    for (const std::string& path : sockets) {
      const int fd = util::io::connect_unix(path);
      if (fd >= 0) {
        ::close(fd);  // a live daemon answers; nothing to report
        continue;
      }
      out.push_back(Diagnostic{rules::kStaleServeArtifact, Severity::kWarning, path,
                               "socket file refuses connections (no live daemon bound)",
                               "safe to delete; rwserved rebinds over dead sockets on start"});
    }
  }
};

/// SV002 over the same cache root: debris of the GC protocol (gc.hpp).
///
/// A healthy entry is the pair `<cell>.lib` + `<cell>.lib.stamp`; eviction
/// writes `<cell>.lib.tomb`, removes both, then removes the tombstone. So
/// three shapes are forensic evidence:
///   * a `.lib.tomb` — a sweep was killed mid-eviction (the next sweep, or
///     `rwserved --gc`, completes it; until then the entry must not be
///     trusted);
///   * a `.lib.stamp` without its `.lib` — an orphan sidecar (crash between
///     eviction steps 2 and 3, or a hand-deleted entry);
///   * a `.lib` without its `.lib.stamp` — an unstamped entry (pre-GC cache
///     or a crash right after publish); GC falls back to the lib's own
///     mtime, so idle aging still works, just without usage refresh.
/// All three are correctness-harmless and severity kWarning.
class GcArtifactsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "serve.gc_artifacts"; }
  [[nodiscard]] std::string_view description() const override {
    return "serve cache holds no interrupted-GC tombstones or mismatched usage stamps";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.cache_dir.empty()) return;
    std::error_code ec;
    if (!fs::is_directory(subject.cache_dir, ec)) return;  // SV001 already reports this
    std::vector<std::string> libs;
    std::vector<std::string> stamps;
    std::vector<std::string> tombs;
    for (fs::recursive_directory_iterator it(subject.cache_dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string path = it->path().string();
      if (path.ends_with(".lib")) libs.push_back(path);
      if (path.ends_with(".lib.stamp")) stamps.push_back(path);
      if (path.ends_with(".lib.tomb")) tombs.push_back(path);
    }
    std::sort(libs.begin(), libs.end());
    std::sort(stamps.begin(), stamps.end());
    std::sort(tombs.begin(), tombs.end());
    const auto have = [](const std::vector<std::string>& sorted, const std::string& path) {
      return std::binary_search(sorted.begin(), sorted.end(), path);
    };

    for (const std::string& path : tombs) {
      out.push_back(Diagnostic{rules::kOrphanGcArtifact, Severity::kWarning, path,
                               "GC tombstone left by an interrupted sweep",
                               "run `rwserved --gc --cache <root>` to complete the eviction"});
    }
    for (const std::string& path : stamps) {
      const std::string lib = path.substr(0, path.size() - 6);  // drop ".stamp"
      if (have(libs, lib)) continue;
      if (have(tombs, lib + ".tomb")) continue;  // the tombstone diag covers it
      out.push_back(Diagnostic{rules::kOrphanGcArtifact, Severity::kWarning, path,
                               "usage stamp without its cache entry (" + lib + " is gone)",
                               "safe to delete; the stamp is recreated on the next publish"});
    }
    for (const std::string& path : libs) {
      if (have(stamps, path + ".stamp")) continue;
      if (have(tombs, path + ".tomb")) continue;
      out.push_back(Diagnostic{rules::kOrphanGcArtifact, Severity::kWarning, path,
                               "cache entry without a usage stamp (GC ages it by file mtime)",
                               "harmless; the next cache hit or publish creates the stamp"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> serve_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ServeArtifactsRule>());
  rules.push_back(std::make_unique<GcArtifactsRule>());
  return rules;
}

}  // namespace rw::lint
