#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "charlib/adaptive.hpp"
#include "lint/rules.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

/// Every (table, name) pair of a cell, for uniform iteration.
struct NamedTable {
  const util::Table2D* table;
  std::string name;     ///< e.g. "arc A cell_rise"
  bool is_slew = false;  ///< transition table (vs propagation delay)
};

std::vector<NamedTable> cell_tables(const liberty::Cell& cell) {
  std::vector<NamedTable> out;
  for (const auto& arc : cell.arcs) {
    const std::string prefix = "arc " + arc.related_pin + " ";
    if (!arc.rise.empty()) {
      out.push_back({&arc.rise.delay_ps, prefix + "cell_rise", false});
      out.push_back({&arc.rise.out_slew_ps, prefix + "rise_transition", true});
    }
    if (!arc.fall.empty()) {
      out.push_back({&arc.fall.delay_ps, prefix + "cell_fall", false});
      out.push_back({&arc.fall.out_slew_ps, prefix + "fall_transition", true});
    }
  }
  return out;
}

std::string cell_loc(const liberty::Library& library, const liberty::Cell& cell) {
  return library.name() + ":" + cell.name;
}

/// LB001: NLDM values must be finite, and slews non-negative — NaN/inf or a
/// negative transition time poisons every downstream interpolation (error).
/// A negative *delay* is only a warning: under the 50%-to-50% measurement
/// convention a gate driven by a very slow edge into a tiny load genuinely
/// crosses before its input does, and real characterized libraries contain
/// such corners.
class NldmValueRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.values"; }
  [[nodiscard]] std::string_view description() const override {
    return "NLDM entries are finite; slews non-negative";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    for (const auto& cell : subject.library->cells()) {
      for (const auto& [table, name, is_slew] : cell_tables(cell)) {
        for (std::size_t i = 0; i < table->x_axis().size(); ++i) {
          for (std::size_t j = 0; j < table->y_axis().size(); ++j) {
            const double v = table->at(i, j);
            if (std::isfinite(v) && v >= 0.0) continue;
            const bool fatal = !std::isfinite(v) || is_slew;
            out.push_back(Diagnostic{
                rules::kNegativeNldm, fatal ? Severity::kError : Severity::kWarning,
                cell_loc(*subject.library, cell) + " " + name,
                "value " + std::to_string(v) + " at (slew " +
                    util::format_fixed(table->x_axis()[i], 2) + " ps, load " +
                    util::format_fixed(table->y_axis()[j], 2) + " fF) is not a valid " +
                    (is_slew ? "slew" : "delay"),
                "re-characterize the arc"});
            break;  // one finding per table row is enough
          }
        }
      }
    }
  }
};

/// LB002: delay and slew must be non-decreasing along the load axis — more
/// capacitance can never make a gate faster. (The slew axis is deliberately
/// not checked: mild non-monotonicity vs input slew occurs in real NLDM.)
class NldmMonotoneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.monotone"; }
  [[nodiscard]] std::string_view description() const override {
    return "NLDM tables are monotone non-decreasing along the load axis";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    for (const auto& cell : subject.library->cells()) {
      for (const auto& [table, name, is_slew] : cell_tables(cell)) {
        for (std::size_t i = 0; i < table->x_axis().size(); ++i) {
          for (std::size_t j = 1; j < table->y_axis().size(); ++j) {
            const double prev = table->at(i, j - 1);
            const double cur = table->at(i, j);
            const double tol = 1e-9 + 1e-6 * std::abs(prev);
            if (cur + tol >= prev) continue;
            out.push_back(Diagnostic{
                rules::kNonMonotoneNldm, Severity::kWarning,
                cell_loc(*subject.library, cell) + " " + name,
                "drops from " + util::format_fixed(prev, 4) + " to " + util::format_fixed(cur, 4) +
                    " ps between loads " + util::format_fixed(table->y_axis()[j - 1], 2) +
                    " and " + util::format_fixed(table->y_axis()[j], 2) + " fF (slew " +
                    util::format_fixed(table->x_axis()[i], 2) + " ps)",
                "re-characterize the arc; check solver convergence"});
            i = table->x_axis().size() - 1;  // one finding per table
            break;
          }
        }
      }
    }
  }
};

/// LB003: every table in the library indexes the same (slew, load) grid —
/// and, when an expected OPC grid is given, exactly that grid.
class GridRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.grid"; }
  [[nodiscard]] std::string_view description() const override {
    return "all NLDM tables share one OPC index grid";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    const std::vector<double>* ref_slews = nullptr;
    const std::vector<double>* ref_loads = nullptr;
    std::string ref_loc = "the OPC grid option";
    if (subject.expected_grid != nullptr) {
      ref_slews = &subject.expected_grid->slews_ps;
      ref_loads = &subject.expected_grid->loads_ff;
    }
    for (const auto& cell : subject.library->cells()) {
      for (const auto& [table, name, is_slew] : cell_tables(cell)) {
        const auto& slews = table->x_axis().points();
        const auto& loads = table->y_axis().points();
        if (ref_slews == nullptr) {
          // No expected grid: the first table becomes the intra-library reference.
          ref_slews = &slews;
          ref_loads = &loads;
          ref_loc = cell.name + " " + name;
          continue;
        }
        if (slews == *ref_slews && loads == *ref_loads) continue;
        out.push_back(Diagnostic{
            rules::kGridMismatch, Severity::kWarning,
            cell_loc(*subject.library, cell) + " " + name,
            "indexes a " + std::to_string(slews.size()) + "x" + std::to_string(loads.size()) +
                " grid that differs from " + ref_loc + " (" +
                std::to_string(ref_slews->size()) + "x" + std::to_string(ref_loads->size()) + ")",
            "characterize every arc on one OPC grid"});
      }
    }
  }
};

/// LB004: arcs must cover the cell function — one arc per input pin for
/// combinational cells, a clocked CK->Q arc for flops — and reference only
/// real input pins.
class ArcCoverageRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.arcs"; }
  [[nodiscard]] std::string_view description() const override {
    return "timing arcs cover every input pin (CK->Q for flops)";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    for (const auto& cell : subject.library->cells()) {
      const std::string loc = cell_loc(*subject.library, cell);
      for (const auto& arc : cell.arcs) {
        const liberty::Pin* pin = cell.find_pin(arc.related_pin);
        if (pin == nullptr || !pin->is_input) {
          out.push_back(Diagnostic{rules::kMissingArc, Severity::kError, loc,
                                   "timing arc references non-input pin " + arc.related_pin,
                                   "fix the arc's related_pin"});
        }
      }
      if (cell.is_flop) {
        bool clocked = false;
        for (const auto& arc : cell.arcs) clocked = clocked || arc.clocked;
        if (!clocked) {
          out.push_back(Diagnostic{rules::kMissingArc, Severity::kError, loc,
                                   "flop has no clocked CK->Q arc",
                                   "characterize the clock-to-output arc"});
        }
        continue;
      }
      for (const auto* pin : cell.input_pins()) {
        const liberty::TimingArc* arc = cell.arc_from(pin->name);
        if (arc == nullptr || (arc->rise.empty() && arc->fall.empty())) {
          out.push_back(Diagnostic{rules::kMissingArc, Severity::kError, loc,
                                   "input pin " + pin->name + " has no timing arc",
                                   "characterize the " + pin->name + "->" + cell.output_pin +
                                       " arc"});
        }
      }
    }
  }
};

/// LB005: an aged cell must never be faster than its fresh counterpart —
/// BTI only degrades. An inversion means the two libraries were
/// characterized inconsistently (grid, solver, or swapped inputs).
class AgingInversionRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.aging"; }
  [[nodiscard]] std::string_view description() const override {
    return "aged delays dominate fresh delays pointwise";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr || subject.fresh == nullptr ||
        subject.library == subject.fresh) {
      return;
    }
    for (const auto& cell : subject.library->cells()) {
      const ResolvedCell r = resolve_cell(*subject.fresh, cell.name);
      const liberty::Cell* fresh = r.cell;
      if (fresh == nullptr || fresh == &cell) continue;
      for (const auto& arc : cell.arcs) {
        const liberty::TimingArc* fresh_arc = fresh->arc_from(arc.related_pin);
        if (fresh_arc == nullptr) continue;
        check_table(subject, cell, arc.related_pin, "cell_rise", arc.rise.delay_ps,
                    fresh_arc->rise.delay_ps, out);
        check_table(subject, cell, arc.related_pin, "cell_fall", arc.fall.delay_ps,
                    fresh_arc->fall.delay_ps, out);
      }
    }
  }

 private:
  static void check_table(const LintSubject& subject, const liberty::Cell& cell,
                          const std::string& pin, const char* which, const util::Table2D& aged,
                          const util::Table2D& fresh, std::vector<Diagnostic>& out) {
    if (aged.values().size() != fresh.values().size()) return;  // LB003 territory
    for (std::size_t k = 0; k < aged.values().size(); ++k) {
      const double f = fresh.values()[k];
      const double a = aged.values()[k];
      const double tol = 1e-9 + 1e-6 * std::abs(f);
      if (a + tol >= f) continue;
      out.push_back(Diagnostic{
          rules::kAgedFasterThanFresh, Severity::kWarning,
          subject.library->name() + ":" + cell.name + " arc " + pin + " " + which,
          "aged delay " + util::format_fixed(a, 4) + " ps < fresh " + util::format_fixed(f, 4) +
              " ps",
          "re-characterize: aging can only slow a cell down"});
      return;  // one finding per table
    }
  }
};

/// LB006: cells carrying `rw_fallback` markers were characterized with OPC
/// points that never converged (even through the solver's retry ladder) and
/// were interpolated from grid neighbors. The library is usable, but those
/// entries are second-class data — STA consumers and sign-off should know.
class FallbackPointRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.fallback"; }
  [[nodiscard]] std::string_view description() const override {
    return "cells with interpolated (rw_fallback) OPC points";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    for (const auto& cell : subject.library->cells()) {
      if (cell.fallbacks.empty()) continue;
      std::string points;
      const std::size_t shown = std::min<std::size_t>(cell.fallbacks.size(), 4);
      for (std::size_t i = 0; i < shown; ++i) {
        const auto& f = cell.fallbacks[i];
        if (i != 0) points += ", ";
        points += f.related_pin + ":" + (f.rising ? "rise" : "fall") + ":(" +
                  std::to_string(f.slew_index) + "," + std::to_string(f.load_index) + ")";
      }
      if (cell.fallbacks.size() > shown) points += ", ...";
      out.push_back(Diagnostic{
          rules::kFallbackPoint, Severity::kWarning, cell_loc(*subject.library, cell),
          std::to_string(cell.fallbacks.size()) +
              " OPC point(s) did not converge and were interpolated from neighbors: " + points,
          "re-characterize with a deeper retry ladder (RW_CHAR_MAX_RETRIES) or accept "
          "interpolated timing"});
    }
  }
};

/// LB007: cells carrying an `rw_interp` marker were served by certified
/// λ-lattice interpolation instead of direct SPICE characterization. That is
/// by design — but a marker whose certified error bound exceeds the flow's
/// interpolation tolerance ($RW_CHAR_INTERP_TOL_PS) means the library was
/// produced under a looser policy than the one now in force, or predates a
/// tolerance tightening; the corner should be refined.
class InterpBoundRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "library.interp_bound"; }
  [[nodiscard]] std::string_view description() const override {
    return "λ-interpolated cells (rw_interp) whose certified bound exceeds the flow tolerance";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.library == nullptr) return;
    const double tol_ps = charlib::AdaptiveGridOptions::from_env().interp_tol_ps;
    for (const auto& cell : subject.library->cells()) {
      if (!cell.interp.has_value()) continue;
      const liberty::InterpMarker& m = *cell.interp;
      if (m.bound_ps <= tol_ps) continue;
      out.push_back(Diagnostic{
          rules::kInterpBound, Severity::kWarning, cell_loc(*subject.library, cell),
          "interpolated from λp [" + util::format_fixed(m.lambda_p_lo, 2) + ", " +
              util::format_fixed(m.lambda_p_hi, 2) + "] × λn [" +
              util::format_fixed(m.lambda_n_lo, 2) + ", " + util::format_fixed(m.lambda_n_hi, 2) +
              "] with certified bound " + util::format_fixed(m.bound_ps, 3) + " ps > tolerance " +
              util::format_fixed(tol_ps, 3) + " ps",
          "characterize this (λp, λn) corner directly, or raise RW_CHAR_INTERP_TOL_PS if the "
          "looser bound is acceptable"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> library_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NldmValueRule>());
  rules.push_back(std::make_unique<NldmMonotoneRule>());
  rules.push_back(std::make_unique<GridRule>());
  rules.push_back(std::make_unique<ArcCoverageRule>());
  rules.push_back(std::make_unique<AgingInversionRule>());
  rules.push_back(std::make_unique<FallbackPointRule>());
  rules.push_back(std::make_unique<InterpBoundRule>());
  return rules;
}

}  // namespace rw::lint
