#pragma once

/// \file rules.hpp
/// Shared helpers for the rule implementations (netlist_rules.cpp,
/// library_rules.cpp, annotation_rules.cpp). The public entry points —
/// `netlist_rules()`, `library_rules()`, `annotation_rules()` — are declared
/// in linter.hpp; this header is internal to src/lint.

#include <string>
#include <string_view>

#include "liberty/library.hpp"
#include "lint/linter.hpp"

namespace rw::lint {

/// Like `util::parse_indexed_cell_name` but without the [0,1] range check:
/// lint must recognize `<base>_<λp>_<λn>` even — especially — when the
/// indices are invalid, so AN001 can report the bad duty cycle instead of
/// NL005 misreading the name as an unknown cell.
bool parse_indexed_name(std::string_view name, std::string& base, double& lambda_p,
                        double& lambda_n);

/// How an instance's cell name maps onto the library.
struct ResolvedCell {
  const liberty::Cell* cell = nullptr;  ///< exact match, or the base cell for indexed names
  bool indexed = false;   ///< name parses as `<base>_<λp>_<λn>`
  bool exact = false;     ///< the library holds the name verbatim
  std::string base;       ///< base cell name (== name when !indexed)
  double lambda_p = 0.0;
  double lambda_n = 0.0;
};

/// Looks up `name` in `library`: exact first, then (for λ-indexed names) the
/// base cell, so pin layout and arity stay checkable even when the indexed
/// corner itself is absent.
ResolvedCell resolve_cell(const liberty::Library& library, const std::string& name);

/// True when the library holds the cell under any name: plain `base` or any
/// λ-indexed `base_*` variant (merged libraries carry only the latter).
bool library_has_variant(const liberty::Library& library, const std::string& base);

}  // namespace rw::lint
