#pragma once

/// \file linter.hpp
/// The rule engine: a `Linter` owns an ordered set of pluggable `Rule`s and
/// runs them over a `LintSubject` (netlist and/or libraries). Independent
/// rules execute in parallel on `util::ThreadPool::shared()`; each rule
/// writes into its own pre-sized slot and results are concatenated in
/// registration order, so the report is identical for any thread count.
///
/// `lint_or_throw` is the flow pre-flight hook: it refuses bad inputs with a
/// `LintError` carrying the full diagnostic list instead of letting them die
/// deep inside STA or characterization.

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <utility>

#include "charlib/opc.hpp"
#include "liberty/library.hpp"
#include "lint/diagnostic.hpp"
#include "netlist/netlist.hpp"
#include "stress/activity_bounds.hpp"
#include "stress/analyzer.hpp"

namespace rw::sta {
struct ProveSummary;  // sta/interval_sta.hpp; kept opaque to the rule engine
}  // namespace rw::sta

namespace rw::lint {

/// Measured per-net toggle rates — the AC001 oracle input. Rates come from a
/// post-warm-up simulation window (`ActivityCollector::toggle_rate`).
struct ActivityMeasurement {
  /// (net name, measured toggles/cycle); names absent from the module are
  /// ignored, as are clock-fed nets (cycle sampling cannot observe
  /// intra-cycle edges).
  std::vector<std::pair<std::string, double>> toggle_rates;
  /// Slack added on both sides of the proven interval before comparing
  /// (absorbs finite-window sampling noise when the model is empirical).
  double slack = 0.0;
};

/// What a lint run looks at. Any pointer may be null; rules skip the parts
/// they need that are absent. Pointees must outlive the `run()` call.
struct LintSubject {
  const netlist::Module* module = nullptr;     ///< netlist + annotation rules
  const liberty::Library* library = nullptr;   ///< resolves cells; library rules
  const liberty::Library* fresh = nullptr;     ///< baseline for aged-vs-fresh checks
  const charlib::OpcGrid* expected_grid = nullptr;  ///< NLDM axes must match when set
  double lambda_step = 0.1;  ///< λ quantization grid for annotation checks
  /// Input model for the SP (static-stress) rules; null runs them with the
  /// default all-[0,1] model (SP003 then stays silent by construction).
  const stress::AnalyzeOptions* stress = nullptr;
  /// Input model for the AC (switching-activity) rules; null runs them on
  /// the default model, with the probability half taken from `stress` when
  /// that is set (AC002/AC003 then stay silent on live logic by
  /// construction).
  const stress::ActivityOptions* activity = nullptr;
  /// Measured toggle rates for the AC001 oracle check; null keeps it silent.
  const ActivityMeasurement* measured_activity = nullptr;
  /// AC003 fires when a net's proven toggle *lower* bound reaches this
  /// (toggles/cycle): every admissible workload stresses the net that hard.
  double activity_hotspot_threshold = 1.0;
  /// Completed interval-STA run for the PV (certified-proof) rules; null
  /// keeps them silent.
  const sta::ProveSummary* prove = nullptr;
  /// Characterization disk-cache root for the SV (serve-hygiene) rules;
  /// empty keeps them silent.
  std::string cache_dir;
};

/// One design rule. Implementations must be state-free (`run` is const and
/// may be invoked concurrently with other rules).
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  virtual void run(const LintSubject& subject, std::vector<Diagnostic>& out) const = 0;
};

/// Rule-set factories (registration order == report order).
std::vector<std::unique_ptr<Rule>> netlist_rules();     ///< NL001..NL006
std::vector<std::unique_ptr<Rule>> library_rules();     ///< LB001..LB007
std::vector<std::unique_ptr<Rule>> annotation_rules();  ///< AN001..AN003
std::vector<std::unique_ptr<Rule>> stress_rules();      ///< SP001..SP003
std::vector<std::unique_ptr<Rule>> activity_rules();    ///< AC001..AC003
std::vector<std::unique_ptr<Rule>> prove_rules();       ///< PV001..PV003
std::vector<std::unique_ptr<Rule>> serve_rules();       ///< SV001..SV002

class Linter {
 public:
  Linter() = default;

  void add_rule(std::unique_ptr<Rule> rule);
  void add_rules(std::vector<std::unique_ptr<Rule>> rules);

  /// Everything: netlist + library + annotation rules.
  static Linter all_rules();
  /// Netlist + annotation rules — the pre-flight set for flows whose library
  /// is generated internally.
  static Linter netlist_linter();
  /// Library rules only — the pre-flight set for caller-provided libraries.
  static Linter library_linter();

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

  /// Runs every rule (in parallel when `parallel`); diagnostics are returned
  /// in rule-registration order, deterministically.
  [[nodiscard]] std::vector<Diagnostic> run(const LintSubject& subject,
                                            bool parallel = true) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Thrown by `lint_or_throw`; `what()` is the full formatted report.
class LintError : public std::runtime_error {
 public:
  explicit LintError(std::vector<Diagnostic> diagnostics);
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Runs `linter` over `subject` and throws `LintError` when any diagnostic
/// reaches `fail_at`. Returns the (possibly non-empty) list otherwise, so
/// callers can still surface warnings.
std::vector<Diagnostic> lint_or_throw(const Linter& linter, const LintSubject& subject,
                                      Severity fail_at = Severity::kError);

/// Minimum severity flow pre-flights *print* (they still fail on errors):
/// parsed from the `RW_LINT_MIN_SEVERITY` environment variable
/// ("info" | "warning" | "error"); defaults to kWarning. Benches set
/// `RW_LINT_MIN_SEVERITY=error` to keep expected warnings off stderr.
Severity min_report_severity();

/// Prints `format()`ed diagnostics at/above `min_report_severity()` to
/// stderr. Returns the number of lines printed.
std::size_t report_diagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace rw::lint
