#include "lint/linter.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/thread_pool.hpp"

namespace rw::lint {

void Linter::add_rule(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }

void Linter::add_rules(std::vector<std::unique_ptr<Rule>> rules) {
  for (auto& r : rules) rules_.push_back(std::move(r));
}

Linter Linter::all_rules() {
  Linter linter;
  linter.add_rules(netlist_rules());
  linter.add_rules(library_rules());
  linter.add_rules(annotation_rules());
  linter.add_rules(stress_rules());
  linter.add_rules(activity_rules());
  linter.add_rules(prove_rules());
  linter.add_rules(serve_rules());
  return linter;
}

Linter Linter::netlist_linter() {
  Linter linter;
  linter.add_rules(netlist_rules());
  linter.add_rules(annotation_rules());
  linter.add_rules(stress_rules());
  linter.add_rules(activity_rules());
  return linter;
}

Linter Linter::library_linter() {
  Linter linter;
  linter.add_rules(library_rules());
  return linter;
}

std::vector<Diagnostic> Linter::run(const LintSubject& subject, bool parallel) const {
  // One slot per rule: workers never share containers, and concatenating the
  // slots in registration order makes the report thread-count independent.
  std::vector<std::vector<Diagnostic>> slots(rules_.size());
  const auto body = [&](std::size_t i) { rules_[i]->run(subject, slots[i]); };
  if (parallel) {
    util::ThreadPool::shared().parallel_for(rules_.size(), body);
  } else {
    for (std::size_t i = 0; i < rules_.size(); ++i) body(i);
  }
  std::vector<Diagnostic> out;
  for (auto& slot : slots) {
    for (auto& d : slot) out.push_back(std::move(d));
  }
  return out;
}

LintError::LintError(std::vector<Diagnostic> diagnostics)
    : std::runtime_error("lint failed:\n" + format_report(diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

std::vector<Diagnostic> lint_or_throw(const Linter& linter, const LintSubject& subject,
                                      Severity fail_at) {
  std::vector<Diagnostic> diagnostics = linter.run(subject);
  if (!diagnostics.empty() && worst_severity(diagnostics) >= fail_at) {
    throw LintError(std::move(diagnostics));
  }
  return diagnostics;
}

Severity min_report_severity() {
  const char* env = std::getenv("RW_LINT_MIN_SEVERITY");
  if (env == nullptr) return Severity::kWarning;
  if (std::strcmp(env, "info") == 0) return Severity::kInfo;
  if (std::strcmp(env, "error") == 0) return Severity::kError;
  return Severity::kWarning;
}

std::size_t report_diagnostics(const std::vector<Diagnostic>& diagnostics) {
  const Severity floor = min_report_severity();
  std::size_t printed = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity < floor) continue;
    std::fprintf(stderr, "%s\n", d.format().c_str());
    ++printed;
  }
  return printed;
}

}  // namespace rw::lint
