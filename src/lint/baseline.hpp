#pragma once

/// \file baseline.hpp
/// Diagnostic baselines: record the current lint findings once, then
/// suppress exact matches on later runs so a legacy design can adopt the
/// linter incrementally — only *new* findings fail the gate.
///
/// A baseline file is line-oriented text: `#` comment lines, then one
/// `<rule>|<location>|<message>` key per finding, sorted and deduplicated.
/// The fix hint is deliberately excluded from the key so hint rewording
/// never invalidates a baseline.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace rw::lint {

/// Stable one-line identity of a diagnostic for baseline matching.
std::string baseline_key(const Diagnostic& diagnostic);

/// Serializes diagnostics as baseline-file text (header + sorted unique keys).
std::string encode_baseline(const std::vector<Diagnostic>& diagnostics);

/// Loads the keys of a baseline file into `keys`. Returns false (leaving
/// `keys` empty) when the file cannot be read.
bool read_baseline(const std::string& path, std::set<std::string>& keys);

/// Removes diagnostics whose key appears in `keys`; returns how many were
/// suppressed. Order of the survivors is preserved.
std::size_t suppress_baselined(std::vector<Diagnostic>& diagnostics,
                               const std::set<std::string>& keys);

}  // namespace rw::lint
