#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

std::string lambda_pair(double lp, double ln) {
  return "(" + util::format_lambda(lp) + ", " + util::format_lambda(ln) + ")";
}

/// AN001 / AN002 / AN003 in one pass over the instances. The three findings
/// are mutually exclusive per instance:
///  * AN001 (error)   — λ index outside [0,1]; such a corner cannot exist, so
///                      no missing-corner report is added on top.
///  * AN002 (error)   — in-range λ index whose `CELL_<λp>_<λn>` variant the
///                      library does not hold (the merged library misses a
///                      corner the netlist uses).
///  * AN003 (warning) — plain cell name in a library that also carries
///                      λ-indexed variants of it: the instance silently times
///                      as fresh while the rest of the design ages.
class AnnotationRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.annotation"; }
  [[nodiscard]] std::string_view description() const override {
    return "λ-indexed instances map onto real merged-library corners";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr || subject.library == nullptr) return;
    const netlist::Module& m = *subject.module;
    const liberty::Library& lib = *subject.library;

    // Bases for which the library carries λ-indexed corners.
    std::set<std::string> indexed_bases;
    {
      std::string base;
      double lp = 0.0;
      double ln = 0.0;
      for (const auto& cell : lib.cells()) {
        if (util::parse_indexed_cell_name(cell.name, base, lp, ln)) indexed_bases.insert(base);
      }
    }

    for (std::size_t i = 0; i < m.instances().size(); ++i) {
      const auto& inst = m.instances()[i];
      const std::string loc = m.name() + ":inst " + inst.name;
      const ResolvedCell r = resolve_cell(lib, inst.cell);
      if (!r.indexed) {
        if (r.exact && indexed_bases.count(inst.cell) != 0) {
          out.push_back(Diagnostic{rules::kUnannotated, Severity::kWarning, loc,
                                   "instance is unannotated although the library carries aged " +
                                       inst.cell + " corners; it will time as fresh",
                                   "annotate the instance's duty cycles or drop the fresh cell"});
        }
        continue;  // plain name absent from the library entirely -> NL005
      }
      const bool p_ok = r.lambda_p >= 0.0 && r.lambda_p <= 1.0;
      const bool n_ok = r.lambda_n >= 0.0 && r.lambda_n <= 1.0;
      if (!p_ok || !n_ok) {
        out.push_back(Diagnostic{
            rules::kDutyOutOfRange, Severity::kError, loc,
            "duty-cycle index " + lambda_pair(r.lambda_p, r.lambda_n) +
                " is outside [0,1]; a stress duty cycle is a probability",
            "fix the duty-cycle extraction (or the annotation step's quantization)"});
        continue;
      }
      // Entirely unknown bases (no plain cell, no corner of it) are NL005's
      // finding, not a missing corner.
      if (!r.exact && (r.cell != nullptr || indexed_bases.count(r.base) != 0)) {
        out.push_back(Diagnostic{
            rules::kMissingCorner, Severity::kError, loc,
            "no cell " + inst.cell + " in library " + lib.name() + ": corner " +
                lambda_pair(r.lambda_p, r.lambda_n) + " of " + r.base + " was never merged",
            "characterize and merge the missing (λp, λn) corner"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> annotation_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<AnnotationRule>());
  return rules;
}

}  // namespace rw::lint
