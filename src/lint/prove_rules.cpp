#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "lint/linter.hpp"
#include "sta/interval_sta.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

/// PV001 / PV002 / PV003 over a completed interval-STA run (rwprove).
///
/// The subject's `prove` summary is the verdict of a *sound* analysis: the
/// aged critical-path delay of every workload admitted by the input model
/// lies inside `aged_cp_ps` — unless the proof is vacuous. The rules turn
/// that verdict into actionable diagnostics:
///
///  - PV001 (error): a candidate guardband sits below the proven upper
///    bound, i.e. some admissible workload can age the circuit past it.
///  - PV002 (warning): the proven interval is wider than the configured
///    slack budget; the message ranks the worst-path arcs by their
///    delay-interval width so refinement effort lands where it pays.
///  - PV003 (error): at least one instance had zero resolvable bracketing
///    corners, so the numeric interval is a fresh-cell proxy, not a proof.
class ProveRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "prove.certified"; }
  [[nodiscard]] std::string_view description() const override {
    return "guardbands and slack budgets hold against the proven aged-delay interval";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.prove == nullptr) return;
    const sta::ProveSummary& s = *subject.prove;
    const std::string where =
        subject.module != nullptr ? subject.module->name() + ":critical path" : "critical path";

    // PV003 — vacuous proof. Emitted first: it invalidates the other two.
    if (s.vacuous) {
      std::string names;
      const std::size_t shown = std::min<std::size_t>(s.vacuous_instances.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        if (i != 0) names += ", ";
        names += s.vacuous_instances[i];
      }
      if (s.vacuous_instances.size() > shown) {
        names += ", +" + std::to_string(s.vacuous_instances.size() - shown) + " more";
      }
      if (names.empty()) names = "(an upstream arc)";
      out.push_back(Diagnostic{
          rules::kVacuousProof, Severity::kError, where,
          "interval " + s.aged_cp_ps.str() +
              " ps proves nothing: zero in-bounds lattice corners for " + names,
          "characterize (or merge) the missing bracketing corners before trusting the bound"});
      return;
    }

    // PV001 — the guardband must cover the proven upper bound. A grid-free
    // epsilon absorbs formatting round-trips of the candidate value.
    if (s.guardband_ps >= 0.0) {
      const double need = s.aged_cp_ps.hi - s.fresh_cp_ps;
      const double eps = 1e-9 * (1.0 + s.aged_cp_ps.hi);
      if (s.guardband_ps < need - eps) {
        out.push_back(Diagnostic{
            rules::kGuardbandUnsound, Severity::kError, where,
            "guardband " + util::format_fixed(s.guardband_ps, 4) +
                " ps is below the proven requirement " + util::format_fixed(need, 4) +
                " ps (aged bound " + s.aged_cp_ps.str() + " ps over fresh " +
                util::format_fixed(s.fresh_cp_ps, 4) + " ps)",
            "raise the guardband above the proven bound, or tighten the input model / λ "
            "lattice"});
      }
    }

    // PV002 — interval width against the slack budget, with per-edge blame.
    if (s.width_budget_ps >= 0.0 && s.aged_cp_ps.width() > s.width_budget_ps) {
      std::string blame;
      const std::size_t shown = std::min<std::size_t>(s.blame.size(), 3);
      for (std::size_t i = 0; i < shown; ++i) {
        const sta::PathBlame& b = s.blame[i];
        if (i != 0) blame += ", ";
        blame += b.instance + "/" + b.pin + " (" + util::format_fixed(b.width_ps, 2) + " ps";
        if (b.interp_ps > 0.0) {
          blame += ", interp " + util::format_fixed(b.interp_ps, 2) + " ps";
        }
        blame += ")";
      }
      if (blame.empty()) blame = "no combinational arcs on the worst path";
      out.push_back(Diagnostic{
          rules::kWideProofInterval, Severity::kWarning, where,
          "proven interval " + s.aged_cp_ps.str() + " ps is " +
              util::format_fixed(s.aged_cp_ps.width(), 4) + " ps wide (budget " +
              util::format_fixed(s.width_budget_ps, 4) + " ps); widest arcs: " + blame,
          "refine the λ corners feeding the blamed arcs or raise the budget"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> prove_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ProveRule>());
  return rules;
}

}  // namespace rw::lint
