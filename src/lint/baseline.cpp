#include "lint/baseline.hpp"

#include <algorithm>
#include <fstream>

namespace rw::lint {

namespace {

/// Keys are one per line; fold any embedded newline so a hostile message
/// cannot smuggle extra baseline entries.
void append_flat(std::string& out, const std::string& text) {
  for (const char c : text) out += (c == '\n' || c == '\r') ? ' ' : c;
}

}  // namespace

std::string baseline_key(const Diagnostic& diagnostic) {
  std::string key;
  append_flat(key, diagnostic.rule_id);
  key += '|';
  append_flat(key, diagnostic.location);
  key += '|';
  append_flat(key, diagnostic.message);
  return key;
}

std::string encode_baseline(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> keys;
  keys.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) keys.push_back(baseline_key(d));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# rwlint baseline: one `rule|location|message` key per accepted finding.\n"
      "# Exact matches are suppressed; regenerate with `rwlint --update-baseline`.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

bool read_baseline(const std::string& path, std::set<std::string>& keys) {
  keys.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    keys.insert(line);
  }
  return true;
}

std::size_t suppress_baselined(std::vector<Diagnostic>& diagnostics,
                               const std::set<std::string>& keys) {
  if (keys.empty()) return 0;
  const std::size_t before = diagnostics.size();
  diagnostics.erase(std::remove_if(diagnostics.begin(), diagnostics.end(),
                                   [&](const Diagnostic& d) {
                                     return keys.count(baseline_key(d)) != 0;
                                   }),
                    diagnostics.end());
  return before - diagnostics.size();
}

}  // namespace rw::lint
