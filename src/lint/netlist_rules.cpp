#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/strings.hpp"

namespace rw::lint {

bool parse_indexed_name(std::string_view name, std::string& base, double& lambda_p,
                        double& lambda_n) {
  // Same `<base>_<num>_<num>` shape as util::parse_indexed_cell_name, minus
  // the [0,1] range check (AN001 exists to report out-of-range indices).
  const auto last = name.rfind('_');
  if (last == std::string_view::npos || last == 0) return false;
  const auto prev = name.rfind('_', last - 1);
  if (prev == std::string_view::npos || prev == 0) return false;
  const std::string lp_str{name.substr(prev + 1, last - prev - 1)};
  const std::string ln_str{name.substr(last + 1)};
  char* end = nullptr;
  const double lp = std::strtod(lp_str.c_str(), &end);
  if (end == lp_str.c_str() || *end != '\0') return false;
  end = nullptr;
  const double ln = std::strtod(ln_str.c_str(), &end);
  if (end == ln_str.c_str() || *end != '\0') return false;
  base = std::string{name.substr(0, prev)};
  lambda_p = lp;
  lambda_n = ln;
  return true;
}

ResolvedCell resolve_cell(const liberty::Library& library, const std::string& name) {
  ResolvedCell r;
  r.base = name;
  r.indexed = parse_indexed_name(name, r.base, r.lambda_p, r.lambda_n);
  r.cell = library.find(name);
  r.exact = r.cell != nullptr;
  if (r.cell == nullptr && r.indexed) r.cell = library.find(r.base);
  return r;
}

bool library_has_variant(const liberty::Library& library, const std::string& base) {
  if (library.find(base) != nullptr) return true;
  std::string other_base;
  double lp = 0.0;
  double ln = 0.0;
  for (const auto& cell : library.cells()) {
    if (util::parse_indexed_cell_name(cell.name, other_base, lp, ln) && other_base == base) {
      return true;
    }
  }
  return false;
}

namespace {

std::string inst_loc(const netlist::Module& module, std::size_t index) {
  return module.name() + ":inst " + module.instances()[index].name;
}

/// True when the instance is a sequential element (flops cut the timing
/// graph). Unresolvable cells are conservatively treated as combinational.
bool is_flop(const LintSubject& subject, const netlist::Instance& inst) {
  if (subject.library == nullptr) return false;
  const ResolvedCell r = resolve_cell(*subject.library, inst.cell);
  return r.cell != nullptr && r.cell->is_flop;
}

/// NL002 / NL003 / NL006(no output): the structural invariants collected by
/// `Module::check()` — one driver per net, no driven primary inputs, every
/// instance output connected.
class StructureRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.structure"; }
  [[nodiscard]] std::string_view description() const override {
    return "every used net has exactly one driver and every instance an output";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr) return;
    for (auto& d : subject.module->check()) out.push_back(std::move(d));
  }
};

/// NL001: combinational cycles. DFS over combinational instances (flops cut
/// the graph); each cycle is reported once, with the instance path.
class CombCycleRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.cycles"; }
  [[nodiscard]] std::string_view description() const override {
    return "the combinational core is acyclic (flops cut the graph)";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr) return;
    const netlist::Module& m = *subject.module;
    const std::size_t n = m.instances().size();

    std::vector<bool> flop(n, false);
    for (std::size_t i = 0; i < n; ++i) flop[i] = is_flop(subject, m.instances()[i]);

    // Sink adjacency over combinational instances only. extra_drivers are
    // not edges — multi-driven nets are NL003's problem, and following them
    // would double-report.
    std::vector<std::vector<int>> sinks_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (flop[i]) continue;
      const auto& fanin = m.instances()[i].fanin;
      for (netlist::NetId f : fanin) {
        const int d = f == netlist::kNoNet ? -1 : m.driver(f);
        if (d >= 0 && !flop[static_cast<std::size_t>(d)]) {
          sinks_of[static_cast<std::size_t>(d)].push_back(static_cast<int>(i));
        }
      }
    }

    // Iterative coloring DFS; when a grey node is re-entered, the stack
    // segment from its first visit is the cycle.
    enum : unsigned char { kWhite, kGrey, kBlack };
    std::vector<unsigned char> color(n, kWhite);
    std::vector<int> stack;        // DFS path (grey nodes, in order)
    std::vector<std::size_t> next; // per path entry: next sink index to try
    for (std::size_t root = 0; root < n; ++root) {
      if (color[root] != kWhite || flop[root]) continue;
      stack.assign(1, static_cast<int>(root));
      next.assign(1, 0);
      color[root] = kGrey;
      while (!stack.empty()) {
        const auto u = static_cast<std::size_t>(stack.back());
        if (next.back() < sinks_of[u].size()) {
          const int v = sinks_of[u][next.back()++];
          const auto vu = static_cast<std::size_t>(v);
          if (color[vu] == kWhite) {
            color[vu] = kGrey;
            stack.push_back(v);
            next.push_back(0);
          } else if (color[vu] == kGrey) {
            report_cycle(m, stack, v, out);
          }
        } else {
          color[u] = kBlack;
          stack.pop_back();
          next.pop_back();
        }
      }
    }
  }

 private:
  static void report_cycle(const netlist::Module& m, const std::vector<int>& stack, int entry,
                           std::vector<Diagnostic>& out) {
    const auto it = std::find(stack.begin(), stack.end(), entry);
    std::string path;
    for (auto p = it; p != stack.end(); ++p) {
      if (!path.empty()) path += " -> ";
      path += m.instances()[static_cast<std::size_t>(*p)].name;
    }
    path += " -> " + m.instances()[static_cast<std::size_t>(entry)].name;
    out.push_back(Diagnostic{rules::kCombCycle, Severity::kError,
                             m.name() + ":inst " + m.instances()[static_cast<std::size_t>(entry)].name,
                             "combinational cycle: " + path,
                             "break the loop with a flop or restructure the logic"});
  }
};

/// NL004: an instance output that feeds nothing and is not a primary output
/// is dead logic (or a forgotten connection).
class DanglingOutputRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.dangling"; }
  [[nodiscard]] std::string_view description() const override {
    return "every instance output reaches a sink or a primary output";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr) return;
    const netlist::Module& m = *subject.module;
    for (std::size_t i = 0; i < m.instances().size(); ++i) {
      const netlist::NetId o = m.instances()[i].out;
      if (o == netlist::kNoNet) continue;  // NL006 (no output) covers this
      if (m.fanout_count(o) == 0) {
        out.push_back(Diagnostic{rules::kDanglingOutput, Severity::kWarning, inst_loc(m, i),
                                 "output net " + m.net_name(o) + " feeds nothing",
                                 "remove the dead instance or connect its output"});
      }
    }
  }
};

/// NL005 + NL006(arity): every instance references a library cell (λ-indexed
/// names resolve through their base; absent *corners* are AN002's finding,
/// not NL005's) and connects exactly the cell's input-pin count.
class CellRefRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.cellrefs"; }
  [[nodiscard]] std::string_view description() const override {
    return "instances reference known cells with matching pin counts";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr || subject.library == nullptr) return;
    const netlist::Module& m = *subject.module;
    for (std::size_t i = 0; i < m.instances().size(); ++i) {
      const auto& inst = m.instances()[i];
      const ResolvedCell r = resolve_cell(*subject.library, inst.cell);
      if (r.cell == nullptr) {
        if (r.indexed && library_has_variant(*subject.library, r.base)) continue;  // -> AN002
        out.push_back(Diagnostic{rules::kUnknownCell, Severity::kError, inst_loc(m, i),
                                 "unknown cell " + inst.cell,
                                 "use a cell from the target library"});
        continue;
      }
      const auto want = static_cast<std::size_t>(r.cell->n_inputs());
      if (inst.fanin.size() != want) {
        out.push_back(Diagnostic{
            rules::kPortArity, Severity::kError, inst_loc(m, i),
            "cell " + r.cell->name + " has " + std::to_string(want) + " input pin(s) but " +
                std::to_string(inst.fanin.size()) + " are connected",
            "connect every input pin exactly once"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> netlist_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<StructureRule>());
  rules.push_back(std::make_unique<CombCycleRule>());
  rules.push_back(std::make_unique<DanglingOutputRule>());
  rules.push_back(std::make_unique<CellRefRule>());
  return rules;
}

}  // namespace rw::lint
