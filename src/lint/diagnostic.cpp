#include "lint/diagnostic.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace rw::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::string out = std::string(to_string(severity)) + "[" + rule_id + "]";
  if (!location.empty()) out += " " + location + ":";
  out += " " + message;
  if (!fix_hint.empty()) out += " (fix: " + fix_hint + ")";
  return out;
}

Severity worst_severity(const std::vector<Diagnostic>& diagnostics) {
  Severity worst = Severity::kInfo;
  for (const auto& d : diagnostics) {
    if (d.severity > worst) worst = d.severity;
  }
  return worst;
}

std::size_t count(const std::vector<Diagnostic>& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string format_report(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.format();
    out += '\n';
  }
  return out;
}

namespace {

using util::append_json_string;

void append_field(std::string& out, const char* key, const std::string& value, bool last = false) {
  append_json_string(out, key);
  out += ':';
  append_json_string(out, value);
  if (!last) out += ',';
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    if (i != 0) out += ',';
    out += '{';
    append_field(out, "rule", d.rule_id);
    append_field(out, "severity", to_string(d.severity));
    append_field(out, "location", d.location);
    append_field(out, "message", d.message);
    append_field(out, "fix_hint", d.fix_hint, /*last=*/true);
    out += '}';
  }
  out += "],\"counts\":{\"error\":" + std::to_string(count(diagnostics, Severity::kError)) +
         ",\"warning\":" + std::to_string(count(diagnostics, Severity::kWarning)) +
         ",\"info\":" + std::to_string(count(diagnostics, Severity::kInfo)) + "},\"worst\":";
  append_json_string(out, to_string(worst_severity(diagnostics)));
  out += '}';
  return out;
}

}  // namespace rw::lint
