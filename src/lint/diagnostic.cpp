#include "lint/diagnostic.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace rw::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::string out = std::string(to_string(severity)) + "[" + rule_id + "]";
  if (!location.empty()) out += " " + location + ":";
  out += " " + message;
  if (!fix_hint.empty()) out += " (fix: " + fix_hint + ")";
  return out;
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {rules::kCombCycle, Severity::kError, "combinational cycle through the listed instances",
       "break the loop with a flop or restructure the logic"},
      {rules::kUndrivenNet, Severity::kError, "net has no driver and is not a primary input",
       "connect a driver or mark the net as an input"},
      {rules::kMultiDrivenNet, Severity::kError, "net has more than one driver (or a driven input)",
       "remove the extra driver; every net has exactly one source"},
      {rules::kDanglingOutput, Severity::kWarning, "instance output feeds no sink and no output port",
       "remove the dead instance or connect its output"},
      {rules::kUnknownCell, Severity::kError, "instance references a cell the library does not hold",
       "fix the cell name or extend the library"},
      {rules::kPortArity, Severity::kError, "instance pin count or connection mismatches the cell",
       "match the fanin list to the cell's input pins, in pin order"},
      {rules::kNegativeNldm, Severity::kError, "NLDM table holds a negative or non-finite value",
       "re-characterize the cell; timing tables must be finite and positive"},
      {rules::kNonMonotoneNldm, Severity::kWarning, "delay/slew not monotone along the load axis",
       "inspect the characterization run for non-converged grid points"},
      {rules::kGridMismatch, Severity::kError, "NLDM axes disagree across arcs or with the OPC grid",
       "characterize every cell on one shared slew/load grid"},
      {rules::kMissingArc, Severity::kError, "input pin has no timing arc to the output",
       "add the missing arc or drop the unused pin"},
      {rules::kAgedFasterThanFresh, Severity::kWarning, "aged delay is below the fresh baseline",
       "check the aging scenario; BTI degradation cannot speed a cell up"},
      {rules::kFallbackPoint, Severity::kWarning, "table entry was interpolated (rw_fallback point)",
       "re-run characterization with a deeper retry ladder to converge the point"},
      {rules::kInterpBound, Severity::kWarning,
       "λ-interpolated cell's certified error bound exceeds the flow tolerance",
       "refine the corner (characterize it directly) or raise RW_CHAR_INTERP_TOL_PS"},
      {rules::kDutyOutOfRange, Severity::kError, "λ index outside [0,1]; a duty cycle is a probability",
       "fix the duty-cycle extraction (or the annotation step's quantization)"},
      {rules::kMissingCorner, Severity::kError, "(λp, λn) corner absent from the merged library",
       "characterize and merge the missing (λp, λn) corner"},
      {rules::kUnannotated, Severity::kWarning, "plain cell amid λ-indexed variants times as fresh",
       "annotate the instance's duty cycles or drop the fresh cell"},
      {rules::kLambdaOutsideBounds, Severity::kError,
       "annotated λ falls outside the statically proven duty-cycle bounds",
       "the simulation/annotation pipeline disagrees with a workload-independent bound; "
       "check duty-cycle extraction, warm-up, and quantization"},
      {rules::kProvenConstant, Severity::kWarning,
       "net is proven stuck at a constant under the declared input model",
       "remove the stuck logic, or widen the primary-input interval if it should toggle"},
      {rules::kVacuousBound, Severity::kInfo,
       "instance λ bound is the full [0,1] despite declared input intervals",
       "reconvergent-fanout widening discarded the information; tighten or decorrelate inputs"},
      {rules::kToggleOutsideBounds, Severity::kError,
       "measured toggle rate falls outside the statically proven activity bounds",
       "the measurement pipeline disagrees with a workload-independent bound; "
       "check the warm-up window, the input model, and the sampling convention"},
      {rules::kProvenQuiet, Severity::kInfo,
       "net is proven to (almost) never toggle under the declared input model",
       "a rejuvenation/clock-gating candidate — or dead logic worth removing"},
      {rules::kActivityHotspot, Severity::kWarning,
       "net's proven toggle lower bound exceeds the activity-hotspot threshold",
       "every admissible workload stresses this net (EM/HCI risk); resize or "
       "restructure the blamed driver, or relax the input model"},
      {rules::kFlowStaleArtifact, Severity::kWarning,
       "flow manifest references a missing or stale stage artifact",
       "delete the flow directory (or the offending stage file) so the stage recomputes"},
      {rules::kGuardbandUnsound, Severity::kError,
       "guardband lies below the proven aged-delay upper bound",
       "raise the guardband above the proven bound, or tighten the input model / λ lattice"},
      {rules::kWideProofInterval, Severity::kWarning,
       "proven delay interval is wider than the slack budget",
       "refine the λ corners feeding the blamed arcs (listed widest first) or raise the budget"},
      {rules::kVacuousProof, Severity::kError,
       "proof is vacuous: an instance is missing in-bounds bracketing lattice corners",
       "characterize (or merge) the missing bracketing corners before trusting the bound"},
      {rules::kStaleServeArtifact, Severity::kWarning,
       "serve cache holds a stale worker lease or a dead daemon's socket file",
       "safe to delete; a stale lease is also broken automatically by the next leader"},
      {rules::kOrphanGcArtifact, Severity::kWarning,
       "serve cache holds an interrupted-GC tombstone or a mismatched usage-stamp sidecar",
       "run `rwserved --gc` to complete interrupted sweeps; orphan stamps are safe to delete"},
      {"IO001", Severity::kError, "input file could not be read or parsed",
       "check the path and the file format"},
  };
  return catalog;
}

const RuleInfo* find_rule_info(std::string_view id) {
  for (const RuleInfo& info : rule_catalog()) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

Severity worst_severity(const std::vector<Diagnostic>& diagnostics) {
  Severity worst = Severity::kInfo;
  for (const auto& d : diagnostics) {
    if (d.severity > worst) worst = d.severity;
  }
  return worst;
}

std::size_t count(const std::vector<Diagnostic>& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string format_report(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.format();
    out += '\n';
  }
  return out;
}

namespace {

using util::append_json_string;

void append_field(std::string& out, const char* key, const std::string& value, bool last = false) {
  append_json_string(out, key);
  out += ':';
  append_json_string(out, value);
  if (!last) out += ',';
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    if (i != 0) out += ',';
    out += '{';
    append_field(out, "rule", d.rule_id);
    append_field(out, "severity", to_string(d.severity));
    append_field(out, "location", d.location);
    append_field(out, "message", d.message);
    append_field(out, "fix_hint", d.fix_hint, /*last=*/true);
    out += '}';
  }
  out += "],\"counts\":{\"error\":" + std::to_string(count(diagnostics, Severity::kError)) +
         ",\"warning\":" + std::to_string(count(diagnostics, Severity::kWarning)) +
         ",\"info\":" + std::to_string(count(diagnostics, Severity::kInfo)) + "},\"worst\":";
  append_json_string(out, to_string(worst_severity(diagnostics)));
  out += '}';
  return out;
}

}  // namespace rw::lint
