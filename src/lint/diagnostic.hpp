#pragma once

/// \file diagnostic.hpp
/// The diagnostic currency of the static-analysis subsystem: every design
/// rule emits `Diagnostic` records (rule id, severity, location, message,
/// optional fix hint), and every consumer — the `rwlint` CLI, the flow
/// pre-flight hooks, `Module::check()` — renders or filters the same type.
/// This header is dependency-free on purpose so low-level modules (e.g.
/// `netlist`) can produce diagnostics without pulling in the rule engine.

#include <string>
#include <string_view>
#include <vector>

namespace rw::lint {

enum class Severity {
  kInfo,     ///< advisory; never fails a run
  kWarning,  ///< suspicious but the flow can proceed
  kError,    ///< the artifact is unusable; flows must refuse it
};

const char* to_string(Severity severity);

/// One finding. `location` is free-form but conventionally
/// "<artifact>:<object>" (e.g. "top:inst u3", "lib:NAND2_X1 arc A").
struct Diagnostic {
  std::string rule_id;  ///< stable id, e.g. "NL001"
  Severity severity = Severity::kError;
  std::string location;
  std::string message;
  std::string fix_hint;  ///< optional "how to repair" guidance

  /// "error[NL001] top:u3: combinational cycle ... (fix: ...)"
  [[nodiscard]] std::string format() const;
};

/// Stable rule-id catalog. Netlist structure ids are also emitted by
/// `netlist::Module::check()`, which cannot depend on the rule engine.
namespace rules {
inline constexpr const char* kCombCycle = "NL001";      ///< combinational cycle
inline constexpr const char* kUndrivenNet = "NL002";    ///< floating/undriven net
inline constexpr const char* kMultiDrivenNet = "NL003"; ///< >1 driver (or driven primary input)
inline constexpr const char* kDanglingOutput = "NL004"; ///< instance output feeds nothing
inline constexpr const char* kUnknownCell = "NL005";    ///< cell not in the library
inline constexpr const char* kPortArity = "NL006";      ///< pin count / connection mismatch
inline constexpr const char* kNegativeNldm = "LB001";   ///< negative or non-finite table value
inline constexpr const char* kNonMonotoneNldm = "LB002"; ///< delay/slew not monotone in load
inline constexpr const char* kGridMismatch = "LB003";   ///< NLDM axes disagree (or != OPC grid)
inline constexpr const char* kMissingArc = "LB004";     ///< input pin without a timing arc
inline constexpr const char* kAgedFasterThanFresh = "LB005"; ///< aged delay < fresh delay
inline constexpr const char* kFallbackPoint = "LB006";  ///< interpolated (rw_fallback) OPC point
inline constexpr const char* kInterpBound = "LB007";    ///< rw_interp bound exceeds flow tolerance
inline constexpr const char* kDutyOutOfRange = "AN001"; ///< λ index outside [0,1]
inline constexpr const char* kMissingCorner = "AN002";  ///< (λp,λn) cell absent from library
inline constexpr const char* kUnannotated = "AN003";    ///< plain cell amid λ-indexed library
inline constexpr const char* kLambdaOutsideBounds = "SP001"; ///< annotated λ outside proven bounds
inline constexpr const char* kProvenConstant = "SP002"; ///< net proven stuck at 0/1
inline constexpr const char* kVacuousBound = "SP003";   ///< declared inputs, yet bound is [0,1]
inline constexpr const char* kToggleOutsideBounds = "AC001"; ///< measured toggle rate outside proven bounds
inline constexpr const char* kProvenQuiet = "AC002";    ///< net proven to (almost) never toggle
inline constexpr const char* kActivityHotspot = "AC003"; ///< toggle lower bound above the hotspot threshold
inline constexpr const char* kFlowStaleArtifact = "FL001"; ///< flow manifest references missing/stale artifact
inline constexpr const char* kGuardbandUnsound = "PV001"; ///< guardband below the proven upper bound
inline constexpr const char* kWideProofInterval = "PV002"; ///< proven interval wider than the slack budget
inline constexpr const char* kVacuousProof = "PV003";   ///< missing in-bounds bracketing corners
inline constexpr const char* kStaleServeArtifact = "SV001"; ///< stale lease/socket in the serve cache
inline constexpr const char* kOrphanGcArtifact = "SV002"; ///< orphaned GC tombstone or usage-stamp sidecar
}  // namespace rules

/// One entry of the stable rule catalog (`rwlint --explain`, README table).
struct RuleInfo {
  const char* id;
  Severity severity;   ///< the severity the rule emits at (its worst, if mixed)
  const char* summary;
  const char* fix_hint;
};

/// Every rule id the toolchain can emit, in catalog order (NL, LB, AN, SP,
/// AC, FL, PV, SV, then CLI-level IO001). Descriptions and hints are the
/// canonical wording.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog entry for `id`, or nullptr for unknown ids.
const RuleInfo* find_rule_info(std::string_view id);

/// Highest severity present (kInfo when empty).
Severity worst_severity(const std::vector<Diagnostic>& diagnostics);

/// Number of diagnostics at exactly `severity`.
std::size_t count(const std::vector<Diagnostic>& diagnostics, Severity severity);

/// One line per diagnostic, `format()`ed.
std::string format_report(const std::vector<Diagnostic>& diagnostics);

/// JSON for tooling: {"diagnostics":[...],"counts":{...},"worst":"..."}.
/// Stable field order; strings are escaped per RFC 8259.
std::string to_json(const std::vector<Diagnostic>& diagnostics);

}  // namespace rw::lint
