#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "stress/activity_bounds.hpp"
#include "util/strings.hpp"

namespace rw::lint {

namespace {

/// AC001 / AC002 / AC003 from one switching-activity analysis pass.
///
/// Mirrors the SP rule's philosophy: the analysis proves workload-
/// independent toggle bounds, so a measured rate outside them (AC001) is a
/// pipeline bug, a proven-quiet net (AC002) is a rejuvenation/clock-gating
/// candidate, and a proven-hot net (AC003) is an EM/HCI risk no workload can
/// avoid. Stays silent on structurally broken modules — those belong to the
/// NL/AN rules, and the analysis could not run soundly on them anyway.
class ActivityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "netlist.activity"; }
  [[nodiscard]] std::string_view description() const override {
    return "measured and proven switching activity agree; quiet nets and hotspots reported";
  }
  void run(const LintSubject& subject, std::vector<Diagnostic>& out) const override {
    if (subject.module == nullptr || subject.library == nullptr) return;
    const netlist::Module& m = *subject.module;
    const liberty::Library& lib = *subject.library;
    if (!m.check().empty()) return;
    for (const auto& inst : m.instances()) {
      const ResolvedCell r = resolve_cell(lib, inst.cell);
      if (r.cell == nullptr) return;
      if (inst.fanin.size() != static_cast<std::size_t>(r.cell->n_inputs())) return;
      if (r.indexed && (r.lambda_p < 0.0 || r.lambda_p > 1.0 || r.lambda_n < 0.0 ||
                        r.lambda_n > 1.0)) {
        return;
      }
    }

    stress::ActivityOptions options;
    if (subject.activity != nullptr) {
      options = *subject.activity;
    } else if (subject.stress != nullptr) {
      options.probability = *subject.stress;
    }
    stress::ActivityReport report;
    try {
      report = stress::analyze_activity(m, lib, options);
    } catch (const std::exception&) {
      return;  // structural problems are other rules' findings
    }
    constexpr double kEps = 1e-12;

    // AC001 — a measured toggle rate that escapes the proven bounds. Clock-
    // fed nets are skipped: their toggles are intra-cycle and the sampled
    // measurement convention cannot observe them.
    if (subject.measured_activity != nullptr) {
      for (const auto& [name, rate] : subject.measured_activity->toggle_rates) {
        const netlist::NetId id = m.find_net(name);
        if (id == netlist::kNoNet) continue;
        const auto net = static_cast<std::size_t>(id);
        if (report.clock_fed[net] != 0) continue;
        const stress::Interval& d = report.density[net];
        const double slack = subject.measured_activity->slack + kEps;
        if (rate >= d.lo - slack && rate <= d.hi + slack) continue;
        out.push_back(Diagnostic{
            rules::kToggleOutsideBounds, Severity::kError, m.name() + ":net " + name,
            "measured toggle rate " + util::format_fixed(rate, 6) +
                " escapes the proven activity bound " + d.str(),
            "the measurement contradicts a workload-independent bound; check "
            "the warm-up window, the declared input model, and the sampling "
            "convention"});
      }
    }

    // AC002 — driven nets proven to never toggle. Proven-*constant* nets are
    // SP002's finding; this advisory covers the remainder (e.g. a frozen but
    // unknown value), the rejuvenation/clock-gating candidates.
    for (std::size_t net = 0; net < report.density.size(); ++net) {
      const auto id = static_cast<netlist::NetId>(net);
      if (m.driver(id) < 0 || report.clock_fed[net] != 0) continue;
      if (report.density[net].hi > 1e-9) continue;
      if (report.probability.net[net].is_constant()) continue;
      out.push_back(Diagnostic{
          rules::kProvenQuiet, Severity::kInfo, m.name() + ":net " + m.net_name(id),
          "net is proven to never toggle under the declared input model",
          "a rejuvenation/clock-gating candidate — or dead logic worth removing"});
    }

    // AC003 — nets whose toggle *lower* bound clears the hotspot threshold:
    // every admissible workload keeps them switching. Blame the driver's
    // most active input pin so the finding is actionable.
    for (std::size_t net = 0; net < report.density.size(); ++net) {
      const auto id = static_cast<netlist::NetId>(net);
      const int drv = m.driver(id);
      if (drv < 0) continue;
      const stress::Interval& d = report.density[net];
      if (d.lo < subject.activity_hotspot_threshold - kEps) continue;
      const auto& inst = m.instances()[static_cast<std::size_t>(drv)];
      std::string blame = "no fanin";
      double blame_hi = -1.0;
      for (const netlist::NetId f : inst.fanin) {
        if (f == netlist::kNoNet) continue;
        const stress::Interval& fd = report.density[static_cast<std::size_t>(f)];
        if (fd.hi > blame_hi) {
          blame_hi = fd.hi;
          blame = "pin net " + m.net_name(f) + " toggling in " + fd.str();
        }
      }
      out.push_back(Diagnostic{
          rules::kActivityHotspot, Severity::kWarning, m.name() + ":net " + m.net_name(id),
          "proven toggle lower bound " + util::format_fixed(d.lo, 6) +
              " exceeds the hotspot threshold " +
              util::format_fixed(subject.activity_hotspot_threshold, 6) +
              " on instance " + inst.name + " (blame: " + blame + ")",
          "every admissible workload stresses this net (EM/HCI risk); resize "
          "or restructure the driver, or relax the input model"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> activity_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ActivityRule>());
  return rules;
}

}  // namespace rw::lint
