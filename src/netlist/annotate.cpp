#include "netlist/annotate.hpp"

#include <algorithm>
#include <stdexcept>

#include "aging/scenario.hpp"
#include "util/strings.hpp"

namespace rw::netlist {

std::vector<std::pair<double, double>> annotate_with_duty_cycles(
    Module& module, const std::vector<InstanceDuty>& duties, double lambda_step) {
  if (duties.size() != module.instances().size()) {
    throw std::invalid_argument("annotate_with_duty_cycles: duty count mismatch");
  }
  std::vector<std::pair<double, double>> used;
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const double lp = aging::quantize_lambda(duties[i].lambda_p, lambda_step);
    const double ln = aging::quantize_lambda(duties[i].lambda_n, lambda_step);
    auto& inst = module.instances()[i];
    inst.cell = util::indexed_cell_name(inst.cell, lp, ln);
    const auto pair = std::make_pair(lp, ln);
    if (std::find(used.begin(), used.end(), pair) == used.end()) used.push_back(pair);
  }
  return used;
}

}  // namespace rw::netlist
