#include "netlist/builder.hpp"

#include <stdexcept>

namespace rw::netlist {

NetlistBuilder::NetlistBuilder(Module& module, const liberty::Library& library)
    : module_(module), library_(library) {}

NetId NetlistBuilder::gate(const std::string& cell, const std::vector<NetId>& fanin) {
  const liberty::Cell& c = library_.at(cell);
  if (static_cast<int>(fanin.size()) != c.n_inputs()) {
    throw std::invalid_argument("NetlistBuilder::gate: " + cell + " expects " +
                                std::to_string(c.n_inputs()) + " inputs, got " +
                                std::to_string(fanin.size()));
  }
  const NetId out = module_.new_net();
  module_.add_instance("u$" + std::to_string(counter_++), cell, fanin, out);
  return out;
}

NetId NetlistBuilder::flop(const std::string& cell, NetId d) {
  const liberty::Cell& c = library_.at(cell);
  if (!c.is_flop) throw std::invalid_argument("NetlistBuilder::flop: " + cell + " is not a flop");
  if (module_.clock() == kNoNet) {
    throw std::runtime_error("NetlistBuilder::flop: module has no clock net");
  }
  const NetId out = module_.new_net("q");
  // DFF pin order is {D, CK}.
  module_.add_instance("r$" + std::to_string(counter_++), cell, {d, module_.clock()}, out);
  return out;
}

}  // namespace rw::netlist
