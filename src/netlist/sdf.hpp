#pragma once

/// \file sdf.hpp
/// Delay annotation: per-instance, per-arc rise/fall delays computed from an
/// STA pass (slews/loads as seen in the netlist), plus an SDF 3.0 writer.
/// These delays drive the gate-level timing simulation exactly as the
/// paper's flow feeds Design-Compiler-generated "sdf" files to Modelsim for
/// the image-quality experiments.

#include <string>
#include <vector>

#include "sta/analysis.hpp"

namespace rw::netlist {

struct ArcDelay {
  double out_rise_ps = 0.0;
  double out_fall_ps = 0.0;
};

/// arcs[instance][input_pin_index]; flop instances carry {D, CK} with the
/// CK entry holding the CK->Q delay.
struct DelayAnnotation {
  std::vector<std::vector<ArcDelay>> arcs;
};

/// Computes fixed per-arc delays from the STA result: each arc is evaluated
/// at the worst slew observed on its input net and the real output load.
DelayAnnotation compute_delay_annotation(const sta::Sta& sta);

/// SDF 3.0 rendering of the annotation (IOPATH entries).
std::string write_sdf(const netlist::Module& module, const liberty::Library& library,
                      const DelayAnnotation& annotation);
void write_sdf_file(const netlist::Module& module, const liberty::Library& library,
                    const DelayAnnotation& annotation, const std::string& path);

}  // namespace rw::netlist
