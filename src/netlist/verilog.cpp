#include "netlist/verilog.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace rw::netlist {

namespace {

/// Net names may contain '$' from generated names; escape nothing, the
/// parser accepts the same character set the writer emits.
bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '$' || c == '.';
}

}  // namespace

std::string write_verilog(const Module& module, const liberty::Library& library) {
  std::ostringstream os;
  os << "module " << module.name() << " (";
  bool first = true;
  for (NetId n : module.inputs()) {
    os << (first ? "" : ", ") << "input " << module.net_name(n);
    first = false;
  }
  for (NetId n : module.outputs()) {
    os << (first ? "" : ", ") << "output " << module.net_name(n);
    first = false;
  }
  os << ");\n";

  for (NetId n = 0; n < module.net_count(); ++n) {
    if (!module.is_input(n)) os << "  wire " << module.net_name(n) << ";\n";
  }

  for (const auto& inst : module.instances()) {
    const liberty::Cell& cell = library.at(inst.cell);
    os << "  " << inst.cell << " " << inst.name << " (";
    const auto inputs = cell.input_pins();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      os << "." << inputs[i]->name << "(" << module.net_name(inst.fanin[i]) << "), ";
    }
    os << "." << cell.output_pin << "(" << module.net_name(inst.out) << "));\n";
  }
  os << "endmodule\n";
  return os.str();
}

void write_verilog_file(const Module& module, const liberty::Library& library,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_verilog_file: cannot open " + path);
  out << write_verilog(module, library);
}

namespace {

class VTokenizer {
 public:
  explicit VTokenizer(const std::string& text) : text_(text) {}

  std::string next() {
    skip();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (std::string("(),;").find(c) != std::string::npos) {
      ++pos_;
      return std::string(1, c);
    }
    std::string tok;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) tok += text_[pos_++];
    if (tok.empty()) fail(std::string("unexpected character '") + c + "'");
    return tok;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("verilog parse error at line " + std::to_string(line_) + ": " + msg);
  }

 private:
  void skip() {
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        ++pos_;
      } else if (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r') {
        ++pos_;
      } else if (text_[pos_] == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

namespace {

/// Output-pin guess for cells the library does not know (lenient mode only):
/// conventional output names first, else the last connection.
bool looks_like_output_pin(const std::string& pin) {
  return pin == "Z" || pin == "ZN" || pin == "Q" || pin == "QN" || pin == "Y" || pin == "OUT" ||
         pin == "O";
}

}  // namespace

Module parse_verilog(const std::string& text, const liberty::Library& library,
                     const ParseOptions& options) {
  VTokenizer tz(text);
  auto expect = [&](const std::string& want) {
    const std::string got = tz.next();
    if (got != want) tz.fail("expected '" + want + "', got '" + got + "'");
  };

  expect("module");
  Module module(tz.next());
  expect("(");
  std::string tok = tz.next();
  while (tok != ")") {
    if (tok == "input" || tok == "output") {
      const bool in = tok == "input";
      const std::string name = tz.next();
      NetId id = module.find_net(name);
      if (id == kNoNet) id = module.add_net(name);
      if (in) {
        module.mark_input(id);
      } else {
        module.mark_output(id);
      }
    } else if (tok != ",") {
      tz.fail("unexpected token in port list: " + tok);
    }
    tok = tz.next();
  }
  expect(";");

  tok = tz.next();
  while (!tok.empty() && tok != "endmodule") {
    if (tok == "wire") {
      std::string name = tz.next();
      while (true) {
        if (module.find_net(name) == kNoNet) module.add_net(name);
        const std::string sep = tz.next();
        if (sep == ";") break;
        if (sep != ",") tz.fail("expected ',' or ';' in wire declaration");
        name = tz.next();
      }
    } else {
      // Instance: <cell> <name> ( .PIN(net), ... );
      const std::string cell_name = tok;
      const liberty::Cell* cell = library.find(cell_name);
      if (cell == nullptr && options.lenient) {
        // λ-indexed name whose exact corner is absent: the base cell still
        // defines the pin layout.
        std::string base;
        double lp = 0.0;
        double ln = 0.0;
        if (util::parse_indexed_cell_name(cell_name, base, lp, ln)) cell = library.find(base);
      }
      if (cell == nullptr && !options.lenient) tz.fail("unknown cell " + cell_name);
      const std::string inst_name = tz.next();
      expect("(");
      std::vector<std::pair<std::string, std::string>> conns;
      std::string t = tz.next();
      while (t != ")") {
        if (t == ",") {
          t = tz.next();
          continue;
        }
        if (t.empty() || t[0] != '.') tz.fail("expected .PIN(net) connection");
        const std::string pin = t.substr(1);
        expect("(");
        const std::string net = tz.next();
        expect(")");
        conns.emplace_back(pin, net);
        t = tz.next();
      }
      expect(";");

      const auto resolve = [&](const std::string& net_name) {
        NetId id = module.find_net(net_name);
        if (id == kNoNet) id = module.add_net(net_name);
        return id;
      };
      std::vector<NetId> fanin;
      NetId out = kNoNet;
      if (cell != nullptr) {
        const auto input_pins = cell->input_pins();
        for (const auto* pin : input_pins) {
          bool found = false;
          for (const auto& [p, n] : conns) {
            if (p == pin->name) {
              fanin.push_back(resolve(n));
              found = true;
              break;
            }
          }
          if (!found && !options.lenient) {
            tz.fail("instance " + inst_name + ": missing connection for pin " + pin->name);
          }
        }
        for (const auto& [p, n] : conns) {
          if (p == cell->output_pin) out = resolve(n);
        }
        if (out == kNoNet && !options.lenient) {
          tz.fail("instance " + inst_name + ": missing output connection " + cell->output_pin);
        }
      } else {
        // Unknown cell in lenient mode: guess the output connection, treat
        // everything else as fanin, and let the cell-reference rule report it.
        std::size_t out_conn = conns.size();
        for (std::size_t c = 0; c < conns.size(); ++c) {
          if (looks_like_output_pin(conns[c].first)) out_conn = c;
        }
        if (out_conn == conns.size() && !conns.empty()) out_conn = conns.size() - 1;
        for (std::size_t c = 0; c < conns.size(); ++c) {
          if (c == out_conn) {
            out = resolve(conns[c].second);
          } else {
            fanin.push_back(resolve(conns[c].second));
          }
        }
      }
      if (options.lenient) {
        module.add_instance_lenient(inst_name, cell_name, std::move(fanin), out);
      } else {
        module.add_instance(inst_name, cell_name, std::move(fanin), out);
      }
    }
    tok = tz.next();
  }
  if (tok != "endmodule") tz.fail("missing endmodule");

  // Recover the clock: the net wired to any flop's clock pin.
  for (const auto& inst : module.instances()) {
    const liberty::Cell* cell = library.find(inst.cell);
    if (cell == nullptr || !cell->is_flop) continue;
    const auto input_pins = cell->input_pins();
    for (std::size_t i = 0; i < input_pins.size() && i < inst.fanin.size(); ++i) {
      if (input_pins[i]->is_clock) {
        module.set_clock(inst.fanin[i]);
        break;
      }
    }
    if (module.clock() != kNoNet) break;
  }
  return module;
}

Module parse_verilog_file(const std::string& path, const liberty::Library& library,
                          const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_verilog_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_verilog(ss.str(), library, options);
}

}  // namespace rw::netlist
