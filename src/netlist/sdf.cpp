#include "netlist/sdf.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace rw::netlist {

DelayAnnotation compute_delay_annotation(const sta::Sta& sta) {
  const auto& module = sta.module();
  const auto& library = sta.library();
  DelayAnnotation ann;
  ann.arcs.resize(module.instances().size());

  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const auto& inst = module.instances()[i];
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    const double load = sta.load_ff(inst.out);
    auto& per_pin = ann.arcs[i];
    per_pin.resize(inst.fanin.size());

    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const liberty::TimingArc* arc = cell.arc_from(input_pins[p]->name);
      if (arc == nullptr) continue;  // e.g. flop D pin: no D->Q arc
      const auto& in_t = sta.timing(inst.fanin[p]);
      // Edge-aware slews: the input edge that causes each output edge
      // follows from the arc's sense (non-unate arcs take the worst).
      const auto slew_for = [&](bool out_rising) {
        double s;
        switch (arc->sense) {
          case liberty::TimingSense::kPositiveUnate:
            s = in_t.slew_ps[out_rising ? 0 : 1];
            break;
          case liberty::TimingSense::kNegativeUnate:
            s = in_t.slew_ps[out_rising ? 1 : 0];
            break;
          default:
            s = std::max(in_t.slew_ps[0], in_t.slew_ps[1]);
        }
        return s > 0.0 ? s : sta.options().input_slew_ps;
      };
      if (!arc->rise.empty()) {
        per_pin[p].out_rise_ps = arc->rise.delay_ps.lookup(slew_for(true), load);
      }
      if (!arc->fall.empty()) {
        per_pin[p].out_fall_ps = arc->fall.delay_ps.lookup(slew_for(false), load);
      }
      // Delays can come out slightly negative at extreme slews; the event
      // simulator needs causality, so clamp at a small positive epsilon.
      per_pin[p].out_rise_ps = std::max(0.1, per_pin[p].out_rise_ps);
      per_pin[p].out_fall_ps = std::max(0.1, per_pin[p].out_fall_ps);
    }
  }
  return ann;
}

std::string write_sdf(const Module& module, const liberty::Library& library,
                      const DelayAnnotation& annotation) {
  std::ostringstream os;
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << module.name() << "\")\n";
  os << "  (TIMESCALE 1ps)\n";
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const auto& inst = module.instances()[i];
    const liberty::Cell& cell = library.at(inst.cell);
    const auto input_pins = cell.input_pins();
    os << "  (CELL (CELLTYPE \"" << inst.cell << "\") (INSTANCE " << inst.name << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
      const auto& d = annotation.arcs[i][p];
      if (d.out_rise_ps == 0.0 && d.out_fall_ps == 0.0) continue;
      os << "      (IOPATH " << input_pins[p]->name << " " << cell.output_pin << " ("
         << util::format_fixed(d.out_rise_ps, 1) << ") (" << util::format_fixed(d.out_fall_ps, 1)
         << "))\n";
    }
    os << "    ))\n  )\n";
  }
  os << ")\n";
  return os.str();
}

void write_sdf_file(const Module& module, const liberty::Library& library,
                    const DelayAnnotation& annotation, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_sdf_file: cannot open " + path);
  out << write_sdf(module, library, annotation);
}

}  // namespace rw::netlist
