#pragma once

/// \file verilog.hpp
/// Structural Verilog writer and parser (named port connections, single
/// module, wire declarations) — the interchange format between synthesis and
/// the downstream tools, mirroring how the paper's flow hands netlists from
/// Design Compiler to Modelsim. The parser needs the library to map named
/// pin connections onto pin order.

#include <string>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace rw::netlist {

std::string write_verilog(const Module& module, const liberty::Library& library);
void write_verilog_file(const Module& module, const liberty::Library& library,
                        const std::string& path);

struct ParseOptions {
  /// Lenient mode is for lint: structural violations that the strict parser
  /// rejects (unknown cells, missing/multi-driven connections) are recorded
  /// in the module — via `Module::add_instance_lenient` — instead of thrown,
  /// so `rwlint` can diagnose them all. λ-indexed cell names absent from the
  /// library are mapped through their base cell's pin layout. Syntax errors
  /// still throw.
  bool lenient = false;
};

/// \throws std::runtime_error with line info on syntax errors or (in strict
/// mode) unknown cells/pins.
Module parse_verilog(const std::string& text, const liberty::Library& library,
                     const ParseOptions& options = {});
Module parse_verilog_file(const std::string& path, const liberty::Library& library,
                          const ParseOptions& options = {});

}  // namespace rw::netlist
