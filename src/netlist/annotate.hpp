#pragma once

/// \file annotate.hpp
/// Netlist annotation for the dynamic-aging-stress flow (Section 4.2): each
/// instance's measured per-transistor duty cycles are quantized to the λ
/// grid and folded into the cell name ("AND2_X1" with λp=0.4, λn=0.6 becomes
/// "AND2_X1_0.40_0.60"), matching the merged complete library's indexing.

#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace rw::netlist {

struct InstanceDuty {
  double lambda_p = 0.0;  ///< average pMOS stress duty cycle in the instance
  double lambda_n = 0.0;  ///< average nMOS stress duty cycle
};

/// Renames every instance's cell in place. `duties` is indexed like
/// module.instances(). Returns the distinct quantized (λp, λn) pairs used —
/// exactly the corners the merged library must contain.
std::vector<std::pair<double, double>> annotate_with_duty_cycles(
    Module& module, const std::vector<InstanceDuty>& duties, double lambda_step = 0.1);

}  // namespace rw::netlist
