#pragma once

/// \file builder.hpp
/// Convenience builder for hand-constructing mapped netlists (tests, the
/// Fig. 3 two-path experiment, and small examples). Instance names and
/// output nets are generated automatically.

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace rw::netlist {

class NetlistBuilder {
 public:
  NetlistBuilder(Module& module, const liberty::Library& library);

  /// Adds an instance of `cell` fed by `fanin` (library input pin order) and
  /// returns the created output net. \throws std::out_of_range for unknown
  /// cells, std::invalid_argument on arity mismatch.
  NetId gate(const std::string& cell, const std::vector<NetId>& fanin);

  /// Adds a DFF of the given cell clocked by the module clock.
  NetId flop(const std::string& cell, NetId d);

  [[nodiscard]] Module& module() { return module_; }

 private:
  Module& module_;
  const liberty::Library& library_;
  int counter_ = 0;
};

}  // namespace rw::netlist
