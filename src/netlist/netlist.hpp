#pragma once

/// \file netlist.hpp
/// Gate-level netlist: instances of library cells connected by single-driver
/// nets. This is what synthesis emits, STA and the gate-level simulators
/// consume, and the dynamic-aging flow annotates.

#include <string>
#include <unordered_map>
#include <vector>

namespace rw::netlist {

using NetId = int;
inline constexpr NetId kNoNet = -1;

struct Instance {
  std::string name;
  std::string cell;           ///< library cell name (λ-indexed after annotation)
  std::vector<NetId> fanin;   ///< aligned with the cell's input pins, in pin order
  NetId out = kNoNet;
};

class Module {
 public:
  explicit Module(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// \throws std::invalid_argument on duplicate name.
  NetId add_net(const std::string& net_name);
  /// Adds a net with a fresh generated name "<prefix><k>".
  NetId new_net(const std::string& prefix = "n");
  /// Renames a net (the new name must be unused).
  void rename_net(NetId id, const std::string& new_name);
  [[nodiscard]] NetId find_net(const std::string& net_name) const;  ///< kNoNet when absent
  [[nodiscard]] const std::string& net_name(NetId id) const;
  [[nodiscard]] int net_count() const { return static_cast<int>(net_names_.size()); }

  void mark_input(NetId id);
  void mark_output(NetId id);
  void set_clock(NetId id);
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }
  [[nodiscard]] NetId clock() const { return clock_; }
  [[nodiscard]] bool is_input(NetId id) const;

  /// \throws std::invalid_argument if `out` already has a driver.
  std::size_t add_instance(const std::string& inst_name, const std::string& cell,
                           std::vector<NetId> fanin, NetId out);
  [[nodiscard]] const std::vector<Instance>& instances() const { return instances_; }
  [[nodiscard]] std::vector<Instance>& instances() { return instances_; }

  /// Removes the most recently added instance (must be passed its index;
  /// used to back out trial insertions). Its output net stays, undriven —
  /// callers must ensure nothing references it.
  void remove_last_instance(std::size_t index);

  /// Index of the instance driving `net`, or -1 (primary input / undriven).
  [[nodiscard]] int driver(NetId net) const;
  /// Instance indices with `net` on an input pin.
  [[nodiscard]] std::vector<int> sinks(NetId net) const;
  [[nodiscard]] int fanout_count(NetId net) const;

  /// Structural checks: every non-input net has exactly one driver, every
  /// instance pin references a valid net. \throws std::runtime_error with a
  /// description of the first violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_index_;
  std::vector<int> driver_;  ///< instance index or -1, per net
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  NetId clock_ = kNoNet;
  std::vector<Instance> instances_;
  int gen_counter_ = 0;
};

}  // namespace rw::netlist
