#pragma once

/// \file netlist.hpp
/// Gate-level netlist: instances of library cells connected by single-driver
/// nets. This is what synthesis emits, STA and the gate-level simulators
/// consume, and the dynamic-aging flow annotates.

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lint/diagnostic.hpp"

namespace rw::netlist {

using NetId = int;
inline constexpr NetId kNoNet = -1;

struct Instance {
  std::string name;
  std::string cell;           ///< library cell name (λ-indexed after annotation)
  std::vector<NetId> fanin;   ///< aligned with the cell's input pins, in pin order
  NetId out = kNoNet;
};

class Module {
 public:
  explicit Module(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// \throws std::invalid_argument on duplicate name.
  NetId add_net(const std::string& net_name);
  /// Adds a net with a fresh generated name "<prefix><k>".
  NetId new_net(const std::string& prefix = "n");
  /// Renames a net (the new name must be unused).
  void rename_net(NetId id, const std::string& new_name);
  [[nodiscard]] NetId find_net(const std::string& net_name) const;  ///< kNoNet when absent
  [[nodiscard]] const std::string& net_name(NetId id) const;
  [[nodiscard]] int net_count() const { return static_cast<int>(net_names_.size()); }

  void mark_input(NetId id);
  void mark_output(NetId id);
  void set_clock(NetId id);
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }
  [[nodiscard]] NetId clock() const { return clock_; }
  [[nodiscard]] bool is_input(NetId id) const;

  /// \throws std::invalid_argument if `out` already has a driver.
  std::size_t add_instance(const std::string& inst_name, const std::string& cell,
                           std::vector<NetId> fanin, NetId out);
  /// Like `add_instance`, but tolerates structurally broken connectivity so
  /// that lint can analyze it: `out` may be `kNoNet` (missing output
  /// connection) or already driven (the extra driver is recorded and
  /// reported by `check()` as a multi-driven net).
  std::size_t add_instance_lenient(const std::string& inst_name, const std::string& cell,
                                   std::vector<NetId> fanin, NetId out);
  [[nodiscard]] const std::vector<Instance>& instances() const { return instances_; }
  [[nodiscard]] std::vector<Instance>& instances() { return instances_; }

  /// (net, instance index) pairs recorded by `add_instance_lenient` for nets
  /// that already had a driver. Empty for well-formed modules.
  [[nodiscard]] const std::vector<std::pair<NetId, int>>& extra_drivers() const {
    return extra_drivers_;
  }

  /// Removes the most recently added instance (must be passed its index;
  /// used to back out trial insertions). Its output net stays, undriven —
  /// callers must ensure nothing references it.
  void remove_last_instance(std::size_t index);

  /// Index of the instance driving `net`, or -1 (primary input / undriven).
  [[nodiscard]] int driver(NetId net) const;
  /// Instance indices with `net` on an input pin.
  [[nodiscard]] std::vector<int> sinks(NetId net) const;
  [[nodiscard]] int fanout_count(NetId net) const;

  /// Structural checks: every non-input net has exactly one driver, every
  /// instance pin references a valid net. Collects *all* violations (rule ids
  /// NL002/NL003/NL006 of the lint catalog) instead of stopping at the first.
  [[nodiscard]] std::vector<lint::Diagnostic> check() const;

  /// \throws std::runtime_error listing every violation found by `check()`.
  void validate() const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_index_;
  std::vector<int> driver_;  ///< instance index or -1, per net
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  NetId clock_ = kNoNet;
  std::vector<Instance> instances_;
  std::vector<std::pair<NetId, int>> extra_drivers_;  ///< see extra_drivers()
  int gen_counter_ = 0;
};

}  // namespace rw::netlist
