#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rw::netlist {

Module::Module(std::string name) : name_(std::move(name)) {}

NetId Module::add_net(const std::string& net_name) {
  if (find_net(net_name) != kNoNet) {
    throw std::invalid_argument("Module::add_net: duplicate net " + net_name);
  }
  net_names_.push_back(net_name);
  driver_.push_back(-1);
  const auto id = static_cast<NetId>(net_names_.size() - 1);
  net_index_.emplace(net_name, id);
  return id;
}

NetId Module::new_net(const std::string& prefix) {
  // Generated names live in their own "<prefix>$k" namespace to avoid
  // clashing with user names.
  return add_net(prefix + "$" + std::to_string(gen_counter_++));
}

void Module::rename_net(NetId id, const std::string& new_name) {
  if (id < 0 || id >= net_count()) throw std::out_of_range("Module::rename_net: bad id");
  if (find_net(new_name) != kNoNet) {
    throw std::invalid_argument("Module::rename_net: name in use: " + new_name);
  }
  net_index_.erase(net_names_[static_cast<std::size_t>(id)]);
  net_names_[static_cast<std::size_t>(id)] = new_name;
  net_index_.emplace(new_name, id);
}

NetId Module::find_net(const std::string& net_name) const {
  const auto it = net_index_.find(net_name);
  return it == net_index_.end() ? kNoNet : it->second;
}

const std::string& Module::net_name(NetId id) const {
  if (id < 0 || id >= net_count()) throw std::out_of_range("Module::net_name: bad id");
  return net_names_[static_cast<std::size_t>(id)];
}

void Module::mark_input(NetId id) {
  if (std::find(inputs_.begin(), inputs_.end(), id) == inputs_.end()) inputs_.push_back(id);
}

void Module::mark_output(NetId id) {
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) outputs_.push_back(id);
}

void Module::set_clock(NetId id) {
  clock_ = id;
  mark_input(id);
}

bool Module::is_input(NetId id) const {
  return std::find(inputs_.begin(), inputs_.end(), id) != inputs_.end();
}

std::size_t Module::add_instance(const std::string& inst_name, const std::string& cell,
                                 std::vector<NetId> fanin, NetId out) {
  if (out < 0 || out >= net_count()) {
    throw std::invalid_argument("Module::add_instance: bad output net for " + inst_name);
  }
  if (driver_[static_cast<std::size_t>(out)] != -1) {
    throw std::invalid_argument("Module::add_instance: net " + net_name(out) +
                                " already driven (instance " + inst_name + ")");
  }
  for (NetId f : fanin) {
    if (f < 0 || f >= net_count()) {
      throw std::invalid_argument("Module::add_instance: bad fanin net for " + inst_name);
    }
  }
  driver_[static_cast<std::size_t>(out)] = static_cast<int>(instances_.size());
  instances_.push_back(Instance{inst_name, cell, std::move(fanin), out});
  return instances_.size() - 1;
}

std::size_t Module::add_instance_lenient(const std::string& inst_name, const std::string& cell,
                                         std::vector<NetId> fanin, NetId out) {
  if (out >= net_count()) {
    throw std::invalid_argument("Module::add_instance_lenient: bad output net for " + inst_name);
  }
  if (out < 0) out = kNoNet;
  for (NetId f : fanin) {
    if (f < 0 || f >= net_count()) {
      throw std::invalid_argument("Module::add_instance_lenient: bad fanin net for " + inst_name);
    }
  }
  const int index = static_cast<int>(instances_.size());
  if (out != kNoNet) {
    if (driver_[static_cast<std::size_t>(out)] == -1) {
      driver_[static_cast<std::size_t>(out)] = index;
    } else {
      extra_drivers_.emplace_back(out, index);
    }
  }
  instances_.push_back(Instance{inst_name, cell, std::move(fanin), out});
  return instances_.size() - 1;
}

void Module::remove_last_instance(std::size_t index) {
  if (index + 1 != instances_.size()) {
    throw std::invalid_argument("Module::remove_last_instance: not the last instance");
  }
  const NetId out = instances_.back().out;
  const int self = static_cast<int>(index);
  if (out != kNoNet && driver_[static_cast<std::size_t>(out)] == self) {
    driver_[static_cast<std::size_t>(out)] = -1;
  }
  while (!extra_drivers_.empty() && extra_drivers_.back().second == self) {
    extra_drivers_.pop_back();
  }
  instances_.pop_back();
}

int Module::driver(NetId net) const {
  if (net < 0 || net >= net_count()) throw std::out_of_range("Module::driver: bad net");
  return driver_[static_cast<std::size_t>(net)];
}

std::vector<int> Module::sinks(NetId net) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const auto& fanin = instances_[i].fanin;
    if (std::find(fanin.begin(), fanin.end(), net) != fanin.end()) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int Module::fanout_count(NetId net) const {
  int n = 0;
  for (const auto& inst : instances_) {
    for (NetId f : inst.fanin) {
      if (f == net) ++n;
    }
  }
  for (NetId po : outputs_) {
    if (po == net) ++n;
  }
  return n;
}

std::vector<lint::Diagnostic> Module::check() const {
  std::vector<lint::Diagnostic> out;
  const auto emit = [&](const char* rule, const std::string& location, std::string message,
                        std::string hint) {
    out.push_back(lint::Diagnostic{rule, lint::Severity::kError, name_ + ":" + location,
                                   std::move(message), std::move(hint)});
  };
  for (NetId n = 0; n < net_count(); ++n) {
    const bool driven = driver_[static_cast<std::size_t>(n)] != -1;
    const bool is_pi = is_input(n);
    if (driven && is_pi) {
      emit(lint::rules::kMultiDrivenNet, "net " + net_name(n),
           "primary input is also driven by instance " +
               instances_[static_cast<std::size_t>(driver_[static_cast<std::size_t>(n)])].name,
           "remove the port marking or the driving instance");
    }
    if (!driven && !is_pi) {
      // Dangling nets (no sinks, not an output) are allowed — they arise
      // when trial optimization moves are backed out.
      const bool is_po = std::find(outputs_.begin(), outputs_.end(), n) != outputs_.end();
      if (is_po || !sinks(n).empty()) {
        emit(lint::rules::kUndrivenNet, "net " + net_name(n),
             "used net has no driver and is not a primary input",
             "drive the net or mark it as an input");
      }
    }
  }
  for (const auto& [net, extra] : extra_drivers_) {
    const int first = driver_[static_cast<std::size_t>(net)];
    emit(lint::rules::kMultiDrivenNet, "net " + net_name(net),
         "driven by multiple instances (" +
             instances_[static_cast<std::size_t>(first)].name + " and " +
             instances_[static_cast<std::size_t>(extra)].name + ")",
         "keep exactly one driver per net");
  }
  for (const auto& inst : instances_) {
    if (inst.out == kNoNet || inst.out >= net_count()) {
      emit(lint::rules::kPortArity, "inst " + inst.name, "instance has no output net",
           "connect the cell's output pin");
    }
  }
  return out;
}

void Module::validate() const {
  const auto diagnostics = check();
  if (diagnostics.empty()) return;
  std::string message = "Module::validate: " + std::to_string(diagnostics.size()) +
                        " violation(s) in module " + name_ + "\n";
  message += lint::format_report(diagnostics);
  throw std::runtime_error(message);
}

}  // namespace rw::netlist
