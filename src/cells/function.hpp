#pragma once

/// \file function.hpp
/// Switch-level functional evaluation of cell specs: the truth table of a
/// combinational cell follows from its stage structure (each stage output is
/// the complement of its pull-down network's conduction). Used to emit the
/// function into the Liberty library, to drive technology mapping, and to
/// cross-check characterization vectors.

#include <cstdint>
#include <vector>

#include "cells/topology.hpp"

namespace rw::cells {

/// Evaluates a combinational cell for one input vector (values aligned with
/// spec.inputs). \throws std::invalid_argument for flops or size mismatch.
bool eval_cell(const CellSpec& spec, const std::vector<bool>& inputs);

/// Truth table over spec.inputs: bit `p` holds the output for the input
/// pattern whose bit i equals the value of spec.inputs[i]. Supports up to 6
/// inputs. \throws std::invalid_argument for flops or >6 inputs.
std::uint64_t truth_table(const CellSpec& spec);

/// Timing sense of the (input pin -> output) arc derived from the truth
/// table: +1 positive unate, -1 negative unate, 0 non-unate.
int arc_unateness(const CellSpec& spec, const std::string& pin);

}  // namespace rw::cells
