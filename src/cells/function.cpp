#include "cells/function.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace rw::cells {

bool eval_cell(const CellSpec& spec, const std::vector<bool>& inputs) {
  if (spec.is_flop) throw std::invalid_argument("eval_cell: sequential cell");
  if (inputs.size() != spec.inputs.size()) {
    throw std::invalid_argument("eval_cell: input count mismatch for " + spec.name);
  }
  std::unordered_map<std::string, bool> values;
  for (std::size_t i = 0; i < inputs.size(); ++i) values[spec.inputs[i]] = inputs[i];

  for (const auto& stage : spec.stages) {
    const bool pd_on = stage.pulldown.conducts([&](const std::string& sig) {
      const auto it = values.find(sig);
      if (it == values.end()) {
        throw std::invalid_argument("eval_cell: undriven signal '" + sig + "' in " + spec.name);
      }
      return it->second;
    });
    values[stage.out] = !pd_on;  // complementary static CMOS stage
  }
  const auto it = values.find(spec.output);
  if (it == values.end()) {
    throw std::invalid_argument("eval_cell: output never driven in " + spec.name);
  }
  return it->second;
}

std::uint64_t truth_table(const CellSpec& spec) {
  if (spec.inputs.size() > 6) throw std::invalid_argument("truth_table: more than 6 inputs");
  const auto n = spec.inputs.size();
  std::uint64_t tt = 0;
  std::vector<bool> vec(n);
  for (std::uint64_t pattern = 0; pattern < (1ULL << n); ++pattern) {
    for (std::size_t i = 0; i < n; ++i) vec[i] = ((pattern >> i) & 1ULL) != 0;
    if (eval_cell(spec, vec)) tt |= 1ULL << pattern;
  }
  return tt;
}

int arc_unateness(const CellSpec& spec, const std::string& pin) {
  const auto it = std::find(spec.inputs.begin(), spec.inputs.end(), pin);
  if (it == spec.inputs.end()) throw std::invalid_argument("arc_unateness: unknown pin " + pin);
  const auto bit = static_cast<std::size_t>(it - spec.inputs.begin());
  const std::uint64_t tt = truth_table(spec);
  const auto n = spec.inputs.size();

  bool saw_positive = false;  // raising the pin raises the output somewhere
  bool saw_negative = false;
  for (std::uint64_t pattern = 0; pattern < (1ULL << n); ++pattern) {
    if (((pattern >> bit) & 1ULL) != 0) continue;  // consider pin=0 patterns
    const std::uint64_t hi = pattern | (1ULL << bit);
    const bool out_lo = ((tt >> pattern) & 1ULL) != 0;
    const bool out_hi = ((tt >> hi) & 1ULL) != 0;
    if (!out_lo && out_hi) saw_positive = true;
    if (out_lo && !out_hi) saw_negative = true;
  }
  if (saw_positive && saw_negative) return 0;
  if (saw_positive) return 1;
  if (saw_negative) return -1;
  return 0;  // pin does not affect output (degenerate)
}

}  // namespace rw::cells
