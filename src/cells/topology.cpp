#include "cells/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace rw::cells {

SpExpr SpExpr::leaf(std::string signal) {
  SpExpr e;
  e.kind_ = Kind::kLeaf;
  e.signal_ = std::move(signal);
  return e;
}

SpExpr SpExpr::series(std::vector<SpExpr> children) {
  if (children.empty()) throw std::invalid_argument("SpExpr::series: empty");
  if (children.size() == 1) return children.front();
  SpExpr e;
  e.kind_ = Kind::kSeries;
  e.children_ = std::move(children);
  return e;
}

SpExpr SpExpr::parallel(std::vector<SpExpr> children) {
  if (children.empty()) throw std::invalid_argument("SpExpr::parallel: empty");
  if (children.size() == 1) return children.front();
  SpExpr e;
  e.kind_ = Kind::kParallel;
  e.children_ = std::move(children);
  return e;
}

bool SpExpr::conducts(const std::function<bool(const std::string&)>& on) const {
  switch (kind_) {
    case Kind::kLeaf:
      return on(signal_);
    case Kind::kSeries:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const SpExpr& c) { return c.conducts(on); });
    case Kind::kParallel:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const SpExpr& c) { return c.conducts(on); });
  }
  return false;
}

SpExpr SpExpr::dual() const {
  switch (kind_) {
    case Kind::kLeaf:
      return *this;
    case Kind::kSeries: {
      std::vector<SpExpr> kids;
      kids.reserve(children_.size());
      for (const auto& c : children_) kids.push_back(c.dual());
      return parallel(std::move(kids));
    }
    case Kind::kParallel: {
      std::vector<SpExpr> kids;
      kids.reserve(children_.size());
      for (const auto& c : children_) kids.push_back(c.dual());
      return series(std::move(kids));
    }
  }
  return *this;
}

int SpExpr::min_path_len() const {
  switch (kind_) {
    case Kind::kLeaf:
      return 1;
    case Kind::kSeries: {
      int sum = 0;
      for (const auto& c : children_) sum += c.min_path_len();
      return sum;
    }
    case Kind::kParallel: {
      int best = children_.front().min_path_len();
      for (const auto& c : children_) best = std::min(best, c.min_path_len());
      return best;
    }
  }
  return 1;
}

std::vector<std::string> SpExpr::signals() const {
  std::vector<std::string> out;
  const std::function<void(const SpExpr&)> walk = [&](const SpExpr& e) {
    if (e.kind_ == Kind::kLeaf) {
      if (std::find(out.begin(), out.end(), e.signal_) == out.end()) out.push_back(e.signal_);
    } else {
      for (const auto& c : e.children_) walk(c);
    }
  };
  walk(*this);
  return out;
}

namespace {

/// Recursively instantiates a switch network between `top` and `bottom`.
/// `series_context` counts series transistors on the path *outside* this
/// subexpression, so that each leaf can be widened by its full stack depth
/// (standard stack upsizing keeps per-path drive comparable to a single
/// device).
void instantiate(const SpExpr& expr, const std::string& top, const std::string& bottom,
                 device::MosType type, double unit_width, double drive, int series_context,
                 const std::string& node_prefix, int& node_counter,
                 std::vector<PlacedTransistor>& out) {
  switch (expr.kind()) {
    case SpExpr::Kind::kLeaf: {
      PlacedTransistor t;
      t.type = type;
      t.width_um = unit_width * drive * static_cast<double>(series_context + 1);
      t.gate = expr.signal();
      // Conventional orientation: nMOS source toward GND, pMOS source
      // toward VDD (the models are symmetric; this is for readability).
      if (type == device::MosType::kPmos) {
        t.source = top;
        t.drain = bottom;
      } else {
        t.drain = top;
        t.source = bottom;
      }
      out.push_back(std::move(t));
      return;
    }
    case SpExpr::Kind::kSeries: {
      // Each child sees the other children as additional series context.
      int total = 0;
      std::vector<int> lens;
      lens.reserve(expr.children().size());
      for (const auto& c : expr.children()) {
        lens.push_back(c.min_path_len());
        total += lens.back();
      }
      std::string upper = top;
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        const bool last = i + 1 == expr.children().size();
        std::string lower =
            last ? bottom : node_prefix + "#s" + std::to_string(node_counter++);
        instantiate(expr.children()[i], upper, lower, type, unit_width, drive,
                    series_context + (total - lens[i]), node_prefix, node_counter, out);
        upper = std::move(lower);
      }
      return;
    }
    case SpExpr::Kind::kParallel: {
      for (const auto& c : expr.children()) {
        instantiate(c, top, bottom, type, unit_width, drive, series_context, node_prefix,
                    node_counter, out);
      }
      return;
    }
  }
}

void add_inverter(std::vector<PlacedTransistor>& out, const device::Technology& tech,
                  const std::string& in, const std::string& drives, double drive) {
  out.push_back({device::MosType::kPmos, tech.pmos_unit_width_um * drive, in, drives, "VDD"});
  out.push_back({device::MosType::kNmos, tech.nmos_unit_width_um * drive, in, drives, "GND"});
}

void add_transmission_gate(std::vector<PlacedTransistor>& out, const device::Technology& tech,
                           const std::string& from, const std::string& to,
                           const std::string& n_gate, const std::string& p_gate, double drive) {
  out.push_back({device::MosType::kNmos, tech.nmos_unit_width_um * drive, n_gate, to, from});
  out.push_back({device::MosType::kPmos, tech.pmos_unit_width_um * drive, p_gate, to, from});
}

/// Master-slave transmission-gate D flip-flop (22 transistors).
/// Transparent master while CK=0, captures on the rising edge; Q = D.
std::vector<PlacedTransistor> materialize_dff(const CellSpec& spec,
                                              const device::Technology& tech) {
  std::vector<PlacedTransistor> t;
  const double x = static_cast<double>(spec.drive_x);
  add_inverter(t, tech, "CK", "ckn", 1.0);
  add_inverter(t, tech, "ckn", "ckp", 1.0);
  // Master latch.
  add_transmission_gate(t, tech, "D", "n1", "ckn", "ckp", 1.0);
  add_inverter(t, tech, "n1", "n2", 1.0);
  add_inverter(t, tech, "n2", "n1f", 0.5);
  add_transmission_gate(t, tech, "n1f", "n1", "ckp", "ckn", 0.5);
  // Slave latch.
  add_transmission_gate(t, tech, "n2", "n3", "ckp", "ckn", 1.0);
  add_inverter(t, tech, "n3", "n4", 1.0);
  add_inverter(t, tech, "n4", "n3f", 0.5);
  add_transmission_gate(t, tech, "n3f", "n3", "ckn", "ckp", 0.5);
  // Output driver: Q = NOT(n3) = NOT(NOT(D-at-master)) path -> Q follows D.
  add_inverter(t, tech, "n3", spec.output, x);
  return t;
}

}  // namespace

std::vector<PlacedTransistor> materialize(const CellSpec& spec, const device::Technology& tech) {
  if (spec.is_flop) return materialize_dff(spec, tech);
  if (spec.stages.empty()) throw std::invalid_argument("materialize: cell has no stages");

  std::vector<PlacedTransistor> out;
  for (const auto& stage : spec.stages) {
    int counter = 0;
    // Pull-down: nMOS network between stage output and GND.
    instantiate(stage.pulldown, stage.out, "GND", device::MosType::kNmos,
                tech.nmos_unit_width_um, stage.drive, 0, stage.out + "_n", counter, out);
    // Pull-up: dual network between VDD and stage output, pMOS.
    instantiate(stage.pulldown.dual(), "VDD", stage.out, device::MosType::kPmos,
                tech.pmos_unit_width_um, stage.drive, 0, stage.out + "_p", counter, out);
  }
  return out;
}

double pin_input_cap_ff(const CellSpec& spec, const device::Technology& tech,
                        const std::string& pin) {
  double cap = 0.0;
  for (const auto& t : materialize(spec, tech)) {
    const auto& params = t.type == device::MosType::kNmos ? tech.nmos : tech.pmos;
    if (t.gate == pin) cap += params.cgate_ff_per_um * t.width_um;
    // Pass-gate inputs (the D pin of a transmission-gate flop) load the
    // driver with junction capacitance instead of gate capacitance.
    if (t.drain == pin || t.source == pin) cap += params.cjunc_ff_per_um * t.width_um;
  }
  return cap;
}

double cell_area_um2(const CellSpec& spec, const device::Technology& tech) {
  double total_width = 0.0;
  for (const auto& t : materialize(spec, tech)) total_width += t.width_um;
  // Empirical 45 nm footprint: diffusion area scales with width, plus fixed
  // routing/well overhead per cell.
  return 0.55 * total_width + 0.35;
}

}  // namespace rw::cells
