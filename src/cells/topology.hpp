#pragma once

/// \file topology.hpp
/// Transistor-level structure of standard cells.
///
/// Combinational cells are described as a cascade of inverting static-CMOS
/// *stages*; each stage is a series/parallel pull-down expression whose dual
/// forms the pull-up network. Multi-stage cells (BUF, AND/OR, XOR, MUX) are
/// first-class — the paper stresses that >50 % of an industrial library is
/// multi-stage and that internal slews make their aging behaviour
/// non-trivial. `materialize()` expands a cell spec into sized transistors
/// with symbolic node names, which the characterizer turns into a SPICE-level
/// circuit (applying per-polarity aging degradations) and which the catalog
/// uses to compute pin capacitances and area.

#include <functional>
#include <string>
#include <vector>

#include "device/mosfet.hpp"
#include "device/ptm45.hpp"

namespace rw::cells {

/// Series/parallel switch network over named signals.
class SpExpr {
 public:
  enum class Kind { kLeaf, kSeries, kParallel };

  static SpExpr leaf(std::string signal);
  static SpExpr series(std::vector<SpExpr> children);
  static SpExpr parallel(std::vector<SpExpr> children);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& signal() const { return signal_; }
  [[nodiscard]] const std::vector<SpExpr>& children() const { return children_; }

  /// Does the network conduct given signal values? (`on(signal)` = switch closed)
  [[nodiscard]] bool conducts(const std::function<bool(const std::string&)>& on) const;

  /// Dual network (series<->parallel) — the pull-up of a static CMOS stage.
  [[nodiscard]] SpExpr dual() const;

  /// Transistor count of the shortest conducting path (for stack sizing).
  [[nodiscard]] int min_path_len() const;

  /// All distinct leaf signals, in first-appearance order.
  [[nodiscard]] std::vector<std::string> signals() const;

 private:
  Kind kind_ = Kind::kLeaf;
  std::string signal_;
  std::vector<SpExpr> children_;
};

/// One inverting stage: `out = NOT(pulldown)`, pull-up is the dual network.
struct Stage {
  SpExpr pulldown;
  std::string out;     ///< node the stage drives ("Z" for the final stage)
  double drive = 1.0;  ///< width multiplier relative to the technology unit
};

/// A standard cell: either a cascade of stages or a hand-built flop.
struct CellSpec {
  std::string name;    ///< full library name, e.g. "NAND2_X1"
  std::string family;  ///< function family, e.g. "NAND2" (sizing moves within a family)
  std::vector<std::string> inputs;  ///< pin order defines truth-table bit order
  std::string output = "Z";
  std::vector<Stage> stages;  ///< topologically ordered; empty for flops
  bool is_flop = false;       ///< DFF: inputs {D, CK}, output Q
  int drive_x = 1;
};

/// A sized transistor with symbolic terminal names. Power nets are the
/// reserved names "VDD"/"GND"; other names are pins or internal nodes.
struct PlacedTransistor {
  device::MosType type;
  double width_um;
  std::string gate;
  std::string drain;
  std::string source;
};

/// Expands a cell into sized transistors. Internal series-chain nodes are
/// named "<stage-out>#s<k>"/"#p<k>". \throws std::invalid_argument for specs
/// with no stages and no flop flag.
std::vector<PlacedTransistor> materialize(const CellSpec& spec, const device::Technology& tech);

/// Capacitance presented by an input pin: sum of gate caps of transistors
/// whose gate connects to the pin (fresh devices).
double pin_input_cap_ff(const CellSpec& spec, const device::Technology& tech,
                        const std::string& pin);

/// Layout-proportional area estimate (µm²) from total transistor width.
double cell_area_um2(const CellSpec& spec, const device::Technology& tech);

}  // namespace rw::cells
