#pragma once

/// \file catalog.hpp
/// The standard-cell catalog: a Nangate-45nm-style set of 60+ combinational
/// and sequential cells across drive strengths, expressed as CellSpec
/// topologies. This is the "netlist of cells" input of Fig. 4(a).

#include <vector>

#include "cells/topology.hpp"

namespace rw::cells {

/// Builds the full catalog (deterministic order; names unique).
const std::vector<CellSpec>& catalog();

/// Finds a cell by exact name. \throws std::out_of_range when absent.
const CellSpec& find_cell(const std::string& name);

/// All cells of a function family (e.g. "NAND2"), ordered by drive strength.
std::vector<const CellSpec*> family_cells(const std::string& family);

}  // namespace rw::cells
