#include "cells/catalog.hpp"

#include <cmath>
#include <stdexcept>

namespace rw::cells {

namespace {

SpExpr in(const std::string& s) { return SpExpr::leaf(s); }

std::vector<std::string> pins_abc(std::size_t n) {
  const std::vector<std::string> all = {"A", "B", "C", "D"};
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n)};
}

SpExpr series_of(const std::vector<std::string>& sigs) {
  std::vector<SpExpr> kids;
  kids.reserve(sigs.size());
  for (const auto& s : sigs) kids.push_back(in(s));
  return SpExpr::series(std::move(kids));
}

SpExpr parallel_of(const std::vector<std::string>& sigs) {
  std::vector<SpExpr> kids;
  kids.reserve(sigs.size());
  for (const auto& s : sigs) kids.push_back(in(s));
  return SpExpr::parallel(std::move(kids));
}

CellSpec make(const std::string& family, int drive_x, std::vector<std::string> inputs,
              std::vector<Stage> stages) {
  CellSpec c;
  c.family = family;
  c.drive_x = drive_x;
  c.name = family + "_X" + std::to_string(drive_x);
  c.inputs = std::move(inputs);
  c.stages = std::move(stages);
  return c;
}

void add_inv(std::vector<CellSpec>& out, int x) {
  out.push_back(
      make("INV", x, {"A"}, {Stage{in("A"), "Z", static_cast<double>(x)}}));
}

void add_buf(std::vector<CellSpec>& out, int x) {
  // First stage sized geometrically for a balanced two-stage buffer.
  const double first = std::max(1.0, std::round(std::sqrt(static_cast<double>(x))));
  out.push_back(make("BUF", x,
                     {"A"},
                     {Stage{in("A"), "i1", first},
                      Stage{in("i1"), "Z", static_cast<double>(x)}}));
}

void add_nand(std::vector<CellSpec>& out, std::size_t n, int x) {
  const auto pins = pins_abc(n);
  out.push_back(make("NAND" + std::to_string(n), x, pins,
                     {Stage{series_of(pins), "Z", static_cast<double>(x)}}));
}

void add_nor(std::vector<CellSpec>& out, std::size_t n, int x) {
  const auto pins = pins_abc(n);
  out.push_back(make("NOR" + std::to_string(n), x, pins,
                     {Stage{parallel_of(pins), "Z", static_cast<double>(x)}}));
}

void add_and(std::vector<CellSpec>& out, std::size_t n, int x) {
  const auto pins = pins_abc(n);
  out.push_back(make("AND" + std::to_string(n), x, pins,
                     {Stage{series_of(pins), "i1", 1.0},
                      Stage{in("i1"), "Z", static_cast<double>(x)}}));
}

void add_or(std::vector<CellSpec>& out, std::size_t n, int x) {
  const auto pins = pins_abc(n);
  out.push_back(make("OR" + std::to_string(n), x, pins,
                     {Stage{parallel_of(pins), "i1", 1.0},
                      Stage{in("i1"), "Z", static_cast<double>(x)}}));
}

void add_xor2(std::vector<CellSpec>& out, int x) {
  // NAND-tree XOR: t1 = NAND(A,B); Z = NAND(NAND(A,t1), NAND(B,t1)).
  out.push_back(make("XOR2", x, {"A", "B"},
                     {Stage{SpExpr::series({in("A"), in("B")}), "t1", 1.0},
                      Stage{SpExpr::series({in("A"), in("t1")}), "t2", 1.0},
                      Stage{SpExpr::series({in("B"), in("t1")}), "t3", 1.0},
                      Stage{SpExpr::series({in("t2"), in("t3")}), "Z",
                            static_cast<double>(x)}}));
}

void add_xnor2(std::vector<CellSpec>& out, int x) {
  // NOR-tree XNOR (dual of the NAND-tree XOR).
  out.push_back(make("XNOR2", x, {"A", "B"},
                     {Stage{SpExpr::parallel({in("A"), in("B")}), "t1", 1.0},
                      Stage{SpExpr::parallel({in("A"), in("t1")}), "t2", 1.0},
                      Stage{SpExpr::parallel({in("B"), in("t1")}), "t3", 1.0},
                      Stage{SpExpr::parallel({in("t2"), in("t3")}), "Z",
                            static_cast<double>(x)}}));
}

void add_aoi21(std::vector<CellSpec>& out, int x) {
  out.push_back(make("AOI21", x, {"A", "B", "C"},
                     {Stage{SpExpr::parallel({SpExpr::series({in("A"), in("B")}), in("C")}), "Z",
                            static_cast<double>(x)}}));
}

void add_oai21(std::vector<CellSpec>& out, int x) {
  out.push_back(make("OAI21", x, {"A", "B", "C"},
                     {Stage{SpExpr::series({SpExpr::parallel({in("A"), in("B")}), in("C")}), "Z",
                            static_cast<double>(x)}}));
}

void add_aoi22(std::vector<CellSpec>& out, int x) {
  out.push_back(make("AOI22", x, {"A", "B", "C", "D"},
                     {Stage{SpExpr::parallel({SpExpr::series({in("A"), in("B")}),
                                              SpExpr::series({in("C"), in("D")})}),
                            "Z", static_cast<double>(x)}}));
}

void add_oai22(std::vector<CellSpec>& out, int x) {
  out.push_back(make("OAI22", x, {"A", "B", "C", "D"},
                     {Stage{SpExpr::series({SpExpr::parallel({in("A"), in("B")}),
                                            SpExpr::parallel({in("C"), in("D")})}),
                            "Z", static_cast<double>(x)}}));
}

void add_mux2(std::vector<CellSpec>& out, int x) {
  // Z = A when S=0, B when S=1: Z = NAND(NAND(A, Sn), NAND(B, S)).
  out.push_back(make("MUX2", x, {"A", "B", "S"},
                     {Stage{in("S"), "sn", 1.0},
                      Stage{SpExpr::series({in("A"), in("sn")}), "t1", 1.0},
                      Stage{SpExpr::series({in("B"), in("S")}), "t2", 1.0},
                      Stage{SpExpr::series({in("t1"), in("t2")}), "Z",
                            static_cast<double>(x)}}));
}

void add_dff(std::vector<CellSpec>& out, int x) {
  CellSpec c;
  c.family = "DFF";
  c.drive_x = x;
  c.name = "DFF_X" + std::to_string(x);
  c.inputs = {"D", "CK"};
  c.output = "Q";
  c.is_flop = true;
  out.push_back(std::move(c));
}

std::vector<CellSpec> build_catalog() {
  std::vector<CellSpec> cells;
  for (int x : {1, 2, 4, 8, 16}) add_inv(cells, x);
  for (int x : {1, 2, 4, 8}) add_buf(cells, x);
  for (int x : {1, 2, 4}) add_nand(cells, 2, x);
  for (int x : {1, 2}) add_nand(cells, 3, x);
  for (int x : {1, 2}) add_nand(cells, 4, x);
  for (int x : {1, 2, 4}) add_nor(cells, 2, x);
  for (int x : {1, 2}) add_nor(cells, 3, x);
  for (int x : {1, 2}) add_nor(cells, 4, x);
  for (int x : {1, 2, 4}) add_and(cells, 2, x);
  for (int x : {1, 2}) add_and(cells, 3, x);
  for (int x : {1, 2}) add_and(cells, 4, x);
  for (int x : {1, 2, 4}) add_or(cells, 2, x);
  for (int x : {1, 2}) add_or(cells, 3, x);
  for (int x : {1, 2}) add_or(cells, 4, x);
  for (int x : {1, 2, 4}) add_xor2(cells, x);
  for (int x : {1, 2, 4}) add_xnor2(cells, x);
  for (int x : {1, 2, 4}) add_aoi21(cells, x);
  for (int x : {1, 2, 4}) add_oai21(cells, x);
  for (int x : {1, 2}) add_aoi22(cells, x);
  for (int x : {1, 2}) add_oai22(cells, x);
  for (int x : {1, 2, 4}) add_mux2(cells, x);
  for (int x : {1, 2, 4}) add_dff(cells, x);
  return cells;
}

}  // namespace

const std::vector<CellSpec>& catalog() {
  static const std::vector<CellSpec> cells = build_catalog();
  return cells;
}

const CellSpec& find_cell(const std::string& name) {
  for (const auto& c : catalog()) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("find_cell: no cell named " + name);
}

std::vector<const CellSpec*> family_cells(const std::string& family) {
  std::vector<const CellSpec*> out;
  for (const auto& c : catalog()) {
    if (c.family == family) out.push_back(&c);
  }
  return out;
}

}  // namespace rw::cells
