#include "charlib/opc.hpp"

#include <string>

namespace rw::charlib {

OpcGrid OpcGrid::paper() {
  OpcGrid g;
  // Geometric-ish spacing between the paper's published bounds.
  g.slews_ps = {5.0, 15.0, 40.0, 100.0, 250.0, 550.0, 947.0};
  g.loads_ff = {0.5, 1.0, 2.0, 4.0, 8.0, 14.0, 20.0};
  return g;
}

OpcGrid OpcGrid::coarse() {
  OpcGrid g;
  g.slews_ps = {5.0, 100.0, 947.0};
  g.loads_ff = {0.5, 4.0, 20.0};
  return g;
}

OpcGrid OpcGrid::single(double slew_ps, double load_ff) {
  OpcGrid g;
  g.slews_ps = {slew_ps};
  g.loads_ff = {load_ff};
  return g;
}

std::string OpcGrid::tag() const {
  return std::to_string(slews_ps.size()) + "x" + std::to_string(loads_ff.size());
}

}  // namespace rw::charlib
