#include "charlib/interval_query.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

namespace {

double max_interp_bound(const std::vector<const liberty::Cell*>& corners) {
  double bound = 0.0;
  for (const liberty::Cell* c : corners) {
    if (c->interp.has_value() && c->interp->bound_ps > bound) bound = c->interp->bound_ps;
  }
  return bound;
}

}  // namespace

std::vector<aging::AgingScenario> bracket_scenarios(const stress::InstanceBounds& bounds,
                                                    double years, double lambda_step) {
  const double p_lo = aging::quantize_lambda(bounds.lambda_p.lo, lambda_step);
  const double p_hi = aging::quantize_lambda(bounds.lambda_p.hi, lambda_step);
  const double n_lo = aging::quantize_lambda(bounds.lambda_n.lo, lambda_step);
  const double n_hi = aging::quantize_lambda(bounds.lambda_n.hi, lambda_step);
  std::vector<aging::AgingScenario> corners;
  for (const double lp : {p_lo, p_hi}) {
    for (const double ln : {n_lo, n_hi}) {
      const aging::AgingScenario s{lp, ln, years, true};
      bool seen = false;
      for (const auto& c : corners) seen = seen || c == s;
      if (!seen) corners.push_back(s);
    }
  }
  return corners;
}

std::string bracket_cell_name(const std::string& base, const aging::AgingScenario& corner) {
  return util::indexed_cell_name(base, corner.lambda_p, corner.lambda_n);
}

std::vector<InstanceCorners> corners_from_factory(const netlist::Module& module,
                                                  const stress::StressReport& report,
                                                  LibraryFactory& factory, double years,
                                                  double lambda_step) {
  const auto& instances = module.instances();
  // Distinct (base cell, corner) pairs over the whole module, characterized
  // through one parallel pass; the shared factory dedups in-flight work.
  std::set<std::pair<std::string, aging::AgingScenario>> distinct;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const auto& corner : bracket_scenarios(report.instances[i], years, lambda_step)) {
      distinct.emplace(instances[i].cell, corner);
    }
  }
  const std::vector<std::pair<std::string, aging::AgingScenario>> pairs(distinct.begin(),
                                                                        distinct.end());
  std::vector<const liberty::Cell*> resolved(pairs.size(), nullptr);
  util::ThreadPool::shared().parallel_for(pairs.size(), [&](std::size_t c) {
    try {
      resolved[c] = &factory.cell(pairs[c].first, pairs[c].second);
    } catch (const std::exception&) {
      resolved[c] = nullptr;  // quarantined pair: counted as missing below
    }
  });
  std::map<std::pair<std::string, aging::AgingScenario>, const liberty::Cell*> cell_of;
  for (std::size_t c = 0; c < pairs.size(); ++c) cell_of[pairs[c]] = resolved[c];

  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  std::vector<InstanceCorners> out(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    InstanceCorners& ic = out[i];
    ic.fresh = fresh.find(instances[i].cell);
    if (ic.fresh == nullptr) {
      throw std::runtime_error("corners_from_factory: unknown cell " + instances[i].cell);
    }
    for (const auto& corner : bracket_scenarios(report.instances[i], years, lambda_step)) {
      const liberty::Cell* cell = cell_of.at({instances[i].cell, corner});
      if (cell == nullptr) {
        ++ic.missing;
      } else {
        ic.corners.push_back(cell);
      }
    }
    ic.interp_bound_ps = max_interp_bound(ic.corners);
  }
  return out;
}

std::vector<InstanceCorners> corners_from_library(const netlist::Module& module,
                                                  const stress::StressReport& report,
                                                  const liberty::Library& merged,
                                                  const liberty::Library& fresh,
                                                  double lambda_step) {
  const auto& instances = module.instances();
  std::vector<InstanceCorners> out(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    InstanceCorners& ic = out[i];
    ic.fresh = fresh.find(instances[i].cell);
    if (ic.fresh == nullptr) {
      throw std::runtime_error("corners_from_library: unknown cell " + instances[i].cell);
    }
    // Lifetime is irrelevant for name resolution; the merged library's cells
    // are identified by their λ index alone.
    for (const auto& corner : bracket_scenarios(report.instances[i], 0.0, lambda_step)) {
      const liberty::Cell* cell = merged.find(bracket_cell_name(instances[i].cell, corner));
      if (cell == nullptr) {
        ++ic.missing;
      } else {
        ic.corners.push_back(cell);
      }
    }
    ic.interp_bound_ps = max_interp_bound(ic.corners);
  }
  return out;
}

}  // namespace rw::charlib
