#pragma once

/// \file characterizer.hpp
/// SPICE-level cell characterization (Fig. 4(a) of the paper): for each cell,
/// each input->output arc is exercised with a sensitizing side-input vector
/// and a ramp on the switching pin, across the full OPC grid, against
/// transistor models degraded per the aging scenario. Produces a
/// liberty::Cell with NLDM delay/slew tables.

#include "aging/bti.hpp"
#include "aging/scenario.hpp"
#include "cells/topology.hpp"
#include "charlib/opc.hpp"
#include "device/ptm45.hpp"
#include "liberty/library.hpp"
#include "spice/netlist.hpp"

namespace rw::charlib {

struct CharacterizeOptions {
  device::Technology tech = device::ptm45();
  aging::BtiParams bti{};
  OpcGrid grid = OpcGrid::paper();
  double wire_cap_per_node_ff = 0.08;  ///< layout parasitic per internal node
  double flop_char_slew_ps = 40.0;     ///< D/CK slews for setup search
  double flop_char_load_ff = 2.0;
};

/// Characterizes one cell under one aging scenario.
/// \throws std::runtime_error if an arc cannot be measured (non-settling
/// output), which indicates a broken topology or solver setup.
liberty::Cell characterize_cell(const cells::CellSpec& spec, const aging::AgingScenario& scenario,
                                const CharacterizeOptions& options);

/// Builds the full transistor-level circuit for a cell instance with the
/// scenario's degradations applied, binding pins to fresh nodes named after
/// the pins and returning it with VDD already sourced. Exposed for tests and
/// for the Fig. 3 path experiment (cells chained at SPICE level).
struct CellCircuit {
  spice::Circuit circuit;
  spice::NodeId vdd = -1;
  spice::NodeId out = -1;
};

/// Appends a cell instance to `circuit`. `bindings(name)` must return the
/// NodeId for "VDD"/"GND"/pins when they already exist; unseen names are
/// created with `prefix` applied. Returns the output node.
spice::NodeId append_cell_instance(spice::Circuit& circuit, const cells::CellSpec& spec,
                                   const aging::AgingScenario& scenario,
                                   const CharacterizeOptions& options, const std::string& prefix,
                                   spice::NodeId vdd_node,
                                   const std::vector<std::pair<std::string, spice::NodeId>>& pin_bindings);

}  // namespace rw::charlib
