#pragma once

/// \file characterizer.hpp
/// SPICE-level cell characterization (Fig. 4(a) of the paper): for each cell,
/// each input->output arc is exercised with a sensitizing side-input vector
/// and a ramp on the switching pin, across the full OPC grid, against
/// transistor models degraded per the aging scenario. Produces a
/// liberty::Cell with NLDM delay/slew tables.
///
/// Resilience: every arc measurement runs under the solver's convergence
/// retry ladder (`CharacterizeOptions::retry`). An OPC point whose transient
/// still fails after the ladder is interpolated from converged grid
/// neighbors and recorded in `Cell::fallbacks`, so one hard grid point
/// degrades one table entry instead of aborting the campaign. Only when an
/// arc has no converged point at all does characterization fail, as a
/// `CharError` tagged with (cell, arc, OPC, scenario).
///
/// Performance: a cell's work is exposed as a `CellCharJob` — a flat,
/// deterministic queue of (arc × direction × OPC grid point) tasks, each
/// independent and slot-indexed. `characterize_cell` fans the queue over the
/// shared ThreadPool; `LibraryFactory` flattens the queues of *all* (scenario
/// × cell) pairs into one top-level work list so nested `parallel_for` calls
/// never serialize. Each arc's tasks share one deterministic DC operating
/// point (the t=0 solution is slew- and load-independent), used to warm-start
/// every transient on that arc; because the seed's value does not depend on
/// which thread computes it, tables stay bitwise identical across thread
/// counts.

#include <memory>
#include <stdexcept>

#include "aging/bti.hpp"
#include "aging/scenario.hpp"
#include "cells/topology.hpp"
#include "charlib/adaptive.hpp"
#include "charlib/opc.hpp"
#include "device/ptm45.hpp"
#include "liberty/library.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace rw::charlib {

struct CharacterizeOptions {
  device::Technology tech = device::ptm45();
  aging::BtiParams bti{};
  OpcGrid grid = OpcGrid::paper();
  double wire_cap_per_node_ff = 0.08;  ///< layout parasitic per internal node
  double flop_char_slew_ps = 40.0;     ///< D/CK slews for setup search
  double flop_char_load_ff = 2.0;
  /// Convergence retry ladder for every SPICE run ($RW_CHAR_MAX_RETRIES).
  spice::RetryPolicy retry = spice::RetryPolicy::from_env();
  /// Seed every transient on an arc from the arc's shared DC operating
  /// point (computed once per arc; deterministic). Off = every grid point
  /// runs its own cold DC chain — slower, same results within solver
  /// tolerance; kept as an escape hatch and for A/B validation.
  bool warm_start_dc = true;
  /// Adaptive λ-corner lattice ($RW_CHAR_ADAPTIVE, $RW_CHAR_INTERP_TOL_PS).
  AdaptiveGridOptions adaptive = AdaptiveGridOptions::from_env();
};

/// Characterization failure carrying the (cell, arc, OPC, scenario) that
/// caused it plus the underlying solver failure chain — what the factory
/// records in its quarantine and run manifest.
class CharError : public std::runtime_error {
 public:
  CharError(std::string cell, std::string context, const std::string& detail);

  [[nodiscard]] const std::string& cell() const { return cell_; }
  /// e.g. "arc=A dir=rise scenario=wc10y" or "setup-search scenario=...".
  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  std::string cell_;
  std::string context_;
};

/// One cell's characterization as a flat task queue, so callers can merge
/// the queues of many cells into a single top-level `parallel_for` (the
/// factory's flattened scheduler) instead of nesting pools.
///
/// Usage: construct, run every task in [0, task_count()) exactly once (any
/// order, any threads; distinct tasks are safe concurrently), then call
/// `finish()` once from one thread. Results are bitwise independent of task
/// order and thread count. A flop's setup-time bisection is inherently
/// sequential and runs inside `finish()`.
class CellCharJob {
 public:
  CellCharJob(const cells::CellSpec& spec, const aging::AgingScenario& scenario,
              const CharacterizeOptions& options);
  ~CellCharJob();
  CellCharJob(const CellCharJob&) = delete;
  CellCharJob& operator=(const CellCharJob&) = delete;

  [[nodiscard]] std::size_t task_count() const;

  /// Runs one (arc, direction, OPC grid point) transient + measurement.
  /// SolverError is captured into the task's result slot (fallback
  /// interpolation happens in `finish()`); any other exception propagates.
  void run_task(std::size_t task);

  /// Interpolates failed points, runs the flop setup search, and assembles
  /// the liberty::Cell. \throws CharError when an arc has no converged OPC
  /// point; std::runtime_error for topology/setup bugs.
  [[nodiscard]] liberty::Cell finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Characterizes one cell under one aging scenario (builds a CellCharJob and
/// fans it over the shared ThreadPool).
/// \throws CharError when an arc has no converged OPC point even through the
/// retry ladder; std::runtime_error for topology/setup bugs (non-settling
/// output, unsensitizable pin).
liberty::Cell characterize_cell(const cells::CellSpec& spec, const aging::AgingScenario& scenario,
                                const CharacterizeOptions& options);

/// Builds the full transistor-level circuit for a cell instance with the
/// scenario's degradations applied, binding pins to fresh nodes named after
/// the pins and returning it with VDD already sourced. Exposed for tests and
/// for the Fig. 3 path experiment (cells chained at SPICE level).
struct CellCircuit {
  spice::Circuit circuit;
  spice::NodeId vdd = -1;
  spice::NodeId out = -1;
};

/// Appends a cell instance to `circuit`. `bindings(name)` must return the
/// NodeId for "VDD"/"GND"/pins when they already exist; unseen names are
/// created with `prefix` applied. Returns the output node.
spice::NodeId append_cell_instance(spice::Circuit& circuit, const cells::CellSpec& spec,
                                   const aging::AgingScenario& scenario,
                                   const CharacterizeOptions& options, const std::string& prefix,
                                   spice::NodeId vdd_node,
                                   const std::vector<std::pair<std::string, spice::NodeId>>& pin_bindings);

}  // namespace rw::charlib
