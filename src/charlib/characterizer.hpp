#pragma once

/// \file characterizer.hpp
/// SPICE-level cell characterization (Fig. 4(a) of the paper): for each cell,
/// each input->output arc is exercised with a sensitizing side-input vector
/// and a ramp on the switching pin, across the full OPC grid, against
/// transistor models degraded per the aging scenario. Produces a
/// liberty::Cell with NLDM delay/slew tables.
///
/// Resilience: every arc measurement runs under the solver's convergence
/// retry ladder (`CharacterizeOptions::retry`). An OPC point whose transient
/// still fails after the ladder is interpolated from converged grid
/// neighbors and recorded in `Cell::fallbacks`, so one hard grid point
/// degrades one table entry instead of aborting the campaign. Only when an
/// arc has no converged point at all does characterization fail, as a
/// `CharError` tagged with (cell, arc, OPC, scenario).

#include <stdexcept>

#include "aging/bti.hpp"
#include "aging/scenario.hpp"
#include "cells/topology.hpp"
#include "charlib/opc.hpp"
#include "device/ptm45.hpp"
#include "liberty/library.hpp"
#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace rw::charlib {

struct CharacterizeOptions {
  device::Technology tech = device::ptm45();
  aging::BtiParams bti{};
  OpcGrid grid = OpcGrid::paper();
  double wire_cap_per_node_ff = 0.08;  ///< layout parasitic per internal node
  double flop_char_slew_ps = 40.0;     ///< D/CK slews for setup search
  double flop_char_load_ff = 2.0;
  /// Convergence retry ladder for every SPICE run ($RW_CHAR_MAX_RETRIES).
  spice::RetryPolicy retry = spice::RetryPolicy::from_env();
};

/// Characterization failure carrying the (cell, arc, OPC, scenario) that
/// caused it plus the underlying solver failure chain — what the factory
/// records in its quarantine and run manifest.
class CharError : public std::runtime_error {
 public:
  CharError(std::string cell, std::string context, const std::string& detail);

  [[nodiscard]] const std::string& cell() const { return cell_; }
  /// e.g. "arc=A dir=rise scenario=wc10y" or "setup-search scenario=...".
  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  std::string cell_;
  std::string context_;
};

/// Characterizes one cell under one aging scenario.
/// \throws CharError when an arc has no converged OPC point even through the
/// retry ladder; std::runtime_error for topology/setup bugs (non-settling
/// output, unsensitizable pin).
liberty::Cell characterize_cell(const cells::CellSpec& spec, const aging::AgingScenario& scenario,
                                const CharacterizeOptions& options);

/// Builds the full transistor-level circuit for a cell instance with the
/// scenario's degradations applied, binding pins to fresh nodes named after
/// the pins and returning it with VDD already sourced. Exposed for tests and
/// for the Fig. 3 path experiment (cells chained at SPICE level).
struct CellCircuit {
  spice::Circuit circuit;
  spice::NodeId vdd = -1;
  spice::NodeId out = -1;
};

/// Appends a cell instance to `circuit`. `bindings(name)` must return the
/// NodeId for "VDD"/"GND"/pins when they already exist; unseen names are
/// created with `prefix` applied. Returns the output node.
spice::NodeId append_cell_instance(spice::Circuit& circuit, const cells::CellSpec& spec,
                                   const aging::AgingScenario& scenario,
                                   const CharacterizeOptions& options, const std::string& prefix,
                                   spice::NodeId vdd_node,
                                   const std::vector<std::pair<std::string, spice::NodeId>>& pin_bindings);

}  // namespace rw::charlib
