#include "charlib/adaptive.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hpp"

namespace rw::charlib {

namespace {

struct AtomicAdaptiveCounters {
  std::atomic<std::uint64_t> cells_interpolated{0};
  std::atomic<std::uint64_t> corners_refined{0};
  std::atomic<std::uint64_t> solves_avoided{0};
};

AtomicAdaptiveCounters& adaptive_counter_slots() {
  static AtomicAdaptiveCounters c;
  return c;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

AdaptiveCounters adaptive_counters() {
  const auto& c = adaptive_counter_slots();
  AdaptiveCounters out;
  out.cells_interpolated = c.cells_interpolated.load(kRelaxed);
  out.corners_refined = c.corners_refined.load(kRelaxed);
  out.solves_avoided_by_interp = c.solves_avoided.load(kRelaxed);
  return out;
}

void reset_adaptive_counters() {
  auto& c = adaptive_counter_slots();
  c.cells_interpolated.store(0, kRelaxed);
  c.corners_refined.store(0, kRelaxed);
  c.solves_avoided.store(0, kRelaxed);
}

namespace stats {
void add_cell_interpolated(std::uint64_t solves_avoided) {
  adaptive_counter_slots().cells_interpolated.fetch_add(1, kRelaxed);
  adaptive_counter_slots().solves_avoided.fetch_add(solves_avoided, kRelaxed);
}
void add_corner_refined() { adaptive_counter_slots().corners_refined.fetch_add(1, kRelaxed); }
}  // namespace stats

namespace {

constexpr double kLambdaEps = 1e-9;

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return false;
  const std::string v(env);
  return v != "0" && v != "false" && v != "off" && v != "no";
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return fallback;
}

bool is_multiple(double lambda, double step) {
  const double q = lambda / step;
  return std::fabs(q - std::round(q)) < kLambdaEps / step;
}

/// Bracketing lattice values for one λ axis: lo <= lambda <= hi, both
/// multiples of `step` clamped to [0, 1]; weight is the hi-side fraction.
void axis_bracket(double lambda, double step, double& lo, double& hi, double& w) {
  const double clamped = std::clamp(lambda, 0.0, 1.0);
  lo = std::floor((clamped + kLambdaEps) / step) * step;
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::min(lo + step, 1.0);
  if (is_multiple(clamped, step)) {
    lo = hi = std::round(clamped / step) * step;
  }
  w = (hi > lo + kLambdaEps) ? (clamped - lo) / (hi - lo) : 0.0;
}

}  // namespace

AdaptiveGridOptions AdaptiveGridOptions::from_env() {
  AdaptiveGridOptions o;
  o.enabled = env_flag("RW_CHAR_ADAPTIVE");
  o.interp_tol_ps = env_double("RW_CHAR_INTERP_TOL_PS", o.interp_tol_ps);
  o.lattice_step = env_double("RW_CHAR_LATTICE_STEP", o.lattice_step);
  return o;
}

std::string AdaptiveGridOptions::cache_tag() const {
  if (!enabled) return "";
  return "adaptive-s" + util::format_fixed(lattice_step, 2) + "-t" +
         util::format_fixed(interp_tol_ps, 2);
}

bool on_lattice(const aging::AgingScenario& scenario, double step) {
  if (scenario.is_fresh()) return true;
  return is_multiple(scenario.lambda_p, step) && is_multiple(scenario.lambda_n, step);
}

LatticeBracket lattice_bracket(const aging::AgingScenario& target, double step) {
  LatticeBracket b;
  double wp = 0.0;
  double wn = 0.0;
  axis_bracket(target.lambda_p, step, b.lambda_p_lo, b.lambda_p_hi, wp);
  axis_bracket(target.lambda_n, step, b.lambda_n_lo, b.lambda_n_hi, wn);

  const auto add = [&](double lp, double ln, double w) {
    aging::AgingScenario s = target;
    s.lambda_p = lp;
    s.lambda_n = ln;
    for (std::size_t i = 0; i < b.corners.size(); ++i) {
      if (b.corners[i].lambda_p == lp && b.corners[i].lambda_n == ln) {
        b.weights[i] += w;
        return;
      }
    }
    b.corners.push_back(s);
    b.weights.push_back(w);
  };
  // λn varies fastest, low before high; duplicate corners merge weights, so
  // an on-axis or on-lattice target yields 2 or 1 corners.
  add(b.lambda_p_lo, b.lambda_n_lo, (1.0 - wp) * (1.0 - wn));
  add(b.lambda_p_lo, b.lambda_n_hi, (1.0 - wp) * wn);
  add(b.lambda_p_hi, b.lambda_n_lo, wp * (1.0 - wn));
  add(b.lambda_p_hi, b.lambda_n_hi, wp * wn);

  // Drop merged-away zero-weight corners (deterministically, keeping order).
  for (std::size_t i = b.corners.size(); i-- > 0;) {
    if (b.weights[i] <= 0.0 && b.corners.size() > 1) {
      b.corners.erase(b.corners.begin() + static_cast<std::ptrdiff_t>(i));
      b.weights.erase(b.weights.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return b;
}

namespace {

/// Interpolates one scalar across corners and folds its certified bound.
double blend(const std::vector<const liberty::Cell*>& corners, const std::vector<double>& weights,
             double& bound_ps, const std::vector<double>& values) {
  double v = 0.0;
  double lo = values[0];
  double hi = values[0];
  for (std::size_t i = 0; i < values.size(); ++i) {
    v += weights[i] * values[i];
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  (void)corners;
  bound_ps = std::max(bound_ps, std::max(v - lo, hi - v));
  return v;
}

void interpolate_table(const std::vector<const liberty::Cell*>& corners,
                       const std::vector<double>& weights,
                       const std::vector<const liberty::TimingTable*>& tables,
                       liberty::TimingTable& out, double& bound_ps) {
  std::vector<double> samples(tables.size());
  for (std::size_t e = 0; e < out.delay_ps.values().size(); ++e) {
    for (std::size_t i = 0; i < tables.size(); ++i) samples[i] = tables[i]->delay_ps.values()[e];
    out.delay_ps.values()[e] = blend(corners, weights, bound_ps, samples);
    for (std::size_t i = 0; i < tables.size(); ++i) {
      samples[i] = tables[i]->out_slew_ps.values()[e];
    }
    out.out_slew_ps.values()[e] = blend(corners, weights, bound_ps, samples);
  }
}

}  // namespace

InterpolatedCell interpolate_cell(const LatticeBracket& bracket,
                                  const std::vector<const liberty::Cell*>& corners) {
  if (corners.empty() || corners.size() != bracket.corners.size()) {
    throw std::invalid_argument("interpolate_cell: corner/bracket size mismatch");
  }
  const liberty::Cell& base = *corners[0];
  for (const liberty::Cell* c : corners) {
    if (c->name != base.name || c->arcs.size() != base.arcs.size() ||
        c->is_flop != base.is_flop) {
      throw std::invalid_argument("interpolate_cell: structurally different corner cells for " +
                                  base.name);
    }
  }

  InterpolatedCell out;
  out.cell = base;
  double& bound = out.bound_ps;

  std::vector<double> samples(corners.size());
  const auto blend_scalar = [&](auto member) {
    for (std::size_t i = 0; i < corners.size(); ++i) samples[i] = (*corners[i]).*member;
    return blend(corners, bracket.weights, bound, samples);
  };
  out.cell.setup_ps = blend_scalar(&liberty::Cell::setup_ps);
  out.cell.hold_ps = blend_scalar(&liberty::Cell::hold_ps);

  for (std::size_t a = 0; a < base.arcs.size(); ++a) {
    std::vector<const liberty::TimingTable*> rise;
    std::vector<const liberty::TimingTable*> fall;
    for (const liberty::Cell* c : corners) {
      if (c->arcs[a].related_pin != base.arcs[a].related_pin ||
          c->arcs[a].rise.empty() != base.arcs[a].rise.empty() ||
          c->arcs[a].fall.empty() != base.arcs[a].fall.empty()) {
        throw std::invalid_argument("interpolate_cell: arc mismatch in " + base.name);
      }
      rise.push_back(&c->arcs[a].rise);
      fall.push_back(&c->arcs[a].fall);
    }
    if (!base.arcs[a].rise.empty()) {
      interpolate_table(corners, bracket.weights, rise, out.cell.arcs[a].rise, bound);
    }
    if (!base.arcs[a].fall.empty()) {
      interpolate_table(corners, bracket.weights, fall, out.cell.arcs[a].fall, bound);
    }
  }

  // Union of the corners' fallback points: entries resting on interpolated
  // convergence fallbacks stay flagged in the derived cell too.
  out.cell.fallbacks.clear();
  for (const liberty::Cell* c : corners) {
    for (const auto& fb : c->fallbacks) {
      if (std::find(out.cell.fallbacks.begin(), out.cell.fallbacks.end(), fb) ==
          out.cell.fallbacks.end()) {
        out.cell.fallbacks.push_back(fb);
      }
    }
  }

  out.cell.interp = liberty::InterpMarker{bracket.lambda_p_lo, bracket.lambda_p_hi,
                                          bracket.lambda_n_lo, bracket.lambda_n_hi, bound};
  return out;
}

}  // namespace rw::charlib
