#pragma once

/// \file interval_query.hpp
/// The interval library query layer of `rwprove`: turns each instance's
/// statically proven (λp, λn) interval (stress/analyzer.hpp) into the set of
/// λ-lattice corner cells that *bracket* it, so the interval STA
/// (sta/interval_sta.hpp) can bound any admissible aged table lookup by the
/// min/max over those corners.
///
/// ## Why corner bracketing is sound
///
/// The dynamic flow quantizes each measured duty cycle onto the λ lattice
/// (`aging::quantize_lambda`, step 0.1) before characterizing the corner it
/// times against. Quantization is monotone, so any annotation derived from a
/// workload admitted by the input model lands on a lattice point inside
///   [quantize(λ.lo), quantize(λ.hi)]     (per axis, λp and λn independently,
/// which also covers the round-half-away ties where q(1 − λ) ≠ 1 − q(λ)).
/// Aging response is monotone along each λ axis per table entry — the same
/// assumption the adaptive corner grid's certified interpolation rests on
/// (charlib/adaptive.hpp) — so every in-range lattice corner's table entries
/// lie within the entry ranges of the 2×2 *extreme* corners
///   {q(λp.lo), q(λp.hi)} × {q(λn.lo), q(λn.hi)},
/// and bracketing with those ≤ 4 cells bounds them all.
///
/// ## Certified interpolation bounds
///
/// A corner served by the adaptive λ grid carries an `rw_interp` marker
/// (LB007 machinery) whose `bound_ps` certifies the worst-case per-entry
/// error against direct characterization. The interval STA folds that bound
/// (scaled by the NLDM extrapolation amplification, util::TableRange::amp)
/// into every lookup over the corner, so interpolated corners stay sound.

#include <vector>

#include "aging/scenario.hpp"
#include "charlib/factory.hpp"
#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "stress/analyzer.hpp"

namespace rw::charlib {

/// The bracketing corner cells proving one instance's aged timing interval.
struct InstanceCorners {
  /// Base (fresh) cell — pin layout / structural reference. Never null for
  /// results returned by the functions below.
  const liberty::Cell* fresh = nullptr;
  /// Distinct bracketing λ-lattice corner cells (1, 2, or 4).
  std::vector<const liberty::Cell*> corners;
  /// Bracketing corners that could not be resolved (absent from the merged
  /// library, or quarantined by the factory). Any missing corner — not just
  /// all of them — makes the instance's timing interval *vacuous* (PV003):
  /// a partial bracket does not bound the λ interval.
  int missing = 0;
  /// Max certified `rw_interp` bound across the resolved corners [ps];
  /// 0 for directly characterized corners.
  double interp_bound_ps = 0.0;
};

/// The ≤ 4 extreme lattice scenarios bracketing one instance's proven
/// (λp, λn) interval at lifetime `years` (deterministic order: λp low→high,
/// λn varying fastest; duplicates collapsed).
std::vector<aging::AgingScenario> bracket_scenarios(const stress::InstanceBounds& bounds,
                                                    double years, double lambda_step = 0.1);

/// Resolve bracketing corners from a `LibraryFactory`: distinct (cell,
/// corner) pairs are characterized in parallel; quarantined pairs count as
/// `missing`. References stay valid for the factory's lifetime.
/// \throws std::runtime_error when an instance's base cell is unknown.
std::vector<InstanceCorners> corners_from_factory(const netlist::Module& module,
                                                  const stress::StressReport& report,
                                                  LibraryFactory& factory, double years,
                                                  double lambda_step = 0.1);

/// Resolve bracketing corners from a pre-characterized merged library whose
/// cells use λ-indexed names (`<base>_<λp>_<λn>`). Corners absent from
/// `merged` count as `missing`. `fresh` resolves the base cells.
/// \throws std::runtime_error when an instance's base cell is unknown.
std::vector<InstanceCorners> corners_from_library(const netlist::Module& module,
                                                  const stress::StressReport& report,
                                                  const liberty::Library& merged,
                                                  const liberty::Library& fresh,
                                                  double lambda_step = 0.1);

/// The merged-library name of one bracketing corner: `<base>_<λp>_<λn>`.
std::string bracket_cell_name(const std::string& base, const aging::AgingScenario& corner);

}  // namespace rw::charlib
