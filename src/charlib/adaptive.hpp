#pragma once

/// \file adaptive.hpp
/// Error-bounded adaptive λ-corner grid.
///
/// The paper's full sweep characterizes every (λp, λn) corner on an 11×11
/// 0.1-step grid — 121 SPICE campaigns. Aging response along each λ axis is
/// monotone (more stress never makes a BTI-degraded cell faster, and the
/// Fig. 1(b) anomaly is monotone in the opposite direction), so intermediate
/// corners can be served by bilinear interpolation between a *sparse*
/// characterized lattice with a certified error bound: the true value lies
/// within the bracketing corners' value range, hence
///   |error| <= max(v_interp - min_corner, max_corner - v_interp)
/// per table entry. A corner whose bound exceeds the flow tolerance is
/// refined — characterized directly — so accuracy is never silently traded.
///
/// `LibraryFactory` owns the policy (which corners to characterize, when to
/// refine, how to key the cache); this module provides the deterministic
/// lattice geometry and the certified interpolation itself.

#include <cstdint>
#include <string>
#include <vector>

#include "aging/scenario.hpp"
#include "liberty/library.hpp"

namespace rw::charlib {

/// Process-wide adaptive-grid counters (relaxed atomics, diagnostics only;
/// `bench/perf_micro` emits them into BENCH_perf.json next to the solver
/// counters).
struct AdaptiveCounters {
  std::uint64_t cells_interpolated = 0;        ///< cells served without SPICE
  std::uint64_t corners_refined = 0;           ///< bound > tol -> direct characterization
  std::uint64_t solves_avoided_by_interp = 0;  ///< grid tasks interpolation replaced
};
AdaptiveCounters adaptive_counters();
void reset_adaptive_counters();
namespace stats {
void add_cell_interpolated(std::uint64_t solves_avoided);
void add_corner_refined();
}  // namespace stats

/// Knobs for the adaptive λ lattice, env-seeded so flows opt in without
/// code changes ($RW_CHAR_ADAPTIVE, $RW_CHAR_INTERP_TOL_PS,
/// $RW_CHAR_LATTICE_STEP).
struct AdaptiveGridOptions {
  bool enabled = false;        ///< serve off-lattice corners by interpolation
  double interp_tol_ps = 2.0;  ///< refine when the certified bound exceeds this
  double lattice_step = 0.2;   ///< characterized-lattice pitch on the λ axes

  static AdaptiveGridOptions from_env();

  /// Cache-key component: interpolated results are only valid for one
  /// (step, tolerance) policy, so the disk cache is keyed on it. Empty when
  /// disabled (bit-compatible with pre-adaptive cache layouts).
  [[nodiscard]] std::string cache_tag() const;

  [[nodiscard]] bool operator==(const AdaptiveGridOptions&) const = default;
};

/// True when the scenario's (λp, λn) lies on the sparse characterized
/// lattice (multiples of `step`, within quantization tolerance). Fresh
/// scenarios are always lattice points (they are characterized directly).
[[nodiscard]] bool on_lattice(const aging::AgingScenario& scenario, double step);

/// The distinct lattice scenarios bracketing a target corner, with bilinear
/// weights (deterministic order: λn varies fastest, low before high; weights
/// sum to 1). A target on the lattice brackets to itself with weight 1.
/// Corner scenarios inherit years/include_mobility from the target, so they
/// are themselves characterizable scenarios.
struct LatticeBracket {
  std::vector<aging::AgingScenario> corners;  ///< 1, 2, or 4 entries
  std::vector<double> weights;
  double lambda_p_lo = 0.0;
  double lambda_p_hi = 0.0;
  double lambda_n_lo = 0.0;
  double lambda_n_hi = 0.0;
};
[[nodiscard]] LatticeBracket lattice_bracket(const aging::AgingScenario& target, double step);

/// A λ-interpolated cell plus its certified worst-case error bound.
struct InterpolatedCell {
  liberty::Cell cell;
  double bound_ps = 0.0;
};

/// Bilinearly interpolates every numeric timing quantity (NLDM delay/slew
/// entries, setup/hold) of structurally identical corner cells and computes
/// the certified bound (max over entries). `corners[i]` corresponds to
/// `bracket.corners[i]`. The result carries an `InterpMarker` and the union
/// of the corners' fallback points (interpolation from second-class data
/// stays visibly second-class).
/// \throws std::invalid_argument when corner cells disagree structurally.
[[nodiscard]] InterpolatedCell interpolate_cell(const LatticeBracket& bracket,
                                                const std::vector<const liberty::Cell*>& corners);

}  // namespace rw::charlib
