#include "charlib/characterizer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>

#include "cells/function.hpp"
#include "spice/measure.hpp"
#include "spice/solver.hpp"
#include "util/interp.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

namespace {

using cells::CellSpec;
using spice::Circuit;
using spice::NodeId;
using spice::Pwl;

/// One arc sensitization: side-input values plus the switching pin's edge.
struct ArcRun {
  std::string pin;
  std::vector<bool> side;  ///< values per spec.inputs (entry for `pin` = pre-edge value)
  bool in_rising = true;
  bool out_rising = true;
};

/// Finds a side-input assignment under which toggling `pin` produces the
/// requested output transition. Prefers an input rise; falls back to an
/// input fall (needed for positive-unate cells' falling output, etc.).
std::optional<ArcRun> find_sensitization(const CellSpec& spec, const std::string& pin,
                                         bool out_rising) {
  const auto n = spec.inputs.size();
  std::size_t pin_idx = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.inputs[i] == pin) pin_idx = i;
  }
  if (pin_idx == n) throw std::invalid_argument("find_sensitization: unknown pin " + pin);

  for (const bool in_rising : {true, false}) {
    for (std::uint64_t pattern = 0; pattern < (1ULL << n); ++pattern) {
      std::vector<bool> lo(n);
      std::vector<bool> hi(n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool v = ((pattern >> i) & 1ULL) != 0;
        lo[i] = (i == pin_idx) ? false : v;
        hi[i] = (i == pin_idx) ? true : v;
      }
      const bool out_lo = cells::eval_cell(spec, lo);
      const bool out_hi = cells::eval_cell(spec, hi);
      if (out_lo == out_hi) continue;
      const bool before = in_rising ? out_lo : out_hi;
      const bool after = in_rising ? out_hi : out_lo;
      if (!before && after && out_rising) {
        return ArcRun{pin, in_rising ? lo : hi, in_rising, true};
      }
      if (before && !after && !out_rising) {
        return ArcRun{pin, in_rising ? lo : hi, in_rising, false};
      }
    }
  }
  return std::nullopt;
}

struct Measurement {
  double delay_ps;
  double slew_ps;
};

/// Runs one transient and measures the output edge, growing the settle
/// window on failure.
Measurement run_and_measure(const std::function<Circuit(double window_ps)>& build,
                            NodeId out_node, double input_t50_ps, bool out_rising, double vdd,
                            double base_window_ps, const std::string& what) {
  double window = base_window_ps;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const Circuit circuit = build(window);
    spice::TransientOptions topt;
    topt.t_stop_ps = window;
    const auto result = spice::simulate_transient(circuit, topt, {out_node});
    const auto timing =
        spice::measure_edge(result.waveform(out_node), input_t50_ps, out_rising, vdd);
    if (timing) return Measurement{timing->delay_ps, timing->slew_ps};
    window *= 2.0;
  }
  throw std::runtime_error("characterize: output failed to settle for " + what);
}

device::Degradation degradation_for(device::MosType type, const aging::AgingScenario& scenario,
                                    const CharacterizeOptions& options) {
  if (scenario.is_fresh()) return {};
  const aging::BtiModel model(options.bti);
  const double lambda =
      type == device::MosType::kPmos ? scenario.lambda_p : scenario.lambda_n;
  return model.degrade(type, lambda, scenario.years, scenario.include_mobility);
}

}  // namespace

NodeId append_cell_instance(
    Circuit& circuit, const CellSpec& spec, const aging::AgingScenario& scenario,
    const CharacterizeOptions& options, const std::string& prefix, NodeId vdd_node,
    const std::vector<std::pair<std::string, NodeId>>& pin_bindings) {
  const auto deg_p = degradation_for(device::MosType::kPmos, scenario, options);
  const auto deg_n = degradation_for(device::MosType::kNmos, scenario, options);

  std::map<std::string, NodeId> local;
  local["VDD"] = vdd_node;
  local["GND"] = spice::kGround;
  for (const auto& [name, node] : pin_bindings) local[name] = node;

  const auto resolve = [&](const std::string& name) -> NodeId {
    const auto it = local.find(name);
    if (it != local.end()) return it->second;
    const NodeId id = circuit.add_node(prefix + name);
    local.emplace(name, id);
    return id;
  };

  std::map<NodeId, double> node_cap;
  std::map<NodeId, bool> is_internal;
  NodeId out_node = -1;
  for (const auto& t : cells::materialize(spec, options.tech)) {
    const NodeId g = resolve(t.gate);
    const NodeId d = resolve(t.drain);
    const NodeId s = resolve(t.source);
    const auto& params =
        t.type == device::MosType::kNmos ? options.tech.nmos : options.tech.pmos;
    const auto& deg = t.type == device::MosType::kNmos ? deg_n : deg_p;
    device::Mosfet fet(params, t.width_um, deg);
    node_cap[g] += fet.gate_cap_ff();
    node_cap[d] += fet.junction_cap_ff();
    node_cap[s] += fet.junction_cap_ff();
    circuit.add_mosfet(std::move(fet), g, d, s);
    if (t.drain == spec.output || t.source == spec.output) out_node = resolve(spec.output);
    // Nodes not bound from outside and not rails are cell-internal.
    for (const auto& name : {t.gate, t.drain, t.source}) {
      if (name != "VDD" && name != "GND") {
        const bool bound = std::any_of(pin_bindings.begin(), pin_bindings.end(),
                                       [&](const auto& b) { return b.first == name; });
        if (!bound) is_internal[local.at(name)] = true;
      }
    }
  }
  if (out_node < 0) {
    throw std::runtime_error("append_cell_instance: output never connected in " + spec.name);
  }
  // Layout wire parasitic per internal node.
  for (const auto& [node, internal] : is_internal) {
    if (internal) node_cap[node] += options.wire_cap_per_node_ff;
  }
  for (const auto& [node, cap] : node_cap) {
    if (node != spice::kGround && node != vdd_node && cap > 0.0) {
      circuit.add_capacitor(node, spice::kGround, cap);
    }
  }
  return out_node;
}

namespace {

/// Builds the single-cell test bench for one combinational arc point.
Circuit build_comb_bench(const CellSpec& spec, const aging::AgingScenario& scenario,
                         const CharacterizeOptions& options, const ArcRun& run, double slew_ps,
                         double load_ff, double t_start_ps, NodeId& out_node) {
  const double vdd = options.tech.vdd_v;
  Circuit c;
  const NodeId vdd_node = c.add_node("VDD");
  c.add_source(vdd_node, Pwl::dc(vdd));

  std::vector<std::pair<std::string, NodeId>> bindings;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    const NodeId n = c.add_node(spec.inputs[i]);
    bindings.emplace_back(spec.inputs[i], n);
    if (spec.inputs[i] == run.pin) {
      const double v0 = run.in_rising ? 0.0 : vdd;
      const double v1 = run.in_rising ? vdd : 0.0;
      c.add_source(n, Pwl::ramp(t_start_ps, slew_ps, v0, v1));
    } else {
      c.add_source(n, Pwl::dc(run.side[i] ? vdd : 0.0));
    }
  }
  out_node = append_cell_instance(c, spec, scenario, options, "u:", vdd_node, bindings);
  if (load_ff > 0.0) c.add_capacitor(out_node, spice::kGround, load_ff);
  return c;
}

liberty::TimingTable make_table(const OpcGrid& grid, const std::vector<double>& delays,
                                const std::vector<double>& slews) {
  liberty::TimingTable t;
  t.delay_ps = util::Table2D(util::Axis(grid.slews_ps), util::Axis(grid.loads_ff), delays);
  t.out_slew_ps = util::Table2D(util::Axis(grid.slews_ps), util::Axis(grid.loads_ff), slews);
  return t;
}

liberty::TimingTable characterize_comb_arc(const CellSpec& spec,
                                           const aging::AgingScenario& scenario,
                                           const CharacterizeOptions& options, const ArcRun& run) {
  const double t_start = 20.0;
  const std::size_t n_loads = options.grid.loads_ff.size();
  // Grid points are independent transients: fan them over the pool, each
  // writing only its own pre-sized slot so the tables are bitwise identical
  // for any thread count.
  std::vector<double> delays(options.grid.size());
  std::vector<double> slews(options.grid.size());
  util::ThreadPool::shared().parallel_for(options.grid.size(), [&](std::size_t i) {
    const double slew = options.grid.slews_ps[i / n_loads];
    const double load = options.grid.loads_ff[i % n_loads];
    // Node ids are deterministic across rebuilds; learn the output id once.
    NodeId out_node = -1;
    (void)build_comb_bench(spec, scenario, options, run, slew, load, t_start, out_node);
    const double ramp_full = slew / 0.8;
    const double window = t_start + ramp_full + 600.0 + 25.0 * load;
    const double t50_in = t_start + 0.5 * ramp_full;
    const auto m = run_and_measure(
        [&](double) {
          NodeId dummy = -1;
          return build_comb_bench(spec, scenario, options, run, slew, load, t_start, dummy);
        },
        out_node, t50_in, run.out_rising, options.tech.vdd_v, window,
        spec.name + "/" + run.pin + (run.out_rising ? " rise" : " fall"));
    delays[i] = m.delay_ps;
    slews[i] = m.slew_ps;
  });
  return make_table(options.grid, delays, slews);
}

/// Flop bench: two clock pulses; the second (measured) rising edge captures a
/// D value opposite to the initial state so Q transitions.
Circuit build_flop_bench(const CellSpec& spec, const aging::AgingScenario& scenario,
                         const CharacterizeOptions& options, bool q_rising, double ck_slew_ps,
                         double load_ff, double d_edge_ps, double ck_edge_ps, NodeId& out_node) {
  const double vdd = options.tech.vdd_v;
  const double v_target = q_rising ? vdd : 0.0;
  const double v_init = q_rising ? 0.0 : vdd;
  Circuit c;
  const NodeId vdd_node = c.add_node("VDD");
  c.add_source(vdd_node, Pwl::dc(vdd));
  const NodeId d_node = c.add_node("D");
  const NodeId ck_node = c.add_node("CK");

  // D: holds the initial value through the first clock pulse, then flips.
  c.add_source(d_node, Pwl{{{0.0, v_init}, {d_edge_ps, v_init}, {d_edge_ps + 25.0, v_target}}});
  // CK: first fast pulse loads Q=init; measured slewed rise at ck_edge_ps.
  const double full = ck_slew_ps / 0.8;
  c.add_source(ck_node, Pwl{{{0.0, 0.0},
                             {50.0, 0.0},
                             {75.0, vdd},
                             {350.0, vdd},
                             {375.0, 0.0},
                             {ck_edge_ps, 0.0},
                             {ck_edge_ps + full, vdd}}});

  out_node = append_cell_instance(c, spec, scenario, options, "u:", vdd_node,
                                  {{"D", d_node}, {"CK", ck_node}});
  if (load_ff > 0.0) c.add_capacitor(out_node, spice::kGround, load_ff);
  return c;
}

liberty::TimingTable characterize_flop_arc(const CellSpec& spec,
                                           const aging::AgingScenario& scenario,
                                           const CharacterizeOptions& options, bool q_rising) {
  const std::size_t n_loads = options.grid.loads_ff.size();
  std::vector<double> delays(options.grid.size());
  std::vector<double> slews(options.grid.size());
  util::ThreadPool::shared().parallel_for(options.grid.size(), [&](std::size_t i) {
    const double ck_slew = options.grid.slews_ps[i / n_loads];
    const double load = options.grid.loads_ff[i % n_loads];
    const double d_edge = 500.0;
    const double ck_edge = 900.0;
    NodeId out_node = -1;
    (void)build_flop_bench(spec, scenario, options, q_rising, ck_slew, load, d_edge, ck_edge,
                           out_node);
    const double full = ck_slew / 0.8;
    const double t50_ck = ck_edge + 0.5 * full;
    const double window = ck_edge + full + 600.0 + 25.0 * load;
    const auto m = run_and_measure(
        [&](double) {
          NodeId dummy = -1;
          return build_flop_bench(spec, scenario, options, q_rising, ck_slew, load, d_edge,
                                  ck_edge, dummy);
        },
        out_node, t50_ck, q_rising, options.tech.vdd_v, window,
        spec.name + std::string("/CK->Q ") + (q_rising ? "rise" : "fall"));
    delays[i] = m.delay_ps;
    slews[i] = m.slew_ps;
  });
  return make_table(options.grid, delays, slews);
}

/// Setup time by bisection: the smallest D-before-CK interval that still
/// captures the new value.
double characterize_setup(const CellSpec& spec, const aging::AgingScenario& scenario,
                          const CharacterizeOptions& options) {
  const double vdd = options.tech.vdd_v;
  const double ck_edge = 900.0;
  const auto captured = [&](double offset_ps) {
    NodeId out_node = -1;
    const Circuit c = build_flop_bench(spec, scenario, options, /*q_rising=*/true,
                                       options.flop_char_slew_ps, options.flop_char_load_ff,
                                       ck_edge - offset_ps, ck_edge, out_node);
    spice::TransientOptions topt;
    topt.t_stop_ps = ck_edge + 700.0;
    const auto result = spice::simulate_transient(c, topt, {out_node});
    return result.waveform(out_node).back_value() > 0.5 * vdd;
  };

  double lo = 0.0;
  double hi = 400.0;
  if (!captured(hi)) return hi;  // pathological; report the bound
  if (captured(lo)) return 5.0;  // effectively zero; keep a small margin
  for (int i = 0; i < 8; ++i) {
    const double mid = 0.5 * (lo + hi);
    (captured(mid) ? hi : lo) = mid;
  }
  return hi + 5.0;  // small safety margin
}

}  // namespace

liberty::Cell characterize_cell(const CellSpec& spec, const aging::AgingScenario& scenario,
                                const CharacterizeOptions& options) {
  liberty::Cell cell;
  cell.name = spec.name;
  cell.family = spec.family;
  cell.drive_x = spec.drive_x;
  cell.area_um2 = cells::cell_area_um2(spec, options.tech);
  cell.is_flop = spec.is_flop;
  cell.output_pin = spec.output;

  for (const auto& pin : spec.inputs) {
    liberty::Pin p;
    p.name = pin;
    p.is_input = true;
    p.is_clock = spec.is_flop && pin == "CK";
    p.cap_ff = cells::pin_input_cap_ff(spec, options.tech, pin);
    cell.pins.push_back(std::move(p));
  }
  liberty::Pin out;
  out.name = spec.output;
  out.is_input = false;
  cell.pins.push_back(std::move(out));

  if (spec.is_flop) {
    liberty::TimingArc arc;
    arc.related_pin = "CK";
    arc.sense = liberty::TimingSense::kNonUnate;
    arc.clocked = true;
    arc.rise = characterize_flop_arc(spec, scenario, options, /*q_rising=*/true);
    arc.fall = characterize_flop_arc(spec, scenario, options, /*q_rising=*/false);
    cell.arcs.push_back(std::move(arc));
    cell.setup_ps = characterize_setup(spec, scenario, options);
    cell.hold_ps = 0.0;
    return cell;
  }

  cell.truth = cells::truth_table(spec);
  for (const auto& pin : spec.inputs) {
    liberty::TimingArc arc;
    arc.related_pin = pin;
    const int unate = cells::arc_unateness(spec, pin);
    arc.sense = unate > 0   ? liberty::TimingSense::kPositiveUnate
                : unate < 0 ? liberty::TimingSense::kNegativeUnate
                            : liberty::TimingSense::kNonUnate;
    if (const auto run = find_sensitization(spec, pin, /*out_rising=*/true)) {
      arc.rise = characterize_comb_arc(spec, scenario, options, *run);
    }
    if (const auto run = find_sensitization(spec, pin, /*out_rising=*/false)) {
      arc.fall = characterize_comb_arc(spec, scenario, options, *run);
    }
    if (arc.rise.empty() && arc.fall.empty()) {
      throw std::runtime_error("characterize_cell: pin " + pin + " of " + spec.name +
                               " cannot be sensitized");
    }
    cell.arcs.push_back(std::move(arc));
  }
  return cell;
}

}  // namespace rw::charlib
