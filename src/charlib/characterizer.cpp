#include "charlib/characterizer.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "cells/function.hpp"
#include "flow/cancel.hpp"
#include "spice/fault.hpp"
#include "spice/measure.hpp"
#include "spice/solver.hpp"
#include "spice/stats.hpp"
#include "util/interp.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

CharError::CharError(std::string cell, std::string context, const std::string& detail)
    : std::runtime_error("characterize " + cell + " [" + context + "]: " + detail),
      cell_(std::move(cell)),
      context_(std::move(context)) {}

namespace {

using cells::CellSpec;
using spice::Circuit;
using spice::NodeId;
using spice::Pwl;

/// One arc sensitization: side-input values plus the switching pin's edge.
struct ArcRun {
  std::string pin;
  std::vector<bool> side;  ///< values per spec.inputs (entry for `pin` = pre-edge value)
  bool in_rising = true;
  bool out_rising = true;
};

/// Finds a side-input assignment under which toggling `pin` produces the
/// requested output transition. Prefers an input rise; falls back to an
/// input fall (needed for positive-unate cells' falling output, etc.).
std::optional<ArcRun> find_sensitization(const CellSpec& spec, const std::string& pin,
                                         bool out_rising) {
  const auto n = spec.inputs.size();
  std::size_t pin_idx = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (spec.inputs[i] == pin) pin_idx = i;
  }
  if (pin_idx == n) throw std::invalid_argument("find_sensitization: unknown pin " + pin);

  for (const bool in_rising : {true, false}) {
    for (std::uint64_t pattern = 0; pattern < (1ULL << n); ++pattern) {
      std::vector<bool> lo(n);
      std::vector<bool> hi(n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool v = ((pattern >> i) & 1ULL) != 0;
        lo[i] = (i == pin_idx) ? false : v;
        hi[i] = (i == pin_idx) ? true : v;
      }
      const bool out_lo = cells::eval_cell(spec, lo);
      const bool out_hi = cells::eval_cell(spec, hi);
      if (out_lo == out_hi) continue;
      const bool before = in_rising ? out_lo : out_hi;
      const bool after = in_rising ? out_hi : out_lo;
      if (!before && after && out_rising) {
        return ArcRun{pin, in_rising ? lo : hi, in_rising, true};
      }
      if (before && !after && !out_rising) {
        return ArcRun{pin, in_rising ? lo : hi, in_rising, false};
      }
    }
  }
  return std::nullopt;
}

struct Measurement {
  double delay_ps;
  double slew_ps;
};

/// Runs one transient on a pre-built circuit and measures the output edge,
/// growing the settle window (t_stop only — the circuit itself is
/// window-independent, so it is never rebuilt) on failure.
Measurement run_and_measure(const Circuit& circuit, NodeId out_node, double input_t50_ps,
                            bool out_rising, double vdd, double base_window_ps,
                            const std::string& what, const spice::TransientOptions& topt_base) {
  double window = base_window_ps;
  for (int attempt = 0; attempt < 3; ++attempt) {
    spice::TransientOptions topt = topt_base;
    topt.t_stop_ps = window;
    const auto result = spice::simulate_transient(circuit, topt, {out_node});
    const auto timing =
        spice::measure_edge(result.waveform(out_node), input_t50_ps, out_rising, vdd);
    if (timing) return Measurement{timing->delay_ps, timing->slew_ps};
    window *= 2.0;
  }
  throw std::runtime_error("characterize: output failed to settle for " + what);
}

device::Degradation degradation_for(device::MosType type, const aging::AgingScenario& scenario,
                                    const CharacterizeOptions& options) {
  if (scenario.is_fresh()) return {};
  const aging::BtiModel model(options.bti);
  const double lambda =
      type == device::MosType::kPmos ? scenario.lambda_p : scenario.lambda_n;
  return model.degrade(type, lambda, scenario.years, scenario.include_mobility);
}

}  // namespace

NodeId append_cell_instance(
    Circuit& circuit, const CellSpec& spec, const aging::AgingScenario& scenario,
    const CharacterizeOptions& options, const std::string& prefix, NodeId vdd_node,
    const std::vector<std::pair<std::string, NodeId>>& pin_bindings) {
  const auto deg_p = degradation_for(device::MosType::kPmos, scenario, options);
  const auto deg_n = degradation_for(device::MosType::kNmos, scenario, options);

  std::map<std::string, NodeId> local;
  local["VDD"] = vdd_node;
  local["GND"] = spice::kGround;
  for (const auto& [name, node] : pin_bindings) local[name] = node;

  const auto resolve = [&](const std::string& name) -> NodeId {
    const auto it = local.find(name);
    if (it != local.end()) return it->second;
    const NodeId id = circuit.add_node(prefix + name);
    local.emplace(name, id);
    return id;
  };

  std::map<NodeId, double> node_cap;
  std::map<NodeId, bool> is_internal;
  NodeId out_node = -1;
  for (const auto& t : cells::materialize(spec, options.tech)) {
    const NodeId g = resolve(t.gate);
    const NodeId d = resolve(t.drain);
    const NodeId s = resolve(t.source);
    const auto& params =
        t.type == device::MosType::kNmos ? options.tech.nmos : options.tech.pmos;
    const auto& deg = t.type == device::MosType::kNmos ? deg_n : deg_p;
    device::Mosfet fet(params, t.width_um, deg);
    node_cap[g] += fet.gate_cap_ff();
    node_cap[d] += fet.junction_cap_ff();
    node_cap[s] += fet.junction_cap_ff();
    circuit.add_mosfet(std::move(fet), g, d, s);
    if (t.drain == spec.output || t.source == spec.output) out_node = resolve(spec.output);
    // Nodes not bound from outside and not rails are cell-internal.
    for (const auto& name : {t.gate, t.drain, t.source}) {
      if (name != "VDD" && name != "GND") {
        const bool bound = std::any_of(pin_bindings.begin(), pin_bindings.end(),
                                       [&](const auto& b) { return b.first == name; });
        if (!bound) is_internal[local.at(name)] = true;
      }
    }
  }
  if (out_node < 0) {
    throw std::runtime_error("append_cell_instance: output never connected in " + spec.name);
  }
  // Layout wire parasitic per internal node.
  for (const auto& [node, internal] : is_internal) {
    if (internal) node_cap[node] += options.wire_cap_per_node_ff;
  }
  for (const auto& [node, cap] : node_cap) {
    if (node != spice::kGround && node != vdd_node && cap > 0.0) {
      circuit.add_capacitor(node, spice::kGround, cap);
    }
  }
  return out_node;
}

namespace {

/// Builds the single-cell test bench for one combinational arc point.
Circuit build_comb_bench(const CellSpec& spec, const aging::AgingScenario& scenario,
                         const CharacterizeOptions& options, const ArcRun& run, double slew_ps,
                         double load_ff, double t_start_ps, NodeId& out_node) {
  const double vdd = options.tech.vdd_v;
  Circuit c;
  const NodeId vdd_node = c.add_node("VDD");
  c.add_source(vdd_node, Pwl::dc(vdd));

  std::vector<std::pair<std::string, NodeId>> bindings;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    const NodeId n = c.add_node(spec.inputs[i]);
    bindings.emplace_back(spec.inputs[i], n);
    if (spec.inputs[i] == run.pin) {
      const double v0 = run.in_rising ? 0.0 : vdd;
      const double v1 = run.in_rising ? vdd : 0.0;
      c.add_source(n, Pwl::ramp(t_start_ps, slew_ps, v0, v1));
    } else {
      c.add_source(n, Pwl::dc(run.side[i] ? vdd : 0.0));
    }
  }
  out_node = append_cell_instance(c, spec, scenario, options, "u:", vdd_node, bindings);
  if (load_ff > 0.0) c.add_capacitor(out_node, spice::kGround, load_ff);
  return c;
}

/// Flop bench: two clock pulses; the second (measured) rising edge captures a
/// D value opposite to the initial state so Q transitions.
Circuit build_flop_bench(const CellSpec& spec, const aging::AgingScenario& scenario,
                         const CharacterizeOptions& options, bool q_rising, double ck_slew_ps,
                         double load_ff, double d_edge_ps, double ck_edge_ps, NodeId& out_node) {
  const double vdd = options.tech.vdd_v;
  const double v_target = q_rising ? vdd : 0.0;
  const double v_init = q_rising ? 0.0 : vdd;
  Circuit c;
  const NodeId vdd_node = c.add_node("VDD");
  c.add_source(vdd_node, Pwl::dc(vdd));
  const NodeId d_node = c.add_node("D");
  const NodeId ck_node = c.add_node("CK");

  // D: holds the initial value through the first clock pulse, then flips.
  c.add_source(d_node, Pwl{{{0.0, v_init}, {d_edge_ps, v_init}, {d_edge_ps + 25.0, v_target}}});
  // CK: first fast pulse loads Q=init; measured slewed rise at ck_edge_ps.
  const double full = ck_slew_ps / 0.8;
  c.add_source(ck_node, Pwl{{{0.0, 0.0},
                             {50.0, 0.0},
                             {75.0, vdd},
                             {350.0, vdd},
                             {375.0, 0.0},
                             {ck_edge_ps, 0.0},
                             {ck_edge_ps + full, vdd}}});

  out_node = append_cell_instance(c, spec, scenario, options, "u:", vdd_node,
                                  {{"D", d_node}, {"CK", ck_node}});
  if (load_ff > 0.0) c.add_capacitor(out_node, spice::kGround, load_ff);
  return c;
}

liberty::TimingTable make_table(const OpcGrid& grid, const std::vector<double>& delays,
                                const std::vector<double>& slews) {
  liberty::TimingTable t;
  t.delay_ps = util::Table2D(util::Axis(grid.slews_ps), util::Axis(grid.loads_ff), delays);
  t.out_slew_ps = util::Table2D(util::Axis(grid.slews_ps), util::Axis(grid.loads_ff), slews);
  return t;
}

/// Per-point outcome of one arc's grid sweep (slot-indexed, thread-safe by
/// pre-sizing: each grid point writes only its own entries).
struct GridSweep {
  std::vector<double> delays;
  std::vector<double> slews;
  std::vector<char> failed;          ///< 1 = SolverError after the full ladder
  std::vector<std::string> errors;   ///< failure message per failed slot

  explicit GridSweep(std::size_t n) : delays(n), slews(n), failed(n, 0), errors(n) {}
};

/// Fills every failed grid point from converged neighbors, deterministically:
/// prefer a bracketing pair on the load axis (linear in load), then on the
/// slew axis, then the nearest converged point in the same row, column, and
/// finally grid-wide (lowest index breaks ties). Only originally-converged
/// points are ever used as sources, so the result does not depend on the
/// order failed points are visited.
/// \throws CharError when the arc has no converged point at all.
void interpolate_failed_points(const OpcGrid& grid, GridSweep& sweep, const std::string& cell_name,
                               const std::string& pin, bool rising,
                               const std::string& scenario_id,
                               std::vector<liberty::FallbackPoint>& fallbacks) {
  const std::size_t n_loads = grid.loads_ff.size();
  const std::size_t n_slews = grid.slews_ps.size();
  const auto at = [&](std::size_t s, std::size_t l) { return s * n_loads + l; };
  const auto converged = [&](std::size_t s, std::size_t l) { return sweep.failed[at(s, l)] == 0; };

  std::size_t n_failed = 0;
  std::size_t first_failed = 0;
  for (std::size_t i = 0; i < sweep.failed.size(); ++i) {
    if (sweep.failed[i] != 0 && n_failed++ == 0) first_failed = i;
  }
  if (n_failed == 0) return;

  const std::string context =
      "arc=" + pin + " dir=" + (rising ? "rise" : "fall") + " scenario=" + scenario_id;
  if (n_failed == sweep.failed.size()) {
    throw CharError(cell_name, context,
                    "all " + std::to_string(n_failed) +
                        " OPC points failed to converge; first: " + sweep.errors[first_failed]);
  }

  // Interpolated values are staged and applied after the scan so sources are
  // always originally-converged measurements, never earlier fallbacks.
  std::vector<std::pair<std::size_t, Measurement>> staged;
  for (std::size_t s = 0; s < n_slews; ++s) {
    for (std::size_t l = 0; l < n_loads; ++l) {
      if (converged(s, l)) continue;

      // 1) bracket on the load axis (same slew row).
      std::size_t lo = n_loads;
      std::size_t hi = n_loads;
      for (std::size_t k = l; k-- > 0;) {
        if (converged(s, k)) {
          lo = k;
          break;
        }
      }
      for (std::size_t k = l + 1; k < n_loads; ++k) {
        if (converged(s, k)) {
          hi = k;
          break;
        }
      }
      Measurement m{};
      bool found = false;
      if (lo < n_loads && hi < n_loads) {
        const double w =
            (grid.loads_ff[l] - grid.loads_ff[lo]) / (grid.loads_ff[hi] - grid.loads_ff[lo]);
        m.delay_ps =
            sweep.delays[at(s, lo)] + w * (sweep.delays[at(s, hi)] - sweep.delays[at(s, lo)]);
        m.slew_ps = sweep.slews[at(s, lo)] + w * (sweep.slews[at(s, hi)] - sweep.slews[at(s, lo)]);
        found = true;
      }
      // 2) bracket on the slew axis (same load column).
      if (!found) {
        std::size_t slo = n_slews;
        std::size_t shi = n_slews;
        for (std::size_t k = s; k-- > 0;) {
          if (converged(k, l)) {
            slo = k;
            break;
          }
        }
        for (std::size_t k = s + 1; k < n_slews; ++k) {
          if (converged(k, l)) {
            shi = k;
            break;
          }
        }
        if (slo < n_slews && shi < n_slews) {
          const double w = (grid.slews_ps[s] - grid.slews_ps[slo]) /
                           (grid.slews_ps[shi] - grid.slews_ps[slo]);
          m.delay_ps = sweep.delays[at(slo, l)] +
                       w * (sweep.delays[at(shi, l)] - sweep.delays[at(slo, l)]);
          m.slew_ps =
              sweep.slews[at(slo, l)] + w * (sweep.slews[at(shi, l)] - sweep.slews[at(slo, l)]);
          found = true;
        }
      }
      // 3) nearest converged: same row, then same column, then grid-wide
      //    (|Δs| + |Δl| distance, lowest index wins ties).
      if (!found) {
        std::size_t best = sweep.failed.size();
        std::size_t best_dist = static_cast<std::size_t>(-1);
        const auto consider = [&](std::size_t cs, std::size_t cl) {
          if (!converged(cs, cl)) return;
          const std::size_t dist = (cs > s ? cs - s : s - cs) + (cl > l ? cl - l : l - cl);
          if (dist < best_dist) {
            best_dist = dist;
            best = at(cs, cl);
          }
        };
        for (std::size_t k = 0; k < n_loads; ++k) consider(s, k);
        if (best == sweep.failed.size()) {
          for (std::size_t k = 0; k < n_slews; ++k) consider(k, l);
        }
        if (best == sweep.failed.size()) {
          for (std::size_t cs = 0; cs < n_slews; ++cs) {
            for (std::size_t cl = 0; cl < n_loads; ++cl) consider(cs, cl);
          }
        }
        m.delay_ps = sweep.delays[best];
        m.slew_ps = sweep.slews[best];
      }

      staged.emplace_back(at(s, l), m);
      fallbacks.push_back(liberty::FallbackPoint{pin, rising, static_cast<int>(s),
                                                 static_cast<int>(l)});
    }
  }
  for (const auto& [idx, m] : staged) {
    sweep.delays[idx] = m.delay_ps;
    sweep.slews[idx] = m.slew_ps;
  }
}

/// One characterized arc direction: its grid sweep plus the shared t=0
/// operating point every grid task warm-starts from. The DC solution is
/// slew- and load-independent (sources hold their t=0 value and capacitors
/// are open at DC), so one cold solve per arc seeds all grid points; because
/// its value does not depend on which task computes it, results stay bitwise
/// identical across thread counts and task orders.
struct ArcGroup {
  std::string related_pin;     ///< fallback/table attribution ("CK" for flops)
  bool rising = true;          ///< output transition direction
  std::optional<ArcRun> run;   ///< combinational sensitization (nullopt = flop arc)
  std::size_t pin_index = 0;   ///< index into spec.inputs (combinational only)
  GridSweep sweep;
  std::once_flag dc_once;
  std::vector<double> dc_seed;  ///< full node voltages at t=0; empty = cold

  ArcGroup(std::string pin, bool out_rising, std::optional<ArcRun> arc_run, std::size_t pin_idx,
           std::size_t grid_size)
      : related_pin(std::move(pin)),
        rising(out_rising),
        run(std::move(arc_run)),
        pin_index(pin_idx),
        sweep(grid_size) {}
};

/// Setup time by bisection: the smallest D-before-CK interval that still
/// captures the new value. Warm-started from the shared rise-arc DC seed
/// (the flop bench's t=0 state is d_edge-independent).
double characterize_setup(const CellSpec& spec, const aging::AgingScenario& scenario,
                          const CharacterizeOptions& options, const std::vector<double>* seed) {
  const double vdd = options.tech.vdd_v;
  const double ck_edge = 900.0;
  const spice::FaultInjector::ScopedContext fault_ctx("cell=" + spec.name + " setup-search" +
                                                      " scenario=" + scenario.id());
  const auto captured = [&](double offset_ps) {
    flow::throw_if_cancelled();
    NodeId out_node = -1;
    const Circuit c = build_flop_bench(spec, scenario, options, /*q_rising=*/true,
                                       options.flop_char_slew_ps, options.flop_char_load_ff,
                                       ck_edge - offset_ps, ck_edge, out_node);
    spice::TransientOptions topt;
    topt.t_stop_ps = ck_edge + 700.0;
    topt.retry = options.retry;
    topt.initial_state = (seed != nullptr && !seed->empty()) ? seed : nullptr;
    const auto result = spice::simulate_transient(c, topt, {out_node});
    return result.waveform(out_node).back_value() > 0.5 * vdd;
  };

  double lo = 0.0;
  double hi = 400.0;
  if (!captured(hi)) return hi;  // pathological; report the bound
  if (captured(lo)) return 5.0;  // effectively zero; keep a small margin
  for (int i = 0; i < 8; ++i) {
    const double mid = 0.5 * (lo + hi);
    (captured(mid) ? hi : lo) = mid;
  }
  return hi + 5.0;  // small safety margin
}

}  // namespace

struct CellCharJob::Impl {
  CellSpec spec;
  aging::AgingScenario scenario;
  CharacterizeOptions options;
  std::string scenario_id;
  std::size_t n_loads = 0;
  std::size_t grid_size = 0;
  /// deque: ArcGroup holds a once_flag and must never relocate.
  std::deque<ArcGroup> groups;

  Impl(const CellSpec& s, const aging::AgingScenario& sc, const CharacterizeOptions& opt)
      : spec(s), scenario(sc), options(opt), scenario_id(sc.id()) {
    n_loads = options.grid.loads_ff.size();
    grid_size = options.grid.size();
    if (spec.is_flop) {
      groups.emplace_back("CK", true, std::nullopt, 0, grid_size);
      groups.emplace_back("CK", false, std::nullopt, 0, grid_size);
      return;
    }
    // Group order mirrors assembly order (per pin: rise then fall), keeping
    // Cell::fallbacks ordering identical to the sequential characterizer.
    for (std::size_t p = 0; p < spec.inputs.size(); ++p) {
      for (const bool out_rising : {true, false}) {
        if (auto run = find_sensitization(spec, spec.inputs[p], out_rising)) {
          groups.emplace_back(spec.inputs[p], out_rising, std::move(run), p, grid_size);
        }
      }
    }
  }

  /// Shared per-arc DC operating point; `circuit` is any grid point's bench
  /// for this arc (their t=0 states are identical). Failures leave the seed
  /// empty — every task then falls back to the cold in-transient DC chain.
  const std::vector<double>* arc_dc_seed(ArcGroup& grp, const Circuit& circuit) {
    if (!options.warm_start_dc) return nullptr;
    std::call_once(grp.dc_once, [&] {
      try {
        spice::TransientOptions topt;
        topt.retry = options.retry;
        grp.dc_seed = spice::dc_operating_point(circuit, 0.0, topt);
      } catch (...) {
        grp.dc_seed.clear();
      }
    });
    return grp.dc_seed.empty() ? nullptr : &grp.dc_seed;
  }

  void run_grid_point(ArcGroup& grp, std::size_t i) {
    const double slew = options.grid.slews_ps[i / n_loads];
    const double load = options.grid.loads_ff[i % n_loads];
    const spice::FaultInjector::ScopedContext fault_ctx(
        "cell=" + spec.name + " arc=" + grp.related_pin +
        " dir=" + (grp.rising ? "rise" : "fall") + " opc=" + std::to_string(i) +
        " scenario=" + scenario_id);

    NodeId out_node = -1;
    Circuit circuit;
    double t50_in = 0.0;
    double window = 0.0;
    std::string what;
    if (grp.run.has_value()) {
      const double t_start = 20.0;
      circuit = build_comb_bench(spec, scenario, options, *grp.run, slew, load, t_start,
                                 out_node);
      const double ramp_full = slew / 0.8;
      window = t_start + ramp_full + 600.0 + 25.0 * load;
      t50_in = t_start + 0.5 * ramp_full;
      what = spec.name + "/" + grp.related_pin + (grp.rising ? " rise" : " fall");
    } else {
      const double d_edge = 500.0;
      const double ck_edge = 900.0;
      circuit = build_flop_bench(spec, scenario, options, grp.rising, slew, load, d_edge,
                                 ck_edge, out_node);
      const double full = slew / 0.8;
      t50_in = ck_edge + 0.5 * full;
      window = ck_edge + full + 600.0 + 25.0 * load;
      what = spec.name + std::string("/CK->Q ") + (grp.rising ? "rise" : "fall");
    }

    spice::TransientOptions topt;
    topt.retry = options.retry;
    topt.initial_state = arc_dc_seed(grp, circuit);
    try {
      const auto m = run_and_measure(circuit, out_node, t50_in, grp.rising, options.tech.vdd_v,
                                     window, what, topt);
      grp.sweep.delays[i] = m.delay_ps;
      grp.sweep.slews[i] = m.slew_ps;
    } catch (const spice::SolverError& e) {
      grp.sweep.failed[i] = 1;
      grp.sweep.errors[i] = e.what();
    }
  }

  liberty::Cell assemble() {
    liberty::Cell cell;
    cell.name = spec.name;
    cell.family = spec.family;
    cell.drive_x = spec.drive_x;
    cell.area_um2 = cells::cell_area_um2(spec, options.tech);
    cell.is_flop = spec.is_flop;
    cell.output_pin = spec.output;

    for (const auto& pin : spec.inputs) {
      liberty::Pin p;
      p.name = pin;
      p.is_input = true;
      p.is_clock = spec.is_flop && pin == "CK";
      p.cap_ff = cells::pin_input_cap_ff(spec, options.tech, pin);
      cell.pins.push_back(std::move(p));
    }
    liberty::Pin out;
    out.name = spec.output;
    out.is_input = false;
    cell.pins.push_back(std::move(out));

    const auto finish_group = [&](ArcGroup& grp) {
      interpolate_failed_points(options.grid, grp.sweep, spec.name, grp.related_pin, grp.rising,
                                scenario_id, cell.fallbacks);
      return make_table(options.grid, grp.sweep.delays, grp.sweep.slews);
    };

    if (spec.is_flop) {
      liberty::TimingArc arc;
      arc.related_pin = "CK";
      arc.sense = liberty::TimingSense::kNonUnate;
      arc.clocked = true;
      arc.rise = finish_group(groups[0]);
      arc.fall = finish_group(groups[1]);
      cell.arcs.push_back(std::move(arc));
      try {
        // The rise arc's shared DC equals the setup bench's t=0 state
        // (q_rising=true, and the DC point is d_edge/slew/load independent).
        const std::vector<double>* seed =
            groups[0].dc_seed.empty() ? nullptr : &groups[0].dc_seed;
        cell.setup_ps = characterize_setup(spec, scenario, options, seed);
      } catch (const spice::SolverError& e) {
        // The setup bisection has no grid to interpolate from; surface the
        // solver chain with the (cell, scenario) tag for the quarantine.
        throw CharError(spec.name, "setup-search scenario=" + scenario_id, e.what());
      }
      cell.hold_ps = 0.0;
      return cell;
    }

    cell.truth = cells::truth_table(spec);
    auto group_it = groups.begin();
    for (std::size_t p = 0; p < spec.inputs.size(); ++p) {
      liberty::TimingArc arc;
      arc.related_pin = spec.inputs[p];
      const int unate = cells::arc_unateness(spec, spec.inputs[p]);
      arc.sense = unate > 0   ? liberty::TimingSense::kPositiveUnate
                  : unate < 0 ? liberty::TimingSense::kNegativeUnate
                              : liberty::TimingSense::kNonUnate;
      bool any = false;
      while (group_it != groups.end() && group_it->pin_index == p) {
        (group_it->rising ? arc.rise : arc.fall) = finish_group(*group_it);
        any = true;
        ++group_it;
      }
      if (!any) {
        throw std::runtime_error("characterize_cell: pin " + spec.inputs[p] + " of " + spec.name +
                                 " cannot be sensitized");
      }
      cell.arcs.push_back(std::move(arc));
    }
    return cell;
  }
};

CellCharJob::CellCharJob(const CellSpec& spec, const aging::AgingScenario& scenario,
                         const CharacterizeOptions& options)
    : impl_(std::make_unique<Impl>(spec, scenario, options)) {}

CellCharJob::~CellCharJob() = default;

std::size_t CellCharJob::task_count() const { return impl_->groups.size() * impl_->grid_size; }

void CellCharJob::run_task(std::size_t task) {
  const std::size_t g = task / impl_->grid_size;
  const std::size_t i = task % impl_->grid_size;
  impl_->run_grid_point(impl_->groups[g], i);
}

liberty::Cell CellCharJob::finish() { return impl_->assemble(); }

liberty::Cell characterize_cell(const CellSpec& spec, const aging::AgingScenario& scenario,
                                const CharacterizeOptions& options) {
  CellCharJob job(spec, scenario, options);
  util::ThreadPool::shared().parallel_for(job.task_count(),
                                          [&](std::size_t i) { job.run_task(i); });
  return job.finish();
}

}  // namespace rw::charlib
