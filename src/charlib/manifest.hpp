#pragma once

/// \file manifest.hpp
/// Checkpoint record for a characterization campaign. The factory writes
/// `manifest.json` next to the disk cache (one per grid tag) recording the
/// status of every (scenario, cell) it has finished:
///
///   {"entries":[
///     {"scenario":"wc10y","cell":"NAND2_X1","status":"done","fallbacks":0,"error":""},
///     {"scenario":"wc10y","cell":"XOR2_X1","status":"failed","fallbacks":0,
///      "error":"characterize XOR2_X1 [...]: ..."}]}
///
/// A killed 121-corner run resumes by reloading the manifest
/// (`LibraryFactory::resume()` / $RW_CHAR_RESUME): "done" pairs are served
/// from the disk cache without re-running SPICE, and "failed" pairs go
/// straight to quarantine, error chain intact. The file is rewritten
/// atomically (temp + rename) so a crash mid-save leaves the previous
/// checkpoint valid.
///
/// RunManifest itself is not thread-safe; the factory serializes access
/// under its own mutex.

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rw::charlib {

/// Status of one (scenario, cell) characterization.
struct ManifestEntry {
  std::string scenario;  ///< aging scenario id
  std::string cell;
  std::string status;    ///< "done" or "failed"
  int fallbacks = 0;     ///< interpolated OPC points in the finished cell
  std::string error;     ///< failure chain ("" for done entries)
};

class RunManifest {
 public:
  /// An empty manifest that will save to `path` ("" = in-memory only).
  explicit RunManifest(std::string path = {});

  /// Loads `path`; a missing or unparsable file yields an empty manifest
  /// (a corrupt checkpoint must never block a fresh run).
  static RunManifest load(const std::string& path);

  /// Atomically rewrites the manifest file; no-op when the path is empty.
  void save() const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// nullptr when the pair has no recorded status.
  [[nodiscard]] const ManifestEntry* find(const std::string& scenario,
                                          const std::string& cell) const;

  void record_done(const std::string& scenario, const std::string& cell, int fallbacks);
  void record_failed(const std::string& scenario, const std::string& cell,
                     const std::string& error);

  /// All entries in deterministic (scenario, cell) order.
  [[nodiscard]] std::vector<const ManifestEntry*> entries() const;

 private:
  std::string path_;
  std::map<std::pair<std::string, std::string>, ManifestEntry> entries_;
};

}  // namespace rw::charlib
