#pragma once

/// \file factory.hpp
/// Memoizing factory for degradation-aware libraries. Characterization is
/// SPICE-heavy, so results are cached at (cell, scenario) granularity in
/// memory and — optionally — on disk in the Liberty text format (one
/// single-cell library per file), which lets every test/bench binary share
/// one characterization pass. The disk layout is
///   <cache_dir>/<grid-tag>/<scenario-id>/<cell>.lib
///
/// The factory is concurrency-safe: every public method may be called from
/// any thread, the memo maps are mutex-guarded, and an in-flight table
/// deduplicates work so two threads asking for the same (scenario, cell)
/// never characterize it twice — the second caller blocks until the first
/// finishes. `library()` and `merged()` characterize their cells in
/// parallel on `util::ThreadPool::shared()`; results are assembled in
/// catalog order, so the produced libraries are identical for any thread
/// count. Disk-cache writes go through a temp file plus atomic rename, and
/// truncated/corrupt cache files are discarded and re-characterized rather
/// than failing the run.
///
/// Resilience: a run manifest (`manifest.json` next to the disk cache)
/// checkpoints per-(scenario, cell) status so a killed campaign resumes via
/// `resume()` / $RW_CHAR_RESUME, and pairs that fail permanently (a
/// `CharError` after the solver's full retry ladder) are quarantined with
/// their error chain: later requests for the pair fail fast with the same
/// chain, and `merged()` skips quarantined pairs instead of aborting.

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aging/scenario.hpp"
#include "charlib/characterizer.hpp"
#include "charlib/manifest.hpp"
#include "liberty/library.hpp"

namespace rw::charlib {

class LibraryFactory {
 public:
  struct Options {
    CharacterizeOptions characterize{};
    /// Disk cache root; empty disables the disk cache. `default_options()`
    /// reads $RW_LIBCACHE, falling back to $HOME/.cache/reliaware.
    std::string cache_dir;
    /// Restrict to these cells (empty = the full catalog). Useful in tests.
    std::vector<std::string> cell_subset;
    /// Honor an existing manifest.json on construction: "done" pairs are
    /// served from the disk cache, "failed" pairs go straight to quarantine.
    /// `default_options()` reads $RW_CHAR_RESUME (any value but "0").
    bool resume = false;
  };

  static Options default_options();

  explicit LibraryFactory(Options options = default_options());

  /// One characterized cell under one scenario (memoized, disk-cached).
  /// The returned reference stays valid for the factory's lifetime.
  const liberty::Cell& cell(const std::string& cell_name, const aging::AgingScenario& scenario);

  /// A full degradation-aware library for one scenario (Section 4.1); cells
  /// are characterized in parallel. The returned reference stays valid for
  /// the factory's lifetime.
  const liberty::Library& library(const aging::AgingScenario& scenario);

  /// The merged "complete" library over many (λp, λn) corners; all scenarios
  /// must share the lifetime/mobility settings. Built directly from the
  /// shared (scenario, cell) cache — previously characterized pairs (via
  /// `cell()`, `library()`, or an earlier `merged()`) are reused, and
  /// corners not already memoized as full libraries are NOT added to the
  /// library memo, so merging 121 corners does not pin 121 library copies.
  /// Quarantined (permanently failing) pairs are skipped, so one bad corner
  /// cannot poison the whole merged library; inspect `quarantined()` after.
  liberty::Library merged(const std::vector<aging::AgingScenario>& scenarios);

  /// Reload the run manifest from disk and honor its entries: "failed"
  /// pairs are quarantined with their recorded error chain, "done" pairs
  /// will be served from the disk cache. Returns the number of manifest
  /// entries honored. Called by the constructor when `options.resume`.
  std::size_t resume();

  /// One entry per permanently failed (scenario, cell) pair.
  struct QuarantinedCell {
    std::string scenario;  ///< scenario id
    std::string cell;
    std::string error;  ///< full chain: CharError tag + solver attempt history
  };
  /// Snapshot of the quarantine in deterministic (scenario, cell) order.
  [[nodiscard]] std::vector<QuarantinedCell> quarantined() const;

  /// Where this factory checkpoints ("" when the disk cache is disabled).
  [[nodiscard]] std::string manifest_path() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  using CellKey = std::pair<std::string, std::string>;  // (scenario id, cell)

  /// Entry in the in-flight table; waiters block on `factory.cv_`.
  struct CellJob {
    bool done = false;
    std::exception_ptr error;
  };

  std::string scenario_dir(const aging::AgingScenario& scenario) const;
  std::vector<std::string> cell_names() const;
  /// Disk-cache read; returns nothing (and removes the file) when missing,
  /// truncated, or otherwise unparsable.
  std::unique_ptr<liberty::Cell> load_cached_cell(const std::string& path,
                                                  const std::string& cell_name) const;
  /// Disk-cache write via `<path>.tmp.<pid>.<seq>` + atomic rename.
  void store_cached_cell(const aging::AgingScenario& scenario, const std::string& cell_name,
                         const liberty::Cell& cell) const;

  Options options_;
  mutable std::mutex mutex_;            ///< guards the maps and manifest below
  std::condition_variable cv_;          ///< signaled when an in-flight job finishes
  std::map<CellKey, liberty::Cell> cell_cache_;
  std::map<CellKey, std::shared_ptr<CellJob>> in_flight_;
  std::map<std::string, std::unique_ptr<liberty::Library>> library_cache_;  // scenario id
  std::map<CellKey, std::string> quarantine_;  ///< error chain per failed pair
  RunManifest manifest_;
};

}  // namespace rw::charlib
