#pragma once

/// \file factory.hpp
/// Memoizing factory for degradation-aware libraries. Characterization is
/// SPICE-heavy, so results are cached at (cell, scenario) granularity in
/// memory and — optionally — on disk in the Liberty text format (one
/// single-cell library per file), which lets every test/bench binary share
/// one characterization pass. The disk layout is
///   <cache_dir>/<grid-tag>/<scenario-id>/<cell>.lib
///
/// The factory is concurrency-safe: every public method may be called from
/// any thread, the memo maps are mutex-guarded, and an in-flight table
/// deduplicates work so two threads asking for the same (scenario, cell)
/// never characterize it twice — the second caller blocks until the first
/// finishes. `library()` and `merged()` flatten the (scenario × cell × arc ×
/// OPC grid) task queues of every requested pair into ONE top-level
/// `util::ThreadPool::shared().parallel_for`, so per-cell work never nests
/// (and therefore never serializes) inside an outer parallel loop; results
/// are assembled in catalog order, so the produced libraries are bitwise
/// identical for any thread count. Disk-cache writes go through a temp file
/// plus atomic rename, and truncated/corrupt cache files are discarded and
/// re-characterized rather than failing the run.
///
/// Adaptive λ-corner grid (`CharacterizeOptions::adaptive`, opt-in via
/// $RW_CHAR_ADAPTIVE): only scenarios on a sparse λ lattice are
/// SPICE-characterized; any other corner is served by certified bilinear
/// interpolation between its bracketing lattice corners (see
/// charlib/adaptive.hpp). When the certified bound exceeds
/// `adaptive.interp_tol_ps` the corner is refined — characterized directly —
/// so accuracy is never silently traded. Interpolated cells carry an
/// `rw_interp` marker (lint rule LB007 audits the bound), and the disk cache
/// directory is keyed with the adaptive policy tag so interpolated and exact
/// caches never mix.
///
/// Resilience: a run manifest (`manifest.json` next to the disk cache)
/// checkpoints per-(scenario, cell) status so a killed campaign resumes via
/// `resume()` / $RW_CHAR_RESUME, and pairs that fail permanently (a
/// `CharError` after the solver's full retry ladder) are quarantined with
/// their error chain: later requests for the pair fail fast with the same
/// chain, and `merged()` skips quarantined pairs instead of aborting.
///
/// Cross-process dedup: when the disk cache is enabled, the in-flight-leader
/// machinery extends across process boundaries via an `O_EXCL` lease file
/// next to each cache entry (`<cell>.lib.lease`, see util/proc_lease.hpp).
/// Exactly one process — a second CLI, an `rwserved` worker, anyone sharing
/// the cache directory — characterizes a (scenario, cell); everyone else
/// rendezvouses on the published cache file. A leader that crashes leaves a
/// stale lease (dead pid, or TTL `Options::dedup_lease_ms` exceeded) that
/// the next requester breaks and takes over, so dedup can delay but never
/// wedge a characterization. The factory also polls the process-wide
/// `CancelToken` on every cache probe, so a SIGTERM mid-library-load is
/// honored even when every cell is a disk hit and no solver ever runs.

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "aging/scenario.hpp"
#include "charlib/characterizer.hpp"
#include "charlib/manifest.hpp"
#include "liberty/library.hpp"

namespace rw::charlib {

/// Thrown (instead of characterizing) when `Options::disk_only` is set and a
/// requested (scenario, cell) is not in the disk cache. Deliberately NOT a
/// CharError: a cache miss is a routing problem for the caller (rwserved's
/// supervisor re-queues the pair to a worker), never a permanent cell
/// failure, so it must not be quarantined.
class CacheMissError : public std::runtime_error {
 public:
  CacheMissError(std::string scenario_id, std::string cell);
  [[nodiscard]] const std::string& scenario_id() const { return scenario_id_; }
  [[nodiscard]] const std::string& cell() const { return cell_; }

 private:
  std::string scenario_id_;
  std::string cell_;
};

class LibraryFactory {
 public:
  struct Options {
    CharacterizeOptions characterize{};
    /// Disk cache root; empty disables the disk cache. `default_options()`
    /// reads $RW_LIBCACHE, falling back to $HOME/.cache/reliaware.
    std::string cache_dir;
    /// Restrict to these cells (empty = the full catalog). Useful in tests.
    std::vector<std::string> cell_subset;
    /// Honor an existing manifest.json on construction: "done" pairs are
    /// served from the disk cache, "failed" pairs go straight to quarantine.
    /// `default_options()` reads $RW_CHAR_RESUME (any value but "0").
    bool resume = false;
    /// Serve from the disk cache ONLY: a miss raises CacheMissError instead
    /// of characterizing in-process. Used by rwserved's supervisor, which
    /// must never run SPICE on the accept loop — workers warm the cache.
    bool disk_only = false;
    /// Own manifest.json: record done/failed pairs and honor `resume`. Set
    /// false for processes that share a cache directory with a coordinator
    /// that owns the manifest (rwserved workers), so concurrent factories
    /// never clobber each other's checkpoint file.
    bool use_manifest = true;
    /// TTL for the cross-process dedup lease next to each cache entry. A
    /// leader crashed mid-characterization is taken over after its lease
    /// goes stale (dead pid, or this TTL exceeded — the TTL covers pid
    /// recycling and wedged-but-alive leaders). `default_options()` reads
    /// $RW_CHAR_LEASE_MS.
    double dedup_lease_ms = 600000.0;
  };

  static Options default_options();

  explicit LibraryFactory(Options options = default_options());

  /// One characterized cell under one scenario (memoized, disk-cached).
  /// The returned reference stays valid for the factory's lifetime.
  const liberty::Cell& cell(const std::string& cell_name, const aging::AgingScenario& scenario);

  /// A full degradation-aware library for one scenario (Section 4.1); cells
  /// are characterized in parallel. The returned reference stays valid for
  /// the factory's lifetime.
  const liberty::Library& library(const aging::AgingScenario& scenario);

  /// The merged "complete" library over many (λp, λn) corners; all scenarios
  /// must share the lifetime/mobility settings. Built directly from the
  /// shared (scenario, cell) cache — previously characterized pairs (via
  /// `cell()`, `library()`, or an earlier `merged()`) are reused, and
  /// corners not already memoized as full libraries are NOT added to the
  /// library memo, so merging 121 corners does not pin 121 library copies.
  /// Quarantined (permanently failing) pairs are skipped, so one bad corner
  /// cannot poison the whole merged library; inspect `quarantined()` after.
  liberty::Library merged(const std::vector<aging::AgingScenario>& scenarios);

  /// Reload the run manifest from disk and honor its entries: "failed"
  /// pairs are quarantined with their recorded error chain, "done" pairs
  /// will be served from the disk cache. Returns the number of manifest
  /// entries honored. Called by the constructor when `options.resume`.
  std::size_t resume();

  /// One entry per permanently failed (scenario, cell) pair.
  struct QuarantinedCell {
    std::string scenario;  ///< scenario id
    std::string cell;
    std::string error;  ///< full chain: CharError tag + solver attempt history
  };
  /// Snapshot of the quarantine in deterministic (scenario, cell) order.
  [[nodiscard]] std::vector<QuarantinedCell> quarantined() const;

  /// Quarantine a (scenario, cell) pair from outside the characterization
  /// path — rwserved uses this when a pair exhausts its redelivery budget
  /// (e.g. the cell reproducibly crashes every worker, so no CharError ever
  /// comes back). Records "failed" in the manifest like an in-process
  /// CharError would; later `cell()` calls fail fast with `error`.
  void quarantine_pair(const std::string& scenario_id, const std::string& cell_name,
                       const std::string& error);

  /// True when the pair is quarantined (in memory or via a resumed
  /// manifest). rwserved consults this at admission so a known-bad pair is
  /// answered immediately instead of burning a worker dispatch.
  [[nodiscard]] bool is_quarantined(const std::string& scenario_id,
                                    const std::string& cell_name) const;

  /// Disk-cache path this factory would use for one pair ("" when the disk
  /// cache is disabled). The cross-process dedup lease lives at this path +
  /// ".lease". Exposed for rwserved (cache-probe at admission) and lint
  /// rule SV001.
  [[nodiscard]] std::string cache_path(const std::string& cell_name,
                                       const aging::AgingScenario& scenario) const;

  /// Where this factory checkpoints ("" when the disk cache is disabled or
  /// `Options::use_manifest` is off).
  [[nodiscard]] std::string manifest_path() const;

  /// Grid-level cache directory this factory keys everything under (""
  /// when the disk cache is disabled). rwserved fleets spool queued task
  /// files in `<grid dir>/spool/` so peers sharing the cache can steal or
  /// adopt each other's work.
  [[nodiscard]] std::string grid_cache_dir() const;

  /// Usage-stamp sidecar next to a cached cell (`<cell>.lib.stamp`). Its
  /// mtime is the pair's last-used time: refreshed (throttled) on every
  /// cache hit and publish, consumed by rwserved's age/usage-aware GC, and
  /// audited for orphans by lint rule SV002.
  [[nodiscard]] static std::string usage_stamp_path(const std::string& lib_path) {
    return lib_path + ".stamp";
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  using CellKey = std::pair<std::string, std::string>;  // (scenario id, cell)

  /// Entry in the in-flight table; waiters block on `factory.cv_`.
  struct CellJob {
    bool done = false;
    std::exception_ptr error;
  };

  std::string grid_dir() const;
  std::string scenario_dir(const aging::AgingScenario& scenario) const;
  /// Disk-cache path for one pair ("" when the cache is disabled). The
  /// cross-process dedup lease lives at this path + ".lease".
  std::string cell_lib_path(const std::string& cell_name,
                            const aging::AgingScenario& scenario) const;
  std::vector<std::string> cell_names() const;
  /// The scenarios that must be SPICE-characterized to serve `scenario`:
  /// the scenario itself, or — adaptive grid, off-lattice — its bracketing
  /// lattice corners.
  std::vector<aging::AgingScenario> direct_scenarios(const aging::AgingScenario& scenario) const;
  /// Produces one cell result (disk cache -> λ interpolation -> direct
  /// characterization). Runs outside the factory mutex, inside the caller's
  /// in-flight claim on (scenario, cell).
  liberty::Cell build_cell(const std::string& cell_name, const aging::AgingScenario& scenario);
  /// Characterizes every not-yet-cached pair through one flat top-level task
  /// list (every pair's arc×OPC tasks merged; no nested parallel_for).
  /// `pairs` must be direct (lattice) scenarios. CharErrors are quarantined
  /// per pair and NOT rethrown here — callers see them when they ask for the
  /// pair; the first other failure (I/O, cancellation, logic bug) is
  /// rethrown after every pair has been finalized and its waiters released.
  void characterize_batch(const std::vector<std::pair<aging::AgingScenario, std::string>>& pairs);
  /// Publishes a finished cell under `key` and releases its waiters.
  void finalize_success(const CellKey& key, const std::shared_ptr<CellJob>& job,
                        liberty::Cell cell);
  /// Records a failed pair (quarantining CharErrors) and releases waiters.
  void finalize_failure(const CellKey& key, const std::shared_ptr<CellJob>& job,
                        std::exception_ptr error);
  /// Disk-cache read; returns nothing (and removes the file) when missing,
  /// truncated, or otherwise unparsable.
  std::unique_ptr<liberty::Cell> load_cached_cell(const std::string& path,
                                                  const std::string& cell_name) const;
  /// Disk-cache write via `<path>.tmp.<pid>.<seq>` + atomic rename.
  void store_cached_cell(const aging::AgingScenario& scenario, const std::string& cell_name,
                         const liberty::Cell& cell) const;

  Options options_;
  mutable std::mutex mutex_;            ///< guards the maps and manifest below
  std::condition_variable cv_;          ///< signaled when an in-flight job finishes
  std::map<CellKey, liberty::Cell> cell_cache_;
  std::map<CellKey, std::shared_ptr<CellJob>> in_flight_;
  std::map<std::string, std::unique_ptr<liberty::Library>> library_cache_;  // scenario id
  std::map<CellKey, std::string> quarantine_;  ///< error chain per failed pair
  RunManifest manifest_;
};

}  // namespace rw::charlib
