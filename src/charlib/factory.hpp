#pragma once

/// \file factory.hpp
/// Memoizing factory for degradation-aware libraries. Characterization is
/// SPICE-heavy, so results are cached at (cell, scenario) granularity in
/// memory and — optionally — on disk in the Liberty text format (one
/// single-cell library per file), which lets every test/bench binary share
/// one characterization pass. The disk layout is
///   <cache_dir>/<grid-tag>/<scenario-id>/<cell>.lib

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aging/scenario.hpp"
#include "charlib/characterizer.hpp"
#include "liberty/library.hpp"

namespace rw::charlib {

class LibraryFactory {
 public:
  struct Options {
    CharacterizeOptions characterize{};
    /// Disk cache root; empty disables the disk cache. `default_options()`
    /// reads $RW_LIBCACHE, falling back to $HOME/.cache/reliaware.
    std::string cache_dir;
    /// Restrict to these cells (empty = the full catalog). Useful in tests.
    std::vector<std::string> cell_subset;
  };

  static Options default_options();

  explicit LibraryFactory(Options options = default_options());

  /// One characterized cell under one scenario (memoized, disk-cached).
  const liberty::Cell& cell(const std::string& cell_name, const aging::AgingScenario& scenario);

  /// A full degradation-aware library for one scenario (Section 4.1).
  /// The returned reference stays valid for the factory's lifetime.
  const liberty::Library& library(const aging::AgingScenario& scenario);

  /// The merged "complete" library over many (λp, λn) corners; all scenarios
  /// must share the lifetime/mobility settings.
  liberty::Library merged(const std::vector<aging::AgingScenario>& scenarios);

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  std::string scenario_dir(const aging::AgingScenario& scenario) const;
  std::vector<std::string> cell_names() const;

  Options options_;
  std::map<std::pair<std::string, std::string>, liberty::Cell> cell_cache_;  // (scenario id, cell)
  std::map<std::string, std::unique_ptr<liberty::Library>> library_cache_;   // scenario id
};

}  // namespace rw::charlib
