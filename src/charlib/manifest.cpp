#include "charlib/manifest.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace rw::charlib {

namespace fs = std::filesystem;

namespace {

/// Minimal parser for the JSON subset the manifest writer emits: objects,
/// arrays, strings with standard escapes, and integers. Anything malformed
/// throws; `RunManifest::load` turns that into an empty manifest.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::runtime_error(std::string("manifest: expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("manifest: bad \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            c = static_cast<char>(code);  // writer only emits \u00XX
            break;
          }
          default: c = esc; break;  // \" \\ \/
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  long parse_integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("manifest: expected integer");
    return std::strtol(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

ManifestEntry parse_entry(JsonScanner& s) {
  ManifestEntry e;
  s.expect('{');
  if (!s.consume('}')) {
    do {
      const std::string key = s.parse_string();
      s.expect(':');
      if (key == "fallbacks") {
        e.fallbacks = static_cast<int>(s.parse_integer());
      } else {
        const std::string value = s.parse_string();
        if (key == "scenario") {
          e.scenario = value;
        } else if (key == "cell") {
          e.cell = value;
        } else if (key == "status") {
          e.status = value;
        } else if (key == "error") {
          e.error = value;
        }
        // Unknown string keys are skipped for forward compatibility.
      }
    } while (s.consume(','));
    s.expect('}');
  }
  if (e.scenario.empty() || e.cell.empty() || (e.status != "done" && e.status != "failed")) {
    throw std::runtime_error("manifest: incomplete entry");
  }
  return e;
}

}  // namespace

RunManifest::RunManifest(std::string path) : path_(std::move(path)) {}

RunManifest RunManifest::load(const std::string& path) {
  RunManifest m(path);
  std::ifstream in(path);
  if (!in) return m;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  try {
    JsonScanner s(text);
    s.expect('{');
    const std::string key = s.parse_string();
    if (key != "entries") throw std::runtime_error("manifest: expected \"entries\"");
    s.expect(':');
    s.expect('[');
    if (s.peek() != ']') {
      do {
        ManifestEntry e = parse_entry(s);
        const auto k = std::make_pair(e.scenario, e.cell);
        m.entries_[k] = std::move(e);
      } while (s.consume(','));
    }
    s.expect(']');
    s.expect('}');
  } catch (const std::exception&) {
    // Corrupt checkpoint (crash mid-write before atomic renames, manual
    // edit): start over rather than refusing to run.
    m.entries_.clear();
  }
  return m;
}

void RunManifest::save() const {
  if (path_.empty()) return;
  std::string out = "{\"entries\":[";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) out += ',';
    first = false;
    out += "{\"scenario\":";
    util::append_json_string(out, e.scenario);
    out += ",\"cell\":";
    util::append_json_string(out, e.cell);
    out += ",\"status\":";
    util::append_json_string(out, e.status);
    out += ",\"fallbacks\":" + std::to_string(e.fallbacks) + ",\"error\":";
    util::append_json_string(out, e.error);
    out += '}';
  }
  out += "]}\n";

  // The checkpoint is an optimization; never fail the run over a bad disk.
  (void)util::write_file_atomic_nothrow(path_, out);
}

const ManifestEntry* RunManifest::find(const std::string& scenario,
                                       const std::string& cell) const {
  const auto it = entries_.find(std::make_pair(scenario, cell));
  return it == entries_.end() ? nullptr : &it->second;
}

void RunManifest::record_done(const std::string& scenario, const std::string& cell,
                              int fallbacks) {
  entries_[std::make_pair(scenario, cell)] =
      ManifestEntry{scenario, cell, "done", fallbacks, ""};
}

void RunManifest::record_failed(const std::string& scenario, const std::string& cell,
                                const std::string& error) {
  entries_[std::make_pair(scenario, cell)] =
      ManifestEntry{scenario, cell, "failed", 0, error};
}

std::vector<const ManifestEntry*> RunManifest::entries() const {
  std::vector<const ManifestEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(&e);
  return out;
}

}  // namespace rw::charlib
