#pragma once

/// \file opc.hpp
/// Operating-condition (OPC) grids: the input-slew × output-load sample
/// points at which every cell arc is characterized. The paper uses 7 slews ×
/// 7 loads = 49 OPCs with Smin/Smax = 5 ps / 947 ps and Cmin/Cmax = 0.5 fF /
/// 20 fF (Section 4.4).

#include <string>
#include <vector>

namespace rw::charlib {

struct OpcGrid {
  std::vector<double> slews_ps;
  std::vector<double> loads_ff;

  /// The paper's 49-point grid.
  static OpcGrid paper();
  /// A 3×3 grid covering the same span — for fast unit tests.
  static OpcGrid coarse();
  /// Single-point grid (used to build the "single OPC" baseline of Fig. 5(b)).
  static OpcGrid single(double slew_ps, double load_ff);

  [[nodiscard]] std::size_t size() const { return slews_ps.size() * loads_ff.size(); }
  /// Stable tag for cache directories, e.g. "7x7".
  [[nodiscard]] std::string tag() const;
};

}  // namespace rw::charlib
