#include "charlib/factory.hpp"

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <filesystem>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "cells/catalog.hpp"
#include "charlib/adaptive.hpp"
#include "flow/cancel.hpp"
#include "liberty/merge.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/atomic_file.hpp"
#include "util/proc_lease.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

namespace fs = std::filesystem;

CacheMissError::CacheMissError(std::string scenario_id, std::string cell)
    : std::runtime_error("cache miss (disk_only): " + cell + " scenario=" + scenario_id),
      scenario_id_(std::move(scenario_id)),
      cell_(std::move(cell)) {}

LibraryFactory::Options LibraryFactory::default_options() {
  Options o;
  if (const char* env = std::getenv("RW_LIBCACHE"); env != nullptr && *env != '\0') {
    o.cache_dir = env;
  } else if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0') {
    o.cache_dir = std::string(home) + "/.cache/reliaware";
  }
  if (const char* env = std::getenv("RW_CHAR_RESUME"); env != nullptr && *env != '\0') {
    o.resume = std::string(env) != "0";
  }
  if (const char* env = std::getenv("RW_CHAR_LEASE_MS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    if (end != env && ms > 0.0) o.dedup_lease_ms = ms;
  }
  return o;
}

LibraryFactory::LibraryFactory(Options options)
    : options_(std::move(options)), manifest_(manifest_path()) {
  if (options_.resume) resume();
}

std::string LibraryFactory::grid_dir() const {
  // The adaptive policy changes what a cached cell *means* (exact vs
  // certified-interpolated at some tolerance), so it is part of the key.
  std::string dir = options_.cache_dir + "/" + options_.characterize.grid.tag();
  if (const std::string tag = options_.characterize.adaptive.cache_tag(); !tag.empty()) {
    dir += "-" + tag;
  }
  return dir;
}

std::string LibraryFactory::grid_cache_dir() const {
  return options_.cache_dir.empty() ? std::string{} : grid_dir();
}

std::string LibraryFactory::scenario_dir(const aging::AgingScenario& scenario) const {
  return grid_dir() + "/" + scenario.id();
}

std::string LibraryFactory::manifest_path() const {
  if (options_.cache_dir.empty() || !options_.use_manifest) return {};
  return grid_dir() + "/manifest.json";
}

std::string LibraryFactory::cell_lib_path(const std::string& cell_name,
                                          const aging::AgingScenario& scenario) const {
  if (options_.cache_dir.empty()) return {};
  return scenario_dir(scenario) + "/" + cell_name + ".lib";
}

bool LibraryFactory::is_quarantined(const std::string& scenario_id,
                                    const std::string& cell_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantine_.count(CellKey{scenario_id, cell_name}) != 0;
}

std::string LibraryFactory::cache_path(const std::string& cell_name,
                                       const aging::AgingScenario& scenario) const {
  return cell_lib_path(cell_name, scenario);
}

void LibraryFactory::quarantine_pair(const std::string& scenario_id,
                                     const std::string& cell_name, const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  quarantine_[CellKey{scenario_id, cell_name}] = error;
  manifest_.record_failed(scenario_id, cell_name, error);
  manifest_.save();
}

std::size_t LibraryFactory::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_ = RunManifest::load(manifest_path());
  for (const ManifestEntry* e : manifest_.entries()) {
    if (e->status == "failed") quarantine_[CellKey{e->scenario, e->cell}] = e->error;
  }
  return manifest_.size();
}

std::vector<LibraryFactory::QuarantinedCell> LibraryFactory::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedCell> out;
  out.reserve(quarantine_.size());
  for (const auto& [key, error] : quarantine_) {
    out.push_back(QuarantinedCell{key.first, key.second, error});
  }
  return out;
}

std::vector<std::string> LibraryFactory::cell_names() const {
  if (!options_.cell_subset.empty()) return options_.cell_subset;
  std::vector<std::string> names;
  names.reserve(cells::catalog().size());
  for (const auto& spec : cells::catalog()) names.push_back(spec.name);
  return names;
}

namespace {

/// Refreshes the usage-stamp sidecar next to `lib_path`. The stamp's mtime
/// IS the datum — a hit on an existing stamp only needs a metadata touch —
/// and creation goes through the shared atomic writer so kill -9 can never
/// leave a torn stamp. Touches are throttled to once a minute per stamp: a
/// warm library assembly re-reads every cell, and that hot path must not
/// become a metadata-write storm on the shared cache.
void touch_usage_stamp(const std::string& lib_path) {
  if (lib_path.empty()) return;
  const std::string stamp = LibraryFactory::usage_stamp_path(lib_path);
  struct stat st {};
  if (::stat(stamp.c_str(), &st) == 0) {
    if (std::time(nullptr) - st.st_mtime < 60) return;
    (void)::utimensat(AT_FDCWD, stamp.c_str(), nullptr, 0);
    return;
  }
  (void)util::write_file_atomic_nothrow(stamp, "{\"usage\":\"stamp\"}\n");
}

}  // namespace

std::unique_ptr<liberty::Cell> LibraryFactory::load_cached_cell(
    const std::string& path, const std::string& cell_name) const {
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  try {
    liberty::Library single = liberty::parse_library_file(path);
    if (const liberty::Cell* c = single.find(cell_name)) {
      touch_usage_stamp(path);
      return std::make_unique<liberty::Cell>(*c);
    }
  } catch (const std::exception&) {
    // Truncated or corrupt (e.g. a crash mid-write before atomic renames
    // existed): fall through to removal + re-characterization.
  }
  fs::remove(path, ec);
  return nullptr;
}

void LibraryFactory::store_cached_cell(const aging::AgingScenario& scenario,
                                       const std::string& cell_name,
                                       const liberty::Cell& cell) const {
  liberty::Library single("rw_cache_" + scenario.id());
  single.add_cell(cell);
  // Shared atomic temp+rename writer: concurrent factories (threads or
  // processes) never expose a partially written file, and the last complete
  // write wins. The cache is an optimization; failures never fail the run.
  const std::string lib_path = scenario_dir(scenario) + "/" + cell_name + ".lib";
  (void)util::write_file_atomic_nothrow(lib_path, liberty::write_library(single));
  touch_usage_stamp(lib_path);
}

const liberty::Cell& LibraryFactory::cell(const std::string& cell_name,
                                          const aging::AgingScenario& scenario) {
  // Nothing claimed yet, so throwing here is always safe; this is what makes
  // a tripped token stop a warm-cache library assembly promptly.
  flow::throw_if_cancelled();
  const CellKey key{scenario.id(), cell_name};
  std::shared_ptr<CellJob> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (const auto it = cell_cache_.find(key); it != cell_cache_.end()) return it->second;
      if (const auto q = quarantine_.find(key); q != quarantine_.end()) {
        // Fail fast with the recorded chain; no SPICE is re-run for a pair
        // that already failed permanently (this run or a resumed one).
        throw CharError(cell_name, "quarantined scenario=" + key.first, q->second);
      }
      const auto in = in_flight_.find(key);
      if (in == in_flight_.end()) break;
      // Another thread is characterizing this (scenario, cell): wait for it
      // instead of duplicating the SPICE work. The wait polls cancellation so
      // a tripped token (deadline, signal, chaos drill) wakes waiters with a
      // structured error even while the leader is stuck in a long solve.
      const std::shared_ptr<CellJob> pending = in->second;
      while (!cv_.wait_for(lock, std::chrono::milliseconds(50),
                           [&] { return pending->done; })) {
        if (flow::poll_cancellation()) {
          throw flow::CancelledError("factory: cancelled while waiting for in-flight " +
                                     cell_name + " (" + key.first + ")");
        }
      }
      if (pending->error) std::rethrow_exception(pending->error);
      // Re-check the cache (and any newer in-flight entry) from the top.
    }
    job = std::make_shared<CellJob>();
    in_flight_.emplace(key, job);
  }

  liberty::Cell result;
  try {
    result = build_cell(cell_name, scenario);
  } catch (...) {
    finalize_failure(key, job, std::current_exception());
    throw;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const liberty::Cell& ref = cell_cache_.emplace(key, std::move(result)).first->second;
  manifest_.record_done(key.first, key.second, static_cast<int>(ref.fallbacks.size()));
  manifest_.save();
  job->done = true;
  in_flight_.erase(key);
  cv_.notify_all();
  return ref;
}

void LibraryFactory::finalize_success(const CellKey& key, const std::shared_ptr<CellJob>& job,
                                      liberty::Cell cell) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const liberty::Cell& ref = cell_cache_.emplace(key, std::move(cell)).first->second;
    manifest_.record_done(key.first, key.second, static_cast<int>(ref.fallbacks.size()));
    manifest_.save();
    job->done = true;
    in_flight_.erase(key);
  }
  cv_.notify_all();
}

void LibraryFactory::finalize_failure(const CellKey& key, const std::shared_ptr<CellJob>& job,
                                      std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->error = error;
    job->done = true;
    in_flight_.erase(key);
    try {
      std::rethrow_exception(error);
    } catch (const CharError& e) {
      // A CharError is a permanent failure (the solver already exhausted
      // its retry ladder): quarantine the pair and checkpoint it so a
      // resumed run fails fast instead of repeating hours of SPICE.
      quarantine_[key] = e.what();
      manifest_.record_failed(key.first, key.second, e.what());
      manifest_.save();
    } catch (...) {
      // Transient failures (I/O, bad_alloc, ...) are not quarantined.
    }
  }
  cv_.notify_all();
}

std::vector<aging::AgingScenario> LibraryFactory::direct_scenarios(
    const aging::AgingScenario& scenario) const {
  const AdaptiveGridOptions& adaptive = options_.characterize.adaptive;
  if (!adaptive.enabled || on_lattice(scenario, adaptive.lattice_step)) return {scenario};
  return lattice_bracket(scenario, adaptive.lattice_step).corners;
}

liberty::Cell LibraryFactory::build_cell(const std::string& cell_name,
                                         const aging::AgingScenario& scenario) {
  // Honor cancellation even on the all-disk-hit path: a SIGTERM during a
  // large library load used to be noticed only at the next parallel_for
  // poll, which never comes when every cell is a cache hit.
  flow::throw_if_cancelled();
  const std::string lib_path = cell_lib_path(cell_name, scenario);
  if (!lib_path.empty()) {
    if (auto cached = load_cached_cell(lib_path, cell_name)) return std::move(*cached);
  }
  if (options_.disk_only) throw CacheMissError(scenario.id(), cell_name);

  const AdaptiveGridOptions& adaptive = options_.characterize.adaptive;
  if (adaptive.enabled && !on_lattice(scenario, adaptive.lattice_step)) {
    // Off-lattice corner: interpolate between the bracketing lattice corners
    // (recursing via cell() — lattice corners characterize directly, so the
    // recursion terminates and never self-waits). Corner references stay
    // valid for the factory's lifetime.
    const LatticeBracket bracket = lattice_bracket(scenario, adaptive.lattice_step);
    std::vector<const liberty::Cell*> corners;
    corners.reserve(bracket.corners.size());
    for (const auto& corner : bracket.corners) corners.push_back(&cell(cell_name, corner));
    InterpolatedCell interp = interpolate_cell(bracket, corners);
    if (interp.bound_ps <= adaptive.interp_tol_ps) {
      std::uint64_t tables = 0;
      for (const auto& arc : interp.cell.arcs) {
        tables += static_cast<std::uint64_t>(!arc.rise.empty()) +
                  static_cast<std::uint64_t>(!arc.fall.empty());
      }
      stats::add_cell_interpolated(tables * options_.characterize.grid.size());
      if (!options_.cache_dir.empty()) store_cached_cell(scenario, cell_name, interp.cell);
      return std::move(interp.cell);
    }
    // Certified bound too loose for the flow tolerance: refine — fall
    // through to a direct characterization of this exact corner.
    stats::add_corner_refined();
  }

  if (lib_path.empty()) {
    return characterize_cell(cells::find_cell(cell_name), scenario, options_.characterize);
  }

  // Cross-process leader election on the cache entry's lease file: exactly
  // one process (across every CLI / rwserved worker sharing this cache dir)
  // runs the SPICE campaign; everyone else rendezvouses on the published
  // cache file. A dead or over-TTL leader is broken and taken over, so a
  // `kill -9` mid-characterization delays the pair, never wedges it.
  const std::string lease_path = lib_path + ".lease";
  for (;;) {
    if (auto lease = util::FileLease::try_acquire(lease_path, options_.dedup_lease_ms)) {
      // Re-probe under the lease: a prior leader may have published between
      // our miss above and this acquire (the classic release/acquire race —
      // without this, two forked clients can both run the campaign).
      if (auto cached = load_cached_cell(lib_path, cell_name)) {
        lease->release();
        return std::move(*cached);
      }
      liberty::Cell result =
          characterize_cell(cells::find_cell(cell_name), scenario, options_.characterize);
      // Publish before releasing the lease, so a follower never observes
      // "no lease and no file" after a successful leader.
      store_cached_cell(scenario, cell_name, result);
      lease->release();
      return result;
    }
    // Follower: poll for the leader's publish (cheap — one exists() probe
    // until the file lands), breaking the lease if its holder died.
    flow::throw_if_cancelled();
    if (auto cached = load_cached_cell(lib_path, cell_name)) return std::move(*cached);
    if (!util::break_lease_if_stale(lease_path)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void LibraryFactory::characterize_batch(
    const std::vector<std::pair<aging::AgingScenario, std::string>>& pairs) {
  /// One claimed pair: either live SPICE work in the flat queue (leader,
  /// `work` set, holding `lease` when the disk cache is on) or a
  /// cross-process rendezvous on another process's lease (`work` null; the
  /// finish phase waits for — or takes over — that process's cache publish).
  struct BatchItem {
    CellKey key;
    aging::AgingScenario scenario;
    std::shared_ptr<CellJob> job;
    std::optional<util::FileLease> lease;
    std::unique_ptr<CellCharJob> work;
    std::size_t first_task = 0;   ///< offset of this item's tasks in the queue
    std::size_t error_task = 0;   ///< lowest failing task index (determinism)
    std::exception_ptr task_error;
  };

  // Claim phase (serial): register an in-flight job per pair not already
  // cached/quarantined/claimed, serve disk-cache hits immediately, and build
  // the per-cell task queues. Construction failures (unknown cell, topology
  // bug) finalize here so waiters are never left hanging.
  std::exception_ptr first_error;  // first non-CharError, in pair order
  auto note_failure = [&first_error](std::exception_ptr failure) {
    if (first_error) return;
    try {
      std::rethrow_exception(std::move(failure));
    } catch (const CharError&) {
      // Quarantined; callers see it when they request the pair.
    } catch (...) {
      first_error = std::current_exception();
    }
  };
  std::vector<std::unique_ptr<BatchItem>> items;
  for (const auto& [scenario, name] : pairs) {
    // Cancellation: stop CLAIMING (never throw mid-claim — already claimed
    // pairs must still be finalized below so their waiters are released).
    // The fan-out tasks and the finish phase poll the token themselves.
    if (flow::poll_cancellation()) break;
    const CellKey key{scenario.id(), name};
    std::shared_ptr<CellJob> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cell_cache_.count(key) != 0 || quarantine_.count(key) != 0 ||
          in_flight_.count(key) != 0) {
        continue;  // done, failed-fast, or another thread/batch owns it
      }
      job = std::make_shared<CellJob>();
      in_flight_.emplace(key, job);
    }
    auto item = std::make_unique<BatchItem>();
    item->key = key;
    item->scenario = scenario;
    item->job = std::move(job);
    if (!options_.cache_dir.empty()) {
      const std::string lib_path = cell_lib_path(name, scenario);
      if (auto cached = load_cached_cell(lib_path, name)) {
        finalize_success(item->key, item->job, std::move(*cached));
        continue;
      }
      if (options_.disk_only) {
        auto miss = std::make_exception_ptr(CacheMissError(key.first, name));
        finalize_failure(item->key, item->job, miss);
        note_failure(miss);
        continue;
      }
      // Cross-process leader election (see build_cell): no lease means some
      // other process owns the pair — register a rendezvous item instead of
      // duplicating its SPICE campaign.
      const std::string lease_path = lib_path + ".lease";
      item->lease = util::FileLease::try_acquire(lease_path, options_.dedup_lease_ms);
      if (!item->lease && util::break_lease_if_stale(lease_path)) {
        item->lease = util::FileLease::try_acquire(lease_path, options_.dedup_lease_ms);
      }
      if (!item->lease) {
        items.push_back(std::move(item));  // rendezvous in the finish phase
        continue;
      }
      // Re-probe under the lease: the prior leader may have published
      // between our miss above and this acquire.
      if (auto cached = load_cached_cell(lib_path, name)) {
        item->lease.reset();
        finalize_success(item->key, item->job, std::move(*cached));
        continue;
      }
    }
    try {
      item->work = std::make_unique<CellCharJob>(cells::find_cell(name), scenario,
                                                 options_.characterize);
    } catch (...) {
      finalize_failure(item->key, item->job, std::current_exception());
      note_failure(std::current_exception());
      continue;
    }
    items.push_back(std::move(item));
  }

  // Fan-out phase: ONE top-level parallel_for over the concatenation of
  // every item's task queue — the scheduler sees (scenario × cell × arc ×
  // OPC) granularity, so a 61-cell library keeps every worker busy instead
  // of serializing nested per-cell loops. Task exceptions are captured per
  // item (lowest task index wins, for determinism) so one failing cell
  // cannot abandon the others mid-queue.
  std::size_t total_tasks = 0;
  std::vector<std::size_t> task_end;  // cumulative, for task -> item lookup
  task_end.reserve(items.size());
  for (auto& item : items) {
    item->first_task = total_tasks;
    // Rendezvous items (another process characterizes) contribute no local
    // tasks; their zero-width interval is skipped by the lookup below.
    total_tasks += item->work ? item->work->task_count() : 0;
    task_end.push_back(total_tasks);
  }
  std::mutex error_mutex;
  util::ThreadPool::shared().parallel_for(total_tasks, [&](std::size_t task) {
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(task_end.begin(), task_end.end(), task) - task_end.begin());
    BatchItem& item = *items[idx];
    try {
      item.work->run_task(task - item.first_task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!item.task_error || task < item.error_task) {
        item.task_error = std::current_exception();
        item.error_task = task;
      }
    }
  });

  // Finish phase (serial, deterministic item order): assemble each cell —
  // fallback interpolation and the flop setup search happen here — publish
  // it, and release waiters. Every item is finalized even when another
  // failed; only then is the first non-CharError failure rethrown.
  for (auto& item : items) {
    std::exception_ptr failure = item->task_error;
    if (!failure) {
      try {
        if (!item->work) {
          // Rendezvous item: another process held the lease at claim time.
          // build_cell waits for its publish — or takes over (this process
          // becomes leader) if that process died and left a stale lease.
          finalize_success(item->key, item->job, build_cell(item->key.second, item->scenario));
          continue;
        }
        liberty::Cell cell = item->work->finish();
        if (!options_.cache_dir.empty()) store_cached_cell(item->scenario, item->key.second, cell);
        item->lease.reset();  // publish happened; let followers take the file
        finalize_success(item->key, item->job, std::move(cell));
        continue;
      } catch (...) {
        failure = std::current_exception();
      }
    }
    item->lease.reset();
    finalize_failure(item->key, item->job, failure);
    note_failure(failure);
  }
  if (first_error) std::rethrow_exception(first_error);
}

const liberty::Library& LibraryFactory::library(const aging::AgingScenario& scenario) {
  const std::string id = scenario.id();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = library_cache_.find(id); it != library_cache_.end()) return *it->second;
  }

  // Characterize every needed (lattice) corner through one flat task queue;
  // the in-flight table keeps concurrent library() calls for the same
  // scenario from duplicating any cell.
  const std::vector<std::string> names = cell_names();
  std::vector<std::pair<aging::AgingScenario, std::string>> pairs;
  for (const auto& direct : direct_scenarios(scenario)) {
    for (const auto& name : names) pairs.emplace_back(direct, name);
  }
  characterize_batch(pairs);

  // Assemble in catalog order from the (now warm) cache: deterministic for
  // any thread count. Off-lattice adaptive scenarios interpolate (or refine)
  // here, against the corners the batch just characterized.
  auto lib = std::make_unique<liberty::Library>("reliaware_" + id);
  for (const auto& name : names) lib->add_cell(cell(name, scenario));

  std::lock_guard<std::mutex> lock(mutex_);
  // First inserter wins; a losing thread built an identical library from the
  // same cached cells, so dropping it is safe.
  return *library_cache_.try_emplace(id, std::move(lib)).first->second;
}

liberty::Library LibraryFactory::merged(const std::vector<aging::AgingScenario>& scenarios) {
  const std::vector<std::string> names = cell_names();

  // One flat (scenario × cell × arc × OPC) task queue through the shared
  // cell cache: pairs characterized earlier — via cell(), library(), or a
  // previous merged() — are cache hits and are never rebuilt. Permanent
  // failures are tolerated here (the batch quarantines them and the assembly
  // below skips them); anything else still aborts the merge. Under the
  // adaptive grid, only the distinct lattice corners enter the queue.
  std::vector<std::pair<aging::AgingScenario, std::string>> pairs;
  std::set<CellKey> seen;
  for (const auto& s : scenarios) {
    for (const auto& direct : direct_scenarios(s)) {
      for (const auto& name : names) {
        if (seen.insert(CellKey{direct.id(), name}).second) pairs.emplace_back(direct, name);
      }
    }
  }
  characterize_batch(pairs);

  // Reuse memoized full libraries where they exist; otherwise assemble a
  // local library from cached cells without growing the library memo.
  std::vector<liberty::Library> local;
  local.reserve(scenarios.size());
  std::vector<liberty::ScenarioLibrary> parts;
  parts.reserve(scenarios.size());
  for (const auto& s : scenarios) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = library_cache_.find(s.id()); it != library_cache_.end()) {
        parts.push_back({s, it->second.get()});
        continue;
      }
    }
    liberty::Library lib("reliaware_" + s.id());
    for (const auto& name : names) {
      try {
        lib.add_cell(cell(name, s));
      } catch (const CharError&) {
        // Quarantined corner: the merged library simply lacks this
        // (cell, λp, λn) variant; synthesis falls back to healthy corners.
      }
    }
    local.push_back(std::move(lib));
    parts.push_back({s, &local.back()});
  }
  return liberty::merge_libraries(parts);
}

}  // namespace rw::charlib
