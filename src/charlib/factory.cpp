#include "charlib/factory.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <set>
#include <utility>

#include "cells/catalog.hpp"
#include "charlib/adaptive.hpp"
#include "flow/cancel.hpp"
#include "liberty/merge.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

namespace fs = std::filesystem;

LibraryFactory::Options LibraryFactory::default_options() {
  Options o;
  if (const char* env = std::getenv("RW_LIBCACHE"); env != nullptr && *env != '\0') {
    o.cache_dir = env;
  } else if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0') {
    o.cache_dir = std::string(home) + "/.cache/reliaware";
  }
  if (const char* env = std::getenv("RW_CHAR_RESUME"); env != nullptr && *env != '\0') {
    o.resume = std::string(env) != "0";
  }
  return o;
}

LibraryFactory::LibraryFactory(Options options)
    : options_(std::move(options)), manifest_(manifest_path()) {
  if (options_.resume) resume();
}

std::string LibraryFactory::grid_dir() const {
  // The adaptive policy changes what a cached cell *means* (exact vs
  // certified-interpolated at some tolerance), so it is part of the key.
  std::string dir = options_.cache_dir + "/" + options_.characterize.grid.tag();
  if (const std::string tag = options_.characterize.adaptive.cache_tag(); !tag.empty()) {
    dir += "-" + tag;
  }
  return dir;
}

std::string LibraryFactory::scenario_dir(const aging::AgingScenario& scenario) const {
  return grid_dir() + "/" + scenario.id();
}

std::string LibraryFactory::manifest_path() const {
  if (options_.cache_dir.empty()) return {};
  return grid_dir() + "/manifest.json";
}

std::size_t LibraryFactory::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_ = RunManifest::load(manifest_path());
  for (const ManifestEntry* e : manifest_.entries()) {
    if (e->status == "failed") quarantine_[CellKey{e->scenario, e->cell}] = e->error;
  }
  return manifest_.size();
}

std::vector<LibraryFactory::QuarantinedCell> LibraryFactory::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedCell> out;
  out.reserve(quarantine_.size());
  for (const auto& [key, error] : quarantine_) {
    out.push_back(QuarantinedCell{key.first, key.second, error});
  }
  return out;
}

std::vector<std::string> LibraryFactory::cell_names() const {
  if (!options_.cell_subset.empty()) return options_.cell_subset;
  std::vector<std::string> names;
  names.reserve(cells::catalog().size());
  for (const auto& spec : cells::catalog()) names.push_back(spec.name);
  return names;
}

std::unique_ptr<liberty::Cell> LibraryFactory::load_cached_cell(
    const std::string& path, const std::string& cell_name) const {
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  try {
    liberty::Library single = liberty::parse_library_file(path);
    if (const liberty::Cell* c = single.find(cell_name)) {
      return std::make_unique<liberty::Cell>(*c);
    }
  } catch (const std::exception&) {
    // Truncated or corrupt (e.g. a crash mid-write before atomic renames
    // existed): fall through to removal + re-characterization.
  }
  fs::remove(path, ec);
  return nullptr;
}

void LibraryFactory::store_cached_cell(const aging::AgingScenario& scenario,
                                       const std::string& cell_name,
                                       const liberty::Cell& cell) const {
  liberty::Library single("rw_cache_" + scenario.id());
  single.add_cell(cell);
  // Shared atomic temp+rename writer: concurrent factories (threads or
  // processes) never expose a partially written file, and the last complete
  // write wins. The cache is an optimization; failures never fail the run.
  (void)util::write_file_atomic_nothrow(scenario_dir(scenario) + "/" + cell_name + ".lib",
                                        liberty::write_library(single));
}

const liberty::Cell& LibraryFactory::cell(const std::string& cell_name,
                                          const aging::AgingScenario& scenario) {
  const CellKey key{scenario.id(), cell_name};
  std::shared_ptr<CellJob> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (const auto it = cell_cache_.find(key); it != cell_cache_.end()) return it->second;
      if (const auto q = quarantine_.find(key); q != quarantine_.end()) {
        // Fail fast with the recorded chain; no SPICE is re-run for a pair
        // that already failed permanently (this run or a resumed one).
        throw CharError(cell_name, "quarantined scenario=" + key.first, q->second);
      }
      const auto in = in_flight_.find(key);
      if (in == in_flight_.end()) break;
      // Another thread is characterizing this (scenario, cell): wait for it
      // instead of duplicating the SPICE work. The wait polls cancellation so
      // a tripped token (deadline, signal, chaos drill) wakes waiters with a
      // structured error even while the leader is stuck in a long solve.
      const std::shared_ptr<CellJob> pending = in->second;
      while (!cv_.wait_for(lock, std::chrono::milliseconds(50),
                           [&] { return pending->done; })) {
        if (flow::poll_cancellation()) {
          throw flow::CancelledError("factory: cancelled while waiting for in-flight " +
                                     cell_name + " (" + key.first + ")");
        }
      }
      if (pending->error) std::rethrow_exception(pending->error);
      // Re-check the cache (and any newer in-flight entry) from the top.
    }
    job = std::make_shared<CellJob>();
    in_flight_.emplace(key, job);
  }

  liberty::Cell result;
  try {
    result = build_cell(cell_name, scenario);
  } catch (...) {
    finalize_failure(key, job, std::current_exception());
    throw;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const liberty::Cell& ref = cell_cache_.emplace(key, std::move(result)).first->second;
  manifest_.record_done(key.first, key.second, static_cast<int>(ref.fallbacks.size()));
  manifest_.save();
  job->done = true;
  in_flight_.erase(key);
  cv_.notify_all();
  return ref;
}

void LibraryFactory::finalize_success(const CellKey& key, const std::shared_ptr<CellJob>& job,
                                      liberty::Cell cell) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const liberty::Cell& ref = cell_cache_.emplace(key, std::move(cell)).first->second;
    manifest_.record_done(key.first, key.second, static_cast<int>(ref.fallbacks.size()));
    manifest_.save();
    job->done = true;
    in_flight_.erase(key);
  }
  cv_.notify_all();
}

void LibraryFactory::finalize_failure(const CellKey& key, const std::shared_ptr<CellJob>& job,
                                      std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->error = error;
    job->done = true;
    in_flight_.erase(key);
    try {
      std::rethrow_exception(error);
    } catch (const CharError& e) {
      // A CharError is a permanent failure (the solver already exhausted
      // its retry ladder): quarantine the pair and checkpoint it so a
      // resumed run fails fast instead of repeating hours of SPICE.
      quarantine_[key] = e.what();
      manifest_.record_failed(key.first, key.second, e.what());
      manifest_.save();
    } catch (...) {
      // Transient failures (I/O, bad_alloc, ...) are not quarantined.
    }
  }
  cv_.notify_all();
}

std::vector<aging::AgingScenario> LibraryFactory::direct_scenarios(
    const aging::AgingScenario& scenario) const {
  const AdaptiveGridOptions& adaptive = options_.characterize.adaptive;
  if (!adaptive.enabled || on_lattice(scenario, adaptive.lattice_step)) return {scenario};
  return lattice_bracket(scenario, adaptive.lattice_step).corners;
}

liberty::Cell LibraryFactory::build_cell(const std::string& cell_name,
                                         const aging::AgingScenario& scenario) {
  if (!options_.cache_dir.empty()) {
    if (auto cached = load_cached_cell(scenario_dir(scenario) + "/" + cell_name + ".lib",
                                       cell_name)) {
      return std::move(*cached);
    }
  }

  const AdaptiveGridOptions& adaptive = options_.characterize.adaptive;
  if (adaptive.enabled && !on_lattice(scenario, adaptive.lattice_step)) {
    // Off-lattice corner: interpolate between the bracketing lattice corners
    // (recursing via cell() — lattice corners characterize directly, so the
    // recursion terminates and never self-waits). Corner references stay
    // valid for the factory's lifetime.
    const LatticeBracket bracket = lattice_bracket(scenario, adaptive.lattice_step);
    std::vector<const liberty::Cell*> corners;
    corners.reserve(bracket.corners.size());
    for (const auto& corner : bracket.corners) corners.push_back(&cell(cell_name, corner));
    InterpolatedCell interp = interpolate_cell(bracket, corners);
    if (interp.bound_ps <= adaptive.interp_tol_ps) {
      std::uint64_t tables = 0;
      for (const auto& arc : interp.cell.arcs) {
        tables += static_cast<std::uint64_t>(!arc.rise.empty()) +
                  static_cast<std::uint64_t>(!arc.fall.empty());
      }
      stats::add_cell_interpolated(tables * options_.characterize.grid.size());
      if (!options_.cache_dir.empty()) store_cached_cell(scenario, cell_name, interp.cell);
      return std::move(interp.cell);
    }
    // Certified bound too loose for the flow tolerance: refine — fall
    // through to a direct characterization of this exact corner.
    stats::add_corner_refined();
  }

  liberty::Cell result = characterize_cell(cells::find_cell(cell_name), scenario,
                                           options_.characterize);
  if (!options_.cache_dir.empty()) store_cached_cell(scenario, cell_name, result);
  return result;
}

void LibraryFactory::characterize_batch(
    const std::vector<std::pair<aging::AgingScenario, std::string>>& pairs) {
  /// One claimed pair with live SPICE work in the flat queue.
  struct BatchItem {
    CellKey key;
    aging::AgingScenario scenario;
    std::shared_ptr<CellJob> job;
    std::unique_ptr<CellCharJob> work;
    std::size_t first_task = 0;   ///< offset of this item's tasks in the queue
    std::size_t error_task = 0;   ///< lowest failing task index (determinism)
    std::exception_ptr task_error;
  };

  // Claim phase (serial): register an in-flight job per pair not already
  // cached/quarantined/claimed, serve disk-cache hits immediately, and build
  // the per-cell task queues. Construction failures (unknown cell, topology
  // bug) finalize here so waiters are never left hanging.
  std::exception_ptr first_error;  // first non-CharError, in pair order
  std::vector<std::unique_ptr<BatchItem>> items;
  for (const auto& [scenario, name] : pairs) {
    const CellKey key{scenario.id(), name};
    std::shared_ptr<CellJob> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cell_cache_.count(key) != 0 || quarantine_.count(key) != 0 ||
          in_flight_.count(key) != 0) {
        continue;  // done, failed-fast, or another thread/batch owns it
      }
      job = std::make_shared<CellJob>();
      in_flight_.emplace(key, job);
    }
    if (!options_.cache_dir.empty()) {
      if (auto cached = load_cached_cell(scenario_dir(scenario) + "/" + name + ".lib", name)) {
        finalize_success(key, job, std::move(*cached));
        continue;
      }
    }
    auto item = std::make_unique<BatchItem>();
    item->key = key;
    item->scenario = scenario;
    item->job = std::move(job);
    try {
      item->work = std::make_unique<CellCharJob>(cells::find_cell(name), scenario,
                                                 options_.characterize);
    } catch (...) {
      finalize_failure(item->key, item->job, std::current_exception());
      if (!first_error) {
        try {
          throw;
        } catch (const CharError&) {
        } catch (...) {
          first_error = std::current_exception();
        }
      }
      continue;
    }
    items.push_back(std::move(item));
  }

  // Fan-out phase: ONE top-level parallel_for over the concatenation of
  // every item's task queue — the scheduler sees (scenario × cell × arc ×
  // OPC) granularity, so a 61-cell library keeps every worker busy instead
  // of serializing nested per-cell loops. Task exceptions are captured per
  // item (lowest task index wins, for determinism) so one failing cell
  // cannot abandon the others mid-queue.
  std::size_t total_tasks = 0;
  std::vector<std::size_t> task_end;  // cumulative, for task -> item lookup
  task_end.reserve(items.size());
  for (auto& item : items) {
    item->first_task = total_tasks;
    total_tasks += item->work->task_count();
    task_end.push_back(total_tasks);
  }
  std::mutex error_mutex;
  util::ThreadPool::shared().parallel_for(total_tasks, [&](std::size_t task) {
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(task_end.begin(), task_end.end(), task) - task_end.begin());
    BatchItem& item = *items[idx];
    try {
      item.work->run_task(task - item.first_task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!item.task_error || task < item.error_task) {
        item.task_error = std::current_exception();
        item.error_task = task;
      }
    }
  });

  // Finish phase (serial, deterministic item order): assemble each cell —
  // fallback interpolation and the flop setup search happen here — publish
  // it, and release waiters. Every item is finalized even when another
  // failed; only then is the first non-CharError failure rethrown.
  for (auto& item : items) {
    std::exception_ptr failure = item->task_error;
    if (!failure) {
      try {
        liberty::Cell cell = item->work->finish();
        if (!options_.cache_dir.empty()) store_cached_cell(item->scenario, item->key.second, cell);
        finalize_success(item->key, item->job, std::move(cell));
        continue;
      } catch (...) {
        failure = std::current_exception();
      }
    }
    finalize_failure(item->key, item->job, failure);
    if (!first_error) {
      try {
        std::rethrow_exception(failure);
      } catch (const CharError&) {
        // Quarantined; callers see it when they request the pair.
      } catch (...) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

const liberty::Library& LibraryFactory::library(const aging::AgingScenario& scenario) {
  const std::string id = scenario.id();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = library_cache_.find(id); it != library_cache_.end()) return *it->second;
  }

  // Characterize every needed (lattice) corner through one flat task queue;
  // the in-flight table keeps concurrent library() calls for the same
  // scenario from duplicating any cell.
  const std::vector<std::string> names = cell_names();
  std::vector<std::pair<aging::AgingScenario, std::string>> pairs;
  for (const auto& direct : direct_scenarios(scenario)) {
    for (const auto& name : names) pairs.emplace_back(direct, name);
  }
  characterize_batch(pairs);

  // Assemble in catalog order from the (now warm) cache: deterministic for
  // any thread count. Off-lattice adaptive scenarios interpolate (or refine)
  // here, against the corners the batch just characterized.
  auto lib = std::make_unique<liberty::Library>("reliaware_" + id);
  for (const auto& name : names) lib->add_cell(cell(name, scenario));

  std::lock_guard<std::mutex> lock(mutex_);
  // First inserter wins; a losing thread built an identical library from the
  // same cached cells, so dropping it is safe.
  return *library_cache_.try_emplace(id, std::move(lib)).first->second;
}

liberty::Library LibraryFactory::merged(const std::vector<aging::AgingScenario>& scenarios) {
  const std::vector<std::string> names = cell_names();

  // One flat (scenario × cell × arc × OPC) task queue through the shared
  // cell cache: pairs characterized earlier — via cell(), library(), or a
  // previous merged() — are cache hits and are never rebuilt. Permanent
  // failures are tolerated here (the batch quarantines them and the assembly
  // below skips them); anything else still aborts the merge. Under the
  // adaptive grid, only the distinct lattice corners enter the queue.
  std::vector<std::pair<aging::AgingScenario, std::string>> pairs;
  std::set<CellKey> seen;
  for (const auto& s : scenarios) {
    for (const auto& direct : direct_scenarios(s)) {
      for (const auto& name : names) {
        if (seen.insert(CellKey{direct.id(), name}).second) pairs.emplace_back(direct, name);
      }
    }
  }
  characterize_batch(pairs);

  // Reuse memoized full libraries where they exist; otherwise assemble a
  // local library from cached cells without growing the library memo.
  std::vector<liberty::Library> local;
  local.reserve(scenarios.size());
  std::vector<liberty::ScenarioLibrary> parts;
  parts.reserve(scenarios.size());
  for (const auto& s : scenarios) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = library_cache_.find(s.id()); it != library_cache_.end()) {
        parts.push_back({s, it->second.get()});
        continue;
      }
    }
    liberty::Library lib("reliaware_" + s.id());
    for (const auto& name : names) {
      try {
        lib.add_cell(cell(name, s));
      } catch (const CharError&) {
        // Quarantined corner: the merged library simply lacks this
        // (cell, λp, λn) variant; synthesis falls back to healthy corners.
      }
    }
    local.push_back(std::move(lib));
    parts.push_back({s, &local.back()});
  }
  return liberty::merge_libraries(parts);
}

}  // namespace rw::charlib
