#include "charlib/factory.hpp"

#include <cstdlib>
#include <filesystem>

#include "cells/catalog.hpp"
#include "liberty/merge.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"

namespace rw::charlib {

namespace fs = std::filesystem;

LibraryFactory::Options LibraryFactory::default_options() {
  Options o;
  if (const char* env = std::getenv("RW_LIBCACHE"); env != nullptr && *env != '\0') {
    o.cache_dir = env;
  } else if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0') {
    o.cache_dir = std::string(home) + "/.cache/reliaware";
  }
  return o;
}

LibraryFactory::LibraryFactory(Options options) : options_(std::move(options)) {}

std::string LibraryFactory::scenario_dir(const aging::AgingScenario& scenario) const {
  return options_.cache_dir + "/" + options_.characterize.grid.tag() + "/" + scenario.id();
}

std::vector<std::string> LibraryFactory::cell_names() const {
  if (!options_.cell_subset.empty()) return options_.cell_subset;
  std::vector<std::string> names;
  names.reserve(cells::catalog().size());
  for (const auto& spec : cells::catalog()) names.push_back(spec.name);
  return names;
}

const liberty::Cell& LibraryFactory::cell(const std::string& cell_name,
                                          const aging::AgingScenario& scenario) {
  const auto key = std::make_pair(scenario.id(), cell_name);
  if (const auto it = cell_cache_.find(key); it != cell_cache_.end()) return it->second;

  // Disk cache lookup.
  if (!options_.cache_dir.empty()) {
    const std::string path = scenario_dir(scenario) + "/" + cell_name + ".lib";
    if (fs::exists(path)) {
      liberty::Library single = liberty::parse_library_file(path);
      if (const liberty::Cell* c = single.find(cell_name)) {
        return cell_cache_.emplace(key, *c).first->second;
      }
    }
  }

  liberty::Cell characterized =
      characterize_cell(cells::find_cell(cell_name), scenario, options_.characterize);

  if (!options_.cache_dir.empty()) {
    const std::string dir = scenario_dir(scenario);
    fs::create_directories(dir);
    liberty::Library single("rw_cache_" + scenario.id());
    single.add_cell(characterized);
    liberty::write_library_file(single, dir + "/" + cell_name + ".lib");
  }
  return cell_cache_.emplace(key, std::move(characterized)).first->second;
}

const liberty::Library& LibraryFactory::library(const aging::AgingScenario& scenario) {
  const std::string id = scenario.id();
  if (const auto it = library_cache_.find(id); it != library_cache_.end()) return *it->second;

  auto lib = std::make_unique<liberty::Library>("reliaware_" + id);
  for (const auto& name : cell_names()) lib->add_cell(cell(name, scenario));
  return *library_cache_.emplace(id, std::move(lib)).first->second;
}

liberty::Library LibraryFactory::merged(const std::vector<aging::AgingScenario>& scenarios) {
  std::vector<liberty::ScenarioLibrary> parts;
  parts.reserve(scenarios.size());
  for (const auto& s : scenarios) parts.push_back({s, &library(s)});
  return liberty::merge_libraries(parts);
}

}  // namespace rw::charlib
