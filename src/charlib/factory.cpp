#include "charlib/factory.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "cells/catalog.hpp"
#include "flow/cancel.hpp"
#include "liberty/merge.hpp"
#include "liberty/parser.hpp"
#include "liberty/writer.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace rw::charlib {

namespace fs = std::filesystem;

LibraryFactory::Options LibraryFactory::default_options() {
  Options o;
  if (const char* env = std::getenv("RW_LIBCACHE"); env != nullptr && *env != '\0') {
    o.cache_dir = env;
  } else if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0') {
    o.cache_dir = std::string(home) + "/.cache/reliaware";
  }
  if (const char* env = std::getenv("RW_CHAR_RESUME"); env != nullptr && *env != '\0') {
    o.resume = std::string(env) != "0";
  }
  return o;
}

LibraryFactory::LibraryFactory(Options options)
    : options_(std::move(options)), manifest_(manifest_path()) {
  if (options_.resume) resume();
}

std::string LibraryFactory::scenario_dir(const aging::AgingScenario& scenario) const {
  return options_.cache_dir + "/" + options_.characterize.grid.tag() + "/" + scenario.id();
}

std::string LibraryFactory::manifest_path() const {
  if (options_.cache_dir.empty()) return {};
  return options_.cache_dir + "/" + options_.characterize.grid.tag() + "/manifest.json";
}

std::size_t LibraryFactory::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_ = RunManifest::load(manifest_path());
  for (const ManifestEntry* e : manifest_.entries()) {
    if (e->status == "failed") quarantine_[CellKey{e->scenario, e->cell}] = e->error;
  }
  return manifest_.size();
}

std::vector<LibraryFactory::QuarantinedCell> LibraryFactory::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedCell> out;
  out.reserve(quarantine_.size());
  for (const auto& [key, error] : quarantine_) {
    out.push_back(QuarantinedCell{key.first, key.second, error});
  }
  return out;
}

std::vector<std::string> LibraryFactory::cell_names() const {
  if (!options_.cell_subset.empty()) return options_.cell_subset;
  std::vector<std::string> names;
  names.reserve(cells::catalog().size());
  for (const auto& spec : cells::catalog()) names.push_back(spec.name);
  return names;
}

std::unique_ptr<liberty::Cell> LibraryFactory::load_cached_cell(
    const std::string& path, const std::string& cell_name) const {
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  try {
    liberty::Library single = liberty::parse_library_file(path);
    if (const liberty::Cell* c = single.find(cell_name)) {
      return std::make_unique<liberty::Cell>(*c);
    }
  } catch (const std::exception&) {
    // Truncated or corrupt (e.g. a crash mid-write before atomic renames
    // existed): fall through to removal + re-characterization.
  }
  fs::remove(path, ec);
  return nullptr;
}

void LibraryFactory::store_cached_cell(const aging::AgingScenario& scenario,
                                       const std::string& cell_name,
                                       const liberty::Cell& cell) const {
  liberty::Library single("rw_cache_" + scenario.id());
  single.add_cell(cell);
  // Shared atomic temp+rename writer: concurrent factories (threads or
  // processes) never expose a partially written file, and the last complete
  // write wins. The cache is an optimization; failures never fail the run.
  (void)util::write_file_atomic_nothrow(scenario_dir(scenario) + "/" + cell_name + ".lib",
                                        liberty::write_library(single));
}

const liberty::Cell& LibraryFactory::cell(const std::string& cell_name,
                                          const aging::AgingScenario& scenario) {
  const CellKey key{scenario.id(), cell_name};
  std::shared_ptr<CellJob> job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (const auto it = cell_cache_.find(key); it != cell_cache_.end()) return it->second;
      if (const auto q = quarantine_.find(key); q != quarantine_.end()) {
        // Fail fast with the recorded chain; no SPICE is re-run for a pair
        // that already failed permanently (this run or a resumed one).
        throw CharError(cell_name, "quarantined scenario=" + key.first, q->second);
      }
      const auto in = in_flight_.find(key);
      if (in == in_flight_.end()) break;
      // Another thread is characterizing this (scenario, cell): wait for it
      // instead of duplicating the SPICE work. The wait polls cancellation so
      // a tripped token (deadline, signal, chaos drill) wakes waiters with a
      // structured error even while the leader is stuck in a long solve.
      const std::shared_ptr<CellJob> pending = in->second;
      while (!cv_.wait_for(lock, std::chrono::milliseconds(50),
                           [&] { return pending->done; })) {
        if (flow::poll_cancellation()) {
          throw flow::CancelledError("factory: cancelled while waiting for in-flight " +
                                     cell_name + " (" + key.first + ")");
        }
      }
      if (pending->error) std::rethrow_exception(pending->error);
      // Re-check the cache (and any newer in-flight entry) from the top.
    }
    job = std::make_shared<CellJob>();
    in_flight_.emplace(key, job);
  }

  liberty::Cell result;
  try {
    std::unique_ptr<liberty::Cell> cached;
    if (!options_.cache_dir.empty()) {
      cached = load_cached_cell(scenario_dir(scenario) + "/" + cell_name + ".lib", cell_name);
    }
    if (cached != nullptr) {
      result = std::move(*cached);
    } else {
      result = characterize_cell(cells::find_cell(cell_name), scenario, options_.characterize);
      if (!options_.cache_dir.empty()) store_cached_cell(scenario, cell_name, result);
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->error = std::current_exception();
      job->done = true;
      in_flight_.erase(key);
      try {
        std::rethrow_exception(job->error);
      } catch (const CharError& e) {
        // A CharError is a permanent failure (the solver already exhausted
        // its retry ladder): quarantine the pair and checkpoint it so a
        // resumed run fails fast instead of repeating hours of SPICE.
        quarantine_[key] = e.what();
        manifest_.record_failed(key.first, key.second, e.what());
        manifest_.save();
      } catch (...) {
        // Transient failures (I/O, bad_alloc, ...) are not quarantined.
      }
    }
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const liberty::Cell& ref = cell_cache_.emplace(key, std::move(result)).first->second;
  manifest_.record_done(key.first, key.second, static_cast<int>(ref.fallbacks.size()));
  manifest_.save();
  job->done = true;
  in_flight_.erase(key);
  cv_.notify_all();
  return ref;
}

const liberty::Library& LibraryFactory::library(const aging::AgingScenario& scenario) {
  const std::string id = scenario.id();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = library_cache_.find(id); it != library_cache_.end()) return *it->second;
  }

  // Characterize all cells in parallel; the in-flight table keeps concurrent
  // library() calls for the same scenario from duplicating any cell.
  const std::vector<std::string> names = cell_names();
  util::ThreadPool::shared().parallel_for(
      names.size(), [&](std::size_t i) { (void)cell(names[i], scenario); });

  // Assemble in catalog order from the (now warm) cache: deterministic for
  // any thread count.
  auto lib = std::make_unique<liberty::Library>("reliaware_" + id);
  for (const auto& name : names) lib->add_cell(cell(name, scenario));

  std::lock_guard<std::mutex> lock(mutex_);
  // First inserter wins; a losing thread built an identical library from the
  // same cached cells, so dropping it is safe.
  return *library_cache_.try_emplace(id, std::move(lib)).first->second;
}

liberty::Library LibraryFactory::merged(const std::vector<aging::AgingScenario>& scenarios) {
  const std::vector<std::string> names = cell_names();

  // One flat (scenario × cell) job list through the shared cell cache:
  // pairs characterized earlier — via cell(), library(), or a previous
  // merged() — are cache hits and are never rebuilt. Permanent failures are
  // tolerated here (they land in the quarantine, which the assembly below
  // skips); anything else still aborts the merge.
  util::ThreadPool::shared().parallel_for(scenarios.size() * names.size(), [&](std::size_t i) {
    try {
      (void)cell(names[i % names.size()], scenarios[i / names.size()]);
    } catch (const CharError&) {
    }
  });

  // Reuse memoized full libraries where they exist; otherwise assemble a
  // local library from cached cells without growing the library memo.
  std::vector<liberty::Library> local;
  local.reserve(scenarios.size());
  std::vector<liberty::ScenarioLibrary> parts;
  parts.reserve(scenarios.size());
  for (const auto& s : scenarios) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = library_cache_.find(s.id()); it != library_cache_.end()) {
        parts.push_back({s, it->second.get()});
        continue;
      }
    }
    liberty::Library lib("reliaware_" + s.id());
    for (const auto& name : names) {
      try {
        lib.add_cell(cell(name, s));
      } catch (const CharError&) {
        // Quarantined corner: the merged library simply lacks this
        // (cell, λp, λn) variant; synthesis falls back to healthy corners.
      }
    }
    local.push_back(std::move(lib));
    parts.push_back({s, &local.back()});
  }
  return liberty::merge_libraries(parts);
}

}  // namespace rw::charlib
