#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"

namespace rw::circuits {

/// DSP kernel: a 16x16 multiply-accumulate pipeline
///   stage 1: operand registers
///   stage 2: array multiplier -> product register
///   stage 3: 32-bit accumulator
/// plus a clear input that resets the accumulator.
synth::Ir make_dsp() {
  synth::Ir ir;
  const Word a = input_word(ir, "a", 16);
  const Word b = input_word(ir, "b", 16);
  const int clear = ir.input("clear");

  const Word ra = register_word(ir, a);
  const Word rb = register_word(ir, b);
  const int rclear = ir.flop(clear);

  const Word product = mul_signed(ir, ra, rb);  // 32 bits
  const Word rp = register_word(ir, product);
  const int rclear2 = ir.flop(rclear);

  const Word acc = register_placeholder(ir, 32);
  const Word sum = add(ir, acc, rp);
  const Word zero = constant_word(ir, 0, 32);
  connect_register(ir, acc, mux_word(ir, rclear2, sum, zero));

  output_word(ir, "acc", acc);
  return ir;
}

}  // namespace rw::circuits
