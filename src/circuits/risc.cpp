#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"

namespace rw::circuits {

namespace {

using synth::Ir;

/// Instruction format (16 bits):
///   [15:13] opcode  [12:10] rd  [9:7] rs1  [6:4] rs2  [3:0] imm4
/// Opcodes: 0 ADD, 1 SUB, 2 AND, 3 OR, 4 XOR, 5 SHL, 6 SHR, 7 ADDI.
struct Decoded {
  Word opcode;  // 3
  Word rd;      // 3
  Word rs1;     // 3
  Word rs2;     // 3
  Word imm;     // 4
};

Decoded decode(const Word& instr) {
  Decoded d;
  d.imm = {instr[0], instr[1], instr[2], instr[3]};
  d.rs2 = {instr[4], instr[5], instr[6]};
  d.rs1 = {instr[7], instr[8], instr[9]};
  d.rd = {instr[10], instr[11], instr[12]};
  d.opcode = {instr[13], instr[14], instr[15]};
  return d;
}

Word register_decoded_field(Ir& ir, const Word& w) { return register_word(ir, w); }

/// 8-entry x 16-bit register file with one write port; returns the register
/// outputs. Write: reg[i] <= (wr_addr == i) ? wr_data : reg[i].
std::vector<Word> regfile(Ir& ir, const Word& wr_addr, const Word& wr_data) {
  std::vector<Word> regs;
  regs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    const Word q = register_placeholder(ir, 16);
    const int hit = equals_const(ir, wr_addr, static_cast<std::uint64_t>(i));
    connect_register(ir, q, mux_word(ir, hit, q, wr_data));
    regs.push_back(q);
  }
  return regs;
}

/// 8:1 word mux indexed by a 3-bit address.
Word read_port(Ir& ir, const std::vector<Word>& regs, const Word& addr) {
  Word lvl1[4];
  for (int i = 0; i < 4; ++i) {
    lvl1[i] = mux_word(ir, addr[0], regs[static_cast<std::size_t>(2 * i)],
                       regs[static_cast<std::size_t>(2 * i + 1)]);
  }
  const Word lvl2a = mux_word(ir, addr[1], lvl1[0], lvl1[1]);
  const Word lvl2b = mux_word(ir, addr[1], lvl1[2], lvl1[3]);
  return mux_word(ir, addr[2], lvl2a, lvl2b);
}

/// ALU over the 8 opcodes.
Word alu(Ir& ir, const Word& opcode, const Word& s1, const Word& s2, const Word& imm) {
  const Word imm_ext = resize(ir, imm, 16, /*sign_extend=*/true);
  const Word shamt = {imm[0], imm[1], imm[2], imm[3]};

  const Word r_add = add(ir, s1, s2);
  const Word r_sub = sub(ir, s1, s2);
  const Word r_and = bitwise_and(ir, s1, s2);
  const Word r_or = bitwise_or(ir, s1, s2);
  const Word r_xor = bitwise_xor(ir, s1, s2);
  const Word r_shl = barrel_shift(ir, s1, shamt, /*left=*/true);
  const Word r_shr = barrel_shift(ir, s1, shamt, /*left=*/false);
  const Word r_addi = add(ir, s1, imm_ext);

  const Word m0 = mux_word(ir, opcode[0], r_add, r_sub);
  const Word m1 = mux_word(ir, opcode[0], r_and, r_or);
  const Word m2 = mux_word(ir, opcode[0], r_xor, r_shl);
  const Word m3 = mux_word(ir, opcode[0], r_shr, r_addi);
  const Word n0 = mux_word(ir, opcode[1], m0, m1);
  const Word n1 = mux_word(ir, opcode[1], m2, m3);
  return mux_word(ir, opcode[2], n0, n1);
}

/// Forwarding mux: pick the youngest in-flight value whose destination
/// matches `rs`; fall back to the regfile read.
Word forward(Ir& ir, const Word& rs, const Word& regfile_value,
             const std::vector<std::pair<Word, Word>>& inflight /* (rd, value), youngest first */) {
  Word value = regfile_value;
  // Build oldest-first so the youngest match wins the final mux.
  for (auto it = inflight.rbegin(); it != inflight.rend(); ++it) {
    const int hit = [&] {
      int acc = ir.constant(true);
      for (std::size_t b = 0; b < rs.size(); ++b) {
        acc = ir.and_(acc, ir.not_(ir.xor_(rs[b], it->first[b])));
      }
      return acc;
    }();
    value = mux_word(ir, hit, value, it->second);
  }
  return value;
}

/// Shared 5/6-stage core builder. The 6-stage variant adds one more buffer
/// stage between MEM and WB, lengthening the forwarding network.
Ir make_risc(bool six_stage) {
  Ir ir;
  // IF: external instruction stream (instruction memory is off-chip here),
  // plus a program counter that the fetch logic would use.
  const Word instr_in = input_word(ir, "instr", 16);
  const Word pc = register_placeholder(ir, 16);
  connect_register(ir, pc, add(ir, pc, constant_word(ir, 1, 16)));
  output_word(ir, "pc", pc);

  // IF/ID register.
  const Word if_id = register_word(ir, instr_in);
  const Decoded id = decode(if_id);

  // WB signals come from the end of the pipe; forward-declare them.
  const Word wb_rd = register_placeholder(ir, 3);
  const Word wb_data = register_placeholder(ir, 16);

  // ID: register read (write-through regfile keyed by WB).
  const std::vector<Word> regs = regfile(ir, wb_rd, wb_data);
  const Word rf1 = read_port(ir, regs, id.rs1);
  const Word rf2 = read_port(ir, regs, id.rs2);

  // ID/EX registers.
  const Word ex_op = register_decoded_field(ir, id.opcode);
  const Word ex_rd = register_decoded_field(ir, id.rd);
  const Word ex_rs1 = register_decoded_field(ir, id.rs1);
  const Word ex_rs2 = register_decoded_field(ir, id.rs2);
  const Word ex_imm = register_decoded_field(ir, id.imm);
  const Word ex_v1 = register_word(ir, rf1);
  const Word ex_v2 = register_word(ir, rf2);

  // EX with forwarding from MEM (and the extra stage when present) and WB.
  const Word mem_rd = register_placeholder(ir, 3);
  const Word mem_result = register_placeholder(ir, 16);
  std::vector<std::pair<Word, Word>> inflight;
  inflight.emplace_back(mem_rd, mem_result);  // youngest
  Word x_rd;
  Word x_result;
  if (six_stage) {
    x_rd = register_placeholder(ir, 3);
    x_result = register_placeholder(ir, 16);
    inflight.emplace_back(x_rd, x_result);
  }
  inflight.emplace_back(wb_rd, wb_data);  // oldest

  const Word s1 = forward(ir, ex_rs1, ex_v1, inflight);
  const Word s2 = forward(ir, ex_rs2, ex_v2, inflight);
  const Word ex_result = alu(ir, ex_op, s1, s2, ex_imm);

  // EX/MEM.
  connect_register(ir, mem_rd, ex_rd);
  connect_register(ir, mem_result, ex_result);

  // Optional extra stage (6-pipeline variant), then WB.
  if (six_stage) {
    connect_register(ir, x_rd, mem_rd);
    connect_register(ir, x_result, mem_result);
    connect_register(ir, wb_rd, x_rd);
    connect_register(ir, wb_data, x_result);
  } else {
    connect_register(ir, wb_rd, mem_rd);
    connect_register(ir, wb_data, mem_result);
  }

  output_word(ir, "wb", wb_data);
  return ir;
}

}  // namespace

synth::Ir make_risc5() { return make_risc(false); }
synth::Ir make_risc6() { return make_risc(true); }

}  // namespace rw::circuits
