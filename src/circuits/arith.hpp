#pragma once

/// \file arith.hpp
/// Word-level construction helpers over the synthesis IR: registers, adders,
/// multipliers, shifters, muxes. Words are little-endian vectors of IR node
/// ids with fixed width; additions wrap (two's complement), which makes
/// constant multiplication by shift-add exact for signed operands.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/ir.hpp"

namespace rw::circuits {

using Word = std::vector<int>;  ///< node ids, index 0 = LSB

/// Primary-input word; bit i is named "<name><i>".
Word input_word(synth::Ir& ir, const std::string& name, int width);
/// Primary-output word; bit i is named "<name><i>".
void output_word(synth::Ir& ir, const std::string& name, const Word& word);

Word constant_word(synth::Ir& ir, std::int64_t value, int width);

/// One register per bit (implicit global clock).
Word register_word(synth::Ir& ir, const Word& word);

/// Register with forward-declared D (for feedback); connect via
/// connect_register.
Word register_placeholder(synth::Ir& ir, int width);
void connect_register(synth::Ir& ir, const Word& regs, const Word& d);

Word resize(synth::Ir& ir, const Word& word, int width, bool sign_extend);

Word bitwise_not(synth::Ir& ir, const Word& a);
Word bitwise_and(synth::Ir& ir, const Word& a, const Word& b);
Word bitwise_or(synth::Ir& ir, const Word& a, const Word& b);
Word bitwise_xor(synth::Ir& ir, const Word& a, const Word& b);

/// Word-wide 2:1 mux (d0 when sel=0).
Word mux_word(synth::Ir& ir, int sel, const Word& d0, const Word& d1);

/// Ripple-carry addition, result truncated to the operand width (wraps).
Word add(synth::Ir& ir, const Word& a, const Word& b);
/// a - b (two's complement, wraps).
Word sub(synth::Ir& ir, const Word& a, const Word& b);
/// a + b producing width+1 bits (carry out kept).
Word add_expand(synth::Ir& ir, const Word& a, const Word& b);

/// Left shift by a constant, zero fill, same width.
Word shl_const(synth::Ir& ir, const Word& a, int amount);
/// Arithmetic right shift by a constant, same width.
Word sar_const(synth::Ir& ir, const Word& a, int amount);

/// Multiplication by a constant via shift-add over the CSD digits of
/// `factor`; exact modulo 2^width (signed-safe).
Word mul_const(synth::Ir& ir, const Word& a, std::int64_t factor, int out_width);

/// Unsigned array multiplier: width(a) + width(b) result bits.
Word mul(synth::Ir& ir, const Word& a, const Word& b);

/// Signed (two's complement) multiplier: width(a) + width(b) result bits,
/// built from the unsigned array with sign-correction subtractions.
Word mul_signed(synth::Ir& ir, const Word& a, const Word& b);

/// Reduction OR / equality comparators.
int reduce_or(synth::Ir& ir, const Word& a);
int equals_const(synth::Ir& ir, const Word& a, std::uint64_t value);

/// Logical barrel shifter: a << amount or a >> amount (amount is a word of
/// log2(width) bits).
Word barrel_shift(synth::Ir& ir, const Word& a, const Word& amount, bool left);

}  // namespace rw::circuits
