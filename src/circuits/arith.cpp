#include "circuits/arith.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rw::circuits {

using synth::Ir;

Word input_word(Ir& ir, const std::string& name, int width) {
  Word w(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w[static_cast<std::size_t>(i)] = ir.input(name + std::to_string(i));
  return w;
}

void output_word(Ir& ir, const std::string& name, const Word& word) {
  for (std::size_t i = 0; i < word.size(); ++i) ir.output(name + std::to_string(i), word[i]);
}

Word constant_word(Ir& ir, std::int64_t value, int width) {
  Word w(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) w[static_cast<std::size_t>(i)] = ir.constant(((value >> i) & 1) != 0);
  return w;
}

Word register_word(Ir& ir, const Word& word) {
  Word out(word.size());
  for (std::size_t i = 0; i < word.size(); ++i) out[i] = ir.flop(word[i]);
  return out;
}

Word register_placeholder(Ir& ir, int width) {
  Word out(static_cast<std::size_t>(width));
  for (auto& bit : out) bit = ir.flop();
  return out;
}

void connect_register(Ir& ir, const Word& regs, const Word& d) {
  if (regs.size() != d.size()) throw std::invalid_argument("connect_register: width mismatch");
  for (std::size_t i = 0; i < regs.size(); ++i) ir.connect_flop(regs[i], d[i]);
}

Word resize(Ir& ir, const Word& word, int width, bool sign_extend) {
  Word out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    if (i < static_cast<int>(word.size())) {
      out.push_back(word[static_cast<std::size_t>(i)]);
    } else {
      out.push_back(sign_extend ? word.back() : ir.constant(false));
    }
  }
  return out;
}

Word bitwise_not(Ir& ir, const Word& a) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = ir.not_(a[i]);
  return out;
}

namespace {

Word zip(Ir& ir, const Word& a, const Word& b, int (Ir::*op)(int, int)) {
  if (a.size() != b.size()) throw std::invalid_argument("arith: width mismatch");
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (ir.*op)(a[i], b[i]);
  return out;
}

}  // namespace

Word bitwise_and(Ir& ir, const Word& a, const Word& b) { return zip(ir, a, b, &Ir::and_); }
Word bitwise_or(Ir& ir, const Word& a, const Word& b) { return zip(ir, a, b, &Ir::or_); }
Word bitwise_xor(Ir& ir, const Word& a, const Word& b) { return zip(ir, a, b, &Ir::xor_); }

Word mux_word(Ir& ir, int sel, const Word& d0, const Word& d1) {
  if (d0.size() != d1.size()) throw std::invalid_argument("mux_word: width mismatch");
  Word out(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i) out[i] = ir.mux(sel, d0[i], d1[i]);
  return out;
}

namespace {

/// Full adder: returns (sum, carry).
std::pair<int, int> full_adder(Ir& ir, int a, int b, int c) {
  const int axb = ir.xor_(a, b);
  const int sum = ir.xor_(axb, c);
  const int carry = ir.or_(ir.and_(a, b), ir.and_(axb, c));
  return {sum, carry};
}

Word add_impl(Ir& ir, const Word& a, const Word& b, bool keep_carry) {
  if (a.size() != b.size()) throw std::invalid_argument("add: width mismatch");
  Word out;
  out.reserve(a.size() + 1);
  int carry = ir.constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(ir, a[i], b[i], carry);
    out.push_back(s);
    carry = c;
  }
  if (keep_carry) out.push_back(carry);
  return out;
}

}  // namespace

Word add(Ir& ir, const Word& a, const Word& b) { return add_impl(ir, a, b, false); }
Word add_expand(Ir& ir, const Word& a, const Word& b) { return add_impl(ir, a, b, true); }

Word sub(Ir& ir, const Word& a, const Word& b) {
  // a + ~b + 1
  Word nb = bitwise_not(ir, b);
  Word out;
  out.reserve(a.size());
  int carry = ir.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(ir, a[i], nb[i], carry);
    out.push_back(s);
    carry = c;
  }
  return out;
}

Word shl_const(Ir& ir, const Word& a, int amount) {
  Word out(a.size());
  for (int i = 0; i < static_cast<int>(a.size()); ++i) {
    out[static_cast<std::size_t>(i)] =
        i >= amount ? a[static_cast<std::size_t>(i - amount)] : ir.constant(false);
  }
  return out;
}

Word sar_const(Ir& /*ir*/, const Word& a, int amount) {
  Word out(a.size());
  const int w = static_cast<int>(a.size());
  for (int i = 0; i < w; ++i) {
    const int src = i + amount;
    out[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(std::min(src, w - 1))];
  }
  return out;
}

Word mul_const(Ir& ir, const Word& a, std::int64_t factor, int out_width) {
  const Word ax = resize(ir, a, out_width, /*sign_extend=*/true);
  Word acc = constant_word(ir, 0, out_width);
  bool acc_is_zero = true;

  // Canonical signed digit decomposition of the factor: digits in {-1,0,+1}.
  std::int64_t f = factor;
  bool negate_result = false;
  if (f < 0) {
    f = -f;
    negate_result = true;
  }
  int shift = 0;
  while (f != 0) {
    if ((f & 1) != 0) {
      if ((f & 3) == 3) {
        // Run of ones: ...11 -> +4-1 (CSD): subtract here, carry a +1 up.
        acc = acc_is_zero ? sub(ir, constant_word(ir, 0, out_width), shl_const(ir, ax, shift))
                          : sub(ir, acc, shl_const(ir, ax, shift));
        acc_is_zero = false;
        f += 1;  // carry
      } else {
        acc = acc_is_zero ? shl_const(ir, ax, shift) : add(ir, acc, shl_const(ir, ax, shift));
        acc_is_zero = false;
        f -= 1;
      }
    }
    f >>= 1;
    ++shift;
  }
  if (negate_result) acc = sub(ir, constant_word(ir, 0, out_width), acc);
  return acc;
}

Word mul(Ir& ir, const Word& a, const Word& b) {
  const int wa = static_cast<int>(a.size());
  const int wb = static_cast<int>(b.size());
  const int wo = wa + wb;
  Word acc = constant_word(ir, 0, wo);
  for (int j = 0; j < wb; ++j) {
    // Partial product: (a & b[j]) << j, zero-extended to wo.
    Word pp(static_cast<std::size_t>(wo));
    for (int i = 0; i < wo; ++i) {
      if (i >= j && i - j < wa) {
        pp[static_cast<std::size_t>(i)] =
            ir.and_(a[static_cast<std::size_t>(i - j)], b[static_cast<std::size_t>(j)]);
      } else {
        pp[static_cast<std::size_t>(i)] = ir.constant(false);
      }
    }
    acc = add(ir, acc, pp);
  }
  return acc;
}

Word mul_signed(Ir& ir, const Word& a, const Word& b) {
  const int wo = static_cast<int>(a.size() + b.size());
  Word p = mul(ir, a, b);
  // Signed correction mod 2^wo: subtract (b << wa) when a is negative and
  // (a << wb) when b is negative.
  const Word b_shifted = shl_const(ir, resize(ir, b, wo, false), static_cast<int>(a.size()));
  const Word a_shifted = shl_const(ir, resize(ir, a, wo, false), static_cast<int>(b.size()));
  const Word zero = constant_word(ir, 0, wo);
  p = sub(ir, p, mux_word(ir, a.back(), zero, b_shifted));
  p = sub(ir, p, mux_word(ir, b.back(), zero, a_shifted));
  return p;
}

int reduce_or(Ir& ir, const Word& a) {
  int acc = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = ir.or_(acc, a[i]);
  return acc;
}

int equals_const(Ir& ir, const Word& a, std::uint64_t value) {
  int acc = ir.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = ((value >> i) & 1ULL) != 0;
    acc = ir.and_(acc, bit ? a[i] : ir.not_(a[i]));
  }
  return acc;
}

Word barrel_shift(Ir& ir, const Word& a, const Word& amount, bool left) {
  Word current = a;
  const int w = static_cast<int>(a.size());
  for (std::size_t stage = 0; stage < amount.size(); ++stage) {
    const int sh = 1 << stage;
    if (sh >= w) break;
    Word shifted(current.size());
    for (int i = 0; i < w; ++i) {
      const int src = left ? i - sh : i + sh;
      shifted[static_cast<std::size_t>(i)] =
          (src >= 0 && src < w) ? current[static_cast<std::size_t>(src)] : ir.constant(false);
    }
    current = mux_word(ir, amount[stage], current, shifted);
  }
  return current;
}

}  // namespace rw::circuits
