#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"

namespace rw::circuits {

namespace {

// Chen fast-DCT coefficients: ck = round(0.5 * cos(k*pi/16) * 1024). With
// the 0.5*C(k) scaling the 8-point DCT matrix is orthonormal, so the inverse
// reuses the same constants (transposed flow).
constexpr std::int64_t kC1 = 502;
constexpr std::int64_t kC2 = 473;
constexpr std::int64_t kC3 = 426;
constexpr std::int64_t kC4 = 362;
constexpr std::int64_t kC5 = 284;
constexpr std::int64_t kC6 = 196;
constexpr std::int64_t kC7 = 100;
constexpr int kShift = 10;
constexpr std::int64_t kRound = 1 << (kShift - 1);

constexpr int kDctInternal = 22;   ///< accumulator width, forward transform
constexpr int kIdctInternal = 24;  ///< accumulator width, inverse transform

using synth::Ir;

Word scaled(Ir& ir, const Word& acc) {
  // (acc + 512) >> 10, truncated to 12 bits.
  const Word rounded =
      add(ir, acc, constant_word(ir, kRound, static_cast<int>(acc.size())));
  return resize(ir, sar_const(ir, rounded, kShift), 12, /*sign_extend=*/true);
}

Word cmul(Ir& ir, const Word& w, std::int64_t c, int width) { return mul_const(ir, w, c, width); }

}  // namespace

/// 8-point forward DCT: 8 samples in (12-bit signed; pixels are level
/// -shifted by software before the first pass so the same datapath serves
/// the row and column passes), 8 coefficients out (12-bit signed).
/// Registered inputs and outputs (latency = kDctLatency cycles).
synth::Ir make_dct8() {
  Ir ir;
  const int kW = kDctInternal;
  std::vector<Word> x(8);
  for (int i = 0; i < 8; ++i) {
    const Word raw = register_word(ir, input_word(ir, "x" + std::to_string(i) + "_", 12));
    x[static_cast<std::size_t>(i)] = resize(ir, raw, kW, /*sign_extend=*/true);
  }

  std::vector<Word> s(4);
  std::vector<Word> d(4);
  for (int i = 0; i < 4; ++i) {
    s[static_cast<std::size_t>(i)] =
        add(ir, x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(7 - i)]);
    d[static_cast<std::size_t>(i)] =
        sub(ir, x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(7 - i)]);
  }
  const Word t0 = add(ir, s[0], s[3]);
  const Word t1 = add(ir, s[1], s[2]);
  const Word t2 = sub(ir, s[1], s[2]);
  const Word t3 = sub(ir, s[0], s[3]);

  std::vector<Word> y(8);
  y[0] = scaled(ir, cmul(ir, add(ir, t0, t1), kC4, kW));
  y[4] = scaled(ir, cmul(ir, sub(ir, t0, t1), kC4, kW));
  y[2] = scaled(ir, add(ir, cmul(ir, t3, kC2, kW), cmul(ir, t2, kC6, kW)));
  y[6] = scaled(ir, sub(ir, cmul(ir, t3, kC6, kW), cmul(ir, t2, kC2, kW)));

  const auto odd = [&](std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t e) {
    Word acc = cmul(ir, d[0], a, kW);
    acc = add(ir, acc, cmul(ir, d[1], b, kW));
    acc = add(ir, acc, cmul(ir, d[2], c, kW));
    acc = add(ir, acc, cmul(ir, d[3], e, kW));
    return scaled(ir, acc);
  };
  y[1] = odd(kC1, kC3, kC5, kC7);
  y[3] = odd(kC3, -kC7, -kC1, -kC5);
  y[5] = odd(kC5, -kC1, kC7, kC3);
  y[7] = odd(kC7, -kC5, kC3, -kC1);

  for (int k = 0; k < 8; ++k) {
    output_word(ir, "y" + std::to_string(k) + "_",
                register_word(ir, y[static_cast<std::size_t>(k)]));
  }
  return ir;
}

/// 8-point inverse DCT: 12-bit signed coefficients in, 12-bit signed
/// samples out (level shift back to pixels happens in software, with
/// clamping). Registered I/O, latency kDctLatency.
synth::Ir make_idct8() {
  Ir ir;
  const int kW = kIdctInternal;
  std::vector<Word> y(8);
  for (int k = 0; k < 8; ++k) {
    const Word raw = register_word(ir, input_word(ir, "y" + std::to_string(k) + "_", 12));
    y[static_cast<std::size_t>(k)] = resize(ir, raw, kW, /*sign_extend=*/true);
  }

  const Word u0 = cmul(ir, add(ir, y[0], y[4]), kC4, kW);
  const Word u1 = cmul(ir, sub(ir, y[0], y[4]), kC4, kW);
  const Word v0 = add(ir, cmul(ir, y[2], kC2, kW), cmul(ir, y[6], kC6, kW));
  const Word v1 = sub(ir, cmul(ir, y[2], kC6, kW), cmul(ir, y[6], kC2, kW));

  std::vector<Word> e(4);
  e[0] = add(ir, u0, v0);
  e[1] = add(ir, u1, v1);
  e[2] = sub(ir, u1, v1);
  e[3] = sub(ir, u0, v0);

  const auto odd = [&](std::int64_t a, std::int64_t b, std::int64_t c, std::int64_t f) {
    Word acc = cmul(ir, y[1], a, kW);
    acc = add(ir, acc, cmul(ir, y[3], b, kW));
    acc = add(ir, acc, cmul(ir, y[5], c, kW));
    acc = add(ir, acc, cmul(ir, y[7], f, kW));
    return acc;
  };
  std::vector<Word> o(4);
  o[0] = odd(kC1, kC3, kC5, kC7);
  o[1] = odd(kC3, -kC7, -kC1, -kC5);
  o[2] = odd(kC5, -kC1, kC7, kC3);
  o[3] = odd(kC7, -kC5, kC3, -kC1);

  const auto out_sample = [&](const Word& acc) {
    const Word rounded = add(ir, acc, constant_word(ir, kRound, kW));
    return resize(ir, sar_const(ir, rounded, kShift), 12, /*sign_extend=*/true);
  };
  for (int n = 0; n < 4; ++n) {
    const Word lo = out_sample(add(ir, e[static_cast<std::size_t>(n)],
                                   o[static_cast<std::size_t>(n)]));
    const Word hi = out_sample(sub(ir, e[static_cast<std::size_t>(n)],
                                   o[static_cast<std::size_t>(n)]));
    output_word(ir, "x" + std::to_string(n) + "_", register_word(ir, lo));
    output_word(ir, "x" + std::to_string(7 - n) + "_", register_word(ir, hi));
  }
  return ir;
}

void dct8_reference(const int in[8], int out[8]) {
  std::int64_t s[4];
  std::int64_t d[4];
  for (int i = 0; i < 4; ++i) {
    s[i] = static_cast<std::int64_t>(in[i]) + in[7 - i];
    d[i] = static_cast<std::int64_t>(in[i]) - in[7 - i];
  }
  const std::int64_t t0 = s[0] + s[3];
  const std::int64_t t1 = s[1] + s[2];
  const std::int64_t t2 = s[1] - s[2];
  const std::int64_t t3 = s[0] - s[3];
  const auto scale = [](std::int64_t acc) { return static_cast<int>((acc + kRound) >> kShift); };
  out[0] = scale(kC4 * (t0 + t1));
  out[4] = scale(kC4 * (t0 - t1));
  out[2] = scale(kC2 * t3 + kC6 * t2);
  out[6] = scale(kC6 * t3 - kC2 * t2);
  out[1] = scale(kC1 * d[0] + kC3 * d[1] + kC5 * d[2] + kC7 * d[3]);
  out[3] = scale(kC3 * d[0] - kC7 * d[1] - kC1 * d[2] - kC5 * d[3]);
  out[5] = scale(kC5 * d[0] - kC1 * d[1] + kC7 * d[2] + kC3 * d[3]);
  out[7] = scale(kC7 * d[0] - kC5 * d[1] + kC3 * d[2] - kC1 * d[3]);
}

void idct8_reference(const int in[8], int out[8]) {
  const std::int64_t u0 = kC4 * (static_cast<std::int64_t>(in[0]) + in[4]);
  const std::int64_t u1 = kC4 * (static_cast<std::int64_t>(in[0]) - in[4]);
  const std::int64_t v0 = kC2 * static_cast<std::int64_t>(in[2]) + kC6 * in[6];
  const std::int64_t v1 = kC6 * static_cast<std::int64_t>(in[2]) - kC2 * in[6];
  const std::int64_t e[4] = {u0 + v0, u1 + v1, u1 - v1, u0 - v0};
  const std::int64_t o[4] = {
      kC1 * in[1] + kC3 * in[3] + kC5 * in[5] + kC7 * in[7],
      kC3 * in[1] - kC7 * in[3] - kC1 * in[5] - kC5 * in[7],
      kC5 * in[1] - kC1 * in[3] + kC7 * in[5] + kC3 * in[7],
      kC7 * in[1] - kC5 * in[3] + kC3 * in[5] - kC1 * in[7],
  };
  const auto scale = [](std::int64_t acc) { return static_cast<int>((acc + kRound) >> kShift); };
  for (int n = 0; n < 4; ++n) {
    out[n] = scale(e[n] + o[n]);
    out[7 - n] = scale(e[n] - o[n]);
  }
}

const std::vector<BenchmarkCircuit>& benchmark_suite() {
  static const std::vector<BenchmarkCircuit> suite = {
      {"DSP", &make_dsp},       {"FFT", &make_fft},   {"RISC-6P", &make_risc6},
      {"RISC-5P", &make_risc5}, {"VLIW", &make_vliw}, {"DCT", &make_dct8},
      {"IDCT", &make_idct8},
  };
  return suite;
}

}  // namespace rw::circuits
