#pragma once

/// \file benchmarks.hpp
/// The paper's evaluation circuits (Section 5), rebuilt as structural
/// generators: a DSP MAC pipeline, an FFT radix-2 butterfly, RISC cores with
/// 5 and 6 pipeline stages, a dual-issue VLIW, and the fixed-point
/// DCT/IDCT datapaths used for the image-processing experiments.

#include <string>
#include <vector>

#include "synth/ir.hpp"

namespace rw::circuits {

synth::Ir make_dsp();    ///< 16x16 MAC with input/product/accumulator registers
synth::Ir make_fft();    ///< radix-2 decimation-in-time butterfly, 16-bit complex
synth::Ir make_risc5();  ///< 16-bit 5-stage pipelined RISC core (8x16 regfile, forwarding)
synth::Ir make_risc6();  ///< 6-stage variant (extra pipeline stage, deeper forwarding)
synth::Ir make_vliw();   ///< dual-issue VLIW: two ALUs over a shared 8x16 regfile
synth::Ir make_dct8();   ///< 8-point fixed-point Chen DCT, registered I/O
synth::Ir make_idct8();  ///< matching inverse transform

/// Software reference of the circuits' exact integer arithmetic (used to
/// cross-check the gate level bit-for-bit). in: level-shifted pixels
/// (x - 128); out: 12-bit signed coefficients.
void dct8_reference(const int in[8], int out[8]);
void idct8_reference(const int in[8], int out[8]);

/// Number of pipeline cycles from applying an input vector to its result
/// appearing on the outputs.
inline constexpr int kDctLatency = 2;  ///< input reg + output reg

struct BenchmarkCircuit {
  std::string name;
  synth::Ir (*build)();
};

/// The seven circuits of the paper's Fig. 5/6, in the paper's order.
const std::vector<BenchmarkCircuit>& benchmark_suite();

}  // namespace rw::circuits
