#include <algorithm>

#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"

namespace rw::circuits {

namespace {

/// High half with Q14 scaling: (p >> 14) truncated to 16 bits.
Word scale_q14(synth::Ir& /*ir*/, const Word& p32) {
  Word out;
  out.reserve(16);
  for (int i = 0; i < 16; ++i) {
    const int src = i + 14;
    out.push_back(p32[static_cast<std::size_t>(std::min(src, 31))]);
  }
  return out;
}

}  // namespace

/// Radix-2 DIT FFT butterfly on 16-bit fixed point (Q14 twiddles):
///   t = w * b;  A' = a + t;  B' = a - t
/// with registered inputs and outputs — the datapath replicated across an
/// FFT's stages.
synth::Ir make_fft() {
  synth::Ir ir;
  const Word ar = register_word(ir, input_word(ir, "ar", 16));
  const Word ai = register_word(ir, input_word(ir, "ai", 16));
  const Word br = register_word(ir, input_word(ir, "br", 16));
  const Word bi = register_word(ir, input_word(ir, "bi", 16));
  const Word wr = register_word(ir, input_word(ir, "wr", 16));
  const Word wi = register_word(ir, input_word(ir, "wi", 16));

  // Complex multiply t = w*b: four 16x16 signed products.
  const Word tr =
      sub(ir, scale_q14(ir, mul_signed(ir, br, wr)), scale_q14(ir, mul_signed(ir, bi, wi)));
  const Word ti =
      add(ir, scale_q14(ir, mul_signed(ir, br, wi)), scale_q14(ir, mul_signed(ir, bi, wr)));

  output_word(ir, "cr", register_word(ir, add(ir, ar, tr)));
  output_word(ir, "ci", register_word(ir, add(ir, ai, ti)));
  output_word(ir, "dr", register_word(ir, sub(ir, ar, tr)));
  output_word(ir, "di", register_word(ir, sub(ir, ai, ti)));
  return ir;
}

}  // namespace rw::circuits
