#include "circuits/arith.hpp"
#include "circuits/benchmarks.hpp"

namespace rw::circuits {

namespace {

using synth::Ir;

/// Slot format (13 bits): [12:10] opcode [9:7] rd [6:4] rs1 [3:0] rs2+imm.
struct Slot {
  Word opcode;
  Word rd;
  Word rs1;
  Word rs2;  // low 3 bits of the imm field
  Word imm;  // 4 bits
};

Slot decode_slot(const Word& bits) {
  Slot s;
  s.imm = {bits[0], bits[1], bits[2], bits[3]};
  s.rs2 = {bits[0], bits[1], bits[2]};
  s.rs1 = {bits[4], bits[5], bits[6]};
  s.rd = {bits[7], bits[8], bits[9]};
  s.opcode = {bits[10], bits[11], bits[12]};
  return s;
}

Word alu_op(Ir& ir, const Slot& s, const Word& v1, const Word& v2) {
  const Word imm_ext = resize(ir, s.imm, 16, true);
  const Word r_add = add(ir, v1, v2);
  const Word r_sub = sub(ir, v1, v2);
  const Word r_and = bitwise_and(ir, v1, v2);
  const Word r_or = bitwise_or(ir, v1, v2);
  const Word r_xor = bitwise_xor(ir, v1, v2);
  const Word r_shl = barrel_shift(ir, v1, s.imm, true);
  const Word r_shr = barrel_shift(ir, v1, s.imm, false);
  const Word r_addi = add(ir, v1, imm_ext);
  const Word m0 = mux_word(ir, s.opcode[0], r_add, r_sub);
  const Word m1 = mux_word(ir, s.opcode[0], r_and, r_or);
  const Word m2 = mux_word(ir, s.opcode[0], r_xor, r_shl);
  const Word m3 = mux_word(ir, s.opcode[0], r_shr, r_addi);
  const Word n0 = mux_word(ir, s.opcode[1], m0, m1);
  const Word n1 = mux_word(ir, s.opcode[1], m2, m3);
  return mux_word(ir, s.opcode[2], n0, n1);
}

Word read8(Ir& ir, const std::vector<Word>& regs, const Word& addr) {
  Word lvl1[4];
  for (int i = 0; i < 4; ++i) {
    lvl1[i] = mux_word(ir, addr[0], regs[static_cast<std::size_t>(2 * i)],
                       regs[static_cast<std::size_t>(2 * i + 1)]);
  }
  const Word a = mux_word(ir, addr[1], lvl1[0], lvl1[1]);
  const Word b = mux_word(ir, addr[1], lvl1[2], lvl1[3]);
  return mux_word(ir, addr[2], a, b);
}

}  // namespace

/// Dual-issue VLIW datapath: one 26-bit instruction word carries two slots
/// executed in lockstep against a shared 8x16 register file with four read
/// ports and two write ports (slot 1 has priority on a destination clash).
/// Three pipeline stages: fetch register, decode+execute, writeback.
synth::Ir make_vliw() {
  Ir ir;
  const Word bundle = input_word(ir, "instr", 26);
  const Word fetched = register_word(ir, bundle);

  const Slot s0 = decode_slot(Word(fetched.begin(), fetched.begin() + 13));
  const Slot s1 = decode_slot(Word(fetched.begin() + 13, fetched.end()));

  // Writeback signals (forward-declared; written at the end of the pipe).
  const Word wb_rd0 = register_placeholder(ir, 3);
  const Word wb_v0 = register_placeholder(ir, 16);
  const Word wb_rd1 = register_placeholder(ir, 3);
  const Word wb_v1 = register_placeholder(ir, 16);

  // Shared regfile: two write ports, slot 1 wins on conflict.
  std::vector<Word> regs;
  regs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    const Word q = register_placeholder(ir, 16);
    const int hit0 = equals_const(ir, wb_rd0, static_cast<std::uint64_t>(i));
    const int hit1 = equals_const(ir, wb_rd1, static_cast<std::uint64_t>(i));
    const Word after0 = mux_word(ir, hit0, q, wb_v0);
    connect_register(ir, q, mux_word(ir, hit1, after0, wb_v1));
    regs.push_back(q);
  }

  const Word a0 = read8(ir, regs, s0.rs1);
  const Word b0 = read8(ir, regs, s0.rs2);
  const Word a1 = read8(ir, regs, s1.rs1);
  const Word b1 = read8(ir, regs, s1.rs2);

  const Word r0 = alu_op(ir, s0, a0, b0);
  const Word r1 = alu_op(ir, s1, a1, b1);

  connect_register(ir, wb_rd0, s0.rd);
  connect_register(ir, wb_v0, r0);
  connect_register(ir, wb_rd1, s1.rd);
  connect_register(ir, wb_v1, r1);

  output_word(ir, "res0", wb_v0);
  output_word(ir, "res1", wb_v1);
  return ir;
}

}  // namespace rw::circuits
