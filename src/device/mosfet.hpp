#pragma once

/// \file mosfet.hpp
/// Compact MOSFET model used by the transistor-level transient simulator.
///
/// This is the reproduction's substitute for BSIM4 + HSPICE: a smooth
/// velocity-saturated ("alpha-power") drain-current model with subthreshold
/// smoothing and channel-length modulation. It is deliberately simple but
/// captures exactly the physics the paper's argument rests on (Eq. 1):
///
///     Delay ∝ 1/Id,   Id ≈ (µ/2)·(Vdd − Vth − ΔVth)^α
///
/// i.e. both the threshold-voltage shift ΔVth and the mobility degradation
/// Δµ produced by BTI enter the current, with different sensitivities, and
/// pull-up/pull-down networks fight each other during slow input slews
/// (the short-circuit interplay behind Fig. 1).

namespace rw::device {

enum class MosType { kNmos, kPmos };

/// Technology parameters for one device polarity. All voltages in volts,
/// currents in mA (consistent with the ps/fF/V unit system), widths in µm.
struct MosParams {
  MosType type = MosType::kNmos;
  double vth0_v = 0.45;          ///< zero-bias threshold magnitude (>0 for both types)
  double k_ma_per_um = 3.4;      ///< transconductance scale: Idsat = k/2 · W · µf · Vov^alpha
  double alpha = 1.3;            ///< velocity-saturation exponent
  double vdsat_coeff = 0.45;     ///< Vdsat = vdsat_coeff · Vov + vdsat_floor_v
  double vdsat_floor_v = 0.05;   ///< keeps tanh() well-conditioned near Vov=0
  double lambda_clm_per_v = 0.06;  ///< channel-length modulation
  double subthreshold_n = 1.4;   ///< subthreshold slope factor
  double cgate_ff_per_um = 0.85;  ///< effective gate capacitance per µm width
  double cjunc_ff_per_um = 0.55;  ///< drain/source junction capacitance per µm width
};

/// Aging-induced parameter degradation applied to one transistor
/// (produced by the BTI model, rw::aging). Fresh device: {0, 1}.
struct Degradation {
  double delta_vth_v = 0.0;  ///< increase of |Vth|
  double mu_factor = 1.0;    ///< multiplicative mobility factor in (0, 1]
};

/// Drain current plus its partial derivatives w.r.t. the terminal voltages
/// — the per-device Jacobian stamp (gm, gds, gms) consumed by the sparse
/// solver workspace. By construction did_dvs == -(did_dvg + did_dvd) (the
/// model depends only on voltage differences), but all three are returned so
/// stamping code never re-derives the identity.
struct CurrentDerivs {
  double id_ma = 0.0;
  double did_dvg = 0.0;  ///< gm  [mA/V]
  double did_dvd = 0.0;  ///< gds [mA/V]
  double did_dvs = 0.0;  ///< gms [mA/V]
};

/// One transistor instance: polarity parameters, width, and its degradation.
class Mosfet {
 public:
  Mosfet(const MosParams& params, double width_um, Degradation degradation = {});

  /// Drain current in mA as a function of terminal voltages (volts).
  /// For nMOS: positive current flows drain->source when vds>0.
  /// For pMOS the model mirrors signs internally; pass physical node voltages.
  [[nodiscard]] double drain_current_ma(double vg, double vd, double vs) const;

  /// Drain current and its analytic terminal derivatives in one evaluation
  /// (shares every subexpression with the current itself, so it costs far
  /// less than three finite-difference re-evaluations).
  [[nodiscard]] CurrentDerivs drain_current_derivs_ma(double vg, double vd, double vs) const;

  /// Gate capacitance (fF), lumped, voltage-independent.
  [[nodiscard]] double gate_cap_ff() const;

  /// Junction capacitance contributed to the drain (and source) node (fF).
  [[nodiscard]] double junction_cap_ff() const;

  [[nodiscard]] double width_um() const { return width_um_; }
  [[nodiscard]] const MosParams& params() const { return params_; }
  [[nodiscard]] const Degradation& degradation() const { return degradation_; }
  [[nodiscard]] double effective_vth_v() const { return params_.vth0_v + degradation_.delta_vth_v; }

 private:
  /// Core symmetric current for vds >= 0 given vgs, vds (nMOS convention).
  [[nodiscard]] double ids_forward_ma(double vgs, double vds) const;
  /// Forward current plus d/dvgs and d/dvds (same branch structure).
  void ids_forward_derivs_ma(double vgs, double vds, double& ids, double& dvgs,
                             double& dvds) const;

  MosParams params_;
  double width_um_;
  Degradation degradation_;
};

}  // namespace rw::device
