#pragma once

/// \file ptm45.hpp
/// A 45 nm high-performance, high-k technology parameter set, standing in for
/// the Predictive Technology Model (PTM) cards the paper uses. The paper's
/// operating point (Vdd = 1.2 V, high-k metal-gate so that both NBTI and PBTI
/// are significant) is preserved; absolute currents are calibrated to give
/// realistic 45 nm-class gate delays (FO4 inverter in the low tens of ps).

#include "device/mosfet.hpp"

namespace rw::device {

/// Technology-level constants shared by every cell.
struct Technology {
  double vdd_v = 1.2;            ///< supply voltage (paper: 1.2 V)
  MosParams nmos;                ///< nMOS polarity parameters
  MosParams pmos;                ///< pMOS polarity parameters
  double wire_cap_ff_per_fanout = 0.15;  ///< crude wire-load model used by STA/synthesis
  double nmos_unit_width_um = 0.4;  ///< X1 nMOS width
  double pmos_unit_width_um = 0.8;  ///< X1 pMOS width (beta ratio 2)

  /// Oxide capacitance per unit area, F/cm^2 — used by the aging model to
  /// convert trap densities (cm^-2) to ΔVth via Eq. 2 of the paper.
  double cox_f_per_cm2 = 2.5e-6;
};

/// The default 45 nm technology instance.
const Technology& ptm45();

}  // namespace rw::device
