#include "device/mosfet.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace rw::device {

Mosfet::Mosfet(const MosParams& params, double width_um, Degradation degradation)
    : params_(params), width_um_(width_um), degradation_(degradation) {
  if (width_um <= 0.0) throw std::invalid_argument("Mosfet: width must be positive");
  if (degradation.mu_factor <= 0.0 || degradation.mu_factor > 1.0) {
    throw std::invalid_argument("Mosfet: mu_factor must be in (0, 1]");
  }
  if (degradation.delta_vth_v < 0.0) {
    throw std::invalid_argument("Mosfet: delta_vth must be non-negative");
  }
}

double Mosfet::ids_forward_ma(double vgs, double vds) const {
  const double vth = effective_vth_v();
  const double nvt = params_.subthreshold_n * units::kThermalVoltage300K;
  // Smooth overdrive: ~ (vgs - vth) above threshold, exponentially small below.
  const double x = (vgs - vth) / nvt;
  double vov;
  if (x > 40.0) {
    vov = vgs - vth;  // avoid exp overflow; smoothing is negligible here
  } else {
    vov = nvt * std::log1p(std::exp(x));
  }
  if (vov <= 0.0) return 0.0;
  const double idsat =
      0.5 * params_.k_ma_per_um * width_um_ * degradation_.mu_factor * std::pow(vov, params_.alpha);
  const double vdsat = params_.vdsat_coeff * vov + params_.vdsat_floor_v;
  return idsat * std::tanh(vds / vdsat) * (1.0 + params_.lambda_clm_per_v * vds);
}

void Mosfet::ids_forward_derivs_ma(double vgs, double vds, double& ids, double& dvgs,
                                   double& dvds) const {
  const double vth = effective_vth_v();
  const double nvt = params_.subthreshold_n * units::kThermalVoltage300K;
  const double x = (vgs - vth) / nvt;
  double vov;
  double dvov_dvgs;  // the logistic sigmoid of x
  if (x > 40.0) {
    vov = vgs - vth;
    dvov_dvgs = 1.0;
  } else {
    const double ex = std::exp(x);
    vov = nvt * std::log1p(ex);
    dvov_dvgs = ex / (1.0 + ex);
  }
  if (vov <= 0.0) {
    ids = dvgs = dvds = 0.0;
    return;
  }
  const double idsat =
      0.5 * params_.k_ma_per_um * width_um_ * degradation_.mu_factor * std::pow(vov, params_.alpha);
  const double didsat_dvov = params_.alpha * idsat / vov;
  const double vdsat = params_.vdsat_coeff * vov + params_.vdsat_floor_v;
  const double th = std::tanh(vds / vdsat);
  const double sech2 = 1.0 - th * th;
  const double dth_dvds = sech2 / vdsat;
  const double dth_dvov = sech2 * (-vds / (vdsat * vdsat)) * params_.vdsat_coeff;
  const double clm = 1.0 + params_.lambda_clm_per_v * vds;
  ids = idsat * th * clm;
  dvgs = (didsat_dvov * th + idsat * dth_dvov) * clm * dvov_dvgs;
  dvds = idsat * (dth_dvds * clm + th * params_.lambda_clm_per_v);
}

CurrentDerivs Mosfet::drain_current_derivs_ma(double vg, double vd, double vs) const {
  // Same branch structure as drain_current_ma; the chain rule through each
  // source/drain swap maps (d/dvgs, d/dvds) onto the physical terminals.
  double f = 0.0;
  double f_vgs = 0.0;
  double f_vds = 0.0;
  CurrentDerivs out;
  if (params_.type == MosType::kNmos) {
    if (vd >= vs) {
      ids_forward_derivs_ma(vg - vs, vd - vs, f, f_vgs, f_vds);
      out.id_ma = f;
      out.did_dvg = f_vgs;
      out.did_dvd = f_vds;
      out.did_dvs = -f_vgs - f_vds;
    } else {
      ids_forward_derivs_ma(vg - vd, vs - vd, f, f_vgs, f_vds);
      out.id_ma = -f;
      out.did_dvg = -f_vgs;
      out.did_dvs = -f_vds;
      out.did_dvd = f_vgs + f_vds;
    }
    return out;
  }
  if (vd <= vs) {
    ids_forward_derivs_ma(vs - vg, vs - vd, f, f_vgs, f_vds);
    out.id_ma = -f;
    out.did_dvg = f_vgs;
    out.did_dvd = f_vds;
    out.did_dvs = -f_vgs - f_vds;
  } else {
    ids_forward_derivs_ma(vd - vg, vd - vs, f, f_vgs, f_vds);
    out.id_ma = f;
    out.did_dvg = -f_vgs;
    out.did_dvs = -f_vds;
    out.did_dvd = f_vgs + f_vds;
  }
  return out;
}

double Mosfet::drain_current_ma(double vg, double vd, double vs) const {
  if (params_.type == MosType::kNmos) {
    if (vd >= vs) return ids_forward_ma(vg - vs, vd - vs);
    // Source/drain swap for reverse conduction (symmetric device).
    return -ids_forward_ma(vg - vd, vs - vd);
  }
  // pMOS: mirror all voltages; conventional current flows source->drain
  // (i.e. out of the drain node) when vs > vd and vgs < -|vth|.
  if (vd <= vs) return -ids_forward_ma(vs - vg, vs - vd);
  return ids_forward_ma(vd - vg, vd - vs);
}

double Mosfet::gate_cap_ff() const { return params_.cgate_ff_per_um * width_um_; }

double Mosfet::junction_cap_ff() const { return params_.cjunc_ff_per_um * width_um_; }

}  // namespace rw::device
