#include "device/ptm45.hpp"

namespace rw::device {

namespace {

Technology make_ptm45() {
  Technology t;
  t.vdd_v = 1.2;

  t.nmos.type = MosType::kNmos;
  t.nmos.vth0_v = 0.466;  // PTM 45 nm HP nMOS vth0
  t.nmos.k_ma_per_um = 3.4;
  t.nmos.alpha = 1.30;
  t.nmos.vdsat_coeff = 0.45;
  t.nmos.vdsat_floor_v = 0.05;
  t.nmos.lambda_clm_per_v = 0.06;
  t.nmos.subthreshold_n = 1.4;
  t.nmos.cgate_ff_per_um = 0.85;
  t.nmos.cjunc_ff_per_um = 0.55;

  t.pmos = t.nmos;
  t.pmos.type = MosType::kPmos;
  t.pmos.vth0_v = 0.412;  // PTM 45 nm HP pMOS |vth0|
  // Hole mobility deficit: roughly half the nMOS drive per µm; the standard
  // beta ratio of 2 in cell widths compensates at the X1 inverter.
  t.pmos.k_ma_per_um = 1.8;

  return t;
}

}  // namespace

const Technology& ptm45() {
  static const Technology tech = make_ptm45();
  return tech;
}

}  // namespace rw::device
