#pragma once

/// \file client.hpp
/// rwclient's transport: a Unix-socket NDJSON client with timeouts, bounded
/// exponential-backoff retries, and idempotent request ids. The retry loop
/// leans on the daemon's dedup machinery — a resend after a timeout or a
/// daemon restart carries the SAME id, so the work is never duplicated: the
/// daemon either replays its cached response or attaches the new connection
/// to the still-running request.

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace rw::serve {

struct ClientOptions {
  std::string socket_path;
  /// Per-attempt wait for a response line.
  int timeout_ms = 120000;
  /// Per-attempt wait for the daemon to accept a connection (covers "the
  /// chaos harness is restarting the daemon right now").
  int connect_timeout_ms = 5000;
  /// Total send attempts before request() throws.
  int max_attempts = 5;
  /// Reconnect backoff CAP: attempt n sleeps uniform(0, base * 2^(n-1)) —
  /// FULL jitter, so a daemon restart is not greeted by every waiting
  /// client at the same instant.
  double backoff_base_ms = 100.0;
  /// Jitter seed; 0 derives one from pid+clock (per-process decorrelation).
  /// Tests pin it for reproducible spread assertions.
  std::uint64_t jitter_seed = 0;
};

class ServeClient {
 public:
  explicit ServeClient(ClientOptions options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends `req` and waits for its response, retrying across timeouts,
  /// daemon restarts, and "overloaded"/"draining" shedding (which honor the
  /// daemon's Retry-After hint and do not consume attempts beyond the
  /// cap below). \throws std::runtime_error when every attempt fails.
  Response request(const Request& req);

  /// True when a connection is currently open (observability for tests).
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Next reconnect delay for 1-based `attempt`: uniform in [0, cap) with
  /// cap = backoff_base_ms * 2^(attempt-1), capped at 2^10. Public (and
  /// draining the same RNG request() uses) so tests can assert the spread.
  double backoff_delay_ms(int attempt);

  /// Next shed ("overloaded"/"draining") delay for a Retry-After hint:
  /// EQUAL jitter — hint/2 + uniform(0, hint/2) — so shed clients stay
  /// polite (never retry before half the hint) yet decorrelate.
  double shed_delay_ms(double retry_after_ms);

 private:
  bool ensure_connected();
  void disconnect();

  ClientOptions options_;
  util::Rng rng_;
  int fd_ = -1;
  std::unique_ptr<util::io::LineReader> reader_;
};

}  // namespace rw::serve
