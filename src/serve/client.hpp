#pragma once

/// \file client.hpp
/// rwclient's transport: a Unix-socket NDJSON client with timeouts, bounded
/// exponential-backoff retries, and idempotent request ids. The retry loop
/// leans on the daemon's dedup machinery — a resend after a timeout or a
/// daemon restart carries the SAME id, so the work is never duplicated: the
/// daemon either replays its cached response or attaches the new connection
/// to the still-running request.

#include <memory>
#include <string>

#include "serve/protocol.hpp"
#include "util/io.hpp"

namespace rw::serve {

struct ClientOptions {
  std::string socket_path;
  /// Per-attempt wait for a response line.
  int timeout_ms = 120000;
  /// Per-attempt wait for the daemon to accept a connection (covers "the
  /// chaos harness is restarting the daemon right now").
  int connect_timeout_ms = 5000;
  /// Total send attempts before request() throws.
  int max_attempts = 5;
  /// Reconnect backoff: base * 2^(attempt-1).
  double backoff_base_ms = 100.0;
};

class ServeClient {
 public:
  explicit ServeClient(ClientOptions options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends `req` and waits for its response, retrying across timeouts,
  /// daemon restarts, and "overloaded"/"draining" shedding (which honor the
  /// daemon's Retry-After hint and do not consume attempts beyond the
  /// cap below). \throws std::runtime_error when every attempt fails.
  Response request(const Request& req);

  /// True when a connection is currently open (observability for tests).
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  bool ensure_connected();
  void disconnect();

  ClientOptions options_;
  int fd_ = -1;
  std::unique_ptr<util::io::LineReader> reader_;
};

}  // namespace rw::serve
