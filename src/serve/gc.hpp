#pragma once

/// \file gc.hpp
/// Crash-safe age- and usage-aware GC for the content-addressed cell cache.
///
/// Eviction protocol (per entry, all steps atomic or idempotent):
///   1. write `<cell>.lib.tomb` via temp+rename (the intent record);
///   2. unlink `<cell>.lib`;
///   3. unlink `<cell>.lib.stamp`;
///   4. unlink `<cell>.lib.tomb`.
/// kill -9 anywhere in 1..4 leaves either a complete entry plus a tombstone
/// or partial debris plus a tombstone; the next sweep FIRST completes every
/// tombstone it finds (re-running 2..4), so a half-evicted entry can never
/// be served. The worst race — a peer re-characterizes the pair between a
/// crash and the completing sweep — only costs one extra characterization:
/// cells are deterministic functions of (scenario, cell, grid), and the
/// Liberty writer's fixed 4-decimal format makes the re-published file
/// bitwise identical, which is the whole GC safety argument.
///
/// A sweep never touches:
///   * entries whose `.lib.lease` is live (a leader is characterizing or a
///     follower is about to read);
///   * pairs spooled as queued fleet work (`<grid>/spool/*.task`);
///   * pairs the grid manifest quarantines as "failed" (their error chain
///     is the durable record; deleting debris around them would erase the
///     evidence an operator needs).
/// Everything else ages out on max(mtime of `.lib`, mtime of `.lib.stamp`)
/// — the stamp is refreshed on every cache hit, so "age" is idle time, not
/// time since characterization.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rw::serve {

struct GcOptions {
  /// Root cache directory (the factory's `cache_dir`, holding grid dirs).
  std::string cache_dir;
  /// Entries idle longer than this are evicted. The default (7 days)
  /// matches $RW_SERVE_GC_MAX_AGE_MS.
  double max_age_ms = 7.0 * 24.0 * 3600.0 * 1000.0;
  /// Hard idle floor, even when `max_age_ms` is lower (e.g. 0): an entry
  /// published or stamped this recently is in active use by definition, and
  /// evicting it would let an aggressive sweep cadence livelock against the
  /// consumers it is racing (evict -> re-characterize -> evict ...).
  double min_idle_ms = 250.0;
  /// Count what would be evicted without touching the cache.
  bool dry_run = false;
};

struct GcResult {
  std::uint64_t evicted = 0;
  std::uint64_t skipped_leased = 0;
  std::uint64_t skipped_quarantined = 0;  ///< manifest-failed or spool-pending
  std::uint64_t skipped_recent = 0;
  std::uint64_t tombstones_completed = 0;

  [[nodiscard]] std::vector<std::pair<std::string, double>> as_pairs() const;
};

/// One full sweep over every grid under `cache_dir`. Safe to run while
/// daemons characterize into the same cache; an evicted entry is simply
/// re-characterized (bitwise identically) on next use.
GcResult gc_sweep(const GcOptions& options);

}  // namespace rw::serve
