#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cells/catalog.hpp"
#include "charlib/characterizer.hpp"
#include "flow/cancel.hpp"
#include "liberty/writer.hpp"
#include "serve/gc.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "serve/spool.hpp"
#include "serve/worker.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"
#include "util/proc_lease.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rw::serve {

namespace fs = std::filesystem;

namespace {

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  return end == env ? fallback : v;
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return end == env ? fallback : v;
}

/// SIGCHLD self-pipe: the handler may only write a byte; the poll loop sees
/// the pipe readable and reaps synchronously.
volatile std::sig_atomic_t g_sigchld_fd = -1;

extern "C" void on_sigchld(int) {
  const int fd = g_sigchld_fd;
  if (fd >= 0) {
    const char byte = 'c';
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  if (const char* env = std::getenv("RW_SERVE_SOCKET"); env != nullptr && *env != '\0') {
    o.socket_path = env;
  }
  o.workers = static_cast<int>(env_long("RW_SERVE_WORKERS", o.workers));
  if (o.workers < 1) o.workers = 1;
  o.lease_ms = env_double("RW_SERVE_LEASE_MS", o.lease_ms);
  o.queue_max = static_cast<int>(env_long("RW_SERVE_QUEUE_MAX", o.queue_max));
  o.steal_interval_ms = env_double("RW_SERVE_STEAL_MS", o.steal_interval_ms);
  o.spool_ttl_ms = env_double("RW_SERVE_SPOOL_TTL_MS", o.spool_ttl_ms);
  o.op_max = static_cast<int>(env_long("RW_SERVE_OP_MAX", o.op_max));
  if (o.op_max < 1) o.op_max = 1;
  o.op_deadline_ms = env_double("RW_SERVE_OP_DEADLINE_MS", o.op_deadline_ms);
  o.gc_max_age_ms = env_double("RW_SERVE_GC_MAX_AGE_MS", o.gc_max_age_ms);
  o.chaos_kill_worker_after = env_long("RW_SERVE_CHAOS_KILL_AFTER_DISPATCH", 0);
  o.chaos_exit_after = env_long("RW_SERVE_CHAOS_EXIT_AFTER_DISPATCH", 0);
  o.chaos_hang_after = env_long("RW_SERVE_CHAOS_HANG_AFTER_DISPATCH", 0);
  o.chaos_hang_ms = env_double("RW_SERVE_CHAOS_HANG_MS", 0.0);
  return o;
}

std::vector<std::pair<std::string, double>> ServeStats::as_pairs() const {
  return {
      {"requests", static_cast<double>(requests)},
      {"responses_ok", static_cast<double>(responses_ok)},
      {"responses_error", static_cast<double>(responses_error)},
      {"responses_overloaded", static_cast<double>(responses_overloaded)},
      {"responses_draining", static_cast<double>(responses_draining)},
      {"duplicate_request_hits", static_cast<double>(duplicate_request_hits)},
      {"tasks_admitted", static_cast<double>(tasks_admitted)},
      {"task_dedup_hits", static_cast<double>(task_dedup_hits)},
      {"cache_hits", static_cast<double>(cache_hits)},
      {"dispatches", static_cast<double>(dispatches)},
      {"tasks_done", static_cast<double>(tasks_done)},
      {"tasks_failed", static_cast<double>(tasks_failed)},
      {"redeliveries", static_cast<double>(redeliveries)},
      {"leases_expired", static_cast<double>(leases_expired)},
      {"workers_killed", static_cast<double>(workers_killed)},
      {"workers_died", static_cast<double>(workers_died)},
      {"workers_respawned", static_cast<double>(workers_respawned)},
      {"quarantined", static_cast<double>(quarantined)},
      {"tasks_spooled", static_cast<double>(tasks_spooled)},
      {"tasks_adopted", static_cast<double>(tasks_adopted)},
      {"tasks_stolen", static_cast<double>(tasks_stolen)},
      {"ops_admitted", static_cast<double>(ops_admitted)},
      {"ops_done", static_cast<double>(ops_done)},
      {"ops_failed", static_cast<double>(ops_failed)},
      {"ops_cancelled", static_cast<double>(ops_cancelled)},
      {"ops_expired", static_cast<double>(ops_expired)},
      {"gc_sweeps", static_cast<double>(gc_sweeps)},
      {"gc_evicted", static_cast<double>(gc_evicted)},
      {"gc_skipped_leased", static_cast<double>(gc_skipped_leased)},
      {"gc_skipped_quarantined", static_cast<double>(gc_skipped_quarantined)},
      {"gc_tombstones_completed", static_cast<double>(gc_tombstones_completed)},
  };
}

struct Server::Impl {
  ServeOptions& opt;
  ServeStats& stats;

  std::unique_ptr<charlib::LibraryFactory> factory;  ///< disk_only assembler
  WorkerConfig worker_config;

  int listen_fd = -1;
  int chld_r = -1;
  int chld_w = -1;
  bool draining = false;
  std::string drain_reason;
  long dispatch_count = 0;  ///< lifetime dispatches (chaos trigger index)

  struct WorkerSlot {
    pid_t pid = -1;
    int fd = -1;
    std::unique_ptr<util::io::LineReader> reader;
    std::string task_key;  ///< leased task ("" = idle)
    double lease_deadline = 0.0;
    double lease_ms = 0.0;  ///< effective (escalated) lease of this dispatch
    bool dying = false;  ///< SIGKILL sent; waiting for the SIGCHLD reap
  };
  std::vector<WorkerSlot> workers;

  struct Conn {
    int fd = -1;
    std::unique_ptr<util::io::LineReader> reader;
  };
  std::vector<Conn> conns;

  /// One forked op-runner child (op=prove / op=guardband). Crash-only
  /// cancellation: deadline expiry and client disconnect are both SIGKILL;
  /// the reap path turns an unanswered death into a structured error.
  struct OpSlot {
    pid_t pid = -1;
    int fd = -1;
    std::unique_ptr<util::io::LineReader> reader;
    std::string id;     ///< request id ("" once answered)
    int conn_fd = -1;
    double deadline = 0.0;
    bool cancelled = false;  ///< client vanished; do not answer or cache
    bool expired = false;    ///< deadline blown; answer "error" at reap
  };
  std::vector<OpSlot> ops;

  std::string spool_root;       ///< "<grid dir>/spool" ("" disables the fleet plane)
  double next_steal_at = 0.0;   ///< steal-pass cadence gate

  struct Task {
    aging::AgingScenario scenario;
    std::string cell;
    int deliveries = 0;      ///< dispatch count (first delivery included)
    double not_before = 0.0; ///< backoff gate
    enum class State { kQueued, kLeased, kDone, kFailed } state = State::kQueued;
    std::string error;
  };
  std::map<std::string, Task> tasks;  ///< by "<scenario-id>/<cell>"
  std::deque<std::string> queue;      ///< kQueued keys, FIFO (each exactly once)

  struct Pending {
    Request req;
    int conn_fd = -1;  ///< -1: client vanished; result still cached by id
    std::set<std::string> waiting;
    int assembly_retries = 0;
  };
  std::map<std::string, Pending> pending;        ///< by request id
  std::map<std::string, std::string> completed;  ///< id -> response line
  std::deque<std::string> completed_order;       ///< LRU bound for `completed`

  /// Warm-path memo: assembled library payloads by "<op>|<scenario>|<cell>".
  /// Repeat hits skip the disk read + liberty parse + re-serialization.
  /// Safe across concurrent GC evictions: re-characterization is bitwise
  /// deterministic, so a memoized payload is byte-identical to a fresh
  /// reassembly of the re-published entry.
  std::map<std::string, std::string> assembled;
  std::deque<std::string> assembled_order;  ///< LRU bound for `assembled`

  explicit Impl(ServeOptions& options, ServeStats& s) : opt(options), stats(s) {}

  static std::string task_key_of(const aging::AgingScenario& scenario, const std::string& cell) {
    return scenario.id() + "/" + cell;
  }

  std::vector<std::string> cell_names() const {
    if (!opt.factory.cell_subset.empty()) return opt.factory.cell_subset;
    std::vector<std::string> names;
    names.reserve(cells::catalog().size());
    for (const auto& spec : cells::catalog()) names.push_back(spec.name);
    return names;
  }

  /// The (scenario, cell) pairs a request fans out to. Workers handle the
  /// adaptive grid internally (their factory interpolates or refines and
  /// still publishes the requested corner), so this is always the literal
  /// request × catalog product.
  std::vector<std::pair<aging::AgingScenario, std::string>> expand_pairs(const Request& req) const {
    std::vector<std::pair<aging::AgingScenario, std::string>> pairs;
    if (req.op == "characterize") {
      pairs.emplace_back(req.scenario(), req.cell);
    } else if (req.op == "library") {
      for (const auto& name : cell_names()) pairs.emplace_back(req.scenario(), name);
    } else if (req.op == "merged") {
      for (const auto& corner : req.corners) {
        const aging::AgingScenario s{corner[0], corner[1], req.years, req.include_mobility};
        for (const auto& name : cell_names()) pairs.emplace_back(s, name);
      }
    }
    return pairs;
  }

  std::size_t outstanding_tasks() const {
    std::size_t n = 0;
    for (const auto& [key, t] : tasks) {
      if (t.state == Task::State::kQueued || t.state == Task::State::kLeased) ++n;
    }
    return n;
  }

  std::size_t live_ops() const {
    std::size_t n = 0;
    for (const OpSlot& slot : ops) {
      if (slot.pid >= 0) ++n;
    }
    return n;
  }

  // -- fleet spool -----------------------------------------------------------

  static WorkerTask worker_task_of(const std::string& key, const Task& t) {
    WorkerTask wt;
    wt.task = key;
    wt.cell = t.cell;
    wt.lambda_p = t.scenario.lambda_p;
    wt.lambda_n = t.scenario.lambda_n;
    wt.years = t.scenario.years;
    wt.include_mobility = t.scenario.include_mobility;
    return wt;
  }

  /// Mirrors an admitted task into the shared spool so fleet peers can see
  /// it. Best-effort: a daemon that cannot spool still serves — it just
  /// cannot be stolen from.
  void spool_task(const std::string& key, const Task& t) {
    if (spool_root.empty()) return;
    if (write_spool_record(spool_path(spool_root, key), worker_task_of(key, t),
                           opt.spool_ttl_ms)) {
      stats.tasks_spooled += 1;
    }
  }

  void unspool_task(const std::string& key) {
    if (spool_root.empty()) return;
    ::unlink(spool_path(spool_root, key).c_str());
  }

  /// The fleet steal pass: claim spool entries whose owner is dead (adopt)
  /// or whose entry outlived its TTL while the owner wedged (steal), then
  /// run them as our own. Arbitrated with an O_EXCL `.claim` lease so two
  /// survivors never double-adopt; takeover rewrites the entry under our
  /// pid (atomic rename) so later scans see a fresh, live owner.
  void adopt_spooled_work() {
    if (spool_root.empty() || draining) return;
    const double now = now_ms();
    if (now < next_steal_at) return;
    next_steal_at = now + opt.steal_interval_ms;
    const pid_t self = ::getpid();
    for (const std::string& path : list_spool_tasks(spool_root)) {
      util::LeaseObservation obs = util::observe_lease(path);
      if (!obs.exists) continue;
      if (obs.parsed && obs.pid == self) continue;  // our own entry
      if (!util::lease_is_stale(obs)) continue;  // live owner inside its TTL
      auto claim = util::FileLease::try_acquire(path + ".claim", 10000.0);
      if (!claim) {
        // A peer is mid-takeover — or died mid-takeover; break the debris
        // so SOME later pass can claim it.
        (void)util::break_lease_if_stale(path + ".claim");
        continue;
      }
      // Re-observe under the claim: the owner may have completed (file
      // gone) or a peer may have finished a takeover between our scan and
      // the claim.
      obs = util::observe_lease(path);
      if (!obs.exists || !util::lease_is_stale(obs)) continue;  // ~FileLease releases
      const bool owner_alive = obs.parsed && obs.pid_alive;
      SpoolRecord rec;
      if (!read_spool_record(path, rec)) {
        ::unlink(path.c_str());  // torn + stale: crash debris
        continue;
      }
      const aging::AgingScenario scenario = rec.task.scenario();
      const std::string key = task_key_of(scenario, rec.task.cell);
      if (key != rec.task.task) {  // corrupt record; keys are derived, never trusted
        ::unlink(path.c_str());
        continue;
      }
      if (const auto it = tasks.find(key); it != tasks.end()) {
        // Already tracked here (a client sent us the same work). Done or
        // failed: the spool entry is debris. In flight: take the entry
        // over so our completion unlinks it.
        if (it->second.state == Task::State::kDone || it->second.state == Task::State::kFailed) {
          ::unlink(path.c_str());
        } else {
          spool_task(key, it->second);
        }
        continue;
      }
      std::error_code ec;
      if (fs::exists(factory->cache_path(rec.task.cell, scenario), ec)) {
        // The pair was published before the owner died (e.g. by its
        // orphaned worker): adopting it is just completing the paperwork.
        ::unlink(path.c_str());
      } else if (factory->is_quarantined(scenario.id(), rec.task.cell)) {
        ::unlink(path.c_str());
      } else if (outstanding_tasks() < static_cast<std::size_t>(opt.queue_max)) {
        Task t;
        t.scenario = scenario;
        t.cell = rec.task.cell;
        spool_task(key, t);  // re-own FIRST: live lease before the claim drops
        tasks.emplace(key, std::move(t));
        queue.push_back(key);
      } else {
        continue;  // at capacity: leave the entry for a peer (or next pass)
      }
      if (owner_alive) {
        stats.tasks_stolen += 1;
      } else {
        stats.tasks_adopted += 1;
      }
    }
  }

  // -- worker lifecycle ------------------------------------------------------

  void spawn_worker(std::size_t slot) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      std::fprintf(stderr, "rwserved: socketpair: %s\n", std::strerror(errno));
      return;  // the slot stays dead; remaining workers carry the load
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "rwserved: fork: %s\n", std::strerror(errno));
      ::close(sv[0]);
      ::close(sv[1]);
      return;
    }
    if (pid == 0) {
      // Child: drop every supervisor fd so "supervisor died" reads as EOF on
      // our socketpair and client/worker fds never leak across workers.
      ::close(sv[0]);
      if (listen_fd >= 0) ::close(listen_fd);
      if (chld_r >= 0) ::close(chld_r);
      if (chld_w >= 0) ::close(chld_w);
      for (const auto& w : workers) {
        if (w.fd >= 0) ::close(w.fd);
      }
      for (const auto& c : conns) {
        if (c.fd >= 0) ::close(c.fd);
      }
      for (const auto& o : ops) {
        if (o.fd >= 0) ::close(o.fd);
      }
      std::signal(SIGCHLD, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      // ^C hits the whole foreground group; the supervisor drains and tells
      // workers when to exit, so they must not die out from under it.
      std::signal(SIGINT, SIG_IGN);
      worker_main(sv[1], worker_config);  // noreturn
    }
    ::close(sv[1]);
    WorkerSlot& w = workers[slot];
    w.pid = pid;
    w.fd = sv[0];
    w.reader = std::make_unique<util::io::LineReader>(sv[0]);
    w.task_key.clear();
    w.lease_deadline = 0.0;
    w.dying = false;
  }

  void close_worker_fd(WorkerSlot& w) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.reader.reset();
  }

  void kill_worker(WorkerSlot& w) {
    if (w.pid >= 0 && !w.dying) {
      ::kill(w.pid, SIGKILL);
      w.dying = true;
    }
  }

  /// Reaps every dead child: a worker's leased task (if any) is re-queued
  /// with backoff and the slot respawned unless the daemon is fully
  /// drained; an op runner that died unanswered becomes a structured error.
  void reap_children() {
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      if (reap_worker(pid)) {
        stats.workers_died += 1;
        continue;
      }
      reap_op(pid);
    }
  }

  bool reap_worker(pid_t pid) {
    for (std::size_t slot = 0; slot < workers.size(); ++slot) {
      WorkerSlot& w = workers[slot];
      if (w.pid != pid) continue;
      close_worker_fd(w);
      w.pid = -1;
      w.dying = false;
      if (!w.task_key.empty()) {
        const std::string key = w.task_key;
        w.task_key.clear();
        requeue(key, "worker pid " + std::to_string(pid) + " died");
      }
      if (!draining || outstanding_tasks() > 0) {
        spawn_worker(slot);
        stats.workers_respawned += 1;
      }
      return true;
    }
    return false;
  }

  void reap_op(pid_t pid) {
    for (OpSlot& slot : ops) {
      if (slot.pid != pid) continue;
      slot.pid = -1;
      if (slot.fd < 0) return;  // already answered; this reap is bookkeeping
      if (!slot.cancelled && !slot.expired) {
        // A runner that replies and _exit()s immediately can be reaped
        // before its fd is polled; the reply bytes outlive the process in
        // the socketpair buffer. Drain once before classifying the exit as
        // a death.
        handle_op_readable(slot);
        if (slot.fd < 0) return;  // the reply was there after all
      }
      ::close(slot.fd);
      slot.fd = -1;
      slot.reader.reset();
      if (slot.cancelled) return;  // client gone; nothing to answer or cache
      Response resp;
      resp.id = slot.id;
      resp.status = "error";
      resp.error = slot.expired ? "op deadline exceeded; runner killed"
                                : "op runner died before replying";
      stats.responses_error += 1;
      if (slot.expired) {
        stats.ops_expired += 1;
      } else {
        stats.ops_failed += 1;
      }
      const std::string line = to_json(resp);
      // A blown deadline is cached by id (deterministic for this daemon's
      // budget); a crashed runner is NOT — the same id resent simply runs
      // again, which is the retry clients expect.
      if (slot.expired) remember_completed(resp.id, line);
      send_response(slot.conn_fd, line);
      slot.id.clear();
      slot.conn_fd = -1;
      return;
    }
  }

  // -- task state machine ----------------------------------------------------

  /// A leased task lost its worker (death, lease expiry, transient failure):
  /// back to the queue with exponential backoff, or — delivery budget
  /// exhausted — quarantined through the factory's manifest path so the
  /// requester gets a structured error, never a hang.
  void requeue(const std::string& key, const std::string& why) {
    const auto it = tasks.find(key);
    if (it == tasks.end()) return;
    Task& t = it->second;
    if (t.state != Task::State::kLeased) return;
    if (t.deliveries >= opt.max_redeliveries) {
      t.state = Task::State::kFailed;
      t.error = "serve task " + key + " failed after " + std::to_string(t.deliveries) +
                " deliveries (" + why + ")";
      stats.tasks_failed += 1;
      stats.quarantined += 1;
      factory->quarantine_pair(t.scenario.id(), t.cell, t.error);
      unspool_task(key);
      return;
    }
    stats.redeliveries += 1;
    t.state = Task::State::kQueued;
    const int shift = t.deliveries > 0 ? t.deliveries - 1 : 0;
    t.not_before = now_ms() + opt.backoff_base_ms * static_cast<double>(1L << shift);
    queue.push_back(key);
  }

  void expire_leases() {
    const double now = now_ms();
    for (auto& w : workers) {
      if (w.pid < 0 || w.dying || w.task_key.empty() || now < w.lease_deadline) continue;
      stats.leases_expired += 1;
      stats.workers_killed += 1;
      // Crash-only: no polite cancellation protocol with a presumed-wedged
      // worker — SIGKILL, reap, respawn. The task's backoff covers the gap.
      kill_worker(w);
      const std::string key = w.task_key;
      w.task_key.clear();
      requeue(key, "lease expired after " + std::to_string(static_cast<long>(w.lease_ms)) +
                       "ms");
    }
  }

  void dispatch_ready() {
    const double now = now_ms();
    for (auto& w : workers) {
      if (w.pid < 0 || w.dying || !w.task_key.empty()) continue;
      // Scan the queue once for a task past its backoff gate.
      std::string key;
      for (std::size_t scanned = queue.size(); scanned > 0 && key.empty(); --scanned) {
        std::string candidate = std::move(queue.front());
        queue.pop_front();
        const auto it = tasks.find(candidate);
        if (it == tasks.end() || it->second.state != Task::State::kQueued) continue;
        if (it->second.not_before > now) {
          queue.push_back(std::move(candidate));
          continue;
        }
        key = std::move(candidate);
      }
      if (key.empty()) return;  // nothing ready for any remaining idle worker

      Task& t = tasks[key];
      t.state = Task::State::kLeased;
      t.deliveries += 1;
      dispatch_count += 1;
      stats.dispatches += 1;

      WorkerTask wt;
      wt.task = key;
      wt.cell = t.cell;
      wt.lambda_p = t.scenario.lambda_p;
      wt.lambda_n = t.scenario.lambda_n;
      wt.years = t.scenario.years;
      wt.include_mobility = t.scenario.include_mobility;
      if (opt.chaos_hang_after > 0 && dispatch_count == opt.chaos_hang_after) {
        wt.hang_ms = opt.chaos_hang_ms;
      }

      if (!util::io::write_all(w.fd, to_json(wt) + "\n")) {
        // Worker pipe already dead; the reap path re-queues via the lease.
        w.task_key = key;
        w.lease_deadline = now;  // expire immediately
        kill_worker(w);
        continue;
      }
      w.task_key = key;
      // The lease escalates with the delivery count (x2 each redelivery,
      // capped): a deadline tuned too tight for this machine self-corrects
      // across redeliveries instead of quarantining a healthy pair, while a
      // genuinely wedged task still exhausts its delivery budget.
      const int lease_shift = std::min(t.deliveries > 0 ? t.deliveries - 1 : 0, 6);
      w.lease_ms = opt.lease_ms * static_cast<double>(1L << lease_shift);
      w.lease_deadline = now + w.lease_ms;

      // Chaos faults fire AFTER the dispatch is on the wire, which is the
      // interesting instant: the task is leased, the worker mid-solve.
      if (opt.chaos_kill_worker_after > 0 && dispatch_count == opt.chaos_kill_worker_after) {
        stats.workers_killed += 1;
        kill_worker(w);
      }
      if (opt.chaos_exit_after > 0 && dispatch_count == opt.chaos_exit_after) {
        // The daemon itself dies mid-flight (kill -9 semantics: no drain, no
        // report, leases left behind). rwchaos restarts it and the client's
        // idempotent retry must still complete.
        ::raise(SIGKILL);
      }
    }
  }

  void on_worker_reply(WorkerSlot& w, const WorkerReply& reply) {
    if (reply.task != w.task_key) return;  // stale ack (task already re-owned)
    w.task_key.clear();
    const auto it = tasks.find(reply.task);
    if (it == tasks.end()) return;
    Task& t = it->second;
    if (reply.status == "done") {
      t.state = Task::State::kDone;
      stats.tasks_done += 1;
      unspool_task(reply.task);
    } else if (reply.permanent) {
      t.state = Task::State::kFailed;
      t.error = reply.error.empty() ? "worker failure" : reply.error;
      stats.tasks_failed += 1;
      stats.quarantined += 1;
      factory->quarantine_pair(t.scenario.id(), t.cell, t.error);
      unspool_task(reply.task);
    } else {
      // Transient (I/O, bad_alloc): the pair itself may be fine — retry.
      t.state = Task::State::kLeased;  // requeue() expects a leased task
      requeue(reply.task, "transient: " + reply.error);
    }
  }

  void handle_worker_readable(WorkerSlot& w) {
    std::string line;
    for (;;) {
      const auto st = w.reader->read_line(line, 0);
      if (st == util::io::LineReader::Status::kTimeout) return;
      if (st != util::io::LineReader::Status::kLine) {
        kill_worker(w);  // EOF/garbage: force the reap path
        return;
      }
      WorkerReply reply;
      std::string error;
      if (!parse_worker_reply(line, reply, error)) {
        kill_worker(w);
        return;
      }
      on_worker_reply(w, reply);
    }
  }

  // -- op runners (prove/guardband) ------------------------------------------

  void spawn_op_runner(const Request& req, int conn_fd) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      std::fprintf(stderr, "rwserved: socketpair: %s\n", std::strerror(errno));
      Response resp;
      resp.id = req.id;
      resp.status = "error";
      resp.error = "op runner spawn failed";
      stats.responses_error += 1;
      send_response(conn_fd, to_json(resp));
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      Response resp;
      resp.id = req.id;
      resp.status = "error";
      resp.error = "op runner fork failed";
      stats.responses_error += 1;
      send_response(conn_fd, to_json(resp));
      return;
    }
    if (pid == 0) {
      // Same fd hygiene as a worker: only our socketpair end survives.
      ::close(sv[0]);
      if (listen_fd >= 0) ::close(listen_fd);
      if (chld_r >= 0) ::close(chld_r);
      if (chld_w >= 0) ::close(chld_w);
      for (const auto& w : workers) {
        if (w.fd >= 0) ::close(w.fd);
      }
      for (const auto& c : conns) {
        if (c.fd >= 0) ::close(c.fd);
      }
      for (const auto& o : ops) {
        if (o.fd >= 0) ::close(o.fd);
      }
      std::signal(SIGCHLD, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_IGN);
      op_runner_main(sv[1], opt.factory, req);  // noreturn
    }
    ::close(sv[1]);
    OpSlot slot;
    slot.pid = pid;
    slot.fd = sv[0];
    slot.reader = std::make_unique<util::io::LineReader>(sv[0]);
    slot.id = req.id;
    slot.conn_fd = conn_fd;
    slot.deadline =
        now_ms() + (req.deadline_ms > 0.0 ? req.deadline_ms : opt.op_deadline_ms);
    ops.push_back(std::move(slot));
    stats.ops_admitted += 1;
  }

  void expire_ops() {
    const double now = now_ms();
    for (OpSlot& slot : ops) {
      if (slot.pid < 0 || slot.fd < 0 || slot.cancelled || slot.expired) continue;
      if (now < slot.deadline) continue;
      // Crash-only cancellation: no protocol with the runner, just SIGKILL.
      // The reap path sends the deadline error.
      slot.expired = true;
      ::kill(slot.pid, SIGKILL);
    }
  }

  void handle_op_readable(OpSlot& slot) {
    std::string line;
    const auto st = slot.reader->read_line(line, 0);
    if (st == util::io::LineReader::Status::kTimeout) return;
    if (st != util::io::LineReader::Status::kLine) {
      // EOF without a reply line: let the reap path classify it.
      if (slot.pid >= 0) ::kill(slot.pid, SIGKILL);
      return;
    }
    WorkerReply reply;
    std::string error;
    Response resp;
    resp.id = slot.id;
    if (!parse_worker_reply(line, reply, error)) {
      resp.status = "error";
      resp.error = "op runner protocol error: " + error;
      stats.ops_failed += 1;
      stats.responses_error += 1;
    } else if (reply.status == "done") {
      resp.status = "ok";
      resp.result = reply.payload;
      stats.ops_done += 1;
      stats.responses_ok += 1;
    } else {
      resp.status = "error";
      resp.error = reply.error.empty() ? "op failed" : reply.error;
      stats.ops_failed += 1;
      stats.responses_error += 1;
    }
    const std::string out = to_json(resp);
    if (!slot.cancelled) {
      remember_completed(resp.id, out);
      send_response(slot.conn_fd, out);
    }
    ::close(slot.fd);
    slot.fd = -1;
    slot.reader.reset();
    slot.id.clear();
    slot.conn_fd = -1;
  }

  // -- client plane ----------------------------------------------------------

  void accept_clients() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or a transient accept failure: next poll retries
      }
      Conn conn;
      conn.fd = fd;
      conn.reader = std::make_unique<util::io::LineReader>(fd);
      conns.push_back(std::move(conn));
    }
  }

  void close_conn(Conn& c) {
    if (c.fd < 0) return;
    for (auto& [id, pr] : pending) {
      if (pr.conn_fd == c.fd) pr.conn_fd = -1;  // finish the work, cache the answer
    }
    // Op runners are the opposite of pending tasks: their work benefits no
    // one but the asking client, so a disconnect cancels (SIGKILL) instead
    // of finishing-and-caching. A resent id simply runs the op again.
    for (OpSlot& slot : ops) {
      if (slot.conn_fd != c.fd) continue;
      slot.conn_fd = -1;
      if (slot.pid >= 0 && slot.fd >= 0 && !slot.cancelled) {
        slot.cancelled = true;
        stats.ops_cancelled += 1;
        ::kill(slot.pid, SIGKILL);
      }
    }
    ::close(c.fd);
    c.fd = -1;
    c.reader.reset();
  }

  void send_response(int conn_fd, const std::string& line) {
    if (conn_fd < 0) return;
    if (util::io::write_all(conn_fd, line + "\n")) return;
    for (auto& c : conns) {
      if (c.fd == conn_fd) close_conn(c);
    }
  }

  void remember_completed(const std::string& id, const std::string& line) {
    if (id.empty()) return;
    if (completed.emplace(id, line).second) {
      completed_order.push_back(id);
      while (completed_order.size() > 256) {
        completed.erase(completed_order.front());
        completed_order.pop_front();
      }
    }
  }

  void remember_assembled(const std::string& key, const std::string& payload) {
    if (assembled.emplace(key, payload).second) {
      assembled_order.push_back(key);
      while (assembled_order.size() > 256) {
        assembled.erase(assembled_order.front());
        assembled_order.pop_front();
      }
    }
  }

  void finish_response(Pending& pr, Response& resp) {
    const std::string line = to_json(resp);
    remember_completed(resp.id, line);
    send_response(pr.conn_fd, line);
  }

  void handle_request(Conn& c, const std::string& line) {
    stats.requests += 1;
    Request req;
    std::string parse_error;
    Response resp;
    if (!parse_request(line, req, parse_error)) {
      resp.status = "error";
      resp.error = "bad request: " + parse_error;
      stats.responses_error += 1;
      send_response(c.fd, to_json(resp));
      return;
    }
    resp.id = req.id;

    if (req.op == "ping") {
      resp.status = "ok";
      send_response(c.fd, to_json(resp));
      return;
    }
    if (req.op == "stats") {
      resp.status = "ok";
      resp.stats = stats.as_pairs();
      resp.stats.emplace_back("queue_depth", static_cast<double>(outstanding_tasks()));
      resp.stats.emplace_back("pending_requests", static_cast<double>(pending.size()));
      resp.stats.emplace_back("draining", draining ? 1.0 : 0.0);
      send_response(c.fd, to_json(resp));
      return;
    }
    if (req.op == "shutdown") {
      resp.status = "ok";
      send_response(c.fd, to_json(resp));
      begin_drain("op=shutdown");
      return;
    }

    // Idempotent retry: a completed id replays its cached response; a
    // pending id re-attaches this connection (the original client timed out
    // and reconnected) without admitting any new work.
    if (const auto done = completed.find(req.id); done != completed.end()) {
      stats.duplicate_request_hits += 1;
      send_response(c.fd, done->second);
      return;
    }
    if (const auto p = pending.find(req.id); p != pending.end()) {
      stats.duplicate_request_hits += 1;
      p->second.conn_fd = c.fd;
      return;
    }
    for (OpSlot& slot : ops) {
      // An op already running under this id: re-attach (the client timed
      // out and reconnected) instead of forking a duplicate runner.
      if (slot.id == req.id && slot.pid >= 0 && slot.fd >= 0 && !slot.cancelled) {
        stats.duplicate_request_hits += 1;
        slot.conn_fd = c.fd;
        return;
      }
    }

    if (draining) {
      resp.status = "draining";
      resp.retry_after_ms = opt.retry_after_ms;
      stats.responses_draining += 1;
      send_response(c.fd, to_json(resp));
      return;
    }
    if (req.op == "gc") {
      GcOptions gc;
      gc.cache_dir = opt.factory.cache_dir;
      gc.max_age_ms = req.max_age_ms >= 0.0 ? req.max_age_ms : opt.gc_max_age_ms;
      const GcResult swept = gc_sweep(gc);
      stats.gc_sweeps += 1;
      stats.gc_evicted += swept.evicted;
      stats.gc_skipped_leased += swept.skipped_leased;
      stats.gc_skipped_quarantined += swept.skipped_quarantined;
      stats.gc_tombstones_completed += swept.tombstones_completed;
      resp.status = "ok";
      resp.stats = swept.as_pairs();
      stats.responses_ok += 1;
      send_response(c.fd, to_json(resp));
      return;
    }
    if (req.op == "prove" || req.op == "guardband") {
      if (req.id.empty() || req.netlist.empty()) {
        resp.status = "error";
        resp.error = "malformed " + req.op + " request (missing id/netlist)";
        stats.responses_error += 1;
        send_response(c.fd, to_json(resp));
        return;
      }
      if (live_ops() >= static_cast<std::size_t>(opt.op_max)) {
        resp.status = "overloaded";
        resp.retry_after_ms = opt.retry_after_ms;
        stats.responses_overloaded += 1;
        send_response(c.fd, to_json(resp));
        return;
      }
      spawn_op_runner(req, c.fd);
      return;
    }
    if (req.op != "characterize" && req.op != "library" && req.op != "merged") {
      resp.status = "error";
      resp.error = "unknown op \"" + req.op + "\"";
      stats.responses_error += 1;
      send_response(c.fd, to_json(resp));
      return;
    }
    if (req.id.empty() || (req.op == "characterize" && req.cell.empty()) ||
        (req.op == "merged" && req.corners.empty())) {
      resp.status = "error";
      resp.error = "malformed " + req.op + " request (missing id/cell/corners)";
      stats.responses_error += 1;
      send_response(c.fd, to_json(resp));
      return;
    }

    // Admission: one task per pair that is neither tracked, quarantined,
    // nor already on disk. The queue bound is checked BEFORE anything is
    // admitted, so an oversized request sheds atomically.
    const auto pairs = expand_pairs(req);
    std::set<std::string> waiting;
    std::vector<std::pair<aging::AgingScenario, std::string>> to_admit;
    for (const auto& [scenario, name] : pairs) {
      const std::string key = task_key_of(scenario, name);
      if (const auto t = tasks.find(key); t != tasks.end()) {
        if (t->second.state == Task::State::kQueued || t->second.state == Task::State::kLeased) {
          stats.task_dedup_hits += 1;
          waiting.insert(key);
        }
        continue;
      }
      if (factory->is_quarantined(scenario.id(), name)) continue;  // assembly reports it
      std::error_code ec;
      if (fs::exists(factory->cache_path(name, scenario), ec)) {
        stats.cache_hits += 1;
        continue;
      }
      to_admit.emplace_back(scenario, name);
    }
    if (outstanding_tasks() + to_admit.size() > static_cast<std::size_t>(opt.queue_max)) {
      resp.status = "overloaded";
      resp.retry_after_ms = opt.retry_after_ms;
      stats.responses_overloaded += 1;
      send_response(c.fd, to_json(resp));
      return;
    }
    for (const auto& [scenario, name] : to_admit) {
      const std::string key = task_key_of(scenario, name);
      Task t;
      t.scenario = scenario;
      t.cell = name;
      spool_task(key, t);  // visible to fleet peers before the first dispatch
      tasks.emplace(key, std::move(t));
      queue.push_back(key);
      waiting.insert(key);
      stats.tasks_admitted += 1;
    }
    Pending pr;
    pr.req = req;
    pr.conn_fd = c.fd;
    pr.waiting = std::move(waiting);
    pending.emplace(req.id, std::move(pr));
    // resolve_pending() answers immediately when nothing is waiting.
  }

  void handle_conn_readable(Conn& c) {
    std::string line;
    for (;;) {
      if (c.fd < 0) return;
      const auto st = c.reader->read_line(line, 0);
      if (st == util::io::LineReader::Status::kTimeout) return;
      if (st != util::io::LineReader::Status::kLine) {
        close_conn(c);
        return;
      }
      handle_request(c, line);
    }
  }

  // -- assembly --------------------------------------------------------------

  /// Builds the response payload from the disk cache. Returns false when a
  /// cache entry vanished and the pair was re-queued (request stays
  /// pending).
  bool assemble(Pending& pr, Response& resp) {
    const Request& req = pr.req;
    resp.id = req.id;
    try {
      if (req.op == "characterize") {
        const std::string memo_key = "c|" + req.scenario().id() + "|" + req.cell;
        if (const auto hit = assembled.find(memo_key); hit != assembled.end()) {
          resp.library = hit->second;
          // Keep the GC idle signal honest: a memo hit is still a cache hit,
          // so refresh the usage stamp's mtime (no-op if GC evicted it; the
          // memoized bytes stay correct either way).
          const std::string stamp = charlib::LibraryFactory::usage_stamp_path(
              factory->cache_path(req.cell, req.scenario()));
          (void)::utimensat(AT_FDCWD, stamp.c_str(), nullptr, 0);
        } else {
          const liberty::Cell& cell = factory->cell(req.cell, req.scenario());
          liberty::Library lib("reliaware_" + req.scenario().id());
          lib.add_cell(cell);
          resp.library = liberty::write_library(lib);
          remember_assembled(memo_key, resp.library);
        }
      } else if (req.op == "library") {
        const std::string memo_key = "l|" + req.scenario().id();
        if (const auto hit = assembled.find(memo_key); hit != assembled.end()) {
          resp.library = hit->second;
        } else {
          resp.library = liberty::write_library(factory->library(req.scenario()));
          remember_assembled(memo_key, resp.library);
        }
      } else {
        std::vector<aging::AgingScenario> scenarios;
        scenarios.reserve(req.corners.size());
        for (const auto& corner : req.corners) {
          scenarios.push_back(
              aging::AgingScenario{corner[0], corner[1], req.years, req.include_mobility});
        }
        resp.library = liberty::write_library(factory->merged(scenarios));
      }
      resp.status = "ok";
      stats.responses_ok += 1;
      return true;
    } catch (const charlib::CacheMissError& e) {
      // The entry this request waited for is gone (GC eviction, torn file
      // removed by a reader). Not a failure — re-queue just that pair. The
      // budget is generous because an aggressive concurrent GC (max_age 0)
      // can legitimately evict freshly published entries several times
      // before an assembly wins the race; each retry re-characterizes
      // bitwise-identically, so patience is correctness here.
      if (pr.assembly_retries < 8) {
        pr.assembly_retries += 1;
        const std::string key = e.scenario_id() + "/" + e.cell();
        for (const auto& [scenario, name] : expand_pairs(req)) {
          if (task_key_of(scenario, name) != key) continue;
          auto [it, inserted] = tasks.emplace(key, Task{});
          Task& t = it->second;
          t.scenario = scenario;
          t.cell = name;
          if (inserted || t.state == Task::State::kDone) {
            t.state = Task::State::kQueued;
            t.not_before = 0.0;
            spool_task(key, t);
            queue.push_back(key);
            stats.tasks_admitted += 1;
          }
          pr.waiting.insert(key);
          return false;
        }
      }
      resp.status = "error";
      resp.error = e.what();
      stats.responses_error += 1;
      return true;
    } catch (const std::exception& e) {
      // Quarantined cell (CharError chain) or any other assembly failure:
      // a structured per-request error, never a hang.
      resp.status = "error";
      resp.error = e.what();
      stats.responses_error += 1;
      return true;
    }
  }

  void resolve_pending() {
    for (auto it = pending.begin(); it != pending.end();) {
      Pending& pr = it->second;
      for (auto k = pr.waiting.begin(); k != pr.waiting.end();) {
        const auto t = tasks.find(*k);
        const bool resolved = t == tasks.end() || t->second.state == Task::State::kDone ||
                              t->second.state == Task::State::kFailed;
        k = resolved ? pr.waiting.erase(k) : std::next(k);
      }
      if (!pr.waiting.empty()) {
        ++it;
        continue;
      }
      Response resp;
      if (!assemble(pr, resp)) {
        ++it;  // re-queued a vanished pair; still pending
        continue;
      }
      finish_response(pr, resp);
      it = pending.erase(it);
    }
  }

  // -- drain & report --------------------------------------------------------

  void begin_drain(const std::string& reason) {
    if (draining) return;
    draining = true;
    drain_reason = reason;
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(opt.socket_path.c_str());
    }
  }

  void shutdown_workers() {
    WorkerTask bye;
    bye.exit_now = true;
    const std::string line = to_json(bye) + "\n";
    for (auto& w : workers) {
      if (w.pid < 0) continue;
      if (w.fd >= 0 && !w.dying) {
        if (!util::io::write_all(w.fd, line)) kill_worker(w);
      } else {
        kill_worker(w);
      }
    }
    for (auto& w : workers) {
      if (w.pid < 0) continue;
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      close_worker_fd(w);
      w.pid = -1;
    }
  }

  void write_report(const std::string& status) {
    if (opt.report_path.empty()) return;
    std::string out = "{\n  \"flow\": \"rwserved\",\n  \"status\": ";
    util::append_json_string(out, status);
    out += ",\n  \"reason\": ";
    util::append_json_string(out, drain_reason);
    out += ",\n  \"stats\": {";
    bool first = true;
    for (const auto& [name, value] : stats.as_pairs()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      util::append_json_string(out, name);
      out += ": " + format_double(value);
    }
    out += "\n  }\n}\n";
    (void)util::write_file_atomic_nothrow(opt.report_path, out);
  }
};

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() = default;

int Server::run() {
  if (options_.factory.cache_dir.empty()) {
    std::fprintf(stderr, "rwserved: a disk cache directory is required (--cache/$RW_LIBCACHE)\n");
    return 2;
  }
  if (options_.socket_path.empty()) {
    std::fprintf(stderr, "rwserved: a socket path is required (--socket/$RW_SERVE_SOCKET)\n");
    return 2;
  }
  util::io::ignore_sigpipe();
  // Workers are forked from this process: the shared pool must be size 1
  // (inline, zero threads) BEFORE the first fork, or children would inherit
  // dead worker threads and deadlock on the pool mutex. Worker parallelism
  // comes from the process count, which also keeps solver results bitwise
  // identical to a single-threaded direct run.
  util::set_shared_thread_count(1);

  Impl impl(options_, stats_);
  impl_ = &impl;

  try {
    impl.listen_fd = util::io::listen_unix(options_.socket_path, 64);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rwserved: %s\n", e.what());
    impl_ = nullptr;
    return 2;
  }
  // Nonblocking so accept_clients() can drain the whole backlog per wakeup
  // and return on EAGAIN instead of wedging the event loop.
  util::io::set_nonblocking(impl.listen_fd, true);

  {
    charlib::LibraryFactory::Options supervisor = options_.factory;
    supervisor.disk_only = true;
    supervisor.use_manifest = true;
    impl.factory = std::make_unique<charlib::LibraryFactory>(supervisor);
  }
  impl.worker_config.factory = options_.factory;
  impl.spool_root = spool_dir(impl.factory->grid_cache_dir());

  int chld[2];
  if (::pipe(chld) != 0) {
    std::fprintf(stderr, "rwserved: pipe: %s\n", std::strerror(errno));
    ::close(impl.listen_fd);
    impl_ = nullptr;
    return 2;
  }
  impl.chld_r = chld[0];
  impl.chld_w = chld[1];
  util::io::set_nonblocking(impl.chld_r, true);
  util::io::set_nonblocking(impl.chld_w, true);
  g_sigchld_fd = impl.chld_w;
  std::signal(SIGCHLD, on_sigchld);

  impl.workers.resize(static_cast<std::size_t>(options_.workers));
  for (std::size_t i = 0; i < impl.workers.size(); ++i) impl.spawn_worker(i);

  for (;;) {
    if (!impl.draining && flow::poll_cancellation()) {
      impl.begin_drain(flow::cancel_token().reason());
    }
    impl.expire_leases();
    impl.expire_ops();
    impl.adopt_spooled_work();
    impl.dispatch_ready();
    impl.resolve_pending();
    if (impl.draining && impl.pending.empty() && impl.outstanding_tasks() == 0 &&
        impl.live_ops() == 0) {
      break;
    }

    // Poll set: [0]=sigchld pipe, optional listen fd, then one entry per
    // live conn/worker/op-runner. `conn_at`/`worker_at`/`op_at` map pollfd
    // index -> container index (container indices stay valid within one
    // pass: conns/ops only grow via accept/spawn and are swept at the end,
    // workers never resize).
    std::vector<pollfd> fds;
    std::vector<std::size_t> conn_at(impl.conns.size(), SIZE_MAX);
    std::vector<std::size_t> worker_at(impl.workers.size(), SIZE_MAX);
    std::vector<std::size_t> op_at(impl.ops.size(), SIZE_MAX);
    fds.push_back(pollfd{impl.chld_r, POLLIN, 0});
    const std::size_t listen_at = fds.size();
    if (impl.listen_fd >= 0) fds.push_back(pollfd{impl.listen_fd, POLLIN, 0});
    for (std::size_t i = 0; i < impl.conns.size(); ++i) {
      if (impl.conns[i].fd < 0) continue;
      conn_at[i] = fds.size();
      fds.push_back(pollfd{impl.conns[i].fd, POLLIN, 0});
    }
    for (std::size_t i = 0; i < impl.workers.size(); ++i) {
      if (impl.workers[i].fd < 0) continue;
      worker_at[i] = fds.size();
      fds.push_back(pollfd{impl.workers[i].fd, POLLIN, 0});
    }
    for (std::size_t i = 0; i < impl.ops.size(); ++i) {
      if (impl.ops[i].fd < 0) continue;
      op_at[i] = fds.size();
      fds.push_back(pollfd{impl.ops[i].fd, POLLIN, 0});
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 25);
    if (rc < 0) {
      if (errno == EINTR) continue;  // SIGCHLD/SIGTERM landed; loop handles it
      break;
    }
    if (rc == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char drainbuf[64];
      while (util::io::read_some(impl.chld_r, drainbuf, sizeof drainbuf) > 0) {
      }
    }
    // Reap opportunistically every wakeup: the self-pipe byte can be lost to
    // a full pipe, and WNOHANG makes this free.
    impl.reap_children();

    if (impl.listen_fd >= 0 && (fds[listen_at].revents & POLLIN) != 0) impl.accept_clients();

    for (std::size_t i = 0; i < conn_at.size(); ++i) {
      if (conn_at[i] == SIZE_MAX) continue;
      Impl::Conn& c = impl.conns[i];
      // The fd must still be the one polled: a conn closed earlier this
      // pass (fd -1) or replaced must not consume stale revents.
      if (c.fd != fds[conn_at[i]].fd) continue;
      if ((fds[conn_at[i]].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        impl.handle_conn_readable(c);
      }
    }
    for (std::size_t i = 0; i < worker_at.size(); ++i) {
      if (worker_at[i] == SIZE_MAX) continue;
      Impl::WorkerSlot& w = impl.workers[i];
      if (w.fd != fds[worker_at[i]].fd) continue;
      if ((fds[worker_at[i]].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        impl.handle_worker_readable(w);
      }
    }
    for (std::size_t i = 0; i < op_at.size(); ++i) {
      if (op_at[i] == SIZE_MAX) continue;
      Impl::OpSlot& slot = impl.ops[i];
      if (slot.fd != fds[op_at[i]].fd) continue;
      if ((fds[op_at[i]].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        impl.handle_op_readable(slot);
      }
    }
    // Drop closed connections and fully retired op runners.
    std::erase_if(impl.conns, [](const Impl::Conn& c) { return c.fd < 0; });
    std::erase_if(impl.ops,
                  [](const Impl::OpSlot& o) { return o.pid < 0 && o.fd < 0; });
  }

  // Normally drained to zero before the loop exits; a poll failure can
  // leave runners behind — crash-only cleanup, as everywhere.
  for (auto& slot : impl.ops) {
    if (slot.pid < 0) continue;
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    slot.pid = -1;
    if (slot.fd >= 0) ::close(slot.fd);
    slot.fd = -1;
  }
  impl.shutdown_workers();
  std::signal(SIGCHLD, SIG_DFL);
  g_sigchld_fd = -1;
  ::close(impl.chld_r);
  ::close(impl.chld_w);
  for (auto& c : impl.conns) impl.close_conn(c);
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    ::unlink(options_.socket_path.c_str());
  }
  impl.write_report("ok");
  impl_ = nullptr;
  return 0;
}

}  // namespace rw::serve
