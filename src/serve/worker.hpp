#pragma once

/// \file worker.hpp
/// The rwserved worker half: a forked child that receives `WorkerTask`
/// lines on a socketpair, characterizes each (scenario, cell) through its
/// own `LibraryFactory`, and acks with a `WorkerReply`. Results never cross
/// the socket — the worker PUBLISHES into the shared disk cache (atomic
/// temp+rename) and the supervisor reads from there — so the worker is
/// crash-only by construction: SIGKILL at any instant loses at most the
/// in-progress cell, whose dedup lease goes stale and is taken over.

#include "charlib/factory.hpp"

namespace rw::serve {

/// Everything a worker process needs; built by the supervisor BEFORE fork.
struct WorkerConfig {
  /// Factory options for the worker's own LibraryFactory. The supervisor
  /// forces `use_manifest = false` (it is the sole manifest owner) and
  /// `disk_only = false` (workers are the ones that actually solve).
  charlib::LibraryFactory::Options factory;
};

/// Worker main loop; never returns (ends in `_exit`). `fd` is the worker's
/// end of the supervisor socketpair. Exits 0 on an `exit_now` task or peer
/// EOF (supervisor died: workers must not outlive it), 2 on protocol
/// corruption.
[[noreturn]] void worker_main(int fd, const WorkerConfig& config);

}  // namespace rw::serve
