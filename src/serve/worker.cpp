#include "serve/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <exception>
#include <thread>

#include "charlib/characterizer.hpp"
#include "serve/protocol.hpp"
#include "util/io.hpp"

namespace rw::serve {

void worker_main(int fd, const WorkerConfig& config) {
  util::io::ignore_sigpipe();
  charlib::LibraryFactory::Options options = config.factory;
  options.use_manifest = false;  // the supervisor owns manifest.json
  options.disk_only = false;
  options.resume = false;
  charlib::LibraryFactory factory(options);

  util::io::LineReader reader(fd);
  std::string line;
  for (;;) {
    const auto status = reader.read_line(line);
    // EOF/error: the supervisor died or closed us out; a worker must never
    // outlive its supervisor (orphans would fight the next daemon's workers
    // for leases), so exit instead of lingering.
    if (status != util::io::LineReader::Status::kLine) ::_exit(0);

    WorkerTask task;
    std::string parse_error;
    if (!parse_worker_task(line, task, parse_error)) ::_exit(2);
    if (task.exit_now) ::_exit(0);
    if (task.hang_ms > 0.0) {
      // Chaos stall injection (supervisor-controlled, deterministic per
      // dispatch): simulate a wedged solve so the lease-expiry path fires.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(task.hang_ms)));
    }

    WorkerReply reply;
    reply.task = task.task;
    try {
      // cell() publishes into the shared disk cache (under the pair's dedup
      // lease) before returning; the reply is only an ack.
      (void)factory.cell(task.cell, task.scenario());
      reply.status = "done";
    } catch (const charlib::CharError& e) {
      // The solver exhausted its full retry ladder: permanent, quarantine.
      reply.status = "failed";
      reply.error = e.what();
      reply.permanent = true;
    } catch (const std::exception& e) {
      reply.status = "failed";
      reply.error = e.what();
      reply.permanent = false;
    }
    if (!util::io::write_all(fd, to_json(reply) + "\n")) ::_exit(0);
  }
}

}  // namespace rw::serve
