#include "serve/gc.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <set>
#include <system_error>

#include "charlib/factory.hpp"
#include "charlib/manifest.hpp"
#include "serve/spool.hpp"
#include "util/atomic_file.hpp"
#include "util/proc_lease.hpp"

namespace rw::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kTombSuffix = ".tomb";

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Millisecond idle age of `path` (0 when missing — treat as "just used"
/// is wrong, so callers only ask for files they just saw; a vanished file
/// means a concurrent writer and the entry is certainly recent).
double file_idle_ms(const std::string& path, double fallback) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return fallback;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double now_ms = std::chrono::duration<double, std::milli>(now).count();
  const double mtime_ms = static_cast<double>(st.st_mtim.tv_sec) * 1000.0 +
                          static_cast<double>(st.st_mtim.tv_nsec) / 1e6;
  return std::max(0.0, now_ms - mtime_ms);
}

/// Steps 2..4 of the eviction protocol; also how interrupted sweeps are
/// completed (the tombstone is removed LAST, so a crash here just leaves a
/// tombstone for the next sweep).
void complete_tombstone(const std::string& lib_path) {
  std::error_code ec;
  fs::remove(lib_path, ec);
  fs::remove(charlib::LibraryFactory::usage_stamp_path(lib_path), ec);
  fs::remove(lib_path + kTombSuffix, ec);
}

/// Deterministic sorted child directories of `dir` (empty on a missing dir).
std::vector<std::string> subdirs(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (it->is_directory(ec)) out.push_back(it->path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> files_with_suffix(const std::string& dir, const std::string& suffix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string p = it->path().string();
    if (ends_with(p, suffix)) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void sweep_grid(const std::string& grid_dir, const GcOptions& opt, GcResult& res) {
  // Pairs a sweep must never evict: manifest-quarantined ("failed") and
  // fleet-spooled (queued on some daemon, possibly one that just crashed
  // and whose work a survivor is about to adopt).
  std::set<std::string> protect;  // "<scenario>/<cell>" keys
  const charlib::RunManifest manifest =
      charlib::RunManifest::load(grid_dir + "/manifest.json");
  for (const charlib::ManifestEntry* e : manifest.entries()) {
    if (e->status == "failed") protect.insert(e->scenario + "/" + e->cell);
  }
  for (const std::string& task_file : list_spool_tasks(spool_dir(grid_dir))) {
    SpoolRecord rec;
    if (read_spool_record(task_file, rec)) protect.insert(rec.task.task);
  }

  for (const std::string& scenario_dir : subdirs(grid_dir)) {
    const std::string scenario_id = fs::path(scenario_dir).filename().string();
    if (scenario_id == "spool") continue;

    // Phase 1: finish what a killed sweep started. Done BEFORE the age
    // pass so a half-evicted entry can never be graded "recent" and kept.
    for (const std::string& tomb : files_with_suffix(scenario_dir, kTombSuffix)) {
      complete_tombstone(tomb.substr(0, tomb.size() - std::string(kTombSuffix).size()));
      ++res.tombstones_completed;
    }

    // Phase 2: age out idle entries.
    for (const std::string& lib : files_with_suffix(scenario_dir, ".lib")) {
      const std::string cell = fs::path(lib).stem().string();
      const util::LeaseObservation lease = util::observe_lease(lib + ".lease");
      if (lease.exists && !util::lease_is_stale(lease)) {
        ++res.skipped_leased;
        continue;
      }
      if (protect.count(scenario_id + "/" + cell) != 0) {
        ++res.skipped_quarantined;
        continue;
      }
      const double idle = std::min(
          file_idle_ms(lib, 0.0),
          file_idle_ms(charlib::LibraryFactory::usage_stamp_path(lib), 1e18));
      if (idle <= std::max(opt.max_age_ms, opt.min_idle_ms)) {
        ++res.skipped_recent;
        continue;
      }
      if (!opt.dry_run) {
        // Step 1: durable intent. If this write fails the entry is simply
        // kept; if we die after it, the next sweep completes the eviction.
        if (!util::write_file_atomic_nothrow(lib + kTombSuffix, "{\"gc\":\"tombstone\"}\n")) {
          continue;
        }
        complete_tombstone(lib);
      }
      ++res.evicted;
    }
  }
}

}  // namespace

std::vector<std::pair<std::string, double>> GcResult::as_pairs() const {
  return {
      {"gc_evicted", static_cast<double>(evicted)},
      {"gc_skipped_leased", static_cast<double>(skipped_leased)},
      {"gc_skipped_quarantined", static_cast<double>(skipped_quarantined)},
      {"gc_skipped_recent", static_cast<double>(skipped_recent)},
      {"gc_tombstones_completed", static_cast<double>(tombstones_completed)},
  };
}

GcResult gc_sweep(const GcOptions& options) {
  GcResult res;
  if (options.cache_dir.empty()) return res;
  for (const std::string& grid_dir : subdirs(options.cache_dir)) {
    sweep_grid(grid_dir, options, res);
  }
  return res;
}

}  // namespace rw::serve
