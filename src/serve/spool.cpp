#include "serve/spool.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "util/atomic_file.hpp"

namespace rw::serve {

namespace fs = std::filesystem;

std::string spool_dir(const std::string& grid_dir) { return grid_dir + "/spool"; }

std::string spool_path(const std::string& dir, const std::string& task_key) {
  std::string flat = task_key;
  std::replace(flat.begin(), flat.end(), '/', '_');
  return dir + "/" + flat + ".task";
}

bool write_spool_record(const std::string& path, const WorkerTask& task, double ttl_ms) {
  // The body is a WorkerTask document with the two lease keys prepended.
  // parse_worker_task skips unknown keys, observe_lease only looks for
  // "pid"/"ttl_ms" — one file, both readers.
  std::string body = "{\"pid\":" + std::to_string(static_cast<long>(::getpid())) +
                     ",\"ttl_ms\":" + format_double(ttl_ms) + ",";
  const std::string task_json = to_json(task);
  body.append(task_json, 1, task_json.size() - 1);  // splice past the '{'
  body += '\n';
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  return util::write_file_atomic_nothrow(path, body);
}

bool read_spool_record(const std::string& path, SpoolRecord& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  std::string error;
  WorkerTask task;
  if (!parse_worker_task(line, task, error) || task.task.empty() || task.cell.empty()) {
    return false;
  }
  // Re-scan the two lease keys (parse_worker_task skipped them).
  const auto number_after = [&line](const char* key, double& value) {
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return false;
    char* end = nullptr;
    const char* start = line.c_str() + at + std::char_traits<char>::length(key);
    value = std::strtod(start, &end);
    return end != start;
  };
  double pid = 0.0;
  double ttl = 0.0;
  if (!number_after("\"pid\":", pid) || !number_after("\"ttl_ms\":", ttl)) return false;
  out.task = std::move(task);
  out.owner = static_cast<pid_t>(pid);
  out.ttl_ms = ttl;
  return true;
}

std::vector<std::string> list_spool_tasks(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string p = it->path().string();
    if (p.size() >= 5 && p.compare(p.size() - 5, 5, ".task") == 0) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rw::serve
