#pragma once

/// \file spool.hpp
/// Fleet work spool: how rwserved daemons sharing one cache directory see
/// each other's queued work. Every admitted (scenario, cell) task is
/// mirrored as a file in `<grid dir>/spool/` whose one-line JSON body is a
/// WorkerTask document *plus* the owning daemon's `"pid"` and a `"ttl_ms"`
/// — exactly the two keys `util::observe_lease()` looks for, so a spool
/// file doubles as a lease on the task:
///
///  * owner alive and the file younger than its TTL  -> leave it alone;
///  * owner dead (SIGKILL)                            -> ADOPT it;
///  * owner alive but the file older than its TTL     -> STEAL it (the
///    owner is wedged; charlib's per-pair `.lib.lease` still guarantees at
///    most one SPICE campaign, so a duplicate dispatch is benign — the
///    slower daemon just finds the cell on disk).
///
/// Claims are arbitrated with the same O_EXCL `util::FileLease` protocol
/// at `<spool file>.claim`; the winner atomically rewrites the spool file
/// under its own pid (temp+rename), so a contender that re-reads it after
/// losing sees a fresh, live lease. The owner unlinks the file when the
/// task completes or quarantines; files are crash debris otherwise, which
/// is precisely what makes adoption work.

#include <sys/types.h>

#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace rw::serve {

/// One spooled task as read back from disk.
struct SpoolRecord {
  WorkerTask task;
  pid_t owner = 0;
  double ttl_ms = 0.0;
};

/// `<grid dir>/spool` — peers sharing a grid cache share one spool.
std::string spool_dir(const std::string& grid_dir);

/// Spool file for one task key ('/' flattened; keys never collide because
/// scenario ids contain no '_''-runs that would alias).
std::string spool_path(const std::string& dir, const std::string& task_key);

/// Atomically writes (temp+rename) the spool file: WorkerTask fields plus
/// {"pid": <caller>, "ttl_ms": ttl}. False on I/O failure — spooling is
/// best-effort; a daemon that cannot spool still serves, it just cannot be
/// stolen from.
bool write_spool_record(const std::string& path, const WorkerTask& task, double ttl_ms);

/// Parses a spool file. False on a torn/absent file (a torn file is still
/// observable as a stale lease and will be claimed + discarded).
bool read_spool_record(const std::string& path, SpoolRecord& out);

/// All `*.task` files under `dir`, sorted (deterministic steal order).
std::vector<std::string> list_spool_tasks(const std::string& dir);

}  // namespace rw::serve
