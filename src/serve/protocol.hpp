#pragma once

/// \file protocol.hpp
/// The rwserved wire protocol: newline-delimited JSON, one document per
/// line, over Unix-domain stream sockets. Two framings share the codec:
///
///  * client <-> daemon: `Request` / `Response`. Requests carry a
///    client-chosen `id` used for idempotent retry — a client that times out
///    and reconnects resends the SAME id, and the daemon answers from its
///    completed-response cache (or attaches the new connection to the
///    still-pending request) instead of re-running the work.
///  * daemon <-> worker: `WorkerTask` / `WorkerReply` over a per-worker
///    socketpair. Results never travel over this channel — workers publish
///    cells into the shared disk cache and the reply is just an ack — so a
///    worker killed mid-reply loses nothing.
///
/// Doubles are serialized with %.17g (exact round-trip); text with RFC 8259
/// escaping. Parsers tolerate unknown fields (forward compatibility) and
/// report torn/invalid documents via a false return, never an exception —
/// on a byte stream, garbage is an expected input.

#include <array>
#include <string>
#include <vector>

#include "aging/scenario.hpp"

namespace rw::serve {

/// One client request. `op` selects the shape:
///  - "ping":         liveness probe, no other fields.
///  - "characterize": one (cell, scenario) -> single-cell library text.
///  - "library":      full library for one scenario.
///  - "merged":       merged library over `corners` (each {λp, λn}) at the
///                    shared `years` / `include_mobility`.
///  - "prove":        certified interval-STA guardband over `netlist`
///                    (Verilog text) at `years`; optional `guardband_ps`
///                    asks for a PV verdict against that budget.
///  - "guardband":    point static guardband over `netlist` at the request
///                    scenario.
///  - "gc":           sweep the shared cache; `max_age_ms` overrides the
///                    daemon's age threshold (< 0 = daemon default).
///  - "stats":        daemon counters (chaos/test observability).
///  - "shutdown":     begin a graceful drain (same as SIGTERM).
struct Request {
  std::string id;
  std::string op;
  std::string cell;
  double lambda_p = 0.0;
  double lambda_n = 0.0;
  double years = 0.0;
  bool include_mobility = true;
  std::vector<std::array<double, 2>> corners;
  /// Verilog source for op=prove / op=guardband (runs server-side).
  std::string netlist;
  /// op=prove: PV budget in ps (< 0 = bound-only, no verdict).
  double guardband_ps = -1.0;
  /// Per-op wall deadline for prove/guardband (<= 0 = daemon default).
  double deadline_ms = 0.0;
  /// op=gc: entries idle longer than this are evicted (< 0 = daemon default).
  double max_age_ms = -1.0;

  [[nodiscard]] aging::AgingScenario scenario() const;
};

/// Daemon reply. `status` is one of:
///  - "ok":         `library` (or `stats`) holds the payload.
///  - "error":      permanent failure; `error` holds the chain. Retrying
///                  will not help (quarantined cell, bad request).
///  - "overloaded": queue full; retry after `retry_after_ms`.
///  - "draining":   daemon is shutting down; retry against its successor.
struct Response {
  std::string id;
  std::string status;
  std::string error;
  std::string library;
  /// op=prove / op=guardband result document (one-line JSON, itself built
  /// with format_double so fleet grading can compare it bitwise).
  std::string result;
  double retry_after_ms = 0.0;
  std::vector<std::pair<std::string, double>> stats;
};

/// Daemon -> worker: characterize one (scenario, cell) into the disk cache.
/// `task` is the daemon's task key, echoed back verbatim in the reply.
/// `hang_ms` stalls the worker before solving (chaos stall injection, wired
/// by the daemon so it is deterministic per-dispatch) and `exit_now` asks
/// the worker to exit cleanly (drain).
struct WorkerTask {
  std::string task;
  std::string cell;
  double lambda_p = 0.0;
  double lambda_n = 0.0;
  double years = 0.0;
  bool include_mobility = true;
  double hang_ms = 0.0;
  bool exit_now = false;

  [[nodiscard]] aging::AgingScenario scenario() const;
};

/// Worker -> daemon ack. "done" means the cell is published in the disk
/// cache; "failed" carries the error chain, with `permanent` distinguishing
/// a CharError (quarantine, do not retry) from a transient failure (retry).
struct WorkerReply {
  std::string task;
  std::string status;
  std::string error;
  bool permanent = false;
  /// Op-runner children (prove/guardband) reuse this frame; unlike cell
  /// characterization their result is not a cache file, so it rides here.
  std::string payload;
};

/// %.17g — doubles survive the wire bit-exactly.
std::string format_double(double value);

/// Serializers emit one JSON object WITHOUT the trailing '\n' (the sender
/// appends the frame delimiter).
std::string to_json(const Request& r);
std::string to_json(const Response& r);
std::string to_json(const WorkerTask& t);
std::string to_json(const WorkerReply& r);

/// Parsers: false (with `error` set) on torn or malformed input; unknown
/// fields are skipped.
bool parse_request(const std::string& line, Request& out, std::string& error);
bool parse_response(const std::string& line, Response& out, std::string& error);
bool parse_worker_task(const std::string& line, WorkerTask& out, std::string& error);
bool parse_worker_reply(const std::string& line, WorkerReply& out, std::string& error);

}  // namespace rw::serve
