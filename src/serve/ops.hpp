#pragma once

/// \file ops.hpp
/// Server-side prove/guardband: the rwprove and static-guardband pipelines
/// run INSIDE a forked op-runner child against the daemon's shared factory,
/// so flows become thin retrying clients. One child per op keeps the
/// supervisor single-threaded and makes cancellation trivial — a client
/// disconnect or a blown deadline is just SIGKILL on the runner; the only
/// durable side effect is cells published into the shared cache, which the
/// next attempt reuses.
///
/// Payloads are one-line JSON built with the protocol's format_double so a
/// fleet trial can compare a served result bitwise against a direct
/// in-process run of the same pipeline.

#include "charlib/factory.hpp"
#include "serve/protocol.hpp"

namespace rw::flow {
struct ProvenGuardbandResult;
}
namespace rw::sta {
struct GuardbandReport;
}

namespace rw::serve {

/// Deterministic payload for op=prove.
std::string prove_payload(const flow::ProvenGuardbandResult& result);

/// Deterministic payload for op=guardband.
std::string guardband_payload(const sta::GuardbandReport& report);

/// Child entry point: runs the pipeline named by `req.op` ("prove" or
/// "guardband") over `req.netlist`, writes one WorkerReply line (payload on
/// "done", error chain + permanent on "failed") to `fd`, and _exit(0)s.
/// Never returns; never throws out.
[[noreturn]] void op_runner_main(int fd, const charlib::LibraryFactory::Options& factory_options,
                                 const Request& req);

}  // namespace rw::serve
