#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "flow/cancel.hpp"

namespace rw::serve {

namespace {

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Per-process jitter seed when the caller did not pin one: pid mixed with
/// the monotonic clock, so a fleet of clients forked in the same millisecond
/// still decorrelates.
std::uint64_t derive_jitter_seed() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return (static_cast<std::uint64_t>(::getpid()) << 32) ^ static_cast<std::uint64_t>(now);
}

}  // namespace

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)),
      rng_(options_.jitter_seed != 0 ? options_.jitter_seed : derive_jitter_seed()) {
  util::io::ignore_sigpipe();
}

double ServeClient::backoff_delay_ms(int attempt) {
  const int exponent = std::min(std::max(attempt - 1, 0), 10);
  const double cap = options_.backoff_base_ms * static_cast<double>(1L << exponent);
  return rng_.uniform(0.0, cap);
}

double ServeClient::shed_delay_ms(double retry_after_ms) {
  const double hint = retry_after_ms > 0.0 ? retry_after_ms : 100.0;
  return hint / 2.0 + rng_.uniform(0.0, hint / 2.0);
}

ServeClient::~ServeClient() { disconnect(); }

void ServeClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reader_.reset();
}

bool ServeClient::ensure_connected() {
  if (fd_ >= 0) return true;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const int fd = util::io::connect_unix(options_.socket_path);
    if (fd >= 0) {
      fd_ = fd;
      reader_ = std::make_unique<util::io::LineReader>(fd);
      return true;
    }
    // ENOENT/ECONNREFUSED: no daemon (yet) — it may be mid-restart, which
    // is exactly the window idempotent retry exists for. Keep knocking
    // until the connect budget runs out.
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                              t0)
            .count();
    if (elapsed >= options_.connect_timeout_ms) return false;
    flow::throw_if_cancelled();
    sleep_ms(rng_.uniform(25.0, 75.0));
  }
}

Response ServeClient::request(const Request& req) {
  const std::string line = to_json(req) + "\n";
  std::string last_failure = "never connected";
  // Shedding responses ("overloaded"/"draining") are polite backpressure,
  // not failures; honor Retry-After without burning the failure budget, but
  // bound them so a daemon stuck shedding cannot spin us forever.
  int sheds = 0;
  const int max_sheds = 40;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    flow::throw_if_cancelled();
    if (attempt > 0) sleep_ms(backoff_delay_ms(attempt));
    if (!ensure_connected()) {
      last_failure = "connect to " + options_.socket_path + " failed";
      continue;
    }
    if (!util::io::write_all(fd_, line)) {
      last_failure = "send failed (daemon died mid-request?)";
      disconnect();
      continue;
    }
    std::string resp_line;
    const auto status = reader_->read_line(resp_line, options_.timeout_ms);
    if (status != util::io::LineReader::Status::kLine) {
      last_failure = status == util::io::LineReader::Status::kTimeout
                         ? "timed out waiting for a response"
                         : "connection lost waiting for a response";
      disconnect();
      continue;
    }
    Response resp;
    std::string parse_error;
    if (!parse_response(resp_line, resp, parse_error)) {
      last_failure = "unparsable response: " + parse_error;
      disconnect();
      continue;
    }
    if (resp.status == "overloaded" || resp.status == "draining") {
      if (++sheds > max_sheds) {
        throw std::runtime_error("rwclient: request " + req.id + " shed " +
                                 std::to_string(sheds) + " times (" + resp.status + ")");
      }
      if (resp.status == "draining") disconnect();  // successor daemon, new socket
      sleep_ms(shed_delay_ms(resp.retry_after_ms));
      --attempt;  // backpressure is not a failed attempt
      continue;
    }
    return resp;
  }
  throw std::runtime_error("rwclient: request " + req.id + " got no response after " +
                           std::to_string(options_.max_attempts) + " attempts (last: " +
                           last_failure + ")");
}

}  // namespace rw::serve
