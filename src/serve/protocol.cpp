#include "serve/protocol.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace rw::serve {

namespace {

/// Minimal scanner for one flat-ish JSON document (the same hand-rolled
/// style as charlib/manifest.cpp — no JSON library in the toolchain, and
/// the protocol only needs objects of scalars plus one array-of-pairs).
class Scan {
 public:
  explicit Scan(const std::string& text) : s_(text) {}

  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(i_);
    return false;
  }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r')) ++i_;
  }

  bool consume(char c) {
    ws();
    if (i_ >= s_.size() || s_[i_] != c) return false;
    ++i_;
    return true;
  }

  char peek() {
    ws();
    return i_ < s_.size() ? s_[i_] : '\0';
  }

  bool at_end() {
    ws();
    return i_ >= s_.size();
  }

  bool parse_string(std::string& out) {
    ws();
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) return false;
      const char esc = s_[i_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // The writers only emit \u00XX (control bytes); decode just that.
          if (i_ + 4 > s_.size()) return false;
          const std::string hex = s_.substr(i_, 4);
          i_ += 4;
          out.push_back(static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    ws();
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    i_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_bool(bool& out) {
    ws();
    if (s_.compare(i_, 4, "true") == 0) {
      out = true;
      i_ += 4;
      return true;
    }
    if (s_.compare(i_, 5, "false") == 0) {
      out = false;
      i_ += 5;
      return true;
    }
    return false;
  }

  /// Skips any value (for unknown keys): scalar, array, or object.
  bool skip_value() {
    ws();
    const char c = peek();
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++i_;
      if (consume(close)) return true;
      for (;;) {
        if (c == '{') {
          std::string key;
          if (!parse_string(key) || !consume(':')) return false;
        }
        if (!skip_value()) return false;
        if (consume(close)) return true;
        if (!consume(',')) return false;
      }
    }
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return true;
    }
    bool b = false;
    if (parse_bool(b)) return true;
    double d = 0.0;
    return parse_number(d);
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

void append_field(std::string& out, const char* key, const std::string& value, bool& first) {
  out += first ? "\"" : ",\"";
  first = false;
  out += key;
  out += "\":";
  util::append_json_string(out, value);
}

void append_field(std::string& out, const char* key, double value, bool& first) {
  out += first ? "\"" : ",\"";
  first = false;
  out += key;
  out += "\":";
  out += format_double(value);
}

void append_field(std::string& out, const char* key, bool value, bool& first) {
  out += first ? "\"" : ",\"";
  first = false;
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

aging::AgingScenario Request::scenario() const {
  return aging::AgingScenario{lambda_p, lambda_n, years, include_mobility};
}

aging::AgingScenario WorkerTask::scenario() const {
  return aging::AgingScenario{lambda_p, lambda_n, years, include_mobility};
}

std::string to_json(const Request& r) {
  std::string out = "{";
  bool first = true;
  append_field(out, "id", r.id, first);
  append_field(out, "op", r.op, first);
  if (!r.cell.empty()) append_field(out, "cell", r.cell, first);
  append_field(out, "lambda_p", r.lambda_p, first);
  append_field(out, "lambda_n", r.lambda_n, first);
  append_field(out, "years", r.years, first);
  append_field(out, "mobility", r.include_mobility, first);
  if (!r.netlist.empty()) append_field(out, "netlist", r.netlist, first);
  if (r.guardband_ps >= 0.0) append_field(out, "guardband_ps", r.guardband_ps, first);
  if (r.deadline_ms > 0.0) append_field(out, "deadline_ms", r.deadline_ms, first);
  if (r.max_age_ms >= 0.0) append_field(out, "max_age_ms", r.max_age_ms, first);
  if (!r.corners.empty()) {
    out += ",\"corners\":[";
    for (std::size_t i = 0; i < r.corners.size(); ++i) {
      if (i != 0) out += ',';
      out += '[';
      out += format_double(r.corners[i][0]);
      out += ',';
      out += format_double(r.corners[i][1]);
      out += ']';
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string to_json(const Response& r) {
  std::string out = "{";
  bool first = true;
  append_field(out, "id", r.id, first);
  append_field(out, "status", r.status, first);
  if (!r.error.empty()) append_field(out, "error", r.error, first);
  if (!r.library.empty()) append_field(out, "library", r.library, first);
  if (!r.result.empty()) append_field(out, "result", r.result, first);
  if (r.retry_after_ms > 0.0) append_field(out, "retry_after_ms", r.retry_after_ms, first);
  if (!r.stats.empty()) {
    out += ",\"stats\":{";
    for (std::size_t i = 0; i < r.stats.size(); ++i) {
      if (i != 0) out += ',';
      util::append_json_string(out, r.stats[i].first);
      out += ':';
      out += format_double(r.stats[i].second);
    }
    out += '}';
  }
  out += '}';
  return out;
}

std::string to_json(const WorkerTask& t) {
  std::string out = "{";
  bool first = true;
  append_field(out, "task", t.task, first);
  append_field(out, "cell", t.cell, first);
  append_field(out, "lambda_p", t.lambda_p, first);
  append_field(out, "lambda_n", t.lambda_n, first);
  append_field(out, "years", t.years, first);
  append_field(out, "mobility", t.include_mobility, first);
  if (t.hang_ms > 0.0) append_field(out, "hang_ms", t.hang_ms, first);
  if (t.exit_now) append_field(out, "exit", t.exit_now, first);
  out += '}';
  return out;
}

std::string to_json(const WorkerReply& r) {
  std::string out = "{";
  bool first = true;
  append_field(out, "task", r.task, first);
  append_field(out, "status", r.status, first);
  if (!r.error.empty()) append_field(out, "error", r.error, first);
  append_field(out, "permanent", r.permanent, first);
  if (!r.payload.empty()) append_field(out, "payload", r.payload, first);
  out += '}';
  return out;
}

namespace {

/// Drives one object parse, dispatching each key to `field(scan, key)`;
/// `field` returns false on a malformed value for a key it knows, and must
/// call `scan.skip_value()` for keys it does not.
template <typename FieldFn>
bool parse_object(const std::string& line, std::string& error, FieldFn&& field) {
  Scan scan(line);
  if (!scan.consume('{')) return scan.fail(error, "expected '{'");
  if (scan.consume('}')) return true;
  for (;;) {
    std::string key;
    if (!scan.parse_string(key)) return scan.fail(error, "expected key string");
    if (!scan.consume(':')) return scan.fail(error, "expected ':'");
    if (!field(scan, key)) return scan.fail(error, "bad value for \"" + key + "\"");
    if (scan.consume('}')) break;
    if (!scan.consume(',')) return scan.fail(error, "expected ',' or '}'");
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  return parse_object(line, error, [&out](Scan& scan, const std::string& key) {
    if (key == "id") return scan.parse_string(out.id);
    if (key == "op") return scan.parse_string(out.op);
    if (key == "cell") return scan.parse_string(out.cell);
    if (key == "lambda_p") return scan.parse_number(out.lambda_p);
    if (key == "lambda_n") return scan.parse_number(out.lambda_n);
    if (key == "years") return scan.parse_number(out.years);
    if (key == "mobility") return scan.parse_bool(out.include_mobility);
    if (key == "netlist") return scan.parse_string(out.netlist);
    if (key == "guardband_ps") return scan.parse_number(out.guardband_ps);
    if (key == "deadline_ms") return scan.parse_number(out.deadline_ms);
    if (key == "max_age_ms") return scan.parse_number(out.max_age_ms);
    if (key == "corners") {
      if (!scan.consume('[')) return false;
      if (scan.consume(']')) return true;
      for (;;) {
        std::array<double, 2> corner{};
        if (!scan.consume('[') || !scan.parse_number(corner[0]) || !scan.consume(',') ||
            !scan.parse_number(corner[1]) || !scan.consume(']')) {
          return false;
        }
        out.corners.push_back(corner);
        if (scan.consume(']')) return true;
        if (!scan.consume(',')) return false;
      }
    }
    return scan.skip_value();
  });
}

bool parse_response(const std::string& line, Response& out, std::string& error) {
  out = Response{};
  return parse_object(line, error, [&out](Scan& scan, const std::string& key) {
    if (key == "id") return scan.parse_string(out.id);
    if (key == "status") return scan.parse_string(out.status);
    if (key == "error") return scan.parse_string(out.error);
    if (key == "library") return scan.parse_string(out.library);
    if (key == "result") return scan.parse_string(out.result);
    if (key == "retry_after_ms") return scan.parse_number(out.retry_after_ms);
    if (key == "stats") {
      if (!scan.consume('{')) return false;
      if (scan.consume('}')) return true;
      for (;;) {
        std::string name;
        double value = 0.0;
        if (!scan.parse_string(name) || !scan.consume(':') || !scan.parse_number(value)) {
          return false;
        }
        out.stats.emplace_back(std::move(name), value);
        if (scan.consume('}')) return true;
        if (!scan.consume(',')) return false;
      }
    }
    return scan.skip_value();
  });
}

bool parse_worker_task(const std::string& line, WorkerTask& out, std::string& error) {
  out = WorkerTask{};
  return parse_object(line, error, [&out](Scan& scan, const std::string& key) {
    if (key == "task") return scan.parse_string(out.task);
    if (key == "cell") return scan.parse_string(out.cell);
    if (key == "lambda_p") return scan.parse_number(out.lambda_p);
    if (key == "lambda_n") return scan.parse_number(out.lambda_n);
    if (key == "years") return scan.parse_number(out.years);
    if (key == "mobility") return scan.parse_bool(out.include_mobility);
    if (key == "hang_ms") return scan.parse_number(out.hang_ms);
    if (key == "exit") return scan.parse_bool(out.exit_now);
    return scan.skip_value();
  });
}

bool parse_worker_reply(const std::string& line, WorkerReply& out, std::string& error) {
  out = WorkerReply{};
  return parse_object(line, error, [&out](Scan& scan, const std::string& key) {
    if (key == "task") return scan.parse_string(out.task);
    if (key == "status") return scan.parse_string(out.status);
    if (key == "error") return scan.parse_string(out.error);
    if (key == "permanent") return scan.parse_bool(out.permanent);
    if (key == "payload") return scan.parse_string(out.payload);
    return scan.skip_value();
  });
}

}  // namespace rw::serve
