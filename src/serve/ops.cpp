#include "serve/ops.hpp"

#include <unistd.h>

#include <exception>
#include <string>

#include "aging/scenario.hpp"
#include "flow/guardband_flow.hpp"
#include "flow/prove_flow.hpp"
#include "lint/diagnostic.hpp"
#include "netlist/verilog.hpp"
#include "sta/guardband.hpp"
#include "util/io.hpp"

namespace rw::serve {

namespace {

/// One unexceptional error chain: what() of each nested exception, joined.
std::string error_chain(const std::exception& e) {
  std::string out = e.what();
  try {
    std::rethrow_if_nested(e);
  } catch (const std::exception& nested) {
    out += " <- " + error_chain(nested);
  } catch (...) {
    out += " <- unknown error";
  }
  return out;
}

}  // namespace

std::string prove_payload(const flow::ProvenGuardbandResult& result) {
  std::size_t errors = 0;
  for (const lint::Diagnostic& d : result.findings) {
    if (d.severity == lint::Severity::kError) ++errors;
  }
  std::string out = "{\"op\":\"prove\"";
  out += ",\"certified\":" + std::string(result.certified ? "true" : "false");
  out += ",\"fresh_cp_ps\":" + format_double(result.summary.fresh_cp_ps);
  out += ",\"aged_cp_lo_ps\":" + format_double(result.summary.aged_cp_ps.lo);
  out += ",\"aged_cp_hi_ps\":" + format_double(result.summary.aged_cp_ps.hi);
  out += ",\"vacuous\":" + std::string(result.summary.vacuous ? "true" : "false");
  out += ",\"guardband_ps\":" + format_double(result.summary.guardband_ps);
  out += ",\"candidate_corners\":" + std::to_string(result.candidate_corners);
  out += ",\"findings\":" + std::to_string(result.findings.size());
  out += ",\"finding_errors\":" + std::to_string(errors);
  out += "}";
  return out;
}

std::string guardband_payload(const sta::GuardbandReport& report) {
  std::string out = "{\"op\":\"guardband\"";
  out += ",\"fresh_cp_ps\":" + format_double(report.fresh_cp_ps);
  out += ",\"aged_cp_ps\":" + format_double(report.aged_cp_ps);
  out += ",\"guardband_ps\":" + format_double(report.guardband_ps());
  out += ",\"guardband_pct\":" + format_double(report.guardband_pct());
  out += "}";
  return out;
}

void op_runner_main(int fd, const charlib::LibraryFactory::Options& factory_options,
                    const Request& req) {
  util::io::ignore_sigpipe();
  WorkerReply reply;
  reply.task = req.id;
  try {
    charlib::LibraryFactory::Options o = factory_options;
    // The runner characterizes what the pipeline needs (the supervisor's
    // disk_only restriction is for IT, not its children) and leaves the
    // manifest to the owning daemons — two writers per grid are enough.
    o.disk_only = false;
    o.use_manifest = false;
    o.resume = false;
    charlib::LibraryFactory factory(o);
    const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
    const netlist::Module module = netlist::parse_verilog(req.netlist, fresh);
    if (req.op == "prove") {
      const flow::ProvenGuardbandResult result =
          flow::proven_guardband(module, factory, req.years, req.guardband_ps);
      reply.payload = prove_payload(result);
    } else {
      const sta::GuardbandReport report =
          flow::static_guardband(module, factory, req.scenario());
      reply.payload = guardband_payload(report);
    }
    reply.status = "done";
  } catch (const std::exception& e) {
    reply.status = "failed";
    reply.error = error_chain(e);
    reply.permanent = true;  // same netlist + scenario will fail the same way
  } catch (...) {
    reply.status = "failed";
    reply.error = "unknown error";
    reply.permanent = true;
  }
  (void)util::io::write_all(fd, to_json(reply) + "\n");
  ::_exit(0);
}

}  // namespace rw::serve
