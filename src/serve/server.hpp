#pragma once

/// \file server.hpp
/// rwserved: a crash-tolerant characterization daemon. One single-threaded
/// supervisor accepts NDJSON requests on a Unix-domain socket, shards the
/// implied (scenario, cell) work across fork-based worker processes, and
/// serves every result from the content-addressed disk cache the whole
/// toolchain already shares.
///
/// Failure model (crash-only, everywhere):
///  * Workers hold a per-task LEASE with a deadline. A worker that dies
///    (SIGKILL mid-solve -> SIGCHLD reap -> respawn) or stalls past the
///    deadline (SIGKILL by the supervisor) gets its task re-queued with
///    exponential backoff; after `max_redeliveries` deliveries the pair is
///    quarantined through the factory's manifest path — the same "failed"
///    record an in-process CharError writes — and the request gets a
///    structured error instead of hanging.
///  * The daemon itself is expendable: all durable state is the disk cache
///    plus manifest, both published via atomic temp+rename(+fsync), so
///    kill -9 and restart loses only in-flight leases (broken as stale by
///    the next leader). Clients resend the same request id and the work
///    resumes where the cache left off.
///  * Overload degrades, never collapses: a bounded task queue; requests
///    that would exceed it get an "overloaded" response with a Retry-After
///    hint. SIGTERM (or op=shutdown) drains: admitted work finishes, new
///    requests get "draining", workers exit cleanly, a serve report is
///    written, exit 0.
///  * Fleets need no coordinator: daemons sharing `--cache` mirror queued
///    work as spool files (see spool.hpp) and periodically adopt a dead
///    peer's entries or steal a wedged peer's, arbitrated with the same
///    O_EXCL lease protocol the cache itself uses. A client holding a
///    request id can resend it to ANY peer; the disk cache is the shared
///    truth, so the answer is bitwise identical.
///  * Higher-level ops (op=prove / op=guardband) run in forked op-runner
///    children with a per-op deadline; a blown deadline or a client
///    disconnect is SIGKILL on the runner (crash-only cancellation — the
///    only durable side effect is cells published to the shared cache).
///  * op=gc / --gc sweep the cache with temp+rename tombstones (gc.hpp):
///    age/usage-aware, never touches leased or quarantined/spooled pairs,
///    and kill -9 mid-sweep is completed by the next sweep.
///
/// The supervisor NEVER characterizes in-process (its factory runs
/// `disk_only`); a vanished cache entry surfaces as CacheMissError and is
/// simply re-queued to a worker.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "charlib/factory.hpp"

namespace rw::serve {

struct ServeOptions {
  /// Unix-domain socket path (sun_path caps it at ~100 bytes; keep short).
  std::string socket_path;
  /// Worker process count ($RW_SERVE_WORKERS).
  int workers = 2;
  /// Per-task lease deadline ($RW_SERVE_LEASE_MS): a dispatch unacked for
  /// this long is presumed wedged; the worker is killed and the task
  /// re-queued. Redeliveries double the lease (capped at 64x) so a value
  /// tuned too tight for the machine self-corrects instead of quarantining
  /// a healthy pair.
  double lease_ms = 10000.0;
  /// Bound on queued+leased tasks ($RW_SERVE_QUEUE_MAX); beyond it requests
  /// shed as "overloaded".
  int queue_max = 64;
  /// Deliveries per task before quarantine (first dispatch counts as one).
  int max_redeliveries = 3;
  /// Redelivery backoff: base * 2^(deliveries-1), deterministic.
  double backoff_base_ms = 50.0;
  /// Retry-After hint handed to shed clients.
  double retry_after_ms = 250.0;
  /// Fleet steal cadence ($RW_SERVE_STEAL_MS): how often the spool is
  /// scanned for a dead peer's (adopt) or a wedged peer's (steal) entries.
  double steal_interval_ms = 1000.0;
  /// TTL written into this daemon's spool entries ($RW_SERVE_SPOOL_TTL_MS):
  /// peers treat an entry older than its TTL as stealable even when the
  /// owner is alive. Duplicated dispatch is benign (the per-pair cache
  /// lease still serializes SPICE), so this only tunes steal latency.
  double spool_ttl_ms = 60000.0;
  /// Concurrent op-runner children ($RW_SERVE_OP_MAX); beyond it prove/
  /// guardband requests shed as "overloaded".
  int op_max = 2;
  /// Default per-op wall deadline ($RW_SERVE_OP_DEADLINE_MS); the request's
  /// own `deadline_ms` (when > 0) wins.
  double op_deadline_ms = 120000.0;
  /// Default op=gc idle-age threshold ($RW_SERVE_GC_MAX_AGE_MS).
  double gc_max_age_ms = 7.0 * 24.0 * 3600.0 * 1000.0;
  /// Written on drain ("" = no report): counters + drain status JSON.
  std::string report_path;
  /// Supervisor/worker factory options; `cache_dir` must be non-empty (the
  /// disk cache IS the service's data plane).
  charlib::LibraryFactory::Options factory = charlib::LibraryFactory::default_options();

  // Chaos knobs (all default off; env-wired so rwchaos drives the REAL
  // binary): fire on the k-th task dispatch of the daemon's lifetime.
  long chaos_kill_worker_after = 0;  ///< $RW_SERVE_CHAOS_KILL_AFTER_DISPATCH: SIGKILL that worker
  long chaos_exit_after = 0;         ///< $RW_SERVE_CHAOS_EXIT_AFTER_DISPATCH: daemon SIGKILLs itself
  long chaos_hang_after = 0;         ///< $RW_SERVE_CHAOS_HANG_AFTER_DISPATCH: stall that task...
  double chaos_hang_ms = 0.0;        ///< ...by $RW_SERVE_CHAOS_HANG_MS

  /// Env-driven defaults (all the $RW_SERVE_* knobs above).
  static ServeOptions from_env();
};

/// Monotonic counters, exposed via op=stats and the drain report. Doubles
/// on the wire; integral here.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t responses_overloaded = 0;
  std::uint64_t responses_draining = 0;
  std::uint64_t duplicate_request_hits = 0;  ///< same id served from cache/attach
  std::uint64_t tasks_admitted = 0;
  std::uint64_t task_dedup_hits = 0;  ///< pair already queued/leased/done for another request
  std::uint64_t cache_hits = 0;       ///< pair already on disk at admission
  std::uint64_t dispatches = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t redeliveries = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t workers_killed = 0;    ///< by the supervisor (lease expiry)
  std::uint64_t workers_died = 0;      ///< reaped for any reason
  std::uint64_t workers_respawned = 0;
  std::uint64_t quarantined = 0;

  // Fleet cooperation over the shared spool.
  std::uint64_t tasks_spooled = 0;
  std::uint64_t tasks_adopted = 0;  ///< taken over from a DEAD peer
  std::uint64_t tasks_stolen = 0;   ///< taken over from a live but wedged peer

  // Served prove/guardband op runners.
  std::uint64_t ops_admitted = 0;
  std::uint64_t ops_done = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t ops_cancelled = 0;  ///< client disconnected; runner SIGKILLed
  std::uint64_t ops_expired = 0;    ///< per-op deadline blown; runner SIGKILLed

  // op=gc sweeps run by this daemon (counters accumulate across sweeps).
  std::uint64_t gc_sweeps = 0;
  std::uint64_t gc_evicted = 0;
  std::uint64_t gc_skipped_leased = 0;
  std::uint64_t gc_skipped_quarantined = 0;
  std::uint64_t gc_tombstones_completed = 0;

  [[nodiscard]] std::vector<std::pair<std::string, double>> as_pairs() const;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, forks workers, and runs the accept/dispatch loop until a drain
  /// completes (SIGTERM/SIGINT via the process CancelToken, or op=shutdown).
  /// Returns the process exit code: 0 clean drain, 2 startup failure.
  /// Forces the shared ThreadPool to size 1 BEFORE forking — a child forked
  /// while pool threads exist would inherit their locked state and deadlock.
  int run();

  [[nodiscard]] const ServeStats& stats() const { return stats_; }

 private:
  struct Impl;
  ServeOptions options_;
  ServeStats stats_;
  Impl* impl_ = nullptr;  // live only inside run()

  friend struct Impl;
};

}  // namespace rw::serve
