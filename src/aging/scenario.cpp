#include "aging/scenario.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace rw::aging {

AgingScenario AgingScenario::fresh() { return AgingScenario{0.0, 0.0, 0.0, true}; }

AgingScenario AgingScenario::worst_case(double years) {
  return AgingScenario{1.0, 1.0, years, true};
}

AgingScenario AgingScenario::balanced(double years) { return AgingScenario{0.5, 0.5, years, true}; }

std::string AgingScenario::id() const {
  if (is_fresh()) return "fresh";
  std::string s = "L" + util::format_lambda(lambda_p) + "_" + util::format_lambda(lambda_n) + "_y" +
                  util::format_fixed(years, years == std::floor(years) ? 0 : 1);
  if (!include_mobility) s += "_novmu";
  return s;
}

double quantize_lambda(double lambda, double step) {
  if (lambda <= 0.0) return 0.0;
  if (lambda >= 1.0) return 1.0;
  return std::round(lambda / step) * step;
}

}  // namespace rw::aging
