#pragma once

/// \file scenario.hpp
/// An aging *scenario* fixes the stress conditions under which a cell library
/// is characterized: the pMOS and nMOS duty cycles (λ) and the lifetime. The
/// paper sweeps λ over an 11×11 grid (step 0.1) producing 121 libraries; a
/// scenario also records whether mobility degradation is modeled (Fig. 5(a)
/// ablates it) so that library caching can distinguish the two.

#include <compare>
#include <string>

namespace rw::aging {

struct AgingScenario {
  double lambda_p = 0.0;  ///< pMOS stress duty cycle in [0,1]
  double lambda_n = 0.0;  ///< nMOS stress duty cycle in [0,1]
  double years = 0.0;     ///< lifetime
  bool include_mobility = true;  ///< false = "Vth-only" state-of-the-art baseline

  /// No aging at all (year 0); λ values are irrelevant and normalized to 0.
  static AgingScenario fresh();
  /// Worst-case static stress: λp = λn = 1 (Section 4.2, "suppress aging
  /// under any workload").
  static AgingScenario worst_case(double years);
  /// Balanced stress λ = 0.5 — representative of duty-cycle-balancing
  /// mitigation techniques (Fig. 6(c)/7 "Balance" scenario).
  static AgingScenario balanced(double years);

  [[nodiscard]] bool is_fresh() const { return years <= 0.0; }

  friend auto operator<=>(const AgingScenario&, const AgingScenario&) = default;

  /// Stable id used in library names and cache keys, e.g. "wc10y",
  /// "L1.00_1.00_y10_novmu".
  [[nodiscard]] std::string id() const;
};

/// Quantize a duty cycle onto the paper's 0.1-step grid (used when annotating
/// netlists for the merged-library dynamic-stress flow).
double quantize_lambda(double lambda, double step = 0.1);

}  // namespace rw::aging
