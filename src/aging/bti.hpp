#pragma once

/// \file bti.hpp
/// Physics-based BTI (bias temperature instability) aging model.
///
/// Substitute for the Joshi et al. (IRPS'12) framework the paper employs:
/// reaction–diffusion interface-trap generation (t^(1/6) kinetics, scaled by
/// the stress duty cycle λ) plus a saturating oxide-trap (charge capture)
/// component. Trap counts are mapped to electrical degradation exactly as in
/// the paper:
///
///   ΔVth = q/Cox · (ΔN_IT + ΔN_OT)                    (Eq. 2)
///   µ    = µ0 / (1 + α·ΔN_IT)                          (Eq. 3)
///
/// NBTI (pMOS) is stronger than PBTI (nMOS) in high-k metal-gate technology
/// [paper ref. 6]; the asymmetry is a first-class model parameter because
/// the NOR-gate delay-improvement effect (Fig. 1(b)) depends on it.

#include "device/mosfet.hpp"

namespace rw::aging {

/// Calibration constants. Defaults are tuned so that worst-case (λ=1) 10-year
/// stress yields ΔVth ≈ 45 mV / µ-loss ≈ 7 % on pMOS and roughly half of both
/// on nMOS — consistent with published 45 nm high-k numbers and producing
/// single-OPC delay increases in the ~10–15 % range the paper reports.
struct BtiParams {
  // Interface traps: ΔN_IT(t) = a_it · S(λ) · t^(1/6)   [cm^-2, t in seconds]
  double a_it_cm2 = 1.6e10;
  double time_exponent = 1.0 / 6.0;
  /// Duty-cycle factor S(λ) = λ^(1/3) / (λ^(1/3) + ac_recovery·(1−λ)^(1/3)),
  /// S(0)=0, S(1)=1; recovery during the off-phase suppresses AC stress.
  double ac_recovery = 0.75;

  // Oxide traps: ΔN_OT(t) = b_ot · λ^ot_duty_exp · (1 − exp(−(t/tau)^beta))
  double b_ot_cm2 = 2.6e11;
  double ot_tau_s = 2.0e6;
  double ot_beta = 0.35;
  double ot_duty_exp = 0.8;

  /// PBTI (nMOS) degradation relative to NBTI (pMOS). [6] reports NBTI
  /// clearly dominant in HKMG; 0.5 keeps PBTI significant but weaker.
  double pbti_scale = 0.5;

  /// Mobility sensitivity α of Eq. 3 [cm^2]: µf = 1/(1 + α·ΔN_IT).
  double alpha_mu_cm2 = 1.7e-13;

  /// Oxide capacitance used in Eq. 2 [F/cm^2].
  double cox_f_per_cm2 = 2.5e-6;
};

/// Evaluates BTI degradation for a transistor of a given polarity under a
/// stress duty cycle λ ∈ [0,1] for a lifetime in years.
class BtiModel {
 public:
  explicit BtiModel(const BtiParams& params = {});

  /// Interface-trap density after `seconds` of stress at duty cycle λ [cm^-2].
  [[nodiscard]] double interface_traps_cm2(device::MosType type, double lambda,
                                           double seconds) const;

  /// Oxide-trap density after `seconds` of stress at duty cycle λ [cm^-2].
  [[nodiscard]] double oxide_traps_cm2(device::MosType type, double lambda,
                                       double seconds) const;

  /// Threshold shift per Eq. 2 [V].
  [[nodiscard]] double delta_vth_v(device::MosType type, double lambda, double years) const;

  /// Mobility factor per Eq. 3 (dimensionless, in (0,1]).
  [[nodiscard]] double mu_factor(device::MosType type, double lambda, double years) const;

  /// Full electrical degradation. When `include_mobility` is false the
  /// mobility factor is forced to 1 — the "Vth-only" state-of-the-art
  /// baseline ablated in Fig. 5(a).
  [[nodiscard]] device::Degradation degrade(device::MosType type, double lambda, double years,
                                            bool include_mobility = true) const;

  [[nodiscard]] const BtiParams& params() const { return params_; }

 private:
  [[nodiscard]] double polarity_scale(device::MosType type) const;
  [[nodiscard]] double duty_factor(double lambda) const;

  BtiParams params_;
};

}  // namespace rw::aging
