#include "aging/bti.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace rw::aging {

BtiModel::BtiModel(const BtiParams& params) : params_(params) {
  if (params_.cox_f_per_cm2 <= 0.0) throw std::invalid_argument("BtiModel: cox must be positive");
  if (params_.pbti_scale < 0.0) throw std::invalid_argument("BtiModel: pbti_scale must be >= 0");
}

double BtiModel::polarity_scale(device::MosType type) const {
  return type == device::MosType::kPmos ? 1.0 : params_.pbti_scale;
}

double BtiModel::duty_factor(double lambda) const {
  if (lambda <= 0.0) return 0.0;
  if (lambda >= 1.0) return 1.0;
  const double on = std::cbrt(lambda);
  const double off = std::cbrt(1.0 - lambda);
  return on / (on + params_.ac_recovery * off);
}

double BtiModel::interface_traps_cm2(device::MosType type, double lambda, double seconds) const {
  if (seconds <= 0.0) return 0.0;
  return polarity_scale(type) * params_.a_it_cm2 * duty_factor(lambda) *
         std::pow(seconds, params_.time_exponent);
}

double BtiModel::oxide_traps_cm2(device::MosType type, double lambda, double seconds) const {
  if (seconds <= 0.0 || lambda <= 0.0) return 0.0;
  const double fill = 1.0 - std::exp(-std::pow(seconds / params_.ot_tau_s, params_.ot_beta));
  return polarity_scale(type) * params_.b_ot_cm2 * std::pow(lambda, params_.ot_duty_exp) * fill;
}

double BtiModel::delta_vth_v(device::MosType type, double lambda, double years) const {
  const double seconds = units::years_to_seconds(years);
  const double n_total =
      interface_traps_cm2(type, lambda, seconds) + oxide_traps_cm2(type, lambda, seconds);
  return units::kElementaryCharge / params_.cox_f_per_cm2 * n_total;
}

double BtiModel::mu_factor(device::MosType type, double lambda, double years) const {
  const double seconds = units::years_to_seconds(years);
  const double n_it = interface_traps_cm2(type, lambda, seconds);
  return 1.0 / (1.0 + params_.alpha_mu_cm2 * n_it);
}

device::Degradation BtiModel::degrade(device::MosType type, double lambda, double years,
                                      bool include_mobility) const {
  if (lambda < 0.0 || lambda > 1.0) throw std::invalid_argument("BtiModel: lambda out of [0,1]");
  if (years < 0.0) throw std::invalid_argument("BtiModel: years must be non-negative");
  device::Degradation d;
  d.delta_vth_v = delta_vth_v(type, lambda, years);
  d.mu_factor = include_mobility ? mu_factor(type, lambda, years) : 1.0;
  return d;
}

}  // namespace rw::aging
