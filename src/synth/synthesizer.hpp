#pragma once

/// \file synthesizer.hpp
/// The full synthesis pipeline ("Synopsys Synthesis Tool" box of Fig. 4):
/// decompose -> map -> buffer -> size, driven entirely by the cell library
/// it is given. Feed it the fresh library and you get a conventional
/// performance-optimized netlist; feed it the worst-case degradation-aware
/// library and you get the paper's aging-optimized netlist.

#include <string>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "synth/buffering.hpp"
#include "synth/ir.hpp"
#include "synth/mapper.hpp"
#include "synth/sizing.hpp"

namespace rw::synth {

struct SynthesisOptions {
  MapperOptions mapper{};
  BufferingOptions buffering{};
  SizingOptions sizing{};
  bool enable_sizing = true;
  /// Try several mapper estimation settings and keep the best netlist by
  /// critical delay against the synthesis library (highest-effort mode).
  bool multi_start = true;
};

struct SynthesisResult {
  netlist::Module module;
  double cp_ps = 0.0;      ///< critical delay against the synthesis library
  double area_um2 = 0.0;
  std::size_t gate_count = 0;
  SizingReport sizing{};
};

/// Synthesizes `ir` against `library`.
SynthesisResult synthesize(const Ir& ir, const liberty::Library& library,
                           const std::string& top_name, const SynthesisOptions& options = {});

/// Total cell area of a mapped netlist.
double total_area_um2(const netlist::Module& module, const liberty::Library& library);

}  // namespace rw::synth
