#pragma once

/// \file ir.hpp
/// Technology-independent circuit IR ("RTL" input of the flow). Benchmark
/// generators build word-level logic out of these primitives; synthesis
/// decomposes, maps and optimizes it against a cell library. The IR carries
/// its own cycle-accurate functional simulator, which serves as the golden
/// model for equivalence checking and for the image-chain experiments.

#include <string>
#include <unordered_map>
#include <vector>

namespace rw::synth {

enum class Op {
  kInput,
  kConst0,
  kConst1,
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kMux,   ///< mux(s, d0, d1): d0 when s=0, d1 when s=1
  kFlop,  ///< D flip-flop on the implicit global clock
};

struct IrNode {
  Op op = Op::kInput;
  int a = -1;
  int b = -1;
  int c = -1;
};

class Ir {
 public:
  int input(const std::string& name);
  int constant(bool value);
  int not_(int a);
  int and_(int a, int b);
  int or_(int a, int b);
  int xor_(int a, int b);
  int nand_(int a, int b);
  int nor_(int a, int b);
  int mux(int s, int d0, int d1);

  /// Creates a flop; D may be connected later (feedback loops).
  int flop(int d = -1);
  void connect_flop(int flop_node, int d);

  void output(const std::string& name, int node);

  [[nodiscard]] const std::vector<IrNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::pair<std::string, int>>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<std::pair<std::string, int>>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::size_t flop_count() const;

  /// \throws std::runtime_error if any flop is left unconnected.
  void validate() const;

 private:
  int add(Op op, int a = -1, int b = -1, int c = -1);
  void check(int node) const;

  std::vector<IrNode> nodes_;
  std::vector<std::pair<std::string, int>> inputs_;
  std::vector<std::pair<std::string, int>> outputs_;
};

/// Cycle-accurate functional evaluation of an IR (flops reset to 0).
class IrSimulator {
 public:
  explicit IrSimulator(const Ir& ir);

  void set_input(const std::string& name, bool value);
  /// Evaluates combinational logic; readable via output()/value().
  void evaluate();
  /// Rising clock edge (capture into flops).
  void clock_edge();
  void step() {
    evaluate();
    clock_edge();
  }

  [[nodiscard]] bool output(const std::string& name) const;
  [[nodiscard]] bool value(int node) const;
  void reset();

 private:
  const Ir& ir_;
  std::vector<bool> value_;
  std::vector<bool> flop_state_;          ///< per flop node (dense map below)
  std::vector<int> flop_index_;           ///< node -> flop_state_ index or -1
  std::vector<int> eval_order_;           ///< combinational topological order
  std::unordered_map<std::string, int> input_index_;
  std::unordered_map<std::string, int> output_index_;
};

}  // namespace rw::synth
