#pragma once

/// \file cuts.hpp
/// K-feasible cut enumeration (K = 4) over the NAND2/INV subject graph with
/// per-cut truth tables — the matching substrate for technology mapping.

#include <array>
#include <cstdint>
#include <vector>

#include "synth/decompose.hpp"

namespace rw::synth {

struct Cut {
  std::array<int, 4> leaves{{-1, -1, -1, -1}};  ///< sorted ascending, first `size` valid
  std::uint8_t size = 0;
  std::uint16_t truth = 0;  ///< over `size` leaves, bit p = f(pattern p)

  [[nodiscard]] bool is_trivial(int node) const { return size == 1 && leaves[0] == node; }
};

/// Expands `truth` (over the `from` leaves) to the `to` leaf set, which must
/// be a superset of `from`. Exposed for tests.
std::uint16_t expand_truth(std::uint16_t truth, const Cut& from, const Cut& to);

/// Enumerates up to `max_cuts` cuts per node (always including the trivial
/// cut). Source nodes (PI/flopQ) carry only their trivial cut.
std::vector<std::vector<Cut>> enumerate_cuts(const SubjectGraph& graph, int max_cuts = 12);

}  // namespace rw::synth
