#pragma once

/// \file sizing.hpp
/// Timing-driven gate sizing and area recovery. Greedy critical-path
/// upsizing within cell families (drive strengths are alternates of the same
/// function) followed by slack-guarded downsizing of off-critical cells.
/// Like the mapper, all decisions read the *provided* library — the aging
/// optimization lever of the paper.

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/graph.hpp"

namespace rw::synth {

struct SizingOptions {
  sta::StaOptions sta{};
  int max_upsize_passes = 40;
  int candidates_per_pass = 60;  ///< critical-path instances tried per pass
  double downsize_slack_margin_ps = 30.0;  ///< only downsize cells with more slack
  bool enable_area_recovery = true;
  int max_buffer_rounds = 20;              ///< slew-sharpening buffer insertions
  double buffer_slew_threshold_ps = 60.0;  ///< only sharpen pins slower than this
  std::string buffer_cell = "BUF_X2";
};

struct SizingReport {
  double initial_cp_ps = 0.0;
  double final_cp_ps = 0.0;
  int upsizes = 0;
  int downsizes = 0;
  int slew_buffers = 0;
};

/// Resizes instances of `module` in place.
SizingReport size_gates(netlist::Module& module, const liberty::Library& library,
                        const SizingOptions& options = {});

}  // namespace rw::synth
