#include "synth/cuts.hpp"

#include <algorithm>
#include <stdexcept>

namespace rw::synth {

namespace {

/// Merges two sorted leaf sets; returns false if the union exceeds 4.
bool merge_leaves(const Cut& a, const Cut& b, Cut& out) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::uint8_t n = 0;
  while (ia < a.size || ib < b.size) {
    int next;
    if (ia < a.size && ib < b.size) {
      if (a.leaves[ia] == b.leaves[ib]) {
        next = a.leaves[ia];
        ++ia;
        ++ib;
      } else if (a.leaves[ia] < b.leaves[ib]) {
        next = a.leaves[ia++];
      } else {
        next = b.leaves[ib++];
      }
    } else if (ia < a.size) {
      next = a.leaves[ia++];
    } else {
      next = b.leaves[ib++];
    }
    if (n == 4) return false;
    out.leaves[n++] = next;
  }
  out.size = n;
  return true;
}

Cut trivial_cut(int node) {
  Cut c;
  c.leaves[0] = node;
  c.size = 1;
  c.truth = 0b10;  // identity over one leaf
  return c;
}

bool same_leaves(const Cut& a, const Cut& b) {
  return a.size == b.size &&
         std::equal(a.leaves.begin(), a.leaves.begin() + a.size, b.leaves.begin());
}

/// True when `a`'s leaf set is a subset of `b`'s (then b is dominated).
bool subset_of(const Cut& a, const Cut& b) {
  if (a.size > b.size) return false;
  std::size_t ib = 0;
  for (std::size_t ia = 0; ia < a.size; ++ia) {
    while (ib < b.size && b.leaves[ib] < a.leaves[ia]) ++ib;
    if (ib == b.size || b.leaves[ib] != a.leaves[ia]) return false;
  }
  return true;
}

}  // namespace

std::uint16_t expand_truth(std::uint16_t truth, const Cut& from, const Cut& to) {
  // Position of each `from` leaf within `to`.
  std::array<int, 4> pos{};
  for (std::size_t i = 0; i < from.size; ++i) {
    const auto it = std::find(to.leaves.begin(), to.leaves.begin() + to.size, from.leaves[i]);
    if (it == to.leaves.begin() + to.size) {
      throw std::invalid_argument("expand_truth: 'from' is not a subset of 'to'");
    }
    pos[i] = static_cast<int>(it - to.leaves.begin());
  }
  std::uint16_t out = 0;
  const unsigned n_to = 1U << to.size;
  for (unsigned p = 0; p < n_to; ++p) {
    unsigned q = 0;
    for (std::size_t i = 0; i < from.size; ++i) {
      if ((p >> pos[i]) & 1U) q |= 1U << i;
    }
    if ((truth >> q) & 1U) out |= static_cast<std::uint16_t>(1U << p);
  }
  return out;
}

std::vector<std::vector<Cut>> enumerate_cuts(const SubjectGraph& graph, int max_cuts) {
  std::vector<std::vector<Cut>> cuts(graph.nodes.size());

  const auto add_cut = [&](std::vector<Cut>& list, const Cut& cut) {
    for (const auto& existing : list) {
      if (same_leaves(existing, cut)) return;        // duplicate leaf set
      if (subset_of(existing, cut)) return;          // dominated
    }
    list.push_back(cut);
  };

  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const auto& node = graph.nodes[i];
    auto& list = cuts[i];
    list.push_back(trivial_cut(static_cast<int>(i)));

    if (node.kind == SubjectGraph::Kind::kInv) {
      for (const Cut& ca : cuts[static_cast<std::size_t>(node.a)]) {
        Cut c = ca;
        const unsigned bits = 1U << c.size;
        c.truth = static_cast<std::uint16_t>(~c.truth & ((1U << bits) - 1U));
        add_cut(list, c);
        if (static_cast<int>(list.size()) >= max_cuts) break;
      }
    } else if (node.kind == SubjectGraph::Kind::kNand) {
      for (const Cut& ca : cuts[static_cast<std::size_t>(node.a)]) {
        for (const Cut& cb : cuts[static_cast<std::size_t>(node.b)]) {
          Cut merged;
          if (!merge_leaves(ca, cb, merged)) continue;
          const std::uint16_t ta = expand_truth(ca.truth, ca, merged);
          const std::uint16_t tb = expand_truth(cb.truth, cb, merged);
          const unsigned bits = 1U << merged.size;
          merged.truth = static_cast<std::uint16_t>(~(ta & tb) & ((1U << bits) - 1U));
          add_cut(list, merged);
          if (static_cast<int>(list.size()) >= max_cuts) break;
        }
        if (static_cast<int>(list.size()) >= max_cuts) break;
      }
    }
    // Prefer small cuts: keeps the best candidates when truncated.
    std::sort(list.begin(), list.end(), [&](const Cut& x, const Cut& y) {
      if (x.is_trivial(static_cast<int>(i)) != y.is_trivial(static_cast<int>(i))) {
        return x.is_trivial(static_cast<int>(i));
      }
      return x.size < y.size;
    });
    if (static_cast<int>(list.size()) > max_cuts) list.resize(static_cast<std::size_t>(max_cuts));
  }
  return cuts;
}

}  // namespace rw::synth
