#include "synth/decompose.hpp"

#include <map>
#include <stdexcept>

namespace rw::synth {

std::size_t SubjectGraph::nand_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes) {
    if (node.kind == Kind::kNand) ++n;
  }
  return n;
}

namespace {

/// Builder with structural hashing. Constants are represented virtually:
/// node ids kConstLo/kConstHi never enter the graph; helpers fold them away.
class Builder {
 public:
  static constexpr int kConst0Id = -2;
  static constexpr int kConst1Id = -3;

  int pi(const std::string& name) {
    const int id = add(SubjectGraph::Kind::kPi, -1, -1);
    graph_.pis.emplace_back(name, id);
    return id;
  }

  int flop_q() {
    const int id = add(SubjectGraph::Kind::kFlopQ, -1, -1);
    graph_.flops.push_back(id);
    return id;
  }

  void connect_flop(int q, int d) { graph_.nodes[static_cast<std::size_t>(q)].a = d; }

  int inv(int a) {
    if (a == kConst0Id) return kConst1Id;
    if (a == kConst1Id) return kConst0Id;
    // inv(inv(x)) = x
    const auto& n = graph_.nodes[static_cast<std::size_t>(a)];
    if (n.kind == SubjectGraph::Kind::kInv) return n.a;
    return strash(SubjectGraph::Kind::kInv, a, -1);
  }

  int nand(int a, int b) {
    if (a == kConst0Id || b == kConst0Id) return kConst1Id;
    if (a == kConst1Id) return inv(b);
    if (b == kConst1Id) return inv(a);
    if (a == b) return inv(a);
    if (a > b) std::swap(a, b);
    return strash(SubjectGraph::Kind::kNand, a, b);
  }

  int and_(int a, int b) { return inv(nand(a, b)); }
  int or_(int a, int b) { return nand(inv(a), inv(b)); }
  int nor_(int a, int b) { return inv(or_(a, b)); }
  int xor_(int a, int b) {
    if (a == kConst0Id) return b;
    if (b == kConst0Id) return a;
    if (a == kConst1Id) return inv(b);
    if (b == kConst1Id) return inv(a);
    const int t = nand(a, b);
    return nand(nand(a, t), nand(b, t));
  }
  int mux(int s, int d0, int d1) {
    if (s == kConst0Id) return d0;
    if (s == kConst1Id) return d1;
    if (d0 == d1) return d0;
    return nand(nand(d0, inv(s)), nand(d1, s));
  }

  SubjectGraph take() { return std::move(graph_); }

 private:
  int add(SubjectGraph::Kind kind, int a, int b) {
    graph_.nodes.push_back(SubjectGraph::Node{kind, a, b});
    return static_cast<int>(graph_.nodes.size() - 1);
  }

  int strash(SubjectGraph::Kind kind, int a, int b) {
    const auto key = std::make_tuple(kind, a, b);
    const auto it = hash_.find(key);
    if (it != hash_.end()) return it->second;
    const int id = add(kind, a, b);
    hash_.emplace(key, id);
    return id;
  }

  SubjectGraph graph_;
  std::map<std::tuple<SubjectGraph::Kind, int, int>, int> hash_;
};

}  // namespace

SubjectGraph decompose(const Ir& ir) {
  ir.validate();
  Builder builder;
  const auto& nodes = ir.nodes();
  std::vector<int> sg(nodes.size(), -1);

  // First pass: create PIs and flop Q nodes (flops may feed back).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == Op::kFlop) sg[i] = builder.flop_q();
  }
  for (const auto& [name, node] : ir.inputs()) {
    sg[static_cast<std::size_t>(node)] = builder.pi(name);
  }

  // Second pass: combinational nodes in creation order (fanin-first).
  const auto ref = [&](int ir_node) {
    const int id = sg[static_cast<std::size_t>(ir_node)];
    if (id == -1) throw std::runtime_error("decompose: node evaluated before its fanin");
    return id;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (sg[i] != -1 && nodes[i].op != Op::kFlop) continue;
    const auto& n = nodes[i];
    switch (n.op) {
      case Op::kInput:
      case Op::kFlop:
        break;  // already created
      case Op::kConst0:
        sg[i] = Builder::kConst0Id;
        break;
      case Op::kConst1:
        sg[i] = Builder::kConst1Id;
        break;
      case Op::kNot:
        sg[i] = builder.inv(ref(n.a));
        break;
      case Op::kAnd:
        sg[i] = builder.and_(ref(n.a), ref(n.b));
        break;
      case Op::kOr:
        sg[i] = builder.or_(ref(n.a), ref(n.b));
        break;
      case Op::kXor:
        sg[i] = builder.xor_(ref(n.a), ref(n.b));
        break;
      case Op::kNand:
        sg[i] = builder.nand(ref(n.a), ref(n.b));
        break;
      case Op::kNor:
        sg[i] = builder.nor_(ref(n.a), ref(n.b));
        break;
      case Op::kMux:
        sg[i] = builder.mux(ref(n.a), ref(n.b), ref(n.c));
        break;
    }
  }

  // Third pass: connect flop D inputs and primary outputs.
  SubjectGraph graph = builder.take();
  std::size_t flop_cursor = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op != Op::kFlop) continue;
    const int d = sg[static_cast<std::size_t>(nodes[i].a)];
    if (d < 0) {
      throw std::runtime_error("decompose: flop D reduces to a constant (unsupported)");
    }
    graph.nodes[static_cast<std::size_t>(graph.flops[flop_cursor])].a = d;
    ++flop_cursor;
  }
  for (const auto& [name, node] : ir.outputs()) {
    const int id = sg[static_cast<std::size_t>(node)];
    if (id < 0) throw std::runtime_error("decompose: output " + name + " is constant");
    graph.pos.emplace_back(name, id);
  }
  return graph;
}

}  // namespace rw::synth
