#include "synth/mapper.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace rw::synth {

namespace {

struct Match {
  const liberty::Cell* cell = nullptr;
  std::array<int, 4> pin_of_leaf{{0, 1, 2, 3}};  ///< leaf index -> cell input-pin index
};

using PatternTable = std::unordered_map<std::uint32_t, std::vector<Match>>;

std::uint32_t pattern_key(unsigned n_leaves, std::uint16_t truth) {
  return (n_leaves << 16) | truth;
}

/// Does the cell's function depend on every input pin?
bool depends_on_all_pins(std::uint64_t truth, int n) {
  for (int bit = 0; bit < n; ++bit) {
    bool depends = false;
    for (unsigned p = 0; p < (1U << n); ++p) {
      if ((p >> bit) & 1U) continue;
      const bool lo = (truth >> p) & 1ULL;
      const bool hi = (truth >> (p | (1U << bit))) & 1ULL;
      if (lo != hi) {
        depends = true;
        break;
      }
    }
    if (!depends) return false;
  }
  return true;
}

bool is_identity(std::uint64_t truth, int n) { return n == 1 && truth == 0b10; }

PatternTable build_pattern_table(const liberty::Library& library) {
  PatternTable table;
  // Smallest drive per family only; gate sizing explores the rest.
  std::map<std::string, const liberty::Cell*> representative;
  for (const auto& cell : library.cells()) {
    if (cell.is_flop || cell.n_inputs() < 1 || cell.n_inputs() > 4) continue;
    auto [it, inserted] = representative.emplace(cell.family, &cell);
    if (!inserted && cell.drive_x < it->second->drive_x) it->second = &cell;
  }
  for (const auto& [family, cell] : representative) {
    const int n = cell->n_inputs();
    if (!depends_on_all_pins(cell->truth, n)) continue;
    if (is_identity(cell->truth, n)) continue;  // buffers handled separately

    // {0,1,2,3} is ascending, i.e. already the first permutation of any
    // prefix — exactly what std::next_permutation below needs to start from.
    std::array<int, 4> perm{{0, 1, 2, 3}};
    do {
      // Leaf pattern p -> cell pattern q with bit perm[i] = bit i of p.
      std::uint16_t permuted = 0;
      for (unsigned p = 0; p < (1U << n); ++p) {
        unsigned q = 0;
        for (int i = 0; i < n; ++i) {
          if ((p >> i) & 1U) q |= 1U << perm[static_cast<std::size_t>(i)];
        }
        if ((cell->truth >> q) & 1ULL) permuted |= static_cast<std::uint16_t>(1U << p);
      }
      Match m;
      m.cell = cell;
      m.pin_of_leaf = perm;
      auto& bucket = table[pattern_key(static_cast<unsigned>(n), permuted)];
      // Same cell can produce the same permuted truth via different
      // permutations (symmetric pins); keep one per cell.
      if (std::none_of(bucket.begin(), bucket.end(),
                       [&](const Match& x) { return x.cell == cell; })) {
        bucket.push_back(m);
      }
    } while (std::next_permutation(perm.begin(), perm.begin() + n));
  }
  return table;
}

/// Estimated worst delay through a given input pin of a cell at a load.
double pin_delay_estimate(const liberty::Cell& cell, int pin_index, double slew_ps,
                          double load_ff) {
  const auto pins = cell.input_pins();
  const liberty::TimingArc* arc = cell.arc_from(pins[static_cast<std::size_t>(pin_index)]->name);
  if (arc == nullptr) return 0.0;
  double d = std::numeric_limits<double>::lowest();
  if (!arc->rise.empty()) d = std::max(d, arc->rise.delay_ps.lookup(slew_ps, load_ff));
  if (!arc->fall.empty()) d = std::max(d, arc->fall.delay_ps.lookup(slew_ps, load_ff));
  // Degradation-aware tables can go negative at extrapolated corners; a
  // cost of < 0 would let the DP "mine" nonsense matches.
  return d == std::numeric_limits<double>::lowest() ? 0.0 : std::max(0.0, d);
}

struct Best {
  double arrival = std::numeric_limits<double>::infinity();
  double area_flow = std::numeric_limits<double>::infinity();
  int cut = -1;
  Match match;
};

}  // namespace

netlist::Module map_to_library(const SubjectGraph& graph, const liberty::Library& library,
                               const MapperOptions& options, const std::string& top_name) {
  const PatternTable patterns = build_pattern_table(library);
  const auto cuts = enumerate_cuts(graph, options.max_cuts);

  // Fanout reference counts for area flow.
  std::vector<int> refs(graph.nodes.size(), 0);
  for (const auto& node : graph.nodes) {
    if (node.a >= 0 && node.kind != SubjectGraph::Kind::kFlopQ) {
      ++refs[static_cast<std::size_t>(node.a)];
    }
    if (node.b >= 0) ++refs[static_cast<std::size_t>(node.b)];
  }
  for (const auto& [name, id] : graph.pos) ++refs[static_cast<std::size_t>(id)];
  for (const int f : graph.flops) {
    const int d = graph.nodes[static_cast<std::size_t>(f)].a;
    if (d >= 0) ++refs[static_cast<std::size_t>(d)];
  }

  // Dynamic program in topological (creation) order. The load each mapped
  // node will see is estimated from its subject fanout count, so candidate
  // delays are read from the NLDM in the region where the gate will
  // actually operate — this is where a degradation-aware library steers
  // choices by OPC, not just by a uniform scale factor.
  std::vector<Best> best(graph.nodes.size());
  const auto node_load_ff = [&](std::size_t i) {
    return options.est_load_per_fanout_ff * std::max(1, refs[i]);
  };
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const auto& node = graph.nodes[i];
    if (node.kind == SubjectGraph::Kind::kPi || node.kind == SubjectGraph::Kind::kFlopQ) {
      best[i].arrival = 0.0;
      best[i].area_flow = 0.0;
      continue;
    }
    for (std::size_t c = 0; c < cuts[i].size(); ++c) {
      const Cut& cut = cuts[i][c];
      if (cut.is_trivial(static_cast<int>(i))) continue;
      const auto it = patterns.find(pattern_key(cut.size, cut.truth));
      if (it == patterns.end()) continue;
      for (const Match& match : it->second) {
        double arrival = 0.0;
        double area_flow = match.cell->area_um2;
        bool feasible = true;
        for (std::size_t l = 0; l < cut.size; ++l) {
          const auto leaf = static_cast<std::size_t>(cut.leaves[l]);
          if (!std::isfinite(best[leaf].arrival)) {
            feasible = false;
            break;
          }
          arrival = std::max(arrival,
                             best[leaf].arrival +
                                 pin_delay_estimate(*match.cell, match.pin_of_leaf[l],
                                                    options.est_slew_ps, node_load_ff(i)));
          area_flow += best[leaf].area_flow / std::max(1, refs[leaf]);
        }
        if (!feasible) continue;
        const double cost = arrival + options.area_tiebreak * area_flow;
        const double best_cost = best[i].arrival + options.area_tiebreak * best[i].area_flow;
        if (cost < best_cost) {
          best[i].arrival = arrival;
          best[i].area_flow = area_flow;
          best[i].cut = static_cast<int>(c);
          best[i].match = match;
        }
      }
    }
    if (!std::isfinite(best[i].arrival)) {
      throw std::runtime_error("map_to_library: node without a match (library lacks INV/NAND2?)");
    }
  }

  // Cover extraction.
  netlist::Module module(top_name);
  std::vector<netlist::NetId> net_of(graph.nodes.size(), netlist::kNoNet);
  for (const auto& [name, id] : graph.pis) {
    const netlist::NetId n = module.add_net(name);
    module.mark_input(n);
    net_of[static_cast<std::size_t>(id)] = n;
  }
  if (!graph.flops.empty()) {
    module.set_clock(module.add_net(options.clock_name));
  }
  for (const int f : graph.flops) {
    net_of[static_cast<std::size_t>(f)] = module.new_net("q");
  }

  int inst_counter = 0;
  const std::function<netlist::NetId(int)> materialize = [&](int id) -> netlist::NetId {
    auto& net = net_of[static_cast<std::size_t>(id)];
    if (net != netlist::kNoNet) return net;
    const Best& b = best[static_cast<std::size_t>(id)];
    const Cut& cut = cuts[static_cast<std::size_t>(id)][static_cast<std::size_t>(b.cut)];
    // Fanin nets ordered by the cell's input pins.
    std::vector<netlist::NetId> fanin(cut.size, netlist::kNoNet);
    for (std::size_t l = 0; l < cut.size; ++l) {
      fanin[static_cast<std::size_t>(b.match.pin_of_leaf[l])] = materialize(cut.leaves[l]);
    }
    net = module.new_net();
    module.add_instance("g$" + std::to_string(inst_counter++), b.match.cell->name, fanin, net);
    return net;
  };

  // Flops first (their D cones), then primary outputs.
  const liberty::Cell* dff = nullptr;
  for (const auto& cell : library.cells()) {
    if (cell.is_flop && (dff == nullptr || cell.drive_x < dff->drive_x)) dff = &cell;
  }
  for (const int f : graph.flops) {
    if (dff == nullptr) throw std::runtime_error("map_to_library: library has no flop");
    const int d = graph.nodes[static_cast<std::size_t>(f)].a;
    const netlist::NetId d_net = materialize(d);
    module.add_instance("r$" + std::to_string(inst_counter++), dff->name,
                        {d_net, module.clock()}, net_of[static_cast<std::size_t>(f)]);
  }

  const liberty::Cell* buf = nullptr;
  for (const auto& cell : library.cells()) {
    if (!cell.is_flop && cell.n_inputs() == 1 && is_identity(cell.truth, 1) &&
        (buf == nullptr || cell.drive_x < buf->drive_x)) {
      buf = &cell;
    }
  }
  std::vector<bool> net_is_po(static_cast<std::size_t>(module.net_count()) + graph.pos.size() * 2,
                              false);
  for (const auto& [name, id] : graph.pos) {
    netlist::NetId net = materialize(id);
    const bool taken = module.is_input(net) ||
                       (static_cast<std::size_t>(net) < net_is_po.size() &&
                        net_is_po[static_cast<std::size_t>(net)]);
    if (taken) {
      if (buf == nullptr) throw std::runtime_error("map_to_library: library has no buffer");
      const netlist::NetId fresh = module.new_net();
      module.add_instance("g$" + std::to_string(inst_counter++), buf->name, {net}, fresh);
      net = fresh;
    }
    if (module.find_net(name) == netlist::kNoNet) module.rename_net(net, name);
    module.mark_output(net);
    if (static_cast<std::size_t>(net) >= net_is_po.size()) {
      net_is_po.resize(static_cast<std::size_t>(net) + 1, false);
    }
    net_is_po[static_cast<std::size_t>(net)] = true;
  }

  module.validate();
  return module;
}

}  // namespace rw::synth
