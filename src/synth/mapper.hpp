#pragma once

/// \file mapper.hpp
/// Timing-driven technology mapping: cut-based DAG covering with exact truth
/// -table matching against the library's (smallest-drive) cells. Per-pin arc
/// delays from the *provided* library drive the dynamic program — which is
/// exactly how a degradation-aware library makes a generic mapper
/// aging-aware (Section 4.3).

#include <string>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"
#include "synth/cuts.hpp"

namespace rw::synth {

struct MapperOptions {
  double est_slew_ps = 40.0;  ///< slew at which candidate delays are estimated
  double est_load_ff = 4.0;   ///< (unused by the DP; kept for single-point experiments)
  double est_load_per_fanout_ff = 1.6;  ///< per-fanout load estimate for the DP
  double area_tiebreak = 1e-3;  ///< weight of area flow against arrival (ps/µm²)
  int max_cuts = 12;
  std::string clock_name = "clk";
};

/// \throws std::runtime_error when some subject node has no library match
/// (cannot happen with a library containing INV and NAND2).
netlist::Module map_to_library(const SubjectGraph& graph, const liberty::Library& library,
                               const MapperOptions& options, const std::string& top_name);

}  // namespace rw::synth
