#include "synth/ir.hpp"

#include <stdexcept>

namespace rw::synth {

int Ir::add(Op op, int a, int b, int c) {
  nodes_.push_back(IrNode{op, a, b, c});
  return static_cast<int>(nodes_.size() - 1);
}

void Ir::check(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    throw std::out_of_range("Ir: invalid node reference");
  }
}

int Ir::input(const std::string& name) {
  const int id = add(Op::kInput);
  inputs_.emplace_back(name, id);
  return id;
}

int Ir::constant(bool value) { return add(value ? Op::kConst1 : Op::kConst0); }

int Ir::not_(int a) {
  check(a);
  return add(Op::kNot, a);
}
int Ir::and_(int a, int b) {
  check(a);
  check(b);
  return add(Op::kAnd, a, b);
}
int Ir::or_(int a, int b) {
  check(a);
  check(b);
  return add(Op::kOr, a, b);
}
int Ir::xor_(int a, int b) {
  check(a);
  check(b);
  return add(Op::kXor, a, b);
}
int Ir::nand_(int a, int b) {
  check(a);
  check(b);
  return add(Op::kNand, a, b);
}
int Ir::nor_(int a, int b) {
  check(a);
  check(b);
  return add(Op::kNor, a, b);
}
int Ir::mux(int s, int d0, int d1) {
  check(s);
  check(d0);
  check(d1);
  return add(Op::kMux, s, d0, d1);
}

int Ir::flop(int d) {
  if (d >= 0) check(d);
  return add(Op::kFlop, d);
}

void Ir::connect_flop(int flop_node, int d) {
  check(flop_node);
  check(d);
  if (nodes_[static_cast<std::size_t>(flop_node)].op != Op::kFlop) {
    throw std::invalid_argument("Ir::connect_flop: node is not a flop");
  }
  nodes_[static_cast<std::size_t>(flop_node)].a = d;
}

void Ir::output(const std::string& name, int node) {
  check(node);
  outputs_.emplace_back(name, node);
}

std::size_t Ir::flop_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.op == Op::kFlop) ++n;
  }
  return n;
}

void Ir::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].op == Op::kFlop && nodes_[i].a < 0) {
      throw std::runtime_error("Ir::validate: flop node " + std::to_string(i) + " unconnected");
    }
  }
}

IrSimulator::IrSimulator(const Ir& ir) : ir_(ir) {
  ir.validate();
  const auto& nodes = ir.nodes();
  value_.assign(nodes.size(), false);
  flop_index_.assign(nodes.size(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == Op::kFlop) {
      flop_index_[i] = static_cast<int>(flop_state_.size());
      flop_state_.push_back(false);
    }
  }
  // Nodes are created fanin-first (except flop feedback, cut by state), so
  // index order is a valid combinational evaluation order.
  eval_order_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    eval_order_.push_back(static_cast<int>(i));
  }
  for (const auto& [name, node] : ir.inputs()) input_index_[name] = node;
  for (const auto& [name, node] : ir.outputs()) output_index_[name] = node;
}

void IrSimulator::set_input(const std::string& name, bool value) {
  const auto it = input_index_.find(name);
  if (it == input_index_.end()) {
    throw std::out_of_range("IrSimulator::set_input: no input " + name);
  }
  value_[static_cast<std::size_t>(it->second)] = value;
}

void IrSimulator::evaluate() {
  const auto& nodes = ir_.nodes();
  for (const int id : eval_order_) {
    const auto& n = nodes[static_cast<std::size_t>(id)];
    const auto i = static_cast<std::size_t>(id);
    switch (n.op) {
      case Op::kInput:
        break;  // set externally
      case Op::kConst0:
        value_[i] = false;
        break;
      case Op::kConst1:
        value_[i] = true;
        break;
      case Op::kNot:
        value_[i] = !value_[static_cast<std::size_t>(n.a)];
        break;
      case Op::kAnd:
        value_[i] = value_[static_cast<std::size_t>(n.a)] && value_[static_cast<std::size_t>(n.b)];
        break;
      case Op::kOr:
        value_[i] = value_[static_cast<std::size_t>(n.a)] || value_[static_cast<std::size_t>(n.b)];
        break;
      case Op::kXor:
        value_[i] = value_[static_cast<std::size_t>(n.a)] != value_[static_cast<std::size_t>(n.b)];
        break;
      case Op::kNand:
        value_[i] =
            !(value_[static_cast<std::size_t>(n.a)] && value_[static_cast<std::size_t>(n.b)]);
        break;
      case Op::kNor:
        value_[i] =
            !(value_[static_cast<std::size_t>(n.a)] || value_[static_cast<std::size_t>(n.b)]);
        break;
      case Op::kMux:
        value_[i] = value_[static_cast<std::size_t>(n.a)]
                        ? value_[static_cast<std::size_t>(n.c)]
                        : value_[static_cast<std::size_t>(n.b)];
        break;
      case Op::kFlop:
        value_[i] = flop_state_[static_cast<std::size_t>(flop_index_[i])];
        break;
    }
  }
}

void IrSimulator::clock_edge() {
  const auto& nodes = ir_.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].op == Op::kFlop) {
      flop_state_[static_cast<std::size_t>(flop_index_[i])] =
          value_[static_cast<std::size_t>(nodes[i].a)];
    }
  }
}

bool IrSimulator::output(const std::string& name) const {
  const auto it = output_index_.find(name);
  if (it == output_index_.end()) {
    throw std::out_of_range("IrSimulator::output: no output " + name);
  }
  return value_[static_cast<std::size_t>(it->second)];
}

bool IrSimulator::value(int node) const { return value_[static_cast<std::size_t>(node)]; }

void IrSimulator::reset() {
  std::fill(value_.begin(), value_.end(), false);
  std::fill(flop_state_.begin(), flop_state_.end(), false);
}

}  // namespace rw::synth
