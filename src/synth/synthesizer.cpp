#include "synth/synthesizer.hpp"

#include <optional>

#include "flow/cancel.hpp"
#include "sta/analysis.hpp"
#include "synth/decompose.hpp"

namespace rw::synth {

namespace {

SynthesisResult synthesize_one(const SubjectGraph& graph, const liberty::Library& library,
                               const std::string& top_name, const SynthesisOptions& options,
                               const MapperOptions& mapper_options) {
  netlist::Module module = map_to_library(graph, library, mapper_options, top_name);
  buffer_high_fanout(module, library, options.buffering);

  SynthesisResult result{std::move(module)};
  if (options.enable_sizing) {
    result.sizing = size_gates(result.module, library, options.sizing);
    result.cp_ps = result.sizing.final_cp_ps;
  } else {
    result.cp_ps = sta::Sta(result.module, library, options.sizing.sta).critical_delay_ps();
  }
  result.area_um2 = total_area_um2(result.module, library);
  result.gate_count = result.module.instances().size();
  return result;
}

}  // namespace

SynthesisResult synthesize(const Ir& ir, const liberty::Library& library,
                           const std::string& top_name, const SynthesisOptions& options) {
  const SubjectGraph graph = decompose(ir);

  // Multi-start (compile_ultra-style effort): several mapper estimation
  // settings, keep the netlist with the best critical delay *against the
  // provided library* — the only delay model the tool ever sees.
  std::vector<MapperOptions> starts;
  if (options.multi_start) {
    for (const double slew : {40.0, 120.0}) {
      for (const double load_per_fanout : {1.0, 2.5}) {
        MapperOptions m = options.mapper;
        m.est_slew_ps = slew;
        m.est_load_per_fanout_ff = load_per_fanout;
        starts.push_back(m);
      }
    }
  } else {
    starts.push_back(options.mapper);
  }

  std::optional<SynthesisResult> best;
  for (const auto& m : starts) {
    flow::throw_if_cancelled();
    SynthesisResult candidate = synthesize_one(graph, library, top_name, options, m);
    if (!best || candidate.cp_ps < best->cp_ps) best = std::move(candidate);
  }
  return std::move(*best);
}

double total_area_um2(const netlist::Module& module, const liberty::Library& library) {
  double area = 0.0;
  for (const auto& inst : module.instances()) area += library.at(inst.cell).area_um2;
  return area;
}

}  // namespace rw::synth
