#include "synth/buffering.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace rw::synth {

namespace {

/// One sink pin position: (instance index, pin index).
using SinkPin = std::pair<std::size_t, std::size_t>;

std::vector<SinkPin> collect_sinks(const netlist::Module& module, netlist::NetId net) {
  std::vector<SinkPin> sinks;
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const auto& fanin = module.instances()[i].fanin;
    for (std::size_t p = 0; p < fanin.size(); ++p) {
      if (fanin[p] == net) sinks.emplace_back(i, p);
    }
  }
  return sinks;
}

}  // namespace

const liberty::Cell* find_buffer_cell(const liberty::Library& library,
                                      const std::string& preferred) {
  if (const liberty::Cell* c = library.find(preferred)) return c;
  // Fall back to the strongest identity-function cell available.
  const liberty::Cell* best = nullptr;
  for (const auto& cell : library.cells()) {
    if (cell.is_flop || cell.n_inputs() != 1 || cell.truth != 0b10) continue;
    if (best == nullptr || cell.drive_x > best->drive_x) best = &cell;
  }
  if (best == nullptr) {
    throw std::runtime_error("find_buffer_cell: library has no buffer/identity cell");
  }
  return best;
}

int buffer_high_fanout(netlist::Module& module, const liberty::Library& library,
                       const BufferingOptions& options) {
  const std::string buffer_cell = find_buffer_cell(library, options.buffer_cell)->name;
  int inserted = 0;
  int counter = 0;
  // Iterate to a fixed point: buffer outputs can themselves exceed the
  // limit when a net is split into many groups.
  bool changed = true;
  while (changed) {
    changed = false;
    for (netlist::NetId net = 0; net < module.net_count(); ++net) {
      if (net == module.clock()) continue;
      auto sinks = collect_sinks(module, net);
      // Primary-output uses stay on the net and count against the limit.
      const auto po_uses =
          static_cast<std::size_t>(module.fanout_count(net)) - sinks.size();
      if (sinks.size() + po_uses <= static_cast<std::size_t>(options.max_fanout)) continue;

      // Keep some sinks on the original net and hand the rest to buffers in
      // groups of max_fanout, such that kept + buffers + POs <= max_fanout.
      const auto total = sinks.size();
      const auto mf = static_cast<std::size_t>(options.max_fanout);
      std::size_t keep = 0;
      for (std::size_t nbuf = 1; nbuf + po_uses < mf; ++nbuf) {
        const std::size_t candidate_keep = mf - nbuf - po_uses;
        if (candidate_keep + nbuf * mf >= total) {
          keep = candidate_keep;
          break;
        }
      }
      std::size_t cursor = keep;
      while (cursor < sinks.size()) {
        const netlist::NetId buffered = module.new_net("buf");
        module.add_instance("zbuf$" + std::to_string(counter++), buffer_cell, {net}, buffered);
        ++inserted;
        const std::size_t end =
            std::min(sinks.size(), cursor + static_cast<std::size_t>(options.max_fanout));
        for (std::size_t s = cursor; s < end; ++s) {
          module.instances()[sinks[s].first].fanin[sinks[s].second] = buffered;
        }
        cursor = end;
      }
      changed = true;
    }
  }
  return inserted;
}

}  // namespace rw::synth
