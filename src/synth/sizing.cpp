#include "synth/sizing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "sta/analysis.hpp"
#include "sta/paths.hpp"
#include "synth/buffering.hpp"

namespace rw::synth {

namespace {

/// Next larger / smaller drive variant of the same family, or nullptr.
const liberty::Cell* drive_variant(const liberty::Library& library, const liberty::Cell& cell,
                                   bool larger) {
  const auto family = library.family(cell.family);
  const liberty::Cell* best = nullptr;
  for (const liberty::Cell* candidate : family) {
    if (larger) {
      if (candidate->drive_x > cell.drive_x &&
          (best == nullptr || candidate->drive_x < best->drive_x)) {
        best = candidate;
      }
    } else {
      if (candidate->drive_x < cell.drive_x &&
          (best == nullptr || candidate->drive_x > best->drive_x)) {
        best = candidate;
      }
    }
  }
  return best;
}

/// Worst delay through an instance at the given input slews/load.
double worst_cell_delay(const liberty::Cell& cell, const sta::Sta& sta,
                        const netlist::Instance& inst, double load_ff) {
  double worst = 0.0;
  const auto input_pins = cell.input_pins();
  for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
    const liberty::TimingArc* arc = cell.arc_from(input_pins[p]->name);
    if (arc == nullptr) continue;
    const auto& t = sta.timing(inst.fanin[p]);
    const double slew = std::max({t.slew_ps[0], t.slew_ps[1], 1.0});
    if (!arc->rise.empty()) worst = std::max(worst, arc->rise.delay_ps.lookup(slew, load_ff));
    if (!arc->fall.empty()) worst = std::max(worst, arc->fall.delay_ps.lookup(slew, load_ff));
  }
  return worst;
}

/// Local gain estimate for replacing `inst`'s cell: own-delay change at the
/// real load plus the driver-side penalty from the input-cap change.
double estimate_gain_ps(const sta::Sta& sta, const netlist::Module& module, int inst_idx,
                        const liberty::Cell& now, const liberty::Cell& candidate) {
  const auto& inst = module.instances()[static_cast<std::size_t>(inst_idx)];
  const double load = sta.load_ff(inst.out);
  const double own_now = worst_cell_delay(now, sta, inst, load);
  const double own_new = worst_cell_delay(candidate, sta, inst, load);

  // Driver penalty: each fanin's driver sees a load delta; approximate the
  // delay shift with the driver's worst arc evaluated at old vs new load.
  double driver_penalty = 0.0;
  const auto now_pins = now.input_pins();
  const auto cand_pins = candidate.input_pins();
  for (std::size_t p = 0; p < inst.fanin.size(); ++p) {
    const double delta_cap = cand_pins[p]->cap_ff - now_pins[p]->cap_ff;
    if (delta_cap == 0.0) continue;
    const int drv = module.driver(inst.fanin[p]);
    if (drv < 0) continue;
    const auto& drv_inst = module.instances()[static_cast<std::size_t>(drv)];
    const liberty::Cell& drv_cell = sta.library().at(drv_inst.cell);
    const double drv_load = sta.load_ff(drv_inst.out);
    driver_penalty += worst_cell_delay(drv_cell, sta, drv_inst, drv_load + delta_cap) -
                      worst_cell_delay(drv_cell, sta, drv_inst, drv_load);
  }
  return (own_now - own_new) - driver_penalty;
}

}  // namespace

SizingReport size_gates(netlist::Module& module, const liberty::Library& library,
                        const SizingOptions& options) {
  SizingReport report;
  double cp = sta::Sta(module, library, options.sta).critical_delay_ps();
  report.initial_cp_ps = cp;
  report.final_cp_ps = cp;

  // Upsizing: per pass, gather instances on the worst endpoint paths, apply
  // every move with a positive local gain estimate, verify with one STA and
  // roll back in halves when the batch hurt.
  for (int pass = 0; pass < options.max_upsize_passes; ++pass) {
    const sta::Sta sta(module, library, options.sta);
    const auto paths = sta::worst_endpoint_paths(sta, 8);
    std::set<int> seen;
    std::vector<std::pair<double, int>> candidates;  // (incr, instance)
    for (const auto& path : paths) {
      for (const auto& step : path.steps) {
        if (step.instance >= 0 && seen.insert(step.instance).second) {
          candidates.emplace_back(step.incr_ps, step.instance);
        }
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    if (static_cast<int>(candidates.size()) > options.candidates_per_pass) {
      candidates.resize(static_cast<std::size_t>(options.candidates_per_pass));
    }

    std::vector<std::pair<std::size_t, std::string>> applied;
    for (const auto& [incr, idx] : candidates) {
      auto& inst = module.instances()[static_cast<std::size_t>(idx)];
      const liberty::Cell& now = library.at(inst.cell);
      const liberty::Cell* one_up = drive_variant(library, now, /*larger=*/true);
      if (one_up == nullptr) continue;
      // Consider jumping two drive steps at once: chains stuck at small
      // drives often only pay off past the next size.
      const liberty::Cell* two_up = drive_variant(library, *one_up, /*larger=*/true);
      const double gain_one = estimate_gain_ps(sta, module, idx, now, *one_up);
      const double gain_two =
          two_up != nullptr ? estimate_gain_ps(sta, module, idx, now, *two_up)
                            : std::numeric_limits<double>::lowest();
      const liberty::Cell* pick = gain_two > gain_one ? two_up : one_up;
      // A slightly negative individual estimate is allowed: gates on a
      // chain only pay off when their neighbours upsize too, and the batch
      // is verified (and rolled back) against a real STA anyway.
      if (std::max(gain_one, gain_two) <= -2.0) continue;
      applied.emplace_back(static_cast<std::size_t>(idx), inst.cell);
      inst.cell = pick->name;
    }
    if (applied.empty()) break;

    double new_cp = sta::Sta(module, library, options.sta).critical_delay_ps();
    while (new_cp > cp - 1e-9 && !applied.empty()) {
      const std::size_t keep = applied.size() / 2;
      for (std::size_t k = keep; k < applied.size(); ++k) {
        module.instances()[applied[k].first].cell = applied[k].second;
      }
      applied.resize(keep);
      new_cp = sta::Sta(module, library, options.sta).critical_delay_ps();
    }
    if (applied.empty()) break;
    report.upsizes += static_cast<int>(applied.size());
    cp = new_cp;
    report.final_cp_ps = cp;
  }

  // Slew-sharpening buffers: the paper's Section 4.3 explicitly names input
  // buffering as a lever the aging-aware library unlocks — a sharp slew
  // moves a gate into the OPC region where its (aged) delay is small. Try a
  // buffer in front of the worst-slew critical-path pins; verify with STA.
  for (int round = 0; round < options.max_buffer_rounds; ++round) {
    const sta::Sta sta(module, library, options.sta);
    const double cp_before = sta.critical_delay_ps();
    const sta::TimingPath path = sta::worst_path(sta);
    bool inserted = false;
    for (const auto& step : path.steps) {
      if (step.instance < 0 || step.input_pin < 0) continue;
      const auto& inst = module.instances()[static_cast<std::size_t>(step.instance)];
      const netlist::NetId in_net = inst.fanin[static_cast<std::size_t>(step.input_pin)];
      const auto& in_t = sta.timing(in_net);
      const double slew = std::max(in_t.slew_ps[0], in_t.slew_ps[1]);
      if (slew < options.buffer_slew_threshold_ps) continue;
      if (module.driver(in_net) < 0) continue;  // don't buffer primary inputs

      // Insert BUF between the net and this one pin.
      const std::string buf_cell = find_buffer_cell(library, options.buffer_cell)->name;
      const netlist::NetId buffered = module.new_net("slewbuf");
      const std::size_t buf_idx = module.add_instance(
          "sbuf$" + std::to_string(report.slew_buffers + round * 100), buf_cell,
          {in_net}, buffered);
      module.instances()[static_cast<std::size_t>(step.instance)]
          .fanin[static_cast<std::size_t>(step.input_pin)] = buffered;

      const double cp_after = sta::Sta(module, library, options.sta).critical_delay_ps();
      if (cp_after < cp_before - 1e-9) {
        ++report.slew_buffers;
        report.final_cp_ps = cp_after;
        inserted = true;
        break;  // re-run STA-based selection on the new worst path
      }
      // Revert: restore the pin and drop the buffer instance (it is the
      // last one added and drives a net nothing else uses).
      module.instances()[static_cast<std::size_t>(step.instance)]
          .fanin[static_cast<std::size_t>(step.input_pin)] = in_net;
      module.remove_last_instance(buf_idx);
    }
    if (!inserted) break;
  }

  // Area recovery: downsize everything with comfortable slack, verify once.
  if (options.enable_area_recovery) {
    const sta::Sta sta(module, library, options.sta);
    cp = sta.critical_delay_ps();
    std::vector<std::pair<std::size_t, std::string>> applied;
    for (std::size_t i = 0; i < module.instances().size(); ++i) {
      auto& inst = module.instances()[i];
      const liberty::Cell& current = library.at(inst.cell);
      if (current.drive_x <= 1) continue;
      const double slack = sta.slack_ps(inst.out);
      if (!std::isfinite(slack) || slack < options.downsize_slack_margin_ps) continue;
      const liberty::Cell* smaller = drive_variant(library, current, /*larger=*/false);
      if (smaller == nullptr) continue;
      applied.emplace_back(i, inst.cell);
      inst.cell = smaller->name;
    }
    if (!applied.empty()) {
      double new_cp = sta::Sta(module, library, options.sta).critical_delay_ps();
      while (new_cp > cp + 1e-9 && !applied.empty()) {
        const std::size_t keep = applied.size() / 2;
        for (std::size_t k = keep; k < applied.size(); ++k) {
          module.instances()[applied[k].first].cell = applied[k].second;
        }
        applied.resize(keep);
        new_cp = sta::Sta(module, library, options.sta).critical_delay_ps();
      }
      report.downsizes = static_cast<int>(applied.size());
      report.final_cp_ps = new_cp;
    }
  }
  return report;
}

}  // namespace rw::synth
