#pragma once

/// \file buffering.hpp
/// High-fanout net buffering: nets driving more than `max_fanout` sinks get
/// a buffer tree (the paper notes the tool "could use input buffers to
/// sharpen the slew" — buffering is one of the levers aging-aware synthesis
/// exploits since slews control aging impact).

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace rw::synth {

struct BufferingOptions {
  int max_fanout = 8;
  std::string buffer_cell = "BUF_X4";
};

/// Returns the number of buffers inserted. The clock net is never buffered
/// (ideal clock assumption, as in the paper's fixed-frequency experiments).
int buffer_high_fanout(netlist::Module& module, const liberty::Library& library,
                       const BufferingOptions& options = {});

/// The preferred buffer cell, or the strongest identity cell in the library.
/// \throws std::runtime_error when the library has no buffer at all.
const liberty::Cell* find_buffer_cell(const liberty::Library& library,
                                      const std::string& preferred);

}  // namespace rw::synth
