#pragma once

/// \file decompose.hpp
/// Decomposition of the technology-independent IR into a NAND2/INV subject
/// graph with structural hashing and constant folding — the canonical input
/// representation for cut-based technology mapping.

#include <string>
#include <vector>

#include "synth/ir.hpp"

namespace rw::synth {

struct SubjectGraph {
  enum class Kind { kPi, kNand, kInv, kFlopQ };

  struct Node {
    Kind kind = Kind::kPi;
    int a = -1;  ///< fanin (kInv, kNand); D node for kFlopQ
    int b = -1;  ///< second fanin (kNand)
  };

  std::vector<Node> nodes;
  std::vector<std::pair<std::string, int>> pis;
  std::vector<std::pair<std::string, int>> pos;
  std::vector<int> flops;  ///< node ids of kFlopQ entries

  [[nodiscard]] std::size_t nand_count() const;
};

/// \throws std::runtime_error if an output reduces to a constant (the
/// mapper has no tie cells; benchmark circuits must not produce constant
/// outputs).
SubjectGraph decompose(const Ir& ir);

}  // namespace rw::synth
