#pragma once

/// \file prove_flow.hpp
/// The certified-guardband flow (`rwprove`): prove per-instance λ bounds
/// (no simulation), bracket each instance with its extreme λ-lattice
/// corners, run the interval STA, and certify or refute a candidate
/// guardband against the *proven* aged-delay upper bound. Unlike the
/// guardband estimates in guardband_flow.hpp, the result here covers every
/// workload admitted by the input model.

#include "charlib/factory.hpp"
#include "flow/orchestrator.hpp"
#include "lint/diagnostic.hpp"
#include "netlist/netlist.hpp"
#include "sta/interval_sta.hpp"
#include "stress/analyzer.hpp"

namespace rw::flow {

struct ProvenGuardbandResult {
  stress::StressReport stress;      ///< the proven per-instance λ bounds
  sta::ProveSummary summary;        ///< fresh CP, proven interval, blame, vacuity
  std::vector<lint::Diagnostic> findings;  ///< PV001..PV003 verdicts
  /// True when nothing refutes the proof: the interval is non-vacuous and
  /// the candidate guardband (when one was given) covers the proven upper
  /// bound — i.e. no error-severity PV finding.
  bool certified = false;
  std::size_t candidate_corners = 0;  ///< distinct (cell, corner) bracket pairs
};

/// `guardband_ps < 0` skips certification (prove-only); `width_budget_ps < 0`
/// disables the PV002 width check. See guardband_flow.hpp for `orch`.
ProvenGuardbandResult proven_guardband(const netlist::Module& module,
                                       charlib::LibraryFactory& factory, double years,
                                       double guardband_ps = -1.0,
                                       const stress::AnalyzeOptions& stress_options = {},
                                       const sta::StaOptions& sta_options = {},
                                       double width_budget_ps = -1.0,
                                       const OrchestratorOptions* orch = nullptr);

}  // namespace rw::flow
