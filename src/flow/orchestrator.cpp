#include "flow/orchestrator.hpp"

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace rw::flow {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "flow_manifest.json";

/// Minimal parser for the JSON subset the manifest writer emits (objects,
/// arrays, strings, numbers). Malformed input throws; callers turn that into
/// "start fresh" (resume) or an FL001 diagnostic (lint).
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::runtime_error(std::string("flow manifest: expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("flow manifest: bad \\u");
            c = static_cast<char>(std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc; break;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) throw std::runtime_error("flow manifest: expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct ParsedManifest {
  std::string flow;
  std::vector<std::tuple<int, std::string, std::string, std::string, std::size_t, double>> stages;
};

/// \throws std::runtime_error on any malformed content.
ParsedManifest parse_manifest_text(const std::string& text) {
  ParsedManifest m;
  JsonScanner s(text);
  s.expect('{');
  do {
    const std::string key = s.parse_string();
    s.expect(':');
    if (key == "flow") {
      m.flow = s.parse_string();
    } else if (key == "stages") {
      s.expect('[');
      if (s.peek() != ']') {
        do {
          s.expect('{');
          int index = -1;
          std::string name;
          std::string status;
          std::string artifact;
          std::size_t bytes = 0;
          double wall_ms = 0.0;
          do {
            const std::string field = s.parse_string();
            s.expect(':');
            if (field == "index") {
              index = static_cast<int>(s.parse_number());
            } else if (field == "name") {
              name = s.parse_string();
            } else if (field == "status") {
              status = s.parse_string();
            } else if (field == "artifact") {
              artifact = s.parse_string();
            } else if (field == "bytes") {
              bytes = static_cast<std::size_t>(s.parse_number());
            } else if (field == "wall_ms") {
              wall_ms = s.parse_number();
            } else {
              throw std::runtime_error("flow manifest: unknown stage field " + field);
            }
          } while (s.consume(','));
          s.expect('}');
          m.stages.emplace_back(index, name, status, artifact, bytes, wall_ms);
        } while (s.consume(','));
      }
      s.expect(']');
    } else {
      throw std::runtime_error("flow manifest: unknown field " + key);
    }
  } while (s.consume(','));
  s.expect('}');
  return m;
}

}  // namespace

OrchestratorOptions OrchestratorOptions::from_env() {
  OrchestratorOptions o;
  if (const char* env = std::getenv("RW_FLOW_DIR"); env != nullptr && *env != '\0') o.dir = env;
  if (const char* env = std::getenv("RW_FLOW_RESUME"); env != nullptr && *env != '\0') {
    o.resume = std::string(env) != "0";
  }
  return o;
}

FlowOrchestrator::FlowOrchestrator(std::string flow_name, OrchestratorOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  report_.flow = std::move(flow_name);
  if (enabled() && options_.report_path.empty()) {
    options_.report_path = options_.dir + "/run_report.json";
  }
  if (enabled() && options_.resume) {
    try {
      const ParsedManifest m = parse_manifest_text(read_file(options_.dir + "/" + kManifestFile));
      if (m.flow == report_.flow) {
        for (const auto& [index, name, status, artifact, bytes, wall_ms] : m.stages) {
          manifest_.push_back(ManifestStage{index, name, status, artifact, bytes, wall_ms});
        }
      }
    } catch (const std::exception&) {
      // Missing or corrupt manifest: a fresh run, never a refusal to run.
    }
  }
}

FlowOrchestrator::~FlowOrchestrator() {
  try {
    finish();
  } catch (...) {
    // Destructor (possibly during unwinding): reporting is best-effort.
  }
}

double FlowOrchestrator::elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string FlowOrchestrator::artifact_name(int index, const std::string& name) const {
  char prefix[8];
  std::snprintf(prefix, sizeof prefix, "%02d_", index);
  return prefix + name + ".art";
}

bool FlowOrchestrator::load_stage(int index, const std::string& name,
                                  const std::string& artifact, std::string& encoded) const {
  for (const ManifestStage& s : manifest_) {
    if (s.index != index || s.name != name || s.status != "done" || s.artifact != artifact) {
      continue;
    }
    const std::string path = options_.dir + "/" + artifact;
    std::error_code ec;
    if (!fs::exists(path, ec) || fs::file_size(path, ec) != s.bytes) return false;
    try {
      encoded = read_file(path);
    } catch (const std::exception&) {
      return false;
    }
    return encoded.size() == s.bytes;
  }
  return false;
}

void FlowOrchestrator::persist_stage(int index, const std::string& name,
                                     const std::string& artifact, const std::string& encoded,
                                     double wall_ms) {
  if (util::write_file_atomic_nothrow(options_.dir + "/" + artifact, encoded)) {
    // Drop any stale record for this index (a previous run that diverged),
    // then append and atomically republish the manifest.
    std::erase_if(manifest_, [&](const ManifestStage& s) { return s.index >= index; });
    manifest_.push_back(ManifestStage{index, name, "done", artifact, encoded.size(), wall_ms});
    save_manifest();
  }
  if (options_.kill_after_stage == index) {
    std::raise(SIGKILL);  // test hook: crash exactly at this stage boundary
  }
}

void FlowOrchestrator::save_manifest() const {
  std::string out = "{\"flow\":";
  util::append_json_string(out, report_.flow);
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < manifest_.size(); ++i) {
    const ManifestStage& s = manifest_[i];
    if (i != 0) out += ',';
    out += "{\"index\":" + std::to_string(s.index) + ",\"name\":";
    util::append_json_string(out, s.name);
    out += ",\"status\":";
    util::append_json_string(out, s.status);
    out += ",\"artifact\":";
    util::append_json_string(out, s.artifact);
    char wall[64];
    std::snprintf(wall, sizeof wall, "%.3f", s.wall_ms);
    out += ",\"bytes\":" + std::to_string(s.bytes) + ",\"wall_ms\":" + wall + "}";
  }
  out += "]}\n";
  (void)util::write_file_atomic_nothrow(options_.dir + "/" + kManifestFile, out);
}

void FlowOrchestrator::record_stage(const std::string& name, const std::string& status,
                                    double wall_ms, const std::string& artifact,
                                    std::size_t bytes, const std::string& error) {
  StageReport s;
  s.name = name;
  s.status = status;
  s.wall_ms = wall_ms;
  s.artifact = artifact;
  s.artifact_bytes = bytes;
  s.error = error;
  report_.stages.push_back(std::move(s));
}

void FlowOrchestrator::record_exception(const std::string& name, double wall_ms) {
  try {
    throw;  // re-inspect the in-flight exception
  } catch (const CancelledError& e) {
    record_stage(name, "cancelled", wall_ms, "", 0, e.what());
    report_.status = "cancelled";
    report_.cancel_reason = e.reason();
  } catch (const std::exception& e) {
    record_stage(name, "failed", wall_ms, "", 0, e.what());
    report_.status = "failed";
  } catch (...) {
    record_stage(name, "failed", wall_ms, "", 0, "unknown exception");
    report_.status = "failed";
  }
}

int FlowOrchestrator::finish() {
  if (!finished_) {
    finished_ = true;
    if (report_.status == "ok" && (report_.fallbacks > 0 || report_.quarantined > 0)) {
      report_.status = "degraded";
    }
    report_.wall_ms = elapsed_ms(start_);
    if (!options_.report_path.empty()) (void)report_.save(options_.report_path);
  }
  return report_.exit_code();
}

std::vector<lint::Diagnostic> lint_flow_manifest(const std::string& manifest_path) {
  std::vector<lint::Diagnostic> out;
  const auto warn = [&](const std::string& location, const std::string& message) {
    lint::Diagnostic d;
    d.rule_id = lint::rules::kFlowStaleArtifact;
    d.severity = lint::Severity::kWarning;
    d.location = location;
    d.message = message;
    d.fix_hint = "delete the flow directory (or the stage file) so the stage recomputes";
    out.push_back(std::move(d));
  };

  ParsedManifest m;
  try {
    m = parse_manifest_text(read_file(manifest_path));
  } catch (const std::exception& e) {
    warn(manifest_path, std::string("flow manifest is unreadable or malformed: ") + e.what());
    return out;
  }
  const std::string dir = fs::path(manifest_path).parent_path().string();
  for (const auto& [index, name, status, artifact, bytes, wall_ms] : m.stages) {
    (void)wall_ms;
    if (status != "done") continue;
    const std::string path = dir.empty() ? artifact : dir + "/" + artifact;
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      warn(m.flow + ":" + name,
           "stage " + std::to_string(index) + " artifact " + artifact + " is missing");
    } else if (fs::file_size(path, ec) != bytes) {
      warn(m.flow + ":" + name, "stage " + std::to_string(index) + " artifact " + artifact +
                                    " is stale (size " + std::to_string(fs::file_size(path, ec)) +
                                    ", manifest says " + std::to_string(bytes) + ")");
    }
  }
  return out;
}

}  // namespace rw::flow
