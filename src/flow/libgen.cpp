#include "flow/libgen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rw::flow {

aging::AgingScenario worst_case_vth_only(double years) {
  aging::AgingScenario s = aging::AgingScenario::worst_case(years);
  s.include_mobility = false;
  return s;
}

namespace {

double clamped_ratio(double aged, double fresh) {
  // Guard near-zero baselines (tiny delays at extreme OPCs). The lower
  // bound is 1: the single-OPC state of the art this models ([12, 13])
  // assumes aging only ever *degrades* a gate — it has no mechanism for the
  // delay improvements that multi-OPC characterization reveals (Fig. 2).
  const double denom = std::fabs(fresh) < 0.5 ? (fresh < 0.0 ? -0.5 : 0.5) : fresh;
  return std::clamp(aged / denom, 1.0, 10.0);
}

void scale_table(liberty::TimingTable& table, const liberty::TimingTable& fresh_ref,
                 const liberty::TimingTable& aged_ref, double slew_ps, double load_ff) {
  if (table.empty()) return;
  const double ratio = clamped_ratio(aged_ref.delay_ps.lookup(slew_ps, load_ff),
                                     fresh_ref.delay_ps.lookup(slew_ps, load_ff));
  const double slew_ratio = clamped_ratio(aged_ref.out_slew_ps.lookup(slew_ps, load_ff),
                                          fresh_ref.out_slew_ps.lookup(slew_ps, load_ff));
  table.delay_ps.transform([ratio](double v) { return v * ratio; });
  table.out_slew_ps.transform([slew_ratio](double v) { return v * slew_ratio; });
}

}  // namespace

liberty::Library make_single_opc_library(const liberty::Library& fresh,
                                         const liberty::Library& aged, double slew_ps,
                                         double load_ff) {
  liberty::Library out("reliaware_single_opc");
  for (const auto& cell : fresh.cells()) {
    const liberty::Cell& aged_cell = aged.at(cell.name);
    liberty::Cell copy = cell;
    copy.setup_ps = aged_cell.setup_ps;  // flop constraint follows the aged corner
    for (std::size_t a = 0; a < copy.arcs.size(); ++a) {
      const liberty::TimingArc& fresh_arc = cell.arcs[a];
      const liberty::TimingArc& aged_arc = aged_cell.arcs[a];
      scale_table(copy.arcs[a].rise, fresh_arc.rise, aged_arc.rise, slew_ps, load_ff);
      scale_table(copy.arcs[a].fall, fresh_arc.fall, aged_arc.fall, slew_ps, load_ff);
    }
    out.add_cell(std::move(copy));
  }
  return out;
}

std::vector<aging::AgingScenario> full_lambda_grid(double years, double step) {
  std::vector<aging::AgingScenario> grid;
  const int n = static_cast<int>(std::lround(1.0 / step)) + 1;
  grid.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      grid.push_back(aging::AgingScenario{p * step, q * step, years, true});
    }
  }
  return grid;
}

}  // namespace rw::flow
