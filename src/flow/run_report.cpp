#include "flow/run_report.hpp"

#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace rw::flow {

namespace {

/// Fixed-precision wall time: reports are for machines and humans, not for
/// bitwise comparison (artifacts handle that), so 3 decimals suffice.
std::string ms_string(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

int RunReport::exit_code() const {
  if (status == "ok") return 0;
  if (status == "degraded") return 1;
  return 2;  // "failed" or "cancelled"
}

std::string RunReport::to_json() const {
  std::string out = "{\n  \"flow\": ";
  util::append_json_string(out, flow);
  out += ",\n  \"status\": ";
  util::append_json_string(out, status);
  out += ",\n  \"cancel_reason\": ";
  util::append_json_string(out, cancel_reason);
  out += ",\n  \"exit_code\": " + std::to_string(exit_code());
  out += ",\n  \"wall_ms\": " + ms_string(wall_ms);
  out += ",\n  \"fallbacks\": " + std::to_string(fallbacks);
  out += ",\n  \"quarantined\": " + std::to_string(quarantined);
  out += ",\n  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageReport& s = stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    util::append_json_string(out, s.name);
    out += ", \"status\": ";
    util::append_json_string(out, s.status);
    out += ", \"wall_ms\": " + ms_string(s.wall_ms);
    out += ", \"artifact\": ";
    util::append_json_string(out, s.artifact);
    out += ", \"artifact_bytes\": " + std::to_string(s.artifact_bytes);
    out += ", \"error\": ";
    util::append_json_string(out, s.error);
    out += "}";
  }
  out += stages.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool RunReport::save(const std::string& path) const {
  if (path.empty()) return false;
  return util::write_file_atomic_nothrow(path, to_json());
}

}  // namespace rw::flow
