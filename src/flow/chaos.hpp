#pragma once

/// \file chaos.hpp
/// Seeded chaos campaign over the orchestrated dynamic-workload guardband
/// flow: each trial derives a fault plan from its seed (solver convergence
/// failure, NaN residual, stall against the solve watchdog, a wall-clock
/// deadline, or a SIGKILL at a stage boundary via fork), runs the flow under
/// the orchestrator, and asserts the crash-only contract — every trial must
/// either complete correctly or fail with a structured RunReport and then
/// complete via RW_FLOW_RESUME-style resume.
///
/// Correctness is graded in two tiers. Trials whose plan injects no solver
/// fault (clean, deadline, crash) must reproduce the reference run's result
/// *bitwise* (hexfloat signature): their completed stages were computed
/// cleanly, so checkpoint round-tripping guarantees equality. Trials that
/// inject solver faults may legitimately complete through a different retry
/// ladder rung (different solver options, slightly different tables), so
/// they are held to structural invariants (finite, positive critical paths
/// and a parseable report) instead of bitwise equality.
///
/// All campaign state (factories, flow directories, disk caches) is private
/// per trial; the shared thread pool is forced to one thread so fork() is
/// safe. The harness backs `rwchaos`, `bench/chaos_campaign`, and the chaos
/// ctest label.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "charlib/factory.hpp"
#include "flow/guardband_flow.hpp"

namespace rw::flow {

/// What one seeded trial does to the flow.
struct ChaosPlan {
  std::uint64_t seed = 0;
  /// "clean" | "fail" | "nan" | "stall" | "deadline" | "crash".
  std::string kind = "clean";
  std::uint64_t nth = 1;        ///< 1-based solve attempt to fault (fail/nan/stall)
  std::uint64_t times = 1;      ///< consecutive faulted attempts
  double stall_ms = 120.0;      ///< injected stall length (kind == "stall")
  double watchdog_ms = 30.0;    ///< per-solve watchdog arming the stall trip
  int deadline_ms = 10;         ///< cancel deadline (kind == "deadline")
  int kill_after_stage = 0;     ///< SIGKILL boundary (kind == "crash"), 0-based
};

/// Deterministic plan for a seed (same seed, same plan, any platform).
ChaosPlan plan_for_seed(std::uint64_t seed);

/// Tiny three-gate DUT (NAND2_X1 -> INV_X1 -> DFF_X1) the campaign times.
netlist::Module chaos_test_module();

/// Factory options for chaos trials: coarse OPC grid, three-cell subset, and
/// *no* disk cache (the Liberty text cache rounds to 4 decimals, which would
/// break the bitwise comparison between runs that hit it and runs that
/// don't).
charlib::LibraryFactory::Options chaos_factory_options();

/// One orchestrated dynamic-workload guardband run over the chaos DUT with a
/// fixed-seed pseudo-random stimulus (identical across every invocation).
DynamicAgingResult run_orchestrated_guardband(charlib::LibraryFactory& factory,
                                              const OrchestratorOptions& orch);

/// Exact (hexfloat) signature of a flow result: report, corners, and the
/// annotated instance cells. Two runs agree bitwise iff signatures match.
std::string result_signature(const DynamicAgingResult& result);

struct ChaosTrialResult {
  std::uint64_t seed = 0;
  std::string kind;
  /// "ok" | "failed_then_resumed" | "wrong_result" | "no_report" |
  /// "resume_failed".
  std::string outcome;
  std::string detail;  ///< what happened (error text, mismatch note)
  double wall_ms = 0.0;
};

struct ChaosCampaignResult {
  std::vector<ChaosTrialResult> trials;
  std::map<std::string, int> histogram;  ///< outcome -> count
  bool all_good = false;  ///< only {ok, failed_then_resumed} observed
};

/// Runs one trial in `work_dir` (created fresh; any previous contents are
/// removed) against the campaign's reference signature.
ChaosTrialResult run_chaos_trial(const ChaosPlan& plan, const std::string& work_dir,
                                 const std::string& reference_signature);

/// Runs `n_trials` seeded trials (seeds base_seed, base_seed+1, ...) under
/// `work_root`, computing the disarmed reference run first. Forces the
/// shared thread pool to one thread for the duration (fork safety).
ChaosCampaignResult run_chaos_campaign(std::uint64_t base_seed, int n_trials,
                                       const std::string& work_root);

/// Machine-readable campaign summary (BENCH_chaos.json / rwchaos --json-out).
std::string campaign_json(const ChaosCampaignResult& campaign, std::uint64_t base_seed);

/// As above with an explicit bench name ("chaos_campaign",
/// "serve_chaos_campaign", ...).
std::string campaign_json(const ChaosCampaignResult& campaign, std::uint64_t base_seed,
                          const std::string& bench_name);

// ---------------------------------------------------------------------------
// Serve campaign: the same crash-only contract, applied to rwserved.
// ---------------------------------------------------------------------------

/// What one seeded trial does to the characterization service. Every trial
/// forks a real `serve::Server` daemon over a private disk cache, sends one
/// op=library request through `serve::ServeClient`, and asserts that the
/// served text is BITWISE identical to a direct in-process LibraryFactory
/// run — faults may only cost latency, never bytes.
struct ServeChaosPlan {
  std::uint64_t seed = 0;
  /// "clean"          — no fault; must grade ok.
  /// "kill_worker"    — supervisor SIGKILLs the worker right after the k-th
  ///                    dispatch; reap -> respawn -> redelivery.
  /// "hang"           — the k-th dispatched task stalls past its lease; the
  ///                    supervisor kills the wedged worker and redelivers.
  /// "kill_daemon"    — the daemon SIGKILLs itself after the k-th dispatch;
  ///                    the harness restarts it and the client resends the
  ///                    SAME request id against the surviving cache.
  /// "client_timeout" — the task stalls under a short client timeout; the
  ///                    client's idempotent-id resends must dedup, not
  ///                    recompute.
  std::string kind = "clean";
  long after_dispatch = 1;     ///< 1-based dispatch ordinal the chaos fires on
  double hang_ms = 0.0;        ///< injected worker stall (hang / client_timeout)
  double lease_ms = 10000.0;   ///< per-task lease deadline for this trial
  int workers = 2;             ///< daemon worker-process count
};

/// Deterministic serve plan for a seed (decorrelated from plan_for_seed).
ServeChaosPlan serve_plan_for_seed(std::uint64_t seed);

/// The fixed scenario every serve trial characterizes.
aging::AgingScenario serve_chaos_scenario();

/// Direct (no daemon) LibraryFactory text for serve_chaos_scenario() over
/// chaos_factory_options(): the byte-exact reference every served library
/// must reproduce.
std::string serve_reference_library();

/// Runs one serve trial in `work_dir` (created fresh) against the reference
/// text. Forks a daemon; the caller must have sized the shared pool to 1.
ChaosTrialResult run_serve_chaos_trial(const ServeChaosPlan& plan,
                                       const std::string& work_dir,
                                       const std::string& reference_library);

/// Runs `n_trials` seeded serve trials (seeds base_seed, base_seed+1, ...)
/// under `work_root`. Computes the direct-factory reference first, forces
/// the shared pool to one thread (fork safety), and ignores SIGPIPE.
ChaosCampaignResult run_serve_chaos_campaign(std::uint64_t base_seed, int n_trials,
                                             const std::string& work_root);

// ---------------------------------------------------------------------------
// Fleet campaign: TWO daemons sharing one cache, no coordinator.
// ---------------------------------------------------------------------------

/// What one seeded trial does to a two-daemon fleet sharing `work_dir/cache`.
/// Every trial asserts the fleet answer is BITWISE identical to the direct
/// in-process reference — peers, steals, and GC may only cost latency.
struct FleetChaosPlan {
  std::uint64_t seed = 0;
  /// "kill_daemon_mid_load" — daemon A SIGKILLs itself after the k-th
  ///                          dispatch; B adopts A's spooled work and the
  ///                          client resends the SAME id to B.
  /// "gc_during_char"       — op=gc sweeps (max_age_ms=0) hammer daemon B
  ///                          while A characterizes; evictions force
  ///                          re-characterization, bytes must not change.
  /// "lease_steal"          — A's single worker wedges on its first task;
  ///                          B steals A's still-spooled entries and
  ///                          publishes them; A completes from disk hits.
  std::string kind = "kill_daemon_mid_load";
  long after_dispatch = 1;  ///< 1-based dispatch ordinal A's chaos fires on
  double hang_ms = 0.0;     ///< injected worker stall (lease_steal)
  int workers = 2;          ///< worker-process count per daemon
};

/// Deterministic fleet plan for a seed (decorrelated from the other plans).
FleetChaosPlan fleet_plan_for_seed(std::uint64_t seed);

/// Runs one fleet trial in `work_dir` (created fresh) against the reference
/// text. Forks two daemons; the caller must have sized the shared pool to 1.
ChaosTrialResult run_serve_fleet_trial(const FleetChaosPlan& plan,
                                       const std::string& work_dir,
                                       const std::string& reference_library);

/// Runs `n_trials` seeded fleet trials (seeds base_seed, base_seed+1, ...)
/// under `work_root`. Same setup contract as run_serve_chaos_campaign.
ChaosCampaignResult run_serve_fleet_campaign(std::uint64_t base_seed, int n_trials,
                                             const std::string& work_root);

}  // namespace rw::flow
