#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for long-running flows: one process-wide
/// `CancelToken` that a deadline ($RW_DEADLINE_MS), a SIGINT/SIGTERM
/// handler, a test, or a chaos drill can trip, and that every expensive
/// loop in the toolchain polls — `ThreadPool::parallel_for` bodies, the
/// characterizer's per-OPC grid points, the logic simulator's per-cycle
/// loop, STA propagation, synthesis iterations, and the factory's
/// in-flight-dedup waiters. Poll sites throw `CancelledError`, which
/// unwinds like any other failure (the flow orchestrator records it in the
/// run report with the cancellation cause).
///
/// Cost when idle: `cancelled()` is two relaxed atomic loads; the
/// steady-clock read happens only once a deadline has actually been set.
/// This header is intentionally dependency-free so low-level modules
/// (util, spice, charlib, sta, synth) can poll without layering knots.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rw::flow {

/// Thrown by poll sites when the token is tripped. `reason()` carries the
/// cancellation cause ("deadline", "signal SIGINT", a test's message, ...).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(std::string reason);
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

class CancelToken {
 public:
  /// Trips the token. The first reason wins; later requests are no-ops.
  void request(const std::string& reason);

  /// Arms a wall-clock deadline `ms` milliseconds from now (<= 0 disarms).
  void set_deadline_after_ms(double ms);

  /// Resets flag, deadline, and reason — tests and multi-trial harnesses
  /// (the chaos campaign) reuse the process-wide token between runs.
  void clear();

  /// True once cancelled by request, signal, or an expired deadline.
  [[nodiscard]] bool cancelled() const;

  /// \throws CancelledError when `cancelled()`.
  void throw_if_cancelled() const;

  /// The cancellation cause ("" while not cancelled).
  [[nodiscard]] std::string reason() const;

 private:
  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock ns since epoch; 0 = none
  mutable std::atomic<int> reason_state_{0};  ///< 0 free, 1 writing, 2 set
  std::string reason_;                        ///< written once under reason_state_
};

/// The process-wide token all poll sites observe.
CancelToken& cancel_token();

/// Arms the process-wide token's deadline from $RW_DEADLINE_MS when set to a
/// positive number. Returns the parsed value (0 when absent/invalid).
double install_deadline_from_env();

/// Installs SIGINT/SIGTERM handlers that trip the process-wide token (CLIs
/// call this once at startup; safe to call repeatedly).
void install_signal_handlers();

/// Cheap poll of the process-wide token for hot loops.
inline bool poll_cancellation() { return cancel_token().cancelled(); }

/// \throws CancelledError when the process-wide token is tripped.
void throw_if_cancelled();

}  // namespace rw::flow
