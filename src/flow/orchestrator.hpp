#pragma once

/// \file orchestrator.hpp
/// Crash-only orchestration for the multi-stage flows: each flow runs as a
/// sequence of named stages whose outputs are persisted via atomic
/// temp+rename into a flow directory with a JSON manifest, so `kill -9` at
/// any point followed by RW_FLOW_RESUME=1 completes the run with finished
/// stages served from disk — bitwise identical to an uninterrupted run.
///
/// The bitwise guarantee comes from one rule: whenever orchestration is
/// enabled, a stage's consumers always receive the *decoded artifact*, never
/// the freshly computed object. Computing and resuming therefore feed every
/// downstream stage exactly the same bytes (the codecs in artifact.hpp are
/// hexfloat-exact). With orchestration disabled (no flow directory), stage()
/// returns the computed value directly and no serialization happens at all —
/// pre-orchestrator behavior, bit for bit.
///
/// Layout of a flow directory:
///   flow_manifest.json   {"flow":..., "stages":[{index,name,status,
///                         artifact,bytes,wall_ms}, ...]}   (atomic rewrite
///                         after every completed stage)
///   NN_<stage>.art       stage artifacts (atomic temp+rename)
///   run_report.json      RunReport of the last run over this directory

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "flow/cancel.hpp"
#include "flow/run_report.hpp"
#include "lint/diagnostic.hpp"

namespace rw::flow {

struct OrchestratorOptions {
  /// Flow directory for checkpoints + reports. Empty = orchestration
  /// disabled (stages run inline; nothing is written).
  std::string dir;
  /// Serve completed stages recorded in the flow manifest from disk.
  bool resume = false;
  /// Where the RunReport lands; defaults to `<dir>/run_report.json`.
  std::string report_path;
  /// Test hook: raise(SIGKILL) immediately after persisting the stage with
  /// this 0-based index (simulates a crash at a stage boundary). -1 = off.
  int kill_after_stage = -1;

  /// RW_FLOW_DIR (directory, enables orchestration) and RW_FLOW_RESUME
  /// (resume when set and not "0").
  static OrchestratorOptions from_env();
};

/// One flow run. Stages are declared in order via `stage()`; the destructor
/// (or an explicit `finish()`) seals the RunReport and writes it.
class FlowOrchestrator {
 public:
  FlowOrchestrator(std::string flow_name, OrchestratorOptions options);
  ~FlowOrchestrator();
  FlowOrchestrator(const FlowOrchestrator&) = delete;
  FlowOrchestrator& operator=(const FlowOrchestrator&) = delete;

  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Runs one named stage.
  ///  - disabled: returns `compute()` directly (no encode/decode);
  ///  - enabled, manifest hit (resume): returns `decode(file contents)`;
  ///  - enabled, fresh: computes, persists `encode(value)` atomically,
  ///    updates the manifest, and returns `decode(encoded)` — the round
  ///    trip keeps fresh and resumed runs bitwise identical.
  /// Failures and cancellations are recorded in the RunReport and rethrown.
  template <typename Compute, typename Encode, typename Decode>
  auto stage(const std::string& name, Compute&& compute, Encode&& encode, Decode&& decode)
      -> decltype(compute()) {
    const int index = next_stage_index_++;
    const auto t0 = std::chrono::steady_clock::now();
    if (!enabled()) {
      try {
        auto value = compute();
        record_stage(name, "done", elapsed_ms(t0), "", 0, "");
        return value;
      } catch (...) {
        record_exception(name, elapsed_ms(t0));
        throw;
      }
    }
    const std::string artifact = artifact_name(index, name);
    if (options_.resume) {
      std::string encoded;
      if (load_stage(index, name, artifact, encoded)) {
        try {
          auto value = decode(encoded);
          record_stage(name, "cached", elapsed_ms(t0), artifact, encoded.size(), "");
          return value;
        } catch (const std::exception&) {
          // Corrupt/stale checkpoint: fall through and recompute the stage.
        }
      }
    }
    try {
      auto value = compute();
      const std::string encoded = encode(value);
      persist_stage(index, name, artifact, encoded, elapsed_ms(t0));
      record_stage(name, "done", elapsed_ms(t0), artifact, encoded.size(), "");
      return decode(encoded);
    } catch (...) {
      record_exception(name, elapsed_ms(t0));
      throw;
    }
  }

  /// Mutable run report (flows fill fallback/quarantine counters).
  [[nodiscard]] RunReport& report() { return report_; }

  /// Seals status from the stage records + degradation counters, stamps the
  /// total wall time, and writes the report. Idempotent; returns exit_code().
  int finish();

 private:
  static double elapsed_ms(std::chrono::steady_clock::time_point t0);
  [[nodiscard]] std::string artifact_name(int index, const std::string& name) const;
  /// True when the manifest marks (index, name) done and the artifact file
  /// exists with the recorded size; loads its contents into `encoded`.
  bool load_stage(int index, const std::string& name, const std::string& artifact,
                  std::string& encoded) const;
  /// Atomically writes the artifact and rewrites the flow manifest; then
  /// fires the kill_after_stage test hook.
  void persist_stage(int index, const std::string& name, const std::string& artifact,
                     const std::string& encoded, double wall_ms);
  void record_stage(const std::string& name, const std::string& status, double wall_ms,
                    const std::string& artifact, std::size_t bytes, const std::string& error);
  void record_exception(const std::string& name, double wall_ms);
  void save_manifest() const;

  struct ManifestStage {
    int index = 0;
    std::string name;
    std::string status;
    std::string artifact;
    std::size_t bytes = 0;
    double wall_ms = 0.0;
  };

  OrchestratorOptions options_;
  std::chrono::steady_clock::time_point start_;
  int next_stage_index_ = 0;
  bool finished_ = false;
  std::vector<ManifestStage> manifest_;  ///< completed stages (loaded + this run)
  RunReport report_;
};

/// FL001: checks a flow manifest's stage records against the artifacts on
/// disk (missing file, size mismatch, unparsable manifest). Used by rwlint
/// --flow-manifest.
std::vector<lint::Diagnostic> lint_flow_manifest(const std::string& manifest_path);

}  // namespace rw::flow
