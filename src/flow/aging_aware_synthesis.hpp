#pragma once

/// \file aging_aware_synthesis.hpp
/// The guardband-*containment* flow of Fig. 4(c): synthesize once with the
/// initial (degradation-unaware) library and once with the worst-case
/// degradation-aware library, then compare required vs contained guardbands
/// against the same fresh baseline.

#include <string>

#include "flow/orchestrator.hpp"
#include "liberty/library.hpp"
#include "synth/synthesizer.hpp"

namespace rw::flow {

struct ContainmentResult {
  synth::SynthesisResult conventional;  ///< synthesized with the fresh library
  synth::SynthesisResult aging_aware;   ///< synthesized with the degradation-aware library

  double conventional_fresh_cp_ps = 0.0;  ///< the shared baseline T(0)
  double conventional_aged_cp_ps = 0.0;
  double aware_fresh_cp_ps = 0.0;
  double aware_aged_cp_ps = 0.0;

  /// Guardband a conventional design needs: aged CP - fresh CP.
  [[nodiscard]] double required_guardband_ps() const {
    return conventional_aged_cp_ps - conventional_fresh_cp_ps;
  }
  /// Contained guardband of the aging-aware design relative to the same
  /// baseline (its aged CP needs no further margin by construction).
  [[nodiscard]] double contained_guardband_ps() const {
    return aware_aged_cp_ps - conventional_fresh_cp_ps;
  }
  [[nodiscard]] double guardband_reduction_pct() const {
    const double req = required_guardband_ps();
    return req > 0.0 ? 100.0 * (req - contained_guardband_ps()) / req : 0.0;
  }
  [[nodiscard]] double area_overhead_pct() const {
    return conventional.area_um2 > 0.0
               ? 100.0 * (aging_aware.area_um2 - conventional.area_um2) / conventional.area_um2
               : 0.0;
  }
  /// Frequency gain at lifetime from the contained guardband.
  [[nodiscard]] double frequency_gain_pct() const {
    return 100.0 * (conventional_aged_cp_ps / aware_aged_cp_ps - 1.0);
  }
};

/// Runs both syntheses and all four STA corners under the crash-only
/// orchestrator (`orch == nullptr` reads RW_FLOW_DIR / RW_FLOW_RESUME).
ContainmentResult run_containment(const synth::Ir& ir, const liberty::Library& fresh,
                                  const liberty::Library& aged, const std::string& top_name,
                                  const synth::SynthesisOptions& options = {},
                                  const OrchestratorOptions* orch = nullptr);

}  // namespace rw::flow
