#include "flow/chaos.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "flow/artifact.hpp"
#include "flow/cancel.hpp"
#include "liberty/writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "spice/fault.hpp"
#include "spice/solver.hpp"
#include "util/atomic_file.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rw::flow {

namespace fs = std::filesystem;

namespace {

constexpr int kCycles = 64;
constexpr double kYears = 10.0;

double now_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Undo every process-wide knob a trial may have touched, even on the
/// exceptional path: injector, solve watchdog, cancellation token.
struct TrialHygiene {
  TrialHygiene() = default;
  TrialHygiene(const TrialHygiene&) = delete;
  TrialHygiene& operator=(const TrialHygiene&) = delete;
  ~TrialHygiene() {
    spice::FaultInjector::instance().disarm();
    spice::set_solve_watchdog_ms(0.0);
    cancel_token().clear();
  }
};

/// True when the run report at `path` exists and looks like a sealed
/// RunReport (the crash-only contract for in-process failures).
bool structured_report_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  return text.find("\"flow\"") != std::string::npos &&
         text.find("\"status\"") != std::string::npos;
}

/// Structural sanity for fault-injected completions (a different retry
/// ladder rung may legitimately shift the tables, so no bitwise claim).
bool plausible(const DynamicAgingResult& r) {
  return std::isfinite(r.report.fresh_cp_ps) && std::isfinite(r.report.aged_cp_ps) &&
         r.report.fresh_cp_ps > 0.0 && r.report.aged_cp_ps > 0.0 && !r.corners.empty();
}

ChaosTrialResult classify(const ChaosPlan& plan, std::string outcome, std::string detail,
                          double wall_ms) {
  ChaosTrialResult t;
  t.seed = plan.seed;
  t.kind = plan.kind;
  t.outcome = std::move(outcome);
  t.detail = std::move(detail);
  t.wall_ms = wall_ms;
  return t;
}

}  // namespace

ChaosPlan plan_for_seed(std::uint64_t seed) {
  util::Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;
  static const char* kKinds[] = {"clean", "fail", "nan", "stall", "deadline", "crash"};
  plan.kind = kKinds[rng.uniform_int(0, 5)];
  plan.nth = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
  plan.times = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
  plan.stall_ms = rng.uniform(80.0, 200.0);
  plan.watchdog_ms = rng.uniform(15.0, 40.0);
  plan.deadline_ms = rng.uniform_int(2, 40);
  plan.kill_after_stage = rng.uniform_int(0, 3);  // the dynamic flow's 4 stages
  return plan;
}

netlist::Module chaos_test_module() {
  netlist::Module m("chaos_dut");
  const netlist::NetId a = m.add_net("a");
  const netlist::NetId b = m.add_net("b");
  const netlist::NetId ck = m.add_net("ck");
  m.mark_input(a);
  m.mark_input(b);
  m.set_clock(ck);
  const netlist::NetId n1 = m.add_net("n1");
  const netlist::NetId n2 = m.add_net("n2");
  const netlist::NetId q = m.add_net("q");
  m.mark_output(q);
  m.add_instance("u1", "NAND2_X1", {a, b}, n1);
  m.add_instance("u2", "INV_X1", {n1}, n2);
  m.add_instance("r1", "DFF_X1", {n2, ck}, q);  // DFF pin order is {D, CK}
  return m;
}

charlib::LibraryFactory::Options chaos_factory_options() {
  charlib::LibraryFactory::Options o;
  o.characterize.grid = charlib::OpcGrid::coarse();
  o.cell_subset = {"INV_X1", "NAND2_X1", "DFF_X1"};
  o.cache_dir.clear();  // no Liberty disk cache: its 4-decimal rounding would
                        // make cache-hitting runs diverge from cache misses
  return o;
}

DynamicAgingResult run_orchestrated_guardband(charlib::LibraryFactory& factory,
                                              const OrchestratorOptions& orch) {
  const netlist::Module module = chaos_test_module();
  const std::vector<netlist::NetId> inputs = module.inputs();
  const auto rng = std::make_shared<util::Rng>(0x5eedULL);
  const Stimulus stimulus = [inputs, rng](logicsim::CycleSimulator& sim, int) {
    for (const netlist::NetId net : inputs) sim.set_input(net, rng->chance(0.5));
  };
  return dynamic_workload_guardband(module, factory, stimulus, kCycles, kYears, {}, &orch);
}

std::string result_signature(const DynamicAgingResult& result) {
  std::vector<double> values{result.report.fresh_cp_ps, result.report.aged_cp_ps};
  for (const auto& [lp, ln] : result.corners) {
    values.push_back(lp);
    values.push_back(ln);
  }
  std::string sig = artifact::encode_doubles(values);
  for (const netlist::Instance& inst : result.annotated.instances()) {
    sig += inst.cell;
    sig += '\n';
  }
  return sig;
}

ChaosTrialResult run_chaos_trial(const ChaosPlan& plan, const std::string& work_dir,
                                 const std::string& reference_signature) {
  const auto t0 = std::chrono::steady_clock::now();
  TrialHygiene hygiene;
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir, ec);
  OrchestratorOptions orch;
  orch.dir = work_dir + "/flow";

  const bool injects_fault = plan.kind == "fail" || plan.kind == "nan" || plan.kind == "stall";

  if (plan.kind == "crash") {
    // First run in a forked child that SIGKILLs itself at a stage boundary;
    // the parent then resumes over the same flow directory.
    OrchestratorOptions child_orch = orch;
    child_orch.kill_after_stage = plan.kill_after_stage;
    const pid_t pid = fork();
    if (pid < 0) {
      return classify(plan, "resume_failed", "fork failed", now_ms(t0));
    }
    if (pid == 0) {
      try {
        charlib::LibraryFactory child_factory(chaos_factory_options());
        (void)run_orchestrated_guardband(child_factory, child_orch);
      } catch (...) {
      }
      _exit(0);  // unreachable when the kill hook fires; _exit avoids
                 // flushing the parent's duplicated stdio buffers
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return classify(plan, "no_report", "child was not SIGKILLed as planned", now_ms(t0));
    }
    try {
      OrchestratorOptions resume_orch = orch;
      resume_orch.resume = true;
      charlib::LibraryFactory factory(chaos_factory_options());
      const DynamicAgingResult resumed = run_orchestrated_guardband(factory, resume_orch);
      if (result_signature(resumed) != reference_signature) {
        return classify(plan, "wrong_result", "resumed result differs from reference",
                        now_ms(t0));
      }
      return classify(plan, "failed_then_resumed",
                      "SIGKILL after stage " + std::to_string(plan.kill_after_stage),
                      now_ms(t0));
    } catch (const std::exception& e) {
      return classify(plan, "resume_failed", e.what(), now_ms(t0));
    }
  }

  // In-process trials: arm the planned fault, run once, and on failure
  // demand a structured report plus a clean resume.
  if (plan.kind == "fail") {
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                 spice::FaultInjector::Action::kFailConvergence);
  } else if (plan.kind == "nan") {
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                  spice::FaultInjector::Action::kNanResidual);
  } else if (plan.kind == "stall") {
    spice::FaultInjector::instance().set_stall_ms(plan.stall_ms);
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                  spice::FaultInjector::Action::kStall);
    spice::set_solve_watchdog_ms(plan.watchdog_ms);
  } else if (plan.kind == "deadline") {
    cancel_token().set_deadline_after_ms(plan.deadline_ms);
  }

  std::string first_error;
  try {
    charlib::LibraryFactory factory(chaos_factory_options());
    const DynamicAgingResult result = run_orchestrated_guardband(factory, orch);
    if (injects_fault) {
      // A retry-ladder rung may have absorbed the fault with different
      // solver options; hold the result to invariants, not bitwise equality.
      if (!plausible(result)) {
        return classify(plan, "wrong_result", "completed with implausible report", now_ms(t0));
      }
    } else if (result_signature(result) != reference_signature) {
      return classify(plan, "wrong_result", "result differs from reference", now_ms(t0));
    }
    return classify(plan, "ok", "completed on the first run", now_ms(t0));
  } catch (const std::exception& e) {
    first_error = e.what();
  }

  if (!structured_report_exists(orch.dir + "/run_report.json")) {
    return classify(plan, "no_report", "failed without a run report: " + first_error,
                    now_ms(t0));
  }
  // Disarm everything and resume over the surviving checkpoints.
  spice::FaultInjector::instance().disarm();
  spice::set_solve_watchdog_ms(0.0);
  cancel_token().clear();
  try {
    OrchestratorOptions resume_orch = orch;
    resume_orch.resume = true;
    charlib::LibraryFactory factory(chaos_factory_options());
    const DynamicAgingResult resumed = run_orchestrated_guardband(factory, resume_orch);
    const bool good = injects_fault ? plausible(resumed)
                                    : result_signature(resumed) == reference_signature;
    if (!good) {
      return classify(plan, "wrong_result", "resumed result rejected (" + first_error + ")",
                      now_ms(t0));
    }
    return classify(plan, "failed_then_resumed", first_error, now_ms(t0));
  } catch (const std::exception& e) {
    return classify(plan, "resume_failed", std::string(e.what()) + " (after " + first_error + ")",
                    now_ms(t0));
  }
}

ChaosCampaignResult run_chaos_campaign(std::uint64_t base_seed, int n_trials,
                                       const std::string& work_root) {
  util::set_shared_thread_count(1);  // fork() in crash trials must not race
                                     // live pool threads
  ChaosCampaignResult campaign;
  std::error_code ec;
  fs::create_directories(work_root, ec);

  // Disarmed reference: the uninterrupted orchestrated run every no-fault
  // trial must reproduce bitwise.
  std::string reference_signature;
  {
    TrialHygiene hygiene;
    fs::remove_all(work_root + "/reference", ec);
    OrchestratorOptions orch;
    orch.dir = work_root + "/reference/flow";
    charlib::LibraryFactory factory(chaos_factory_options());
    reference_signature = result_signature(run_orchestrated_guardband(factory, orch));
  }

  for (int i = 0; i < n_trials; ++i) {
    const ChaosPlan plan = plan_for_seed(base_seed + static_cast<std::uint64_t>(i));
    ChaosTrialResult trial =
        run_chaos_trial(plan, work_root + "/trial_" + std::to_string(plan.seed),
                        reference_signature);
    campaign.histogram[trial.outcome] += 1;
    campaign.trials.push_back(std::move(trial));
  }
  campaign.all_good = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    (void)count;
    if (outcome != "ok" && outcome != "failed_then_resumed") campaign.all_good = false;
  }
  util::set_shared_thread_count(0);  // restore the default pool size
  return campaign;
}

std::string campaign_json(const ChaosCampaignResult& campaign, std::uint64_t base_seed) {
  return campaign_json(campaign, base_seed, "chaos_campaign");
}

std::string campaign_json(const ChaosCampaignResult& campaign, std::uint64_t base_seed,
                          const std::string& bench_name) {
  std::string out = "{\"bench\":\"" + bench_name + "\",\"base_seed\":" + std::to_string(base_seed) +
                    ",\"trials\":" + std::to_string(campaign.trials.size()) +
                    ",\"all_good\":" + (campaign.all_good ? "true" : "false") +
                    ",\"histogram\":{";
  bool first = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    if (!first) out += ',';
    first = false;
    util::append_json_string(out, outcome);
    out += ':' + std::to_string(count);
  }
  out += "},\"runs\":[";
  for (std::size_t i = 0; i < campaign.trials.size(); ++i) {
    const ChaosTrialResult& t = campaign.trials[i];
    if (i != 0) out += ',';
    out += "{\"seed\":" + std::to_string(t.seed) + ",\"kind\":";
    util::append_json_string(out, t.kind);
    out += ",\"outcome\":";
    util::append_json_string(out, t.outcome);
    out += ",\"detail\":";
    util::append_json_string(out, t.detail);
    char wall[64];
    std::snprintf(wall, sizeof wall, "%.3f", t.wall_ms);
    out += ",\"wall_ms\":";
    out += wall;
    out += '}';
  }
  out += "]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Serve campaign
// ---------------------------------------------------------------------------

namespace {

/// A short socket path (sun_path caps at ~100 bytes; ctest work dirs are
/// routinely longer), unique per (harness pid, seed).
std::string serve_socket_path(std::uint64_t seed) {
  return "/tmp/rwserve_" + std::to_string(::getpid()) + "_" + std::to_string(seed) + ".sock";
}

serve::ServeOptions serve_trial_options(const ServeChaosPlan& plan, const std::string& work_dir,
                                        const std::string& socket_path) {
  serve::ServeOptions o;
  o.socket_path = socket_path;
  o.workers = plan.workers;
  o.lease_ms = plan.lease_ms;
  o.queue_max = 16;
  o.backoff_base_ms = 25.0;
  o.factory = chaos_factory_options();
  o.factory.cache_dir = work_dir + "/cache";  // the serve data plane NEEDS a cache
  if (plan.kind == "kill_worker") o.chaos_kill_worker_after = plan.after_dispatch;
  if (plan.kind == "kill_daemon") o.chaos_exit_after = plan.after_dispatch;
  if (plan.kind == "hang" || plan.kind == "client_timeout") {
    o.chaos_hang_after = plan.after_dispatch;
    o.chaos_hang_ms = plan.hang_ms;
  }
  return o;
}

/// Forks a real daemon running Server::run(). The child never returns.
pid_t spawn_serve_daemon(const serve::ServeOptions& options) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  cancel_token().clear();       // a tripped harness token must not pre-drain us
  install_signal_handlers();    // SIGTERM drains, exactly as in the rwserved CLI
  int code = 2;
  try {
    serve::Server server(options);
    code = server.run();
  } catch (...) {
  }
  _exit(code);
}

/// waitpid with a deadline; true when the daemon was reaped.
bool wait_daemon(pid_t pid, int timeout_ms, int& status) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const pid_t got = waitpid(pid, &status, WNOHANG);
    if (got == pid) return true;
    if (got < 0) return false;
    if (now_ms(t0) > timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

double stat_value(const serve::Response& resp, const std::string& name) {
  for (const auto& [key, value] : resp.stats) {
    if (key == name) return value;
  }
  return 0.0;
}

}  // namespace

ServeChaosPlan serve_plan_for_seed(std::uint64_t seed) {
  // Decorrelate from plan_for_seed so `--seed N` flow and serve campaigns
  // exercise independent kind sequences.
  util::Rng rng(seed ^ 0x5345525645ULL);
  ServeChaosPlan plan;
  plan.seed = seed;
  static const char* kKinds[] = {"clean", "kill_worker", "hang", "kill_daemon",
                                 "client_timeout"};
  plan.kind = kKinds[rng.uniform_int(0, 4)];
  // The single op=library request admits one task per catalog cell (3), so
  // dispatch ordinals 1..3 always fire.
  plan.after_dispatch = rng.uniform_int(1, 3);
  plan.workers = rng.uniform_int(1, 2);
  if (plan.kind == "hang") {
    // Stall well past the lease so expiry -> SIGKILL -> redelivery is
    // forced; generous enough that escalated redelivery leases (x2 each)
    // outlast a clean solve even under TSan-grade slowdowns.
    plan.lease_ms = rng.uniform(250.0, 400.0);
    plan.hang_ms = plan.lease_ms * 2.2;
  } else if (plan.kind == "client_timeout") {
    // Stall past the CLIENT's per-attempt timeout but well inside the lease:
    // only the idempotent-id resend path may save this trial.
    plan.lease_ms = 5000.0;
    plan.hang_ms = rng.uniform(450.0, 700.0);
  }
  return plan;
}

aging::AgingScenario serve_chaos_scenario() {
  return aging::AgingScenario{0.5, 0.5, kYears, true};
}

std::string serve_reference_library() {
  charlib::LibraryFactory factory(chaos_factory_options());
  return liberty::write_library(factory.library(serve_chaos_scenario()));
}

ChaosTrialResult run_serve_chaos_trial(const ServeChaosPlan& plan, const std::string& work_dir,
                                       const std::string& reference_library) {
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir, ec);
  const std::string socket_path = serve_socket_path(plan.seed);
  const serve::ServeOptions options = serve_trial_options(plan, work_dir, socket_path);

  pid_t daemon = spawn_serve_daemon(options);
  ChaosTrialResult out;
  // Every exit funnels through here so the daemon is reaped and the socket
  // unlinked even on a failed grade.
  const auto finish = [&](std::string outcome, std::string detail) {
    if (daemon > 0) {
      ::kill(daemon, SIGKILL);
      int status = 0;
      (void)wait_daemon(daemon, 5000, status);
      daemon = -1;
    }
    ::unlink(socket_path.c_str());
    return classify({plan.seed, plan.kind}, std::move(outcome), std::move(detail), now_ms(t0));
  };
  if (daemon < 0) return finish("resume_failed", "fork failed");

  const aging::AgingScenario scenario = serve_chaos_scenario();
  serve::Request req;
  req.id = "serve-trial-" + std::to_string(plan.seed);
  req.op = "library";
  req.lambda_p = scenario.lambda_p;
  req.lambda_n = scenario.lambda_n;
  req.years = scenario.years;
  req.include_mobility = scenario.include_mobility;

  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = plan.kind == "client_timeout" ? 150 : 60000;
  copt.max_attempts = plan.kind == "kill_daemon" ? 1 : 10;
  copt.backoff_base_ms = 25.0;
  const auto send = [&](const serve::Request& r) {
    serve::ServeClient client(copt);
    return client.request(r);
  };

  bool fault_seen = false;
  std::string fault_note;
  serve::Response resp;
  try {
    resp = send(req);
  } catch (const std::exception& e) {
    if (plan.kind != "kill_daemon") return finish("resume_failed", e.what());
    // Expected: the daemon SIGKILLed itself mid-request. Prove it, restart a
    // clean daemon over the SAME cache and socket, resend the SAME id.
    int status = 0;
    if (!wait_daemon(daemon, 5000, status) || !WIFSIGNALED(status) ||
        WTERMSIG(status) != SIGKILL) {
      daemon = -1;
      return finish("no_report", "daemon did not SIGKILL itself as planned");
    }
    fault_seen = true;
    fault_note = "daemon SIGKILL after dispatch " + std::to_string(plan.after_dispatch) +
                 ", restarted";
    serve::ServeOptions clean = options;
    clean.chaos_exit_after = 0;
    daemon = spawn_serve_daemon(clean);
    if (daemon < 0) return finish("resume_failed", "restart fork failed");
    copt.max_attempts = 10;
    try {
      resp = send(req);
    } catch (const std::exception& e2) {
      return finish("resume_failed", std::string("resend after restart failed: ") + e2.what());
    }
  }

  if (resp.status != "ok") {
    return finish("resume_failed", "response " + resp.status +
                                       (resp.error.empty() ? "" : ": " + resp.error));
  }
  if (resp.library != reference_library) {
    return finish("wrong_result", "served library differs from direct factory output");
  }

  // Fault evidence: the injected failure must actually have happened (a
  // chaos campaign whose faults silently no-op proves nothing).
  if (plan.kind != "clean" && !fault_seen) {
    serve::Request stats_req;
    stats_req.id = req.id + "-stats";
    stats_req.op = "stats";
    try {
      const serve::Response stats = send(stats_req);
      if (plan.kind == "kill_worker" && stat_value(stats, "workers_killed") >= 1.0) {
        fault_seen = true;
        fault_note = "worker SIGKILLed and respawned; task redelivered";
      } else if (plan.kind == "hang" && stat_value(stats, "leases_expired") >= 1.0) {
        fault_seen = true;
        fault_note = "lease expired on the stalled task; redelivered";
      } else if (plan.kind == "client_timeout" &&
                 stat_value(stats, "duplicate_request_hits") >= 1.0) {
        fault_seen = true;
        fault_note = "client timed out; idempotent resend deduplicated";
      }
    } catch (const std::exception& e) {
      return finish("resume_failed", std::string("stats request failed: ") + e.what());
    }
  }
  if (plan.kind != "clean" && !fault_seen) {
    return finish("no_report", "planned fault left no evidence in serve stats");
  }

  // Clean drain: op=shutdown must answer ok and the daemon must exit 0.
  serve::Request shutdown_req;
  shutdown_req.id = req.id + "-shutdown";
  shutdown_req.op = "shutdown";
  try {
    const serve::Response bye = send(shutdown_req);
    if (bye.status != "ok") return finish("resume_failed", "shutdown answered " + bye.status);
  } catch (const std::exception& e) {
    return finish("resume_failed", std::string("shutdown request failed: ") + e.what());
  }
  int status = 0;
  if (!wait_daemon(daemon, 10000, status) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return finish("resume_failed", "daemon did not drain to exit 0");
  }
  daemon = -1;
  ::unlink(socket_path.c_str());
  if (plan.kind == "clean") {
    return classify({plan.seed, plan.kind}, "ok", "served bitwise-identical to direct run",
                    now_ms(t0));
  }
  return classify({plan.seed, plan.kind}, "failed_then_resumed", fault_note, now_ms(t0));
}

ChaosCampaignResult run_serve_chaos_campaign(std::uint64_t base_seed, int n_trials,
                                             const std::string& work_root) {
  util::set_shared_thread_count(1);  // the daemon forks; no live pool threads
  util::io::ignore_sigpipe();        // daemon restarts race client writes
  ChaosCampaignResult campaign;
  std::error_code ec;
  fs::create_directories(work_root, ec);

  // The in-process reference every served byte is graded against.
  const std::string reference_library = serve_reference_library();

  for (int i = 0; i < n_trials; ++i) {
    const ServeChaosPlan plan = serve_plan_for_seed(base_seed + static_cast<std::uint64_t>(i));
    ChaosTrialResult trial = run_serve_chaos_trial(
        plan, work_root + "/trial_" + std::to_string(plan.seed), reference_library);
    campaign.histogram[trial.outcome] += 1;
    campaign.trials.push_back(std::move(trial));
  }
  campaign.all_good = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    (void)count;
    if (outcome != "ok" && outcome != "failed_then_resumed") campaign.all_good = false;
  }
  util::set_shared_thread_count(0);
  return campaign;
}

// ---------------------------------------------------------------------------
// Fleet campaign
// ---------------------------------------------------------------------------

namespace {

std::string fleet_socket_path(std::uint64_t seed, char which) {
  return "/tmp/rwfleet_" + std::to_string(::getpid()) + "_" + std::to_string(seed) + "_" +
         which + ".sock";
}

/// Baseline options for one fleet member: shared cache under `work_dir`, a
/// fast steal cadence (the whole point of the trial), private socket.
serve::ServeOptions fleet_daemon_options(const std::string& work_dir,
                                         const std::string& socket_path, int workers) {
  serve::ServeOptions o;
  o.socket_path = socket_path;
  o.workers = workers;
  o.queue_max = 16;
  o.backoff_base_ms = 25.0;
  o.steal_interval_ms = 40.0;
  o.factory = chaos_factory_options();
  o.factory.cache_dir = work_dir + "/cache";  // the SHARED data plane
  return o;
}

/// Polls `op=stats` on the daemon at `socket_path` until `counter` reaches
/// `at_least` or `timeout_ms` elapses; returns the last observed value.
double poll_stat(const std::string& socket_path, const std::string& counter, double at_least,
                 int timeout_ms) {
  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 2000;
  copt.max_attempts = 3;
  copt.backoff_base_ms = 25.0;
  const auto t0 = std::chrono::steady_clock::now();
  double last = 0.0;
  std::uint64_t n = 0;
  while (now_ms(t0) < timeout_ms) {
    serve::Request req;
    req.id = "fleet-stat-" + std::to_string(::getpid()) + "-" + std::to_string(++n);
    req.op = "stats";
    try {
      serve::ServeClient client(copt);
      last = stat_value(client.request(req), counter);
      if (last >= at_least) return last;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return last;
}

/// Drains the daemon at `socket_path` (op=shutdown) and requires exit 0.
/// Returns an empty string on success, a grading detail otherwise.
std::string drain_daemon(pid_t& daemon, const std::string& socket_path,
                         const std::string& trial_id) {
  serve::ClientOptions copt;
  copt.socket_path = socket_path;
  copt.timeout_ms = 60000;
  copt.max_attempts = 5;
  copt.backoff_base_ms = 25.0;
  serve::Request req;
  req.id = trial_id + "-shutdown";
  req.op = "shutdown";
  try {
    serve::ServeClient client(copt);
    const serve::Response bye = client.request(req);
    if (bye.status != "ok") return "shutdown answered " + bye.status;
  } catch (const std::exception& e) {
    return std::string("shutdown request failed: ") + e.what();
  }
  int status = 0;
  if (!wait_daemon(daemon, 15000, status) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return "daemon did not drain to exit 0";
  }
  daemon = -1;
  return {};
}

}  // namespace

FleetChaosPlan fleet_plan_for_seed(std::uint64_t seed) {
  // Decorrelate from plan_for_seed and serve_plan_for_seed.
  util::Rng rng(seed ^ 0x464c454554ULL);
  FleetChaosPlan plan;
  plan.seed = seed;
  static const char* kKinds[] = {"kill_daemon_mid_load", "gc_during_char", "lease_steal"};
  plan.kind = kKinds[rng.uniform_int(0, 2)];
  // One op=library request admits one task per catalog cell (3), so
  // dispatch ordinals 1..3 always fire.
  plan.after_dispatch = rng.uniform_int(1, 3);
  plan.workers = rng.uniform_int(1, 2);
  if (plan.kind == "lease_steal") {
    // Wedge A's ONLY worker long enough that B's 40ms steal cadence plus the
    // ~120ms spool TTL always beats it, even under TSan-grade slowdowns.
    plan.workers = 1;
    plan.hang_ms = rng.uniform(1500.0, 2500.0);
  } else if (plan.kind == "gc_during_char") {
    // Briefly wedge ONE of A's two workers: the other worker's published
    // cells then sit idle mid-request long enough to clear GC's 250ms idle
    // floor, so the sweeps have a real eviction window to hit.
    plan.workers = 2;
    plan.hang_ms = rng.uniform(700.0, 1100.0);
  }
  return plan;
}

ChaosTrialResult run_serve_fleet_trial(const FleetChaosPlan& plan, const std::string& work_dir,
                                       const std::string& reference_library) {
  const auto t0 = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir, ec);
  const std::string socket_a = fleet_socket_path(plan.seed, 'a');
  const std::string socket_b = fleet_socket_path(plan.seed, 'b');
  const std::string trial_id = "fleet-" + std::to_string(plan.seed);

  serve::ServeOptions opt_a = fleet_daemon_options(work_dir, socket_a, plan.workers);
  serve::ServeOptions opt_b = fleet_daemon_options(work_dir, socket_b, 2);
  if (plan.kind == "kill_daemon_mid_load") {
    opt_a.chaos_exit_after = plan.after_dispatch;
  } else if (plan.kind == "gc_during_char") {
    // The hang stretches the characterization window (see the plan); the
    // default 60s spool TTL keeps B from stealing, so GC is the only
    // concurrent actor under test.
    opt_a.chaos_hang_after = 1;
    opt_a.chaos_hang_ms = plan.hang_ms;
  } else if (plan.kind == "lease_steal") {
    opt_a.chaos_hang_after = 1;
    opt_a.chaos_hang_ms = plan.hang_ms;
    opt_a.lease_ms = 60000.0;   // the wedge must NOT be rescued by lease expiry...
    opt_a.spool_ttl_ms = 120.0;  // ...only by B stealing the stale spool entries
  }

  pid_t daemon_a = spawn_serve_daemon(opt_a);
  pid_t daemon_b = daemon_a < 0 ? -1 : spawn_serve_daemon(opt_b);
  const auto finish = [&](std::string outcome, std::string detail) {
    for (pid_t* d : {&daemon_a, &daemon_b}) {
      if (*d > 0) {
        ::kill(*d, SIGKILL);
        int status = 0;
        (void)wait_daemon(*d, 5000, status);
        *d = -1;
      }
    }
    ::unlink(socket_a.c_str());
    ::unlink(socket_b.c_str());
    return classify({plan.seed, plan.kind}, std::move(outcome), std::move(detail), now_ms(t0));
  };
  if (daemon_a < 0 || daemon_b < 0) return finish("resume_failed", "fork failed");

  const aging::AgingScenario scenario = serve_chaos_scenario();
  serve::Request req;
  req.id = trial_id;
  req.op = "library";
  req.lambda_p = scenario.lambda_p;
  req.lambda_n = scenario.lambda_n;
  req.years = scenario.years;
  req.include_mobility = scenario.include_mobility;

  serve::ClientOptions copt;
  copt.socket_path = socket_a;
  copt.timeout_ms = 120000;
  copt.max_attempts = plan.kind == "kill_daemon_mid_load" ? 1 : 10;
  copt.backoff_base_ms = 25.0;

  std::string fault_note;
  serve::Response resp;

  if (plan.kind == "kill_daemon_mid_load") {
    // A dies mid-request; B must ADOPT A's spooled work, and the client's
    // idempotent resend of the SAME id to B must finish the job.
    try {
      serve::ServeClient client(copt);
      resp = client.request(req);
      return finish("no_report", "request to doomed daemon A unexpectedly succeeded");
    } catch (const std::exception&) {
    }
    int status = 0;
    if (!wait_daemon(daemon_a, 10000, status) || !WIFSIGNALED(status) ||
        WTERMSIG(status) != SIGKILL) {
      daemon_a = -1;
      return finish("no_report", "daemon A did not SIGKILL itself as planned");
    }
    daemon_a = -1;
    ::unlink(socket_a.c_str());
    const double adopted = poll_stat(socket_b, "tasks_adopted", 1.0, 30000);
    if (adopted < 1.0) {
      return finish("no_report", "daemon B never adopted the dead peer's spooled work");
    }
    copt.socket_path = socket_b;
    copt.max_attempts = 10;
    try {
      serve::ServeClient client(copt);
      resp = client.request(req);
    } catch (const std::exception& e) {
      return finish("resume_failed", std::string("resend to surviving peer failed: ") + e.what());
    }
    fault_note = "daemon A SIGKILLed after dispatch " + std::to_string(plan.after_dispatch) +
                 "; B adopted its spooled work and served the same id";
  } else if (plan.kind == "gc_during_char") {
    // A characterizes while B's max_age_ms=0 sweeps evict entries from under
    // it; re-characterization is deterministic, so bytes must not change.
    const std::string served_path = work_dir + "/served.lib";
    const std::string helper_err_path = work_dir + "/helper_err.txt";
    const pid_t helper = fork();
    if (helper == 0) {
      cancel_token().clear();
      int code = 1;
      std::string err = "unknown";
      try {
        serve::ServeClient client(copt);
        const serve::Response r = client.request(req);
        if (r.status == "ok" && util::write_file_atomic_nothrow(served_path, r.library)) {
          code = 0;
        } else {
          err = "response " + r.status + (r.error.empty() ? "" : ": " + r.error);
        }
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
      }
      if (code != 0) (void)util::write_file_atomic_nothrow(helper_err_path, err);
      _exit(code);
    }
    if (helper < 0) return finish("resume_failed", "helper fork failed");
    serve::ClientOptions gopt;
    gopt.socket_path = socket_b;
    gopt.timeout_ms = 10000;
    gopt.max_attempts = 3;
    gopt.backoff_base_ms = 25.0;
    double evicted = 0.0;
    std::uint64_t sweeps = 0;
    int helper_status = 0;
    for (;;) {
      const pid_t got = waitpid(helper, &helper_status, WNOHANG);
      if (got == helper) break;
      // A BOUNDED burst of max_age_ms=0 sweeps: enough overlap with the
      // characterization window to evict freshly published entries (the
      // fault under test), but not an unbounded hammer — GC's own 250ms
      // idle floor plus the daemon's assembly-retry budget guarantee
      // convergence only when the sweeping eventually stops or slows. The
      // spacing must exceed the floor so published-then-idle entries are
      // actually eligible before the burst runs out.
      if (sweeps < 10) {
        serve::Request gc;
        gc.id = trial_id + "-gc-" + std::to_string(++sweeps);
        gc.op = "gc";
        gc.max_age_ms = 0.0;
        try {
          serve::ServeClient client(gopt);
          const serve::Response r = client.request(gc);
          if (r.status == "ok") evicted += stat_value(r, "gc_evicted");
        } catch (const std::exception&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sweeps < 10 ? 300 : 50));
      if (now_ms(t0) > 120000.0) {
        ::kill(helper, SIGKILL);
        (void)waitpid(helper, &helper_status, 0);
        return finish("resume_failed", "characterization under concurrent GC never finished");
      }
    }
    if (!WIFEXITED(helper_status) || WEXITSTATUS(helper_status) != 0) {
      std::string why = "client failed while GC swept the shared cache";
      std::ifstream err_in(helper_err_path, std::ios::binary);
      if (err_in) {
        std::ostringstream eos;
        eos << err_in.rdbuf();
        if (!eos.str().empty()) why += ": " + eos.str();
      }
      return finish("resume_failed", why);
    }
    std::ifstream in(served_path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    resp.status = "ok";
    resp.library = os.str();
    if (evicted >= 1.0) {
      fault_note = "GC evicted " + std::to_string(static_cast<long>(evicted)) +
                   " entries mid-characterization; bytes unchanged";
    }
  } else {  // lease_steal
    // A's only worker wedges on task 1 with a lease too long to expire; B
    // must STEAL the stale spooled tasks and publish them to the shared
    // cache, which A then serves from disk.
    try {
      serve::ServeClient client(copt);
      resp = client.request(req);
    } catch (const std::exception& e) {
      return finish("resume_failed", std::string("request to wedged daemon failed: ") + e.what());
    }
    const double stolen = poll_stat(socket_b, "tasks_stolen", 1.0, 5000);
    if (stolen < 1.0) {
      return finish("no_report", "daemon B never stole the wedged peer's spooled work");
    }
    fault_note = "A's worker wedged " + std::to_string(static_cast<long>(plan.hang_ms)) +
                 "ms; B stole the stale spool entries";
  }

  if (resp.status != "ok") {
    return finish("resume_failed", "response " + resp.status +
                                       (resp.error.empty() ? "" : ": " + resp.error));
  }
  if (resp.library != reference_library) {
    return finish("wrong_result", "fleet-served library differs from direct factory output");
  }

  // Clean drain of every survivor: op=shutdown must answer ok, exit 0.
  if (daemon_a > 0) {
    const std::string err = drain_daemon(daemon_a, socket_a, trial_id + "-a");
    if (!err.empty()) return finish("resume_failed", "daemon A: " + err);
    ::unlink(socket_a.c_str());
  }
  const std::string err = drain_daemon(daemon_b, socket_b, trial_id + "-b");
  if (!err.empty()) return finish("resume_failed", "daemon B: " + err);
  ::unlink(socket_b.c_str());

  if (fault_note.empty()) {
    return classify({plan.seed, plan.kind}, "ok",
                    "fleet served bitwise-identical output (fault window missed)", now_ms(t0));
  }
  return classify({plan.seed, plan.kind}, "failed_then_resumed", fault_note, now_ms(t0));
}

ChaosCampaignResult run_serve_fleet_campaign(std::uint64_t base_seed, int n_trials,
                                             const std::string& work_root) {
  util::set_shared_thread_count(1);  // the daemons fork; no live pool threads
  util::io::ignore_sigpipe();        // daemon deaths race client writes
  ChaosCampaignResult campaign;
  std::error_code ec;
  fs::create_directories(work_root, ec);

  const std::string reference_library = serve_reference_library();

  for (int i = 0; i < n_trials; ++i) {
    const FleetChaosPlan plan = fleet_plan_for_seed(base_seed + static_cast<std::uint64_t>(i));
    ChaosTrialResult trial = run_serve_fleet_trial(
        plan, work_root + "/trial_" + std::to_string(plan.seed), reference_library);
    campaign.histogram[trial.outcome] += 1;
    campaign.trials.push_back(std::move(trial));
  }
  campaign.all_good = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    (void)count;
    if (outcome != "ok" && outcome != "failed_then_resumed") campaign.all_good = false;
  }
  util::set_shared_thread_count(0);
  return campaign;
}

}  // namespace rw::flow
