#include "flow/chaos.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "flow/artifact.hpp"
#include "flow/cancel.hpp"
#include "spice/fault.hpp"
#include "spice/solver.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rw::flow {

namespace fs = std::filesystem;

namespace {

constexpr int kCycles = 64;
constexpr double kYears = 10.0;

double now_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Undo every process-wide knob a trial may have touched, even on the
/// exceptional path: injector, solve watchdog, cancellation token.
struct TrialHygiene {
  TrialHygiene() = default;
  TrialHygiene(const TrialHygiene&) = delete;
  TrialHygiene& operator=(const TrialHygiene&) = delete;
  ~TrialHygiene() {
    spice::FaultInjector::instance().disarm();
    spice::set_solve_watchdog_ms(0.0);
    cancel_token().clear();
  }
};

/// True when the run report at `path` exists and looks like a sealed
/// RunReport (the crash-only contract for in-process failures).
bool structured_report_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  return text.find("\"flow\"") != std::string::npos &&
         text.find("\"status\"") != std::string::npos;
}

/// Structural sanity for fault-injected completions (a different retry
/// ladder rung may legitimately shift the tables, so no bitwise claim).
bool plausible(const DynamicAgingResult& r) {
  return std::isfinite(r.report.fresh_cp_ps) && std::isfinite(r.report.aged_cp_ps) &&
         r.report.fresh_cp_ps > 0.0 && r.report.aged_cp_ps > 0.0 && !r.corners.empty();
}

ChaosTrialResult classify(const ChaosPlan& plan, std::string outcome, std::string detail,
                          double wall_ms) {
  ChaosTrialResult t;
  t.seed = plan.seed;
  t.kind = plan.kind;
  t.outcome = std::move(outcome);
  t.detail = std::move(detail);
  t.wall_ms = wall_ms;
  return t;
}

}  // namespace

ChaosPlan plan_for_seed(std::uint64_t seed) {
  util::Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;
  static const char* kKinds[] = {"clean", "fail", "nan", "stall", "deadline", "crash"};
  plan.kind = kKinds[rng.uniform_int(0, 5)];
  plan.nth = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
  plan.times = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
  plan.stall_ms = rng.uniform(80.0, 200.0);
  plan.watchdog_ms = rng.uniform(15.0, 40.0);
  plan.deadline_ms = rng.uniform_int(2, 40);
  plan.kill_after_stage = rng.uniform_int(0, 3);  // the dynamic flow's 4 stages
  return plan;
}

netlist::Module chaos_test_module() {
  netlist::Module m("chaos_dut");
  const netlist::NetId a = m.add_net("a");
  const netlist::NetId b = m.add_net("b");
  const netlist::NetId ck = m.add_net("ck");
  m.mark_input(a);
  m.mark_input(b);
  m.set_clock(ck);
  const netlist::NetId n1 = m.add_net("n1");
  const netlist::NetId n2 = m.add_net("n2");
  const netlist::NetId q = m.add_net("q");
  m.mark_output(q);
  m.add_instance("u1", "NAND2_X1", {a, b}, n1);
  m.add_instance("u2", "INV_X1", {n1}, n2);
  m.add_instance("r1", "DFF_X1", {n2, ck}, q);  // DFF pin order is {D, CK}
  return m;
}

charlib::LibraryFactory::Options chaos_factory_options() {
  charlib::LibraryFactory::Options o;
  o.characterize.grid = charlib::OpcGrid::coarse();
  o.cell_subset = {"INV_X1", "NAND2_X1", "DFF_X1"};
  o.cache_dir.clear();  // no Liberty disk cache: its 4-decimal rounding would
                        // make cache-hitting runs diverge from cache misses
  return o;
}

DynamicAgingResult run_orchestrated_guardband(charlib::LibraryFactory& factory,
                                              const OrchestratorOptions& orch) {
  const netlist::Module module = chaos_test_module();
  const std::vector<netlist::NetId> inputs = module.inputs();
  const auto rng = std::make_shared<util::Rng>(0x5eedULL);
  const Stimulus stimulus = [inputs, rng](logicsim::CycleSimulator& sim, int) {
    for (const netlist::NetId net : inputs) sim.set_input(net, rng->chance(0.5));
  };
  return dynamic_workload_guardband(module, factory, stimulus, kCycles, kYears, {}, &orch);
}

std::string result_signature(const DynamicAgingResult& result) {
  std::vector<double> values{result.report.fresh_cp_ps, result.report.aged_cp_ps};
  for (const auto& [lp, ln] : result.corners) {
    values.push_back(lp);
    values.push_back(ln);
  }
  std::string sig = artifact::encode_doubles(values);
  for (const netlist::Instance& inst : result.annotated.instances()) {
    sig += inst.cell;
    sig += '\n';
  }
  return sig;
}

ChaosTrialResult run_chaos_trial(const ChaosPlan& plan, const std::string& work_dir,
                                 const std::string& reference_signature) {
  const auto t0 = std::chrono::steady_clock::now();
  TrialHygiene hygiene;
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir, ec);
  OrchestratorOptions orch;
  orch.dir = work_dir + "/flow";

  const bool injects_fault = plan.kind == "fail" || plan.kind == "nan" || plan.kind == "stall";

  if (plan.kind == "crash") {
    // First run in a forked child that SIGKILLs itself at a stage boundary;
    // the parent then resumes over the same flow directory.
    OrchestratorOptions child_orch = orch;
    child_orch.kill_after_stage = plan.kill_after_stage;
    const pid_t pid = fork();
    if (pid < 0) {
      return classify(plan, "resume_failed", "fork failed", now_ms(t0));
    }
    if (pid == 0) {
      try {
        charlib::LibraryFactory child_factory(chaos_factory_options());
        (void)run_orchestrated_guardband(child_factory, child_orch);
      } catch (...) {
      }
      _exit(0);  // unreachable when the kill hook fires; _exit avoids
                 // flushing the parent's duplicated stdio buffers
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return classify(plan, "no_report", "child was not SIGKILLed as planned", now_ms(t0));
    }
    try {
      OrchestratorOptions resume_orch = orch;
      resume_orch.resume = true;
      charlib::LibraryFactory factory(chaos_factory_options());
      const DynamicAgingResult resumed = run_orchestrated_guardband(factory, resume_orch);
      if (result_signature(resumed) != reference_signature) {
        return classify(plan, "wrong_result", "resumed result differs from reference",
                        now_ms(t0));
      }
      return classify(plan, "failed_then_resumed",
                      "SIGKILL after stage " + std::to_string(plan.kill_after_stage),
                      now_ms(t0));
    } catch (const std::exception& e) {
      return classify(plan, "resume_failed", e.what(), now_ms(t0));
    }
  }

  // In-process trials: arm the planned fault, run once, and on failure
  // demand a structured report plus a clean resume.
  if (plan.kind == "fail") {
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                 spice::FaultInjector::Action::kFailConvergence);
  } else if (plan.kind == "nan") {
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                  spice::FaultInjector::Action::kNanResidual);
  } else if (plan.kind == "stall") {
    spice::FaultInjector::instance().set_stall_ms(plan.stall_ms);
    spice::FaultInjector::instance().arm_fail_nth(plan.nth, plan.times,
                                                  spice::FaultInjector::Action::kStall);
    spice::set_solve_watchdog_ms(plan.watchdog_ms);
  } else if (plan.kind == "deadline") {
    cancel_token().set_deadline_after_ms(plan.deadline_ms);
  }

  std::string first_error;
  try {
    charlib::LibraryFactory factory(chaos_factory_options());
    const DynamicAgingResult result = run_orchestrated_guardband(factory, orch);
    if (injects_fault) {
      // A retry-ladder rung may have absorbed the fault with different
      // solver options; hold the result to invariants, not bitwise equality.
      if (!plausible(result)) {
        return classify(plan, "wrong_result", "completed with implausible report", now_ms(t0));
      }
    } else if (result_signature(result) != reference_signature) {
      return classify(plan, "wrong_result", "result differs from reference", now_ms(t0));
    }
    return classify(plan, "ok", "completed on the first run", now_ms(t0));
  } catch (const std::exception& e) {
    first_error = e.what();
  }

  if (!structured_report_exists(orch.dir + "/run_report.json")) {
    return classify(plan, "no_report", "failed without a run report: " + first_error,
                    now_ms(t0));
  }
  // Disarm everything and resume over the surviving checkpoints.
  spice::FaultInjector::instance().disarm();
  spice::set_solve_watchdog_ms(0.0);
  cancel_token().clear();
  try {
    OrchestratorOptions resume_orch = orch;
    resume_orch.resume = true;
    charlib::LibraryFactory factory(chaos_factory_options());
    const DynamicAgingResult resumed = run_orchestrated_guardband(factory, resume_orch);
    const bool good = injects_fault ? plausible(resumed)
                                    : result_signature(resumed) == reference_signature;
    if (!good) {
      return classify(plan, "wrong_result", "resumed result rejected (" + first_error + ")",
                      now_ms(t0));
    }
    return classify(plan, "failed_then_resumed", first_error, now_ms(t0));
  } catch (const std::exception& e) {
    return classify(plan, "resume_failed", std::string(e.what()) + " (after " + first_error + ")",
                    now_ms(t0));
  }
}

ChaosCampaignResult run_chaos_campaign(std::uint64_t base_seed, int n_trials,
                                       const std::string& work_root) {
  util::set_shared_thread_count(1);  // fork() in crash trials must not race
                                     // live pool threads
  ChaosCampaignResult campaign;
  std::error_code ec;
  fs::create_directories(work_root, ec);

  // Disarmed reference: the uninterrupted orchestrated run every no-fault
  // trial must reproduce bitwise.
  std::string reference_signature;
  {
    TrialHygiene hygiene;
    fs::remove_all(work_root + "/reference", ec);
    OrchestratorOptions orch;
    orch.dir = work_root + "/reference/flow";
    charlib::LibraryFactory factory(chaos_factory_options());
    reference_signature = result_signature(run_orchestrated_guardband(factory, orch));
  }

  for (int i = 0; i < n_trials; ++i) {
    const ChaosPlan plan = plan_for_seed(base_seed + static_cast<std::uint64_t>(i));
    ChaosTrialResult trial =
        run_chaos_trial(plan, work_root + "/trial_" + std::to_string(plan.seed),
                        reference_signature);
    campaign.histogram[trial.outcome] += 1;
    campaign.trials.push_back(std::move(trial));
  }
  campaign.all_good = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    (void)count;
    if (outcome != "ok" && outcome != "failed_then_resumed") campaign.all_good = false;
  }
  util::set_shared_thread_count(0);  // restore the default pool size
  return campaign;
}

std::string campaign_json(const ChaosCampaignResult& campaign, std::uint64_t base_seed) {
  std::string out = "{\"bench\":\"chaos_campaign\",\"base_seed\":" + std::to_string(base_seed) +
                    ",\"trials\":" + std::to_string(campaign.trials.size()) +
                    ",\"all_good\":" + (campaign.all_good ? "true" : "false") +
                    ",\"histogram\":{";
  bool first = true;
  for (const auto& [outcome, count] : campaign.histogram) {
    if (!first) out += ',';
    first = false;
    util::append_json_string(out, outcome);
    out += ':' + std::to_string(count);
  }
  out += "},\"runs\":[";
  for (std::size_t i = 0; i < campaign.trials.size(); ++i) {
    const ChaosTrialResult& t = campaign.trials[i];
    if (i != 0) out += ',';
    out += "{\"seed\":" + std::to_string(t.seed) + ",\"kind\":";
    util::append_json_string(out, t.kind);
    out += ",\"outcome\":";
    util::append_json_string(out, t.outcome);
    out += ",\"detail\":";
    util::append_json_string(out, t.detail);
    char wall[64];
    std::snprintf(wall, sizeof wall, "%.3f", t.wall_ms);
    out += ",\"wall_ms\":";
    out += wall;
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace rw::flow
