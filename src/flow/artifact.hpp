#pragma once

/// \file artifact.hpp
/// Lossless stage-artifact codecs for the flow orchestrator. Liberty text is
/// the wrong checkpoint format — its writer rounds to 4 decimals — so stage
/// outputs are serialized with C99 hexfloats (`%a`, parsed back by strtod),
/// which round-trip IEEE-754 doubles exactly. That exactness is what makes
/// `kill -9` + RW_FLOW_RESUME=1 bitwise-identical to an uninterrupted run:
/// the orchestrator feeds every downstream stage the *decoded* artifact even
/// when the stage was just computed, so both runs consume identical bytes.
///
/// The format is line-oriented tagged text (stable, diffable, versioned by
/// a leading magic token per codec). Decoders throw std::runtime_error on
/// any mismatch; the orchestrator treats that as a stale checkpoint and
/// recomputes the stage.

#include <string>
#include <vector>

#include "liberty/library.hpp"
#include "netlist/annotate.hpp"
#include "synth/synthesizer.hpp"

namespace rw::flow::artifact {

/// Exact (hexfloat) double <-> text helpers shared by the codecs and tests.
std::string encode_doubles(const std::vector<double>& values);
std::vector<double> decode_doubles(const std::string& text);

std::string encode_duties(const std::vector<netlist::InstanceDuty>& duties);
std::vector<netlist::InstanceDuty> decode_duties(const std::string& text);

/// Full-fidelity library codec: every Cell field including pins, truth
/// table, NLDM axes/values, and fallback points.
std::string encode_library(const liberty::Library& library);
liberty::Library decode_library(const std::string& text);

/// Synthesis result: structural Verilog (via the library-driven writer) plus
/// exact metrics. Decoding parses the netlist back against `library`.
std::string encode_synthesis(const synth::SynthesisResult& result,
                             const liberty::Library& library);
synth::SynthesisResult decode_synthesis(const std::string& text,
                                        const liberty::Library& library);

}  // namespace rw::flow::artifact
