#include "flow/artifact.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "netlist/verilog.hpp"

namespace rw::flow::artifact {

namespace {

/// Exact double -> text: C99 hexfloat round-trips IEEE-754 bit patterns.
std::string hex(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Whitespace-token reader over an artifact; any shortfall or type mismatch
/// throws (the orchestrator recomputes the stage on a corrupt checkpoint).
class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : in_(text) {}

  std::string word(const char* what) {
    std::string t;
    if (!(in_ >> t)) throw std::runtime_error(std::string("artifact: missing ") + what);
    return t;
  }

  void expect(const char* tag) {
    if (word(tag) != tag) {
      throw std::runtime_error(std::string("artifact: expected tag '") + tag + "'");
    }
  }

  double number(const char* what) {
    const std::string t = word(what);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') {
      throw std::runtime_error(std::string("artifact: bad number for ") + what);
    }
    return v;
  }

  long long integer(const char* what) {
    const std::string t = word(what);
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0') {
      throw std::runtime_error(std::string("artifact: bad integer for ") + what);
    }
    return v;
  }

  std::uint64_t u64(const char* what) {
    const std::string t = word(what);
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0') {
      throw std::runtime_error(std::string("artifact: bad u64 for ") + what);
    }
    return v;
  }

  /// Reads a raw byte blob: consumes the single newline that terminates the
  /// preceding token line, then exactly `bytes` characters.
  std::string blob(std::size_t bytes) {
    if (in_.get() != '\n') throw std::runtime_error("artifact: blob must start after newline");
    std::string out(bytes, '\0');
    in_.read(out.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in_.gcount()) != bytes) {
      throw std::runtime_error("artifact: truncated blob");
    }
    return out;
  }

 private:
  std::istringstream in_;
};

void encode_table2d(std::string& out, const util::Table2D& t) {
  out += "dims " + std::to_string(t.x_axis().size()) + " " + std::to_string(t.y_axis().size());
  for (const double v : t.x_axis().points()) out += " " + hex(v);
  for (const double v : t.y_axis().points()) out += " " + hex(v);
  for (const double v : t.values()) out += " " + hex(v);
  out += "\n";
}

util::Table2D decode_table2d(TokenReader& r) {
  r.expect("dims");
  const auto nx = static_cast<std::size_t>(r.integer("nx"));
  const auto ny = static_cast<std::size_t>(r.integer("ny"));
  std::vector<double> xs(nx);
  std::vector<double> ys(ny);
  std::vector<double> values(nx * ny);
  for (auto& v : xs) v = r.number("x point");
  for (auto& v : ys) v = r.number("y point");
  for (auto& v : values) v = r.number("table value");
  return util::Table2D(util::Axis(std::move(xs)), util::Axis(std::move(ys)), std::move(values));
}

void encode_timing_table(std::string& out, const liberty::TimingTable& t) {
  out += "table " + std::string(t.empty() ? "0" : "1") + "\n";
  if (!t.empty()) {
    encode_table2d(out, t.delay_ps);
    encode_table2d(out, t.out_slew_ps);
  }
}

liberty::TimingTable decode_timing_table(TokenReader& r) {
  r.expect("table");
  liberty::TimingTable t;
  if (r.integer("table presence") != 0) {
    t.delay_ps = decode_table2d(r);
    t.out_slew_ps = decode_table2d(r);
  }
  return t;
}

}  // namespace

std::string encode_doubles(const std::vector<double>& values) {
  std::string out = "rwvec1 " + std::to_string(values.size()) + "\n";
  for (const double v : values) out += hex(v) + "\n";
  return out;
}

std::vector<double> decode_doubles(const std::string& text) {
  TokenReader r(text);
  r.expect("rwvec1");
  std::vector<double> values(static_cast<std::size_t>(r.integer("count")));
  for (auto& v : values) v = r.number("value");
  return values;
}

std::string encode_duties(const std::vector<netlist::InstanceDuty>& duties) {
  std::string out = "rwduty1 " + std::to_string(duties.size()) + "\n";
  for (const auto& d : duties) out += hex(d.lambda_p) + " " + hex(d.lambda_n) + "\n";
  return out;
}

std::vector<netlist::InstanceDuty> decode_duties(const std::string& text) {
  TokenReader r(text);
  r.expect("rwduty1");
  std::vector<netlist::InstanceDuty> duties(static_cast<std::size_t>(r.integer("count")));
  for (auto& d : duties) {
    d.lambda_p = r.number("lambda_p");
    d.lambda_n = r.number("lambda_n");
  }
  return duties;
}

std::string encode_library(const liberty::Library& library) {
  std::string out = "rwlib1 " + library.name() + "\ncells " +
                    std::to_string(library.cells().size()) + "\n";
  for (const liberty::Cell& cell : library.cells()) {
    out += "cell " + cell.name + " " + cell.family + " " + std::to_string(cell.drive_x) + " " +
           (cell.is_flop ? "1" : "0") + " " + std::to_string(cell.truth) + " " + cell.output_pin +
           "\n";
    out += "metrics " + hex(cell.area_um2) + " " + hex(cell.setup_ps) + " " + hex(cell.hold_ps) +
           "\n";
    out += "pins " + std::to_string(cell.pins.size()) + "\n";
    for (const liberty::Pin& pin : cell.pins) {
      out += "pin " + pin.name + " " + (pin.is_input ? "1" : "0") + " " +
             (pin.is_clock ? "1" : "0") + " " + hex(pin.cap_ff) + "\n";
    }
    out += "arcs " + std::to_string(cell.arcs.size()) + "\n";
    for (const liberty::TimingArc& arc : cell.arcs) {
      out += "arc " + arc.related_pin + " " + liberty::to_string(arc.sense) + " " +
             (arc.clocked ? "1" : "0") + "\n";
      encode_timing_table(out, arc.rise);
      encode_timing_table(out, arc.fall);
    }
    out += "fallbacks " + std::to_string(cell.fallbacks.size()) + "\n";
    for (const liberty::FallbackPoint& fb : cell.fallbacks) {
      out += "fb " + fb.related_pin + " " + (fb.rising ? "1" : "0") + " " +
             std::to_string(fb.slew_index) + " " + std::to_string(fb.load_index) + "\n";
    }
  }
  return out;
}

liberty::Library decode_library(const std::string& text) {
  TokenReader r(text);
  r.expect("rwlib1");
  liberty::Library library(r.word("library name"));
  r.expect("cells");
  const auto n_cells = static_cast<std::size_t>(r.integer("cell count"));
  for (std::size_t c = 0; c < n_cells; ++c) {
    r.expect("cell");
    liberty::Cell cell;
    cell.name = r.word("cell name");
    cell.family = r.word("cell family");
    cell.drive_x = static_cast<int>(r.integer("drive"));
    cell.is_flop = r.integer("is_flop") != 0;
    cell.truth = r.u64("truth");
    cell.output_pin = r.word("output pin");
    r.expect("metrics");
    cell.area_um2 = r.number("area");
    cell.setup_ps = r.number("setup");
    cell.hold_ps = r.number("hold");
    r.expect("pins");
    const auto n_pins = static_cast<std::size_t>(r.integer("pin count"));
    for (std::size_t p = 0; p < n_pins; ++p) {
      r.expect("pin");
      liberty::Pin pin;
      pin.name = r.word("pin name");
      pin.is_input = r.integer("is_input") != 0;
      pin.is_clock = r.integer("is_clock") != 0;
      pin.cap_ff = r.number("cap");
      cell.pins.push_back(std::move(pin));
    }
    r.expect("arcs");
    const auto n_arcs = static_cast<std::size_t>(r.integer("arc count"));
    for (std::size_t a = 0; a < n_arcs; ++a) {
      r.expect("arc");
      liberty::TimingArc arc;
      arc.related_pin = r.word("related pin");
      arc.sense = liberty::sense_from_string(r.word("sense"));
      arc.clocked = r.integer("clocked") != 0;
      arc.rise = decode_timing_table(r);
      arc.fall = decode_timing_table(r);
      cell.arcs.push_back(std::move(arc));
    }
    r.expect("fallbacks");
    const auto n_fb = static_cast<std::size_t>(r.integer("fallback count"));
    for (std::size_t f = 0; f < n_fb; ++f) {
      r.expect("fb");
      liberty::FallbackPoint fb;
      fb.related_pin = r.word("fallback pin");
      fb.rising = r.integer("fallback rising") != 0;
      fb.slew_index = static_cast<int>(r.integer("fallback slew"));
      fb.load_index = static_cast<int>(r.integer("fallback load"));
      cell.fallbacks.push_back(std::move(fb));
    }
    library.add_cell(std::move(cell));
  }
  return library;
}

std::string encode_synthesis(const synth::SynthesisResult& result,
                             const liberty::Library& library) {
  const std::string verilog = netlist::write_verilog(result.module, library);
  std::string out = "rwsynth1\nverilog " + std::to_string(verilog.size()) + "\n" + verilog;
  out += "\nmetrics " + hex(result.cp_ps) + " " + hex(result.area_um2) + " " +
         std::to_string(result.gate_count) + "\n";
  out += "sizing " + hex(result.sizing.initial_cp_ps) + " " + hex(result.sizing.final_cp_ps) +
         " " + std::to_string(result.sizing.upsizes) + " " +
         std::to_string(result.sizing.downsizes) + " " +
         std::to_string(result.sizing.slew_buffers) + "\n";
  return out;
}

synth::SynthesisResult decode_synthesis(const std::string& text,
                                        const liberty::Library& library) {
  TokenReader r(text);
  r.expect("rwsynth1");
  r.expect("verilog");
  const auto bytes = static_cast<std::size_t>(r.integer("verilog bytes"));
  const std::string verilog = r.blob(bytes);
  synth::SynthesisResult result{netlist::parse_verilog(verilog, library), 0.0, 0.0, 0, {}};
  r.expect("metrics");
  result.cp_ps = r.number("cp");
  result.area_um2 = r.number("area");
  result.gate_count = static_cast<std::size_t>(r.integer("gate count"));
  r.expect("sizing");
  result.sizing.initial_cp_ps = r.number("sizing initial");
  result.sizing.final_cp_ps = r.number("sizing final");
  result.sizing.upsizes = static_cast<int>(r.integer("upsizes"));
  result.sizing.downsizes = static_cast<int>(r.integer("downsizes"));
  result.sizing.slew_buffers = static_cast<int>(r.integer("slew buffers"));
  return result;
}

}  // namespace rw::flow::artifact
