#pragma once

/// \file run_report.hpp
/// Machine-readable outcome of one orchestrated flow run: per-stage status
/// and wall time, degradation counters (interpolated fallbacks, quarantined
/// corners), the cancellation cause when a deadline/signal tripped the run,
/// and an exit-code contract shared with rwlint:
///   0 — clean completion;
///   1 — degraded completion (fallbacks or quarantined corners, result valid);
///   2 — failure or cancellation (structured report still written);
///   64 — usage error (CLIs only; never produced by RunReport itself).

#include <string>
#include <vector>

namespace rw::flow {

struct StageReport {
  std::string name;
  /// "done" (computed this run), "cached" (served from the flow manifest),
  /// "failed", or "cancelled".
  std::string status;
  double wall_ms = 0.0;
  std::string artifact;       ///< manifest-relative artifact filename ("" when none)
  std::size_t artifact_bytes = 0;
  std::string error;          ///< failure/cancellation detail ("" otherwise)
};

struct RunReport {
  std::string flow;           ///< flow name ("dynamic_workload_guardband", ...)
  std::string status = "ok";  ///< "ok", "degraded", "failed", or "cancelled"
  std::string cancel_reason;  ///< cancellation cause ("" when not cancelled)
  double wall_ms = 0.0;
  int fallbacks = 0;          ///< interpolated OPC fallback points used
  int quarantined = 0;        ///< (scenario, cell) pairs served degraded
  std::vector<StageReport> stages;

  /// Exit-code contract (see file comment). Never returns 64.
  [[nodiscard]] int exit_code() const;

  /// Stable-field-order JSON document (trailing newline included).
  [[nodiscard]] std::string to_json() const;

  /// Atomic best-effort write of `to_json()`; returns false on I/O failure.
  bool save(const std::string& path) const;
};

}  // namespace rw::flow
