#pragma once

/// \file libgen.hpp
/// Library-generation helpers for the experiments: the state-of-the-art
/// baselines the paper compares against are built here — the Vth-only
/// scenario (Fig. 5(a)) and the single-OPC library (Fig. 5(b)), where the
/// aging-induced delay change measured at one operating condition is
/// applied uniformly across the whole NLDM table.

#include "aging/scenario.hpp"
#include "liberty/library.hpp"

namespace rw::flow {

/// Worst-case static stress with mobility degradation disabled — the
/// "only Vth" baseline of refs [9, 11, 12, 13] in the paper.
aging::AgingScenario worst_case_vth_only(double years);

/// Builds a "single OPC" degradation-aware library: for every arc/edge the
/// aged/fresh delay ratio at (slew_ps, load_ff) is measured and applied
/// uniformly to the fresh tables. This reproduces how [12, 13] characterize
/// aging at one condition. Ratios are clamped to [0.1, 10] to guard the
/// near-zero delays that occur at extreme conditions.
liberty::Library make_single_opc_library(const liberty::Library& fresh,
                                         const liberty::Library& aged, double slew_ps,
                                         double load_ff);

/// The paper's full 11x11 λ grid (121 scenarios) for a lifetime.
std::vector<aging::AgingScenario> full_lambda_grid(double years, double step = 0.1);

}  // namespace rw::flow
