#include "flow/guardband_flow.hpp"

#include <iostream>
#include <map>
#include <set>

#include "lint/linter.hpp"
#include "logicsim/activity.hpp"
#include "netlist/annotate.hpp"
#include "sta/analysis.hpp"

namespace rw::flow {

namespace {

/// Pre-flight: refuse structurally broken netlists (combinational cycles,
/// multi-driven nets, bogus λ annotations, ...) with the full diagnostic
/// list instead of failing deep inside STA or characterization. The library
/// is factory-generated, so only netlist + annotation rules run.
void preflight(const netlist::Module& module, const liberty::Library& fresh) {
  lint::LintSubject subject;
  subject.module = &module;
  subject.library = &fresh;
  lint::lint_or_throw(lint::Linter::netlist_linter(), subject);
}

/// Library pre-flight for generated (aged) libraries: broken tables abort;
/// warnings — notably LB006 interpolated-fallback points from cells whose
/// OPC grid did not fully converge — are reported on stderr so it is
/// visible when the timing below rests on second-class data.
void preflight_library(const liberty::Library& aged, const liberty::Library& fresh) {
  lint::LintSubject subject;
  subject.library = &aged;
  subject.fresh = &fresh;
  const auto diagnostics = lint::lint_or_throw(lint::Linter::library_linter(), subject);
  for (const auto& d : diagnostics) {
    if (d.severity >= lint::Severity::kWarning) std::cerr << d.format() << '\n';
  }
}

}  // namespace

sta::GuardbandReport static_guardband(const netlist::Module& module,
                                      charlib::LibraryFactory& factory,
                                      const aging::AgingScenario& scenario,
                                      const sta::StaOptions& options) {
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  preflight(module, fresh);
  const liberty::Library& aged = factory.library(scenario);
  preflight_library(aged, fresh);
  return sta::estimate_guardband(module, fresh, aged, options);
}

DynamicAgingResult dynamic_workload_guardband(const netlist::Module& module,
                                              charlib::LibraryFactory& factory,
                                              const Stimulus& stimulus, int cycles, double years,
                                              const sta::StaOptions& options) {
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  preflight(module, fresh);

  // 1. Gate-level simulation of the workload (Modelsim's role).
  logicsim::CycleSimulator sim(module, fresh);
  logicsim::ActivityCollector activity(module.net_count());
  for (int k = 0; k < cycles; ++k) {
    stimulus(sim, k);
    sim.evaluate();
    activity.observe(sim);
    sim.clock_edge();
  }

  // 2. Duty-cycle extraction and netlist annotation.
  const auto duties = logicsim::extract_duty_cycles(module, fresh, activity);
  DynamicAgingResult result{netlist::Module(module), {}, {}};
  result.corners = netlist::annotate_with_duty_cycles(result.annotated, duties);

  // 3. Merged complete library — characterized lazily: only the (cell,
  // corner) pairs the annotated netlist actually instantiates, which is what
  // keeps the 121-corner complete library tractable.
  std::set<std::pair<std::string, std::string>> needed;  // (indexed name, base)
  std::map<std::string, aging::AgingScenario> corner_of;
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const std::string& base = module.instances()[i].cell;
    const std::string& indexed = result.annotated.instances()[i].cell;
    needed.emplace(indexed, base);
    const double lp = aging::quantize_lambda(duties[i].lambda_p);
    const double ln = aging::quantize_lambda(duties[i].lambda_n);
    corner_of.emplace(indexed, aging::AgingScenario{lp, ln, years, true});
  }
  liberty::Library merged("reliaware_complete_used");
  for (const auto& [indexed, base] : needed) {
    liberty::Cell cell = factory.cell(base, corner_of.at(indexed));
    cell.name = indexed;
    merged.add_cell(std::move(cell));
  }
  preflight_library(merged, fresh);

  // 4. Timing against the merged library vs the fresh library.
  result.report.fresh_cp_ps = sta::Sta(module, fresh, options).critical_delay_ps();
  result.report.aged_cp_ps = sta::Sta(result.annotated, merged, options).critical_delay_ps();
  return result;
}

}  // namespace rw::flow
