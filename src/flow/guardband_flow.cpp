#include "flow/guardband_flow.hpp"

#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "lint/linter.hpp"
#include "logicsim/activity.hpp"
#include "netlist/annotate.hpp"
#include "sta/analysis.hpp"
#include "util/thread_pool.hpp"

namespace rw::flow {

namespace {

/// Pre-flight: refuse structurally broken netlists (combinational cycles,
/// multi-driven nets, bogus λ annotations, ...) with the full diagnostic
/// list instead of failing deep inside STA or characterization. The library
/// is factory-generated, so only netlist + annotation (+ stress) rules run.
void preflight(const netlist::Module& module, const liberty::Library& fresh,
               const stress::AnalyzeOptions* stress_options = nullptr) {
  lint::LintSubject subject;
  subject.module = &module;
  subject.library = &fresh;
  subject.stress = stress_options;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::netlist_linter(), subject));
}

/// Library pre-flight for generated (aged) libraries: broken tables abort;
/// warnings — notably LB006 interpolated-fallback points from cells whose
/// OPC grid did not fully converge — go through `report_diagnostics` (and
/// can be silenced via RW_LINT_MIN_SEVERITY) so it is visible when the
/// timing below rests on second-class data.
void preflight_library(const liberty::Library& aged, const liberty::Library& fresh) {
  lint::LintSubject subject;
  subject.library = &aged;
  subject.fresh = &fresh;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
}

/// Merged "complete" library, characterized lazily: only the (cell, corner)
/// pairs the annotated netlist actually instantiates, which is what keeps
/// the 121-corner complete library tractable. Shared by the dynamic and
/// bounded-static flows.
liberty::Library build_used_corner_library(const netlist::Module& original,
                                           const netlist::Module& annotated,
                                           const std::vector<netlist::InstanceDuty>& duties,
                                           double years, charlib::LibraryFactory& factory,
                                           const std::string& name) {
  std::set<std::pair<std::string, std::string>> needed;  // (indexed name, base)
  std::map<std::string, aging::AgingScenario> corner_of;
  for (std::size_t i = 0; i < original.instances().size(); ++i) {
    const std::string& base = original.instances()[i].cell;
    const std::string& indexed = annotated.instances()[i].cell;
    needed.emplace(indexed, base);
    const double lp = aging::quantize_lambda(duties[i].lambda_p);
    const double ln = aging::quantize_lambda(duties[i].lambda_n);
    corner_of.emplace(indexed, aging::AgingScenario{lp, ln, years, true});
  }
  liberty::Library merged(name);
  for (const auto& [indexed, base] : needed) {
    liberty::Cell cell = factory.cell(base, corner_of.at(indexed));
    cell.name = indexed;
    merged.add_cell(std::move(cell));
  }
  return merged;
}

/// Scalar "slowness" of a characterized corner: the sum of every NLDM delay
/// entry across all arcs. Monotone in aging degradation, so the argmax over
/// a λ range is the corner STA should fear most; a deterministic scalar also
/// gives a stable tie-break (lower λn wins on equality).
double corner_slowness(const liberty::Cell& cell) {
  double sum = 0.0;
  for (const liberty::TimingArc& arc : cell.arcs) {
    for (double v : arc.rise.delay_ps.values()) sum += v;
    for (double v : arc.fall.delay_ps.values()) sum += v;
  }
  return sum;
}

}  // namespace

sta::GuardbandReport static_guardband(const netlist::Module& module,
                                      charlib::LibraryFactory& factory,
                                      const aging::AgingScenario& scenario,
                                      const sta::StaOptions& options) {
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  preflight(module, fresh);
  const liberty::Library& aged = factory.library(scenario);
  preflight_library(aged, fresh);
  return sta::estimate_guardband(module, fresh, aged, options);
}

DynamicAgingResult dynamic_workload_guardband(const netlist::Module& module,
                                              charlib::LibraryFactory& factory,
                                              const Stimulus& stimulus, int cycles, double years,
                                              const sta::StaOptions& options) {
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  preflight(module, fresh);

  // 1. Gate-level simulation of the workload (Modelsim's role).
  logicsim::CycleSimulator sim(module, fresh);
  logicsim::ActivityCollector activity(module.net_count());
  for (int k = 0; k < cycles; ++k) {
    stimulus(sim, k);
    sim.evaluate();
    activity.observe(sim);
    sim.clock_edge();
  }

  // 2. Duty-cycle extraction and netlist annotation.
  const auto duties = logicsim::extract_duty_cycles(module, fresh, activity);
  DynamicAgingResult result{netlist::Module(module), {}, {}};
  result.corners = netlist::annotate_with_duty_cycles(result.annotated, duties);

  // 3. Merged complete library for exactly the corners in use.
  const liberty::Library merged = build_used_corner_library(
      module, result.annotated, duties, years, factory, "reliaware_complete_used");
  preflight_library(merged, fresh);

  // Oracle cross-check: every simulated annotation must sit inside the
  // statically proven workload-independent λ bounds (SP001). A finding here
  // is a bug in the simulate/extract/annotate pipeline, not in the design —
  // fail loudly rather than time against corrupt corners.
  {
    lint::LintSubject subject;
    subject.module = &result.annotated;
    subject.library = &merged;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::netlist_linter(), subject));
  }

  // 4. Timing against the merged library vs the fresh library.
  result.report.fresh_cp_ps = sta::Sta(module, fresh, options).critical_delay_ps();
  result.report.aged_cp_ps = sta::Sta(result.annotated, merged, options).critical_delay_ps();
  return result;
}

BoundedStaticResult bounded_static_guardband(const netlist::Module& module,
                                             charlib::LibraryFactory& factory, double years,
                                             const stress::AnalyzeOptions& stress_options,
                                             const sta::StaOptions& options) {
  const liberty::Library& fresh = factory.library(aging::AgingScenario::fresh());
  preflight(module, fresh, &stress_options);

  // 1. Prove per-instance λ bounds — no simulation, no workload.
  BoundedStaticResult result{netlist::Module(module), {}, {}, {}, 0};
  result.stress = stress::analyze(module, fresh, stress_options);

  // 2. Candidate corners: for every instance, the λn grid points inside its
  // proven bound (quantization is monotone, so these are exactly the corners
  // any honest annotation of an admissible workload could produce).
  constexpr double kStep = 0.1;  // the annotate/merge λ grid
  const auto grid_range = [&](const stress::Interval& bound) {
    const int lo = static_cast<int>(std::round(aging::quantize_lambda(bound.lo, kStep) / kStep));
    const int hi = static_cast<int>(std::round(aging::quantize_lambda(bound.hi, kStep) / kStep));
    return std::pair<int, int>{lo, hi};
  };
  std::set<std::pair<std::string, int>> distinct;  // (base cell, λn grid index)
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const auto [lo, hi] = grid_range(result.stress.instances[i].lambda_n);
    for (int k = lo; k <= hi; ++k) distinct.emplace(module.instances()[i].cell, k);
  }
  result.candidate_corners = distinct.size();

  // 3. Characterize every candidate in parallel (the factory is concurrency-
  // safe and caches) and rank by table slowness.
  const std::vector<std::pair<std::string, int>> candidates(distinct.begin(), distinct.end());
  std::vector<double> slowness(candidates.size(), 0.0);
  util::ThreadPool::shared().parallel_for(candidates.size(), [&](std::size_t c) {
    const double ln = static_cast<double>(candidates[c].second) * kStep;
    const aging::AgingScenario corner{1.0 - ln, ln, years, true};
    slowness[c] = corner_slowness(factory.cell(candidates[c].first, corner));
  });
  std::map<std::pair<std::string, int>, double> slowness_of;
  for (std::size_t c = 0; c < candidates.size(); ++c) slowness_of[candidates[c]] = slowness[c];

  // 4. Per instance: the worst (slowest) in-bounds corner, lower λn on ties
  // (ascending scan with strict improvement keeps the choice deterministic).
  std::vector<netlist::InstanceDuty> duties(module.instances().size());
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    const auto [lo, hi] = grid_range(result.stress.instances[i].lambda_n);
    int best = lo;
    double best_slowness = slowness_of.at({module.instances()[i].cell, lo});
    for (int k = lo + 1; k <= hi; ++k) {
      const double s = slowness_of.at({module.instances()[i].cell, k});
      if (s > best_slowness) {
        best = k;
        best_slowness = s;
      }
    }
    const double ln = static_cast<double>(best) * kStep;
    duties[i] = netlist::InstanceDuty{1.0 - ln, ln};
  }

  // 5. Annotate, build the used-corner merged library, and time it.
  result.corners = netlist::annotate_with_duty_cycles(result.annotated, duties, kStep);
  const liberty::Library merged = build_used_corner_library(
      module, result.annotated, duties, years, factory, "reliaware_bounded_static");
  preflight_library(merged, fresh);
  result.report.fresh_cp_ps = sta::Sta(module, fresh, options).critical_delay_ps();
  result.report.aged_cp_ps = sta::Sta(result.annotated, merged, options).critical_delay_ps();
  return result;
}

}  // namespace rw::flow
