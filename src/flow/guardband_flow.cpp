#include "flow/guardband_flow.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "flow/artifact.hpp"
#include "lint/linter.hpp"
#include "logicsim/activity.hpp"
#include "netlist/annotate.hpp"
#include "sta/analysis.hpp"
#include "util/thread_pool.hpp"

namespace rw::flow {

namespace {

/// Pre-flight: refuse structurally broken netlists (combinational cycles,
/// multi-driven nets, bogus λ annotations, ...) with the full diagnostic
/// list instead of failing deep inside STA or characterization. The library
/// is factory-generated, so only netlist + annotation (+ stress) rules run.
void preflight(const netlist::Module& module, const liberty::Library& fresh,
               const stress::AnalyzeOptions* stress_options = nullptr) {
  lint::LintSubject subject;
  subject.module = &module;
  subject.library = &fresh;
  subject.stress = stress_options;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::netlist_linter(), subject));
}

/// Library pre-flight for generated (aged) libraries: broken tables abort;
/// warnings — notably LB006 interpolated-fallback points from cells whose
/// OPC grid did not fully converge — go through `report_diagnostics` (and
/// can be silenced via RW_LINT_MIN_SEVERITY) so it is visible when the
/// timing below rests on second-class data.
void preflight_library(const liberty::Library& aged, const liberty::Library& fresh) {
  lint::LintSubject subject;
  subject.library = &aged;
  subject.fresh = &fresh;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
}

/// Merged "complete" library, characterized lazily: only the (cell, corner)
/// pairs the annotated netlist actually instantiates, which is what keeps
/// the 121-corner complete library tractable. Shared by the dynamic and
/// bounded-static flows.
liberty::Library build_used_corner_library(const netlist::Module& original,
                                           const netlist::Module& annotated,
                                           const std::vector<netlist::InstanceDuty>& duties,
                                           double years, charlib::LibraryFactory& factory,
                                           const std::string& name) {
  std::set<std::pair<std::string, std::string>> needed;  // (indexed name, base)
  std::map<std::string, aging::AgingScenario> corner_of;
  for (std::size_t i = 0; i < original.instances().size(); ++i) {
    const std::string& base = original.instances()[i].cell;
    const std::string& indexed = annotated.instances()[i].cell;
    needed.emplace(indexed, base);
    const double lp = aging::quantize_lambda(duties[i].lambda_p);
    const double ln = aging::quantize_lambda(duties[i].lambda_n);
    corner_of.emplace(indexed, aging::AgingScenario{lp, ln, years, true});
  }
  liberty::Library merged(name);
  for (const auto& [indexed, base] : needed) {
    liberty::Cell cell = factory.cell(base, corner_of.at(indexed));
    cell.name = indexed;
    merged.add_cell(std::move(cell));
  }
  return merged;
}

/// Scalar "slowness" of a characterized corner: the sum of every NLDM delay
/// entry across all arcs. Monotone in aging degradation, so the argmax over
/// a λ range is the corner STA should fear most; a deterministic scalar also
/// gives a stable tie-break (lower λn wins on equality).
double corner_slowness(const liberty::Cell& cell) {
  double sum = 0.0;
  for (const liberty::TimingArc& arc : cell.arcs) {
    for (double v : arc.rise.delay_ps.values()) sum += v;
    for (double v : arc.fall.delay_ps.values()) sum += v;
  }
  return sum;
}

/// LB006 interpolated-fallback points carried by a library's cells; the
/// RunReport surfaces them as the `fallbacks` degradation counter.
int count_fallback_points(const liberty::Library& library) {
  int n = 0;
  for (const liberty::Cell& cell : library.cells()) n += static_cast<int>(cell.fallbacks.size());
  return n;
}

OrchestratorOptions resolve(const OrchestratorOptions* orch) {
  return orch != nullptr ? *orch : OrchestratorOptions::from_env();
}

/// Library stage codecs shared by every flow.
std::string encode_lib(const liberty::Library& library) {
  return artifact::encode_library(library);
}
liberty::Library decode_lib(const std::string& text) { return artifact::decode_library(text); }

/// GuardbandReport <-> two hexfloat doubles.
std::string encode_report(const sta::GuardbandReport& report) {
  return artifact::encode_doubles({report.fresh_cp_ps, report.aged_cp_ps});
}
sta::GuardbandReport decode_report(const std::string& text) {
  const std::vector<double> v = artifact::decode_doubles(text);
  if (v.size() != 2) throw std::runtime_error("guardband artifact: expected 2 values");
  sta::GuardbandReport report;
  report.fresh_cp_ps = v[0];
  report.aged_cp_ps = v[1];
  return report;
}

}  // namespace

sta::GuardbandReport static_guardband(const netlist::Module& module,
                                      charlib::LibraryFactory& factory,
                                      const aging::AgingScenario& scenario,
                                      const sta::StaOptions& options,
                                      const OrchestratorOptions* orch) {
  FlowOrchestrator run("static_guardband", resolve(orch));
  const std::size_t quarantined_before = factory.quarantined().size();

  const liberty::Library fresh = run.stage(
      "fresh_library", [&] { return factory.library(aging::AgingScenario::fresh()); },
      encode_lib, decode_lib);
  preflight(module, fresh);

  const liberty::Library aged = run.stage(
      "aged_library", [&] { return factory.library(scenario); }, encode_lib, decode_lib);
  preflight_library(aged, fresh);

  const sta::GuardbandReport report = run.stage(
      "sta", [&] { return sta::estimate_guardband(module, fresh, aged, options); },
      encode_report, decode_report);

  run.report().fallbacks += count_fallback_points(fresh) + count_fallback_points(aged);
  run.report().quarantined += static_cast<int>(factory.quarantined().size() - quarantined_before);
  run.finish();
  return report;
}

DynamicAgingResult dynamic_workload_guardband(const netlist::Module& module,
                                              charlib::LibraryFactory& factory,
                                              const Stimulus& stimulus, int cycles, double years,
                                              const sta::StaOptions& options,
                                              const OrchestratorOptions* orch) {
  FlowOrchestrator run("dynamic_workload_guardband", resolve(orch));
  const std::size_t quarantined_before = factory.quarantined().size();

  const liberty::Library fresh = run.stage(
      "fresh_library", [&] { return factory.library(aging::AgingScenario::fresh()); },
      encode_lib, decode_lib);
  preflight(module, fresh);

  // 1+2. Gate-level simulation of the workload (Modelsim's role) and
  // duty-cycle extraction, plus post-warm-up per-net toggle rates for the
  // AC001 oracle below. One stage: the activity counters are meaningless
  // without the extraction that interprets them. The toggle window skips the
  // start-up transient (X-free here, but the settled window is what the
  // stationary bounds speak about); nets with no post-warm-up data carry the
  // -1 sentinel and are skipped by the oracle.
  struct SimulateOut {
    std::vector<netlist::InstanceDuty> duties;
    std::vector<double> toggles;  // per net, toggles/cycle; -1 = no data
  };
  const SimulateOut sim_out = run.stage(
      "simulate",
      [&] {
        logicsim::CycleSimulator sim(module, fresh);
        logicsim::ActivityCollector activity(module.net_count());
        logicsim::ActivityCollector settled(module.net_count());
        const int warmup = std::min(64, cycles / 4);
        for (int k = 0; k < cycles; ++k) {
          throw_if_cancelled();
          stimulus(sim, k);
          sim.evaluate();
          activity.observe(sim);
          if (k >= warmup) settled.observe(sim);
          sim.clock_edge();
        }
        SimulateOut out;
        out.duties = logicsim::extract_duty_cycles(module, fresh, activity);
        out.toggles.resize(static_cast<std::size_t>(module.net_count()), -1.0);
        for (std::size_t n = 0; n < out.toggles.size(); ++n) {
          const auto rate = settled.toggle_rate(static_cast<netlist::NetId>(n));
          if (rate.has_value()) out.toggles[n] = *rate;
        }
        return out;
      },
      [](const SimulateOut& s) {
        std::vector<double> v;
        v.reserve(1 + 2 * s.duties.size() + s.toggles.size());
        v.push_back(static_cast<double>(s.duties.size()));
        for (const netlist::InstanceDuty& d : s.duties) {
          v.push_back(d.lambda_p);
          v.push_back(d.lambda_n);
        }
        for (double t : s.toggles) v.push_back(t);
        return artifact::encode_doubles(v);
      },
      [](const std::string& text) {
        const std::vector<double> v = artifact::decode_doubles(text);
        if (v.empty()) throw std::runtime_error("simulate artifact: empty");
        const auto n = static_cast<std::size_t>(v[0]);
        if (v.size() < 1 + 2 * n) throw std::runtime_error("simulate artifact: bad length");
        SimulateOut s;
        for (std::size_t i = 0; i < n; ++i) {
          s.duties.push_back(netlist::InstanceDuty{v[1 + 2 * i], v[2 + 2 * i]});
        }
        s.toggles.assign(v.begin() + static_cast<std::ptrdiff_t>(1 + 2 * n), v.end());
        return s;
      });
  const std::vector<netlist::InstanceDuty>& duties = sim_out.duties;

  // Annotation is pure arithmetic over the duty cycles — recomputed inline
  // on every run (including resumed ones) rather than checkpointed.
  DynamicAgingResult result{netlist::Module(module), {}, {}};
  result.corners = netlist::annotate_with_duty_cycles(result.annotated, duties);

  // 3. Merged complete library for exactly the corners in use.
  const liberty::Library merged = run.stage(
      "characterize",
      [&] {
        return build_used_corner_library(module, result.annotated, duties, years, factory,
                                         "reliaware_complete_used");
      },
      encode_lib, decode_lib);
  preflight_library(merged, fresh);

  // Oracle cross-check: every simulated annotation must sit inside the
  // statically proven workload-independent λ bounds (SP001), and every
  // post-warm-up measured toggle rate inside the proven activity bounds
  // (AC001). A finding here is a bug in the simulate/extract/annotate
  // pipeline, not in the design — fail loudly rather than time against
  // corrupt corners. The tiny slack absorbs float accumulation over the
  // measurement window, nothing more.
  {
    lint::ActivityMeasurement measured;
    measured.slack = 1e-9;
    for (std::size_t n = 0; n < sim_out.toggles.size(); ++n) {
      if (sim_out.toggles[n] < 0.0) continue;
      measured.toggle_rates.emplace_back(module.net_name(static_cast<netlist::NetId>(n)),
                                         sim_out.toggles[n]);
    }
    lint::LintSubject subject;
    subject.module = &result.annotated;
    subject.library = &merged;
    subject.measured_activity = &measured;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::netlist_linter(), subject));
  }

  // 4. Timing against the merged library vs the fresh library.
  result.report = run.stage(
      "sta",
      [&] {
        sta::GuardbandReport report;
        report.fresh_cp_ps = sta::Sta(module, fresh, options).critical_delay_ps();
        report.aged_cp_ps = sta::Sta(result.annotated, merged, options).critical_delay_ps();
        return report;
      },
      encode_report, decode_report);

  run.report().fallbacks += count_fallback_points(merged);
  run.report().quarantined += static_cast<int>(factory.quarantined().size() - quarantined_before);
  run.finish();
  return result;
}

BoundedStaticResult bounded_static_guardband(const netlist::Module& module,
                                             charlib::LibraryFactory& factory, double years,
                                             const stress::AnalyzeOptions& stress_options,
                                             const sta::StaOptions& options,
                                             const OrchestratorOptions* orch) {
  FlowOrchestrator run("bounded_static_guardband", resolve(orch));
  const std::size_t quarantined_before = factory.quarantined().size();

  const liberty::Library fresh = run.stage(
      "fresh_library", [&] { return factory.library(aging::AgingScenario::fresh()); },
      encode_lib, decode_lib);
  preflight(module, fresh, &stress_options);

  // 1. Prove per-instance λ bounds — no simulation, no workload. Pure
  // interval arithmetic, so it is recomputed inline even on resumed runs.
  BoundedStaticResult result{netlist::Module(module), {}, {}, {}, 0};
  result.stress = stress::analyze(module, fresh, stress_options);

  constexpr double kStep = 0.1;  // the annotate/merge λ grid
  const auto grid_range = [&](const stress::Interval& bound) {
    const int lo = static_cast<int>(std::round(aging::quantize_lambda(bound.lo, kStep) / kStep));
    const int hi = static_cast<int>(std::round(aging::quantize_lambda(bound.hi, kStep) / kStep));
    return std::pair<int, int>{lo, hi};
  };

  // 2–4. Candidate corners inside every proven bound, characterized in
  // parallel and ranked by table slowness; per instance the worst (slowest)
  // in-bounds corner wins, lower λn on ties. One stage: the slowness ranking
  // only matters through the duty assignment it produces.
  using Selection = std::pair<std::size_t, std::vector<netlist::InstanceDuty>>;
  const Selection selection = run.stage(
      "select_corners",
      [&] {
        std::set<std::pair<std::string, int>> distinct;  // (base cell, λn grid index)
        for (std::size_t i = 0; i < module.instances().size(); ++i) {
          const auto [lo, hi] = grid_range(result.stress.instances[i].lambda_n);
          for (int k = lo; k <= hi; ++k) distinct.emplace(module.instances()[i].cell, k);
        }
        const std::vector<std::pair<std::string, int>> candidates(distinct.begin(),
                                                                  distinct.end());
        std::vector<double> slowness(candidates.size(), 0.0);
        util::ThreadPool::shared().parallel_for(candidates.size(), [&](std::size_t c) {
          const double ln = static_cast<double>(candidates[c].second) * kStep;
          const aging::AgingScenario corner{1.0 - ln, ln, years, true};
          slowness[c] = corner_slowness(factory.cell(candidates[c].first, corner));
        });
        std::map<std::pair<std::string, int>, double> slowness_of;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          slowness_of[candidates[c]] = slowness[c];
        }
        std::vector<netlist::InstanceDuty> duties(module.instances().size());
        for (std::size_t i = 0; i < module.instances().size(); ++i) {
          const auto [lo, hi] = grid_range(result.stress.instances[i].lambda_n);
          int best = lo;
          double best_slowness = slowness_of.at({module.instances()[i].cell, lo});
          for (int k = lo + 1; k <= hi; ++k) {
            const double s = slowness_of.at({module.instances()[i].cell, k});
            if (s > best_slowness) {
              best = k;
              best_slowness = s;
            }
          }
          const double ln = static_cast<double>(best) * kStep;
          duties[i] = netlist::InstanceDuty{1.0 - ln, ln};
        }
        return Selection{distinct.size(), std::move(duties)};
      },
      [](const Selection& s) {
        std::vector<double> v;
        v.reserve(1 + 2 * s.second.size());
        v.push_back(static_cast<double>(s.first));
        for (const netlist::InstanceDuty& d : s.second) {
          v.push_back(d.lambda_p);
          v.push_back(d.lambda_n);
        }
        return artifact::encode_doubles(v);
      },
      [](const std::string& text) {
        const std::vector<double> v = artifact::decode_doubles(text);
        if (v.size() % 2 == 0) {
          throw std::runtime_error("select_corners artifact: bad length");
        }
        Selection s;
        s.first = static_cast<std::size_t>(v[0]);
        for (std::size_t i = 1; i + 1 < v.size(); i += 2) {
          s.second.push_back(netlist::InstanceDuty{v[i], v[i + 1]});
        }
        return s;
      });
  result.candidate_corners = selection.first;
  const std::vector<netlist::InstanceDuty>& duties = selection.second;

  // 5. Annotate, build the used-corner merged library, and time it.
  result.corners = netlist::annotate_with_duty_cycles(result.annotated, duties, kStep);
  const liberty::Library merged = run.stage(
      "characterize",
      [&] {
        return build_used_corner_library(module, result.annotated, duties, years, factory,
                                         "reliaware_bounded_static");
      },
      encode_lib, decode_lib);
  preflight_library(merged, fresh);

  result.report = run.stage(
      "sta",
      [&] {
        sta::GuardbandReport report;
        report.fresh_cp_ps = sta::Sta(module, fresh, options).critical_delay_ps();
        report.aged_cp_ps = sta::Sta(result.annotated, merged, options).critical_delay_ps();
        return report;
      },
      encode_report, decode_report);

  run.report().fallbacks += count_fallback_points(merged);
  run.report().quarantined += static_cast<int>(factory.quarantined().size() - quarantined_before);
  run.finish();
  return result;
}

}  // namespace rw::flow
