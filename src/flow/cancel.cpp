#include "flow/cancel.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>

namespace rw::flow {

namespace {

/// Set from the async signal handler (the only async-signal-safe thing it
/// can do); the next `cancelled()` poll on any thread promotes it into the
/// token with a proper reason string.
volatile std::sig_atomic_t g_signal_seen = 0;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

extern "C" void on_cancel_signal(int sig) { g_signal_seen = sig; }

}  // namespace

CancelledError::CancelledError(std::string reason)
    : std::runtime_error("cancelled: " + reason), reason_(std::move(reason)) {}

void CancelToken::request(const std::string& reason) {
  int expected = 0;
  if (reason_state_.compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) {
    reason_ = reason;
    reason_state_.store(2, std::memory_order_release);
  }
  flag_.store(true, std::memory_order_release);
}

void CancelToken::set_deadline_after_ms(double ms) {
  if (ms <= 0.0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  deadline_ns_.store(steady_now_ns() + static_cast<std::int64_t>(ms * 1e6),
                     std::memory_order_relaxed);
}

void CancelToken::clear() {
  flag_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  reason_state_.store(0, std::memory_order_relaxed);
  reason_.clear();
  g_signal_seen = 0;
}

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  if (g_signal_seen != 0) {
    const int sig = g_signal_seen;
    // Promote the raw signal flag into the token (handler context cannot).
    const_cast<CancelToken*>(this)->request(
        sig == SIGINT ? "signal SIGINT" : sig == SIGTERM ? "signal SIGTERM"
                                                         : "signal " + std::to_string(sig));
    return true;
  }
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && steady_now_ns() >= deadline) {
    const_cast<CancelToken*>(this)->request("deadline (RW_DEADLINE_MS) exceeded");
    return true;
  }
  return false;
}

void CancelToken::throw_if_cancelled() const {
  if (cancelled()) throw CancelledError(reason());
}

std::string CancelToken::reason() const {
  if (reason_state_.load(std::memory_order_acquire) == 2) return reason_;
  return cancelled() ? "cancelled" : "";
}

CancelToken& cancel_token() {
  static CancelToken token;
  return token;
}

double install_deadline_from_env() {
  const char* env = std::getenv("RW_DEADLINE_MS");
  if (env == nullptr || *env == '\0') return 0.0;
  char* end = nullptr;
  const double ms = std::strtod(env, &end);
  if (end == env || ms <= 0.0) return 0.0;
  cancel_token().set_deadline_after_ms(ms);
  return ms;
}

void install_signal_handlers() {
  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);
  // Every CLI can end up writing to a pipe or socket whose reader died (a
  // pager, a vanished rwclient); that must surface as an EPIPE write error,
  // never as a SIGPIPE process kill.
  std::signal(SIGPIPE, SIG_IGN);
}

void throw_if_cancelled() { cancel_token().throw_if_cancelled(); }

}  // namespace rw::flow
