#include "flow/aging_aware_synthesis.hpp"

#include <stdexcept>
#include <vector>

#include "flow/artifact.hpp"
#include "lint/linter.hpp"
#include "sta/analysis.hpp"

namespace rw::flow {

ContainmentResult run_containment(const synth::Ir& ir, const liberty::Library& fresh,
                                  const liberty::Library& aged, const std::string& top_name,
                                  const synth::SynthesisOptions& options,
                                  const OrchestratorOptions* orch) {
  FlowOrchestrator run("run_containment",
                       orch != nullptr ? *orch : OrchestratorOptions::from_env());
  // Pre-flight the caller-provided libraries: negative/missing NLDM data or
  // an aged cell faster than fresh silently corrupts both syntheses, so fail
  // fast with the diagnostics instead.
  {
    lint::LintSubject subject;
    subject.library = &fresh;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
    subject.library = &aged;
    subject.fresh = &fresh;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
  }
  ContainmentResult r{
      run.stage(
          "synth_conventional", [&] { return synth::synthesize(ir, fresh, top_name, options); },
          [&](const synth::SynthesisResult& s) { return artifact::encode_synthesis(s, fresh); },
          [&](const std::string& text) { return artifact::decode_synthesis(text, fresh); }),
      run.stage(
          "synth_aware", [&] { return synth::synthesize(ir, aged, top_name + "_aw", options); },
          [&](const synth::SynthesisResult& s) { return artifact::encode_synthesis(s, aged); },
          [&](const std::string& text) { return artifact::decode_synthesis(text, aged); })};

  const sta::StaOptions sta_opts = options.sizing.sta;
  const std::vector<double> metrics = run.stage(
      "sta",
      [&] {
        // Areas against the fresh library (identical cell areas in both
        // corners).
        return std::vector<double>{
            sta::Sta(r.conventional.module, fresh, sta_opts).critical_delay_ps(),
            sta::Sta(r.conventional.module, aged, sta_opts).critical_delay_ps(),
            sta::Sta(r.aging_aware.module, fresh, sta_opts).critical_delay_ps(),
            sta::Sta(r.aging_aware.module, aged, sta_opts).critical_delay_ps(),
            synth::total_area_um2(r.conventional.module, fresh),
            synth::total_area_um2(r.aging_aware.module, fresh)};
      },
      [](const std::vector<double>& v) { return artifact::encode_doubles(v); },
      [](const std::string& text) {
        std::vector<double> v = artifact::decode_doubles(text);
        if (v.size() != 6) throw std::runtime_error("containment sta artifact: expected 6 values");
        return v;
      });
  r.conventional_fresh_cp_ps = metrics[0];
  r.conventional_aged_cp_ps = metrics[1];
  r.aware_fresh_cp_ps = metrics[2];
  r.aware_aged_cp_ps = metrics[3];
  r.conventional.area_um2 = metrics[4];
  r.aging_aware.area_um2 = metrics[5];
  run.finish();
  return r;
}

}  // namespace rw::flow
