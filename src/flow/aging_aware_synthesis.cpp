#include "flow/aging_aware_synthesis.hpp"

#include "lint/linter.hpp"
#include "sta/analysis.hpp"

namespace rw::flow {

ContainmentResult run_containment(const synth::Ir& ir, const liberty::Library& fresh,
                                  const liberty::Library& aged, const std::string& top_name,
                                  const synth::SynthesisOptions& options) {
  // Pre-flight the caller-provided libraries: negative/missing NLDM data or
  // an aged cell faster than fresh silently corrupts both syntheses, so fail
  // fast with the diagnostics instead.
  {
    lint::LintSubject subject;
    subject.library = &fresh;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
    subject.library = &aged;
    subject.fresh = &fresh;
    lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
  }
  ContainmentResult r{synth::synthesize(ir, fresh, top_name, options),
                      synth::synthesize(ir, aged, top_name + "_aw", options)};

  const sta::StaOptions sta_opts = options.sizing.sta;
  r.conventional_fresh_cp_ps =
      sta::Sta(r.conventional.module, fresh, sta_opts).critical_delay_ps();
  r.conventional_aged_cp_ps = sta::Sta(r.conventional.module, aged, sta_opts).critical_delay_ps();
  r.aware_fresh_cp_ps = sta::Sta(r.aging_aware.module, fresh, sta_opts).critical_delay_ps();
  r.aware_aged_cp_ps = sta::Sta(r.aging_aware.module, aged, sta_opts).critical_delay_ps();
  // Areas against the fresh library (identical cell areas in both corners).
  r.conventional.area_um2 = synth::total_area_um2(r.conventional.module, fresh);
  r.aging_aware.area_um2 = synth::total_area_um2(r.aging_aware.module, fresh);
  return r;
}

}  // namespace rw::flow
