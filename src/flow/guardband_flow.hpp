#pragma once

/// \file guardband_flow.hpp
/// The guardband-estimation flows of Fig. 4(b): static stress (one λ corner
/// for every transistor) and dynamic stress (workload simulation -> duty
/// cycles -> annotated netlist -> merged complete library).

#include <functional>

#include "charlib/factory.hpp"
#include "flow/orchestrator.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/netlist.hpp"
#include "sta/guardband.hpp"
#include "stress/analyzer.hpp"

namespace rw::flow {

/// Every flow below runs under the crash-only orchestrator (see
/// orchestrator.hpp): pass explicit `OrchestratorOptions` to control the
/// checkpoint directory / resume, or leave `orch == nullptr` to read
/// RW_FLOW_DIR / RW_FLOW_RESUME from the environment (absent = orchestration
/// disabled, behavior and results bitwise identical to the unorchestrated
/// flows).

/// Static-stress guardband: STA against fresh and `scenario` libraries.
sta::GuardbandReport static_guardband(const netlist::Module& module,
                                      charlib::LibraryFactory& factory,
                                      const aging::AgingScenario& scenario,
                                      const sta::StaOptions& options = {},
                                      const OrchestratorOptions* orch = nullptr);

struct BoundedStaticResult {
  netlist::Module annotated;                       ///< per-instance worst in-bounds corner
  std::vector<std::pair<double, double>> corners;  ///< distinct (λp, λn) used
  sta::GuardbandReport report;
  stress::StressReport stress;        ///< the proven bounds the corners came from
  std::size_t candidate_corners = 0;  ///< distinct (cell, λ) pairs characterized
};

/// Bounded-static guardband — between the paper's one-corner static stress
/// and full dynamic stress: the interval analysis proves per-instance
/// (λp, λn) bounds without simulating anything, and each instance is then
/// timed at its own *worst in-bounds* merged-library corner (the λn grid
/// point inside the proven bound whose characterized tables are slowest).
/// No workload can age any instance past its bound, so the resulting
/// guardband is ≤ the one-corner worst-case guardband while still covering
/// every admissible workload.
BoundedStaticResult bounded_static_guardband(const netlist::Module& module,
                                             charlib::LibraryFactory& factory, double years,
                                             const stress::AnalyzeOptions& stress_options = {},
                                             const sta::StaOptions& options = {},
                                             const OrchestratorOptions* orch = nullptr);

/// Per-cycle stimulus callback: set primary inputs for cycle `k`.
using Stimulus = std::function<void(logicsim::CycleSimulator&, int cycle)>;

struct DynamicAgingResult {
  netlist::Module annotated;                        ///< cells renamed to λ-indexed names
  std::vector<std::pair<double, double>> corners;   ///< distinct (λp, λn) used
  sta::GuardbandReport report;
};

/// Dynamic-stress flow: simulate `cycles` of the workload, extract duty
/// cycles, quantize + annotate, build the merged library for the used
/// corners, and compare against the fresh critical path.
DynamicAgingResult dynamic_workload_guardband(const netlist::Module& module,
                                              charlib::LibraryFactory& factory,
                                              const Stimulus& stimulus, int cycles, double years,
                                              const sta::StaOptions& options = {},
                                              const OrchestratorOptions* orch = nullptr);

}  // namespace rw::flow
