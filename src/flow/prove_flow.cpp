#include "flow/prove_flow.hpp"

#include <set>
#include <utility>

#include "charlib/interval_query.hpp"
#include "flow/artifact.hpp"
#include "lint/linter.hpp"
#include "sta/analysis.hpp"
#include "util/thread_pool.hpp"

namespace rw::flow {

namespace {

void preflight(const netlist::Module& module, const liberty::Library& fresh,
               const stress::AnalyzeOptions* stress_options) {
  lint::LintSubject subject;
  subject.module = &module;
  subject.library = &fresh;
  subject.stress = stress_options;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::netlist_linter(), subject));
}

void preflight_library(const liberty::Library& aged, const liberty::Library& fresh) {
  lint::LintSubject subject;
  subject.library = &aged;
  subject.fresh = &fresh;
  lint::report_diagnostics(lint::lint_or_throw(lint::Linter::library_linter(), subject));
}

int count_fallback_points(const liberty::Library& library) {
  int n = 0;
  for (const liberty::Cell& cell : library.cells()) n += static_cast<int>(cell.fallbacks.size());
  return n;
}

OrchestratorOptions resolve(const OrchestratorOptions* orch) {
  return orch != nullptr ? *orch : OrchestratorOptions::from_env();
}

std::string encode_lib(const liberty::Library& library) {
  return artifact::encode_library(library);
}
liberty::Library decode_lib(const std::string& text) { return artifact::decode_library(text); }

/// The merged bracket library: every distinct (base cell, bracket corner)
/// pair some instance's proven bound needs, characterized in parallel and
/// stored under the λ-indexed name. Quarantined pairs are skipped — they
/// surface as `missing` corners (and PV003 vacuity) downstream.
liberty::Library build_bracket_library(
    charlib::LibraryFactory& factory,
    const std::set<std::pair<std::string, aging::AgingScenario>>& distinct) {
  const std::vector<std::pair<std::string, aging::AgingScenario>> pairs(distinct.begin(),
                                                                        distinct.end());
  std::vector<liberty::Cell> cells(pairs.size());
  std::vector<char> ok(pairs.size(), 0);
  util::ThreadPool::shared().parallel_for(pairs.size(), [&](std::size_t c) {
    try {
      cells[c] = factory.cell(pairs[c].first, pairs[c].second);
      cells[c].name = charlib::bracket_cell_name(pairs[c].first, pairs[c].second);
      ok[c] = 1;
    } catch (const std::exception&) {
      ok[c] = 0;
    }
  });
  liberty::Library merged("reliaware_prove_brackets");
  for (std::size_t c = 0; c < pairs.size(); ++c) {
    if (ok[c] != 0) merged.add_cell(std::move(cells[c]));
  }
  return merged;
}

}  // namespace

ProvenGuardbandResult proven_guardband(const netlist::Module& module,
                                       charlib::LibraryFactory& factory, double years,
                                       double guardband_ps,
                                       const stress::AnalyzeOptions& stress_options,
                                       const sta::StaOptions& sta_options,
                                       double width_budget_ps, const OrchestratorOptions* orch) {
  FlowOrchestrator run("proven_guardband", resolve(orch));
  const std::size_t quarantined_before = factory.quarantined().size();

  const liberty::Library fresh = run.stage(
      "fresh_library", [&] { return factory.library(aging::AgingScenario::fresh()); },
      encode_lib, decode_lib);
  preflight(module, fresh, &stress_options);

  // 1. Prove per-instance λ bounds — pure interval arithmetic, recomputed
  // inline even on resumed runs.
  ProvenGuardbandResult result;
  result.stress = stress::analyze(module, fresh, stress_options);

  // 2. Bracket every proven bound with its extreme λ-lattice corners and
  // characterize them once, checkpointed as one merged library.
  std::set<std::pair<std::string, aging::AgingScenario>> distinct;
  for (std::size_t i = 0; i < module.instances().size(); ++i) {
    for (const auto& corner :
         charlib::bracket_scenarios(result.stress.instances[i], years)) {
      distinct.emplace(module.instances()[i].cell, corner);
    }
  }
  result.candidate_corners = distinct.size();
  const liberty::Library merged = run.stage(
      "prove_corners",
      [&] { return build_bracket_library(factory, distinct); },
      encode_lib, decode_lib);
  preflight_library(merged, fresh);

  // 3. Interval STA over the bracket corners; the scalar fresh STA anchors
  // the guardband. Serial + deterministic, recomputed inline.
  const std::vector<charlib::InstanceCorners> corners =
      charlib::corners_from_library(module, result.stress, merged, fresh);
  const sta::IntervalSta ista(module, fresh, corners, sta_options);
  const double fresh_cp = sta::Sta(module, fresh, sta_options).critical_delay_ps();
  result.summary = ista.summarize(fresh_cp);
  result.summary.guardband_ps = guardband_ps;
  result.summary.width_budget_ps = width_budget_ps;

  // 4. Verdict: the PV rules certify or refute the proof.
  lint::Linter prove_linter;
  prove_linter.add_rules(lint::prove_rules());
  lint::LintSubject subject;
  subject.module = &module;
  subject.prove = &result.summary;
  result.findings = prove_linter.run(subject);
  lint::report_diagnostics(result.findings);
  result.certified = lint::worst_severity(result.findings) < lint::Severity::kError;

  run.report().fallbacks += count_fallback_points(merged);
  run.report().quarantined += static_cast<int>(factory.quarantined().size() - quarantined_before);
  run.finish();
  return result;
}

}  // namespace rw::flow
