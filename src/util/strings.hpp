#pragma once

/// \file strings.hpp
/// String utilities shared by the Liberty/Verilog/SDF writers and parsers.

#include <string>
#include <string_view>
#include <vector>

namespace rw::util {

/// Split on any character in `delims`; empty tokens are dropped.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t\r\n");

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Format a double with fixed decimals (locale-independent).
std::string format_fixed(double value, int decimals);

/// Formats a duty cycle for use in merged-library cell names: 0.4 -> "0.40".
/// The paper indexes merged cells as e.g. AND2_0.40_0.60.
std::string format_lambda(double lambda);

/// Compose the merged-library cell name `<base>_<lp>_<ln>` (Section 4.1).
std::string indexed_cell_name(std::string_view base, double lambda_p, double lambda_n);

/// Parse an indexed cell name back into (base, λp, λn).
/// Returns false when `name` carries no index (plain library cell).
bool parse_indexed_cell_name(std::string_view name, std::string& base, double& lambda_p,
                             double& lambda_n);

/// Append `text` to `out` as a double-quoted JSON string (RFC 8259 escaping).
/// Shared by the lint JSON report and the characterization run manifest.
void append_json_string(std::string& out, std::string_view text);

}  // namespace rw::util
