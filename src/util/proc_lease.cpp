#include "util/proc_lease.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/io.hpp"

namespace rw::util {

namespace {

/// File age in ms from mtime against the system clock (clamped at 0: a
/// writer on a marginally faster clock must not look "negative-aged").
double file_age_ms(const std::string& path, bool& ok) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    ok = false;
    return 0.0;
  }
  ok = true;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double now_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(now).count();
  const double mtime_ms = static_cast<double>(st.st_mtime) * 1000.0;
  return now_ms > mtime_ms ? now_ms - mtime_ms : 0.0;
}

}  // namespace

LeaseObservation observe_lease(const std::string& path) {
  LeaseObservation obs;
  std::ifstream in(path, std::ios::binary);
  if (!in) return obs;
  obs.exists = true;
  std::string body;
  std::getline(in, body);
  // `{"pid":N,"ttl_ms":N}` — written in one O_EXCL create, so a parse
  // failure means a torn write (crash inside acquire) or a foreign file;
  // both are stale by definition.
  const std::size_t pid_at = body.find("\"pid\":");
  const std::size_t ttl_at = body.find("\"ttl_ms\":");
  if (pid_at == std::string::npos || ttl_at == std::string::npos) return obs;
  char* end = nullptr;
  const long pid = std::strtol(body.c_str() + pid_at + 6, &end, 10);
  const double ttl = std::strtod(body.c_str() + ttl_at + 9, &end);
  if (pid <= 0 || ttl <= 0.0) return obs;
  obs.parsed = true;
  obs.pid = static_cast<pid_t>(pid);
  obs.ttl_ms = ttl;
  // kill(pid, 0) probes existence; EPERM still means "exists".
  obs.pid_alive = ::kill(obs.pid, 0) == 0 || errno == EPERM;
  bool ok = false;
  obs.age_ms = file_age_ms(path, ok);
  if (!ok) obs.exists = false;  // vanished between read and stat: released
  return obs;
}

bool lease_is_stale(const LeaseObservation& obs) {
  if (!obs.exists) return false;  // nothing to break
  if (!obs.parsed) return true;   // torn or foreign: never a live holder
  return !obs.pid_alive || obs.age_ms > obs.ttl_ms;
}

bool break_lease_if_stale(const std::string& path) {
  const LeaseObservation obs = observe_lease(path);
  if (!lease_is_stale(obs)) return false;
  return ::unlink(path.c_str()) == 0;
}

std::optional<FileLease> FileLease::try_acquire(const std::string& path, double ttl_ms) {
  int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0 && errno == ENOENT) {
    // First lease under a directory nobody has published into yet (the
    // cache creates dirs on write): create it and retry once.
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    std::error_code ec;
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  }
  if (fd < 0) return std::nullopt;  // held elsewhere, or the dir is broken
  const std::string body = "{\"pid\":" + std::to_string(::getpid()) +
                           ",\"ttl_ms\":" + std::to_string(static_cast<long>(ttl_ms)) + "}\n";
  const bool wrote = io::write_all(fd, body);
  ::close(fd);
  if (!wrote) {
    // A lease nobody can parse would only be broken by TTL expiry; remove it
    // now and report contention instead.
    ::unlink(path.c_str());
    return std::nullopt;
  }
  return FileLease(path);
}

FileLease::FileLease(FileLease&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

FileLease& FileLease::operator=(FileLease&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void FileLease::release() {
  if (path_.empty()) return;
  ::unlink(path_.c_str());
  path_.clear();
}

}  // namespace rw::util
