#include "util/interp.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rw::util {

Axis::Axis(std::vector<double> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("Axis: needs at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (!(points_[i] > points_[i - 1])) {
      throw std::invalid_argument("Axis: points must be strictly increasing at index " +
                                  std::to_string(i));
    }
  }
}

std::size_t Axis::bracket(double x) const {
  if (points_.size() < 2) return 0;
  // Binary search for the last segment start <= x, clamped.
  std::size_t lo = 0;
  std::size_t hi = points_.size() - 2;
  if (x <= points_[1]) return 0;
  if (x >= points_[hi]) return hi;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (points_[mid] <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double Axis::weight(std::size_t seg, double x) const {
  const double x0 = points_[seg];
  const double x1 = points_[seg + 1];
  return (x - x0) / (x1 - x0);
}

Table1D::Table1D(Axis axis, std::vector<double> values)
    : axis_(std::move(axis)), values_(std::move(values)) {
  if (axis_.size() != values_.size()) {
    throw std::invalid_argument("Table1D: axis/value size mismatch");
  }
}

double Table1D::lookup(double x) const {
  if (values_.size() == 1) return values_[0];
  const std::size_t seg = axis_.bracket(x);
  const double t = axis_.weight(seg, x);
  return values_[seg] + t * (values_[seg + 1] - values_[seg]);
}

Table2D::Table2D(Axis x_axis, Axis y_axis, std::vector<double> values)
    : x_(std::move(x_axis)), y_(std::move(y_axis)), values_(std::move(values)) {
  if (x_.size() * y_.size() != values_.size()) {
    throw std::invalid_argument("Table2D: axis/value size mismatch");
  }
}

double Table2D::at(std::size_t i, std::size_t j) const { return values_[i * y_.size() + j]; }
double& Table2D::at(std::size_t i, std::size_t j) { return values_[i * y_.size() + j]; }

double Table2D::lookup(double x, double y) const {
  if (values_.size() == 1) return values_[0];
  if (x_.size() == 1) {
    // Degenerate in x: 1-D interpolation along y.
    const std::size_t js = y_.bracket(y);
    const double ty = y_.weight(js, y);
    return at(0, js) + ty * (at(0, js + 1) - at(0, js));
  }
  if (y_.size() == 1) {
    const std::size_t is = x_.bracket(x);
    const double tx = x_.weight(is, x);
    return at(is, 0) + tx * (at(is + 1, 0) - at(is, 0));
  }
  const std::size_t is = x_.bracket(x);
  const std::size_t js = y_.bracket(y);
  const double tx = x_.weight(is, x);
  const double ty = y_.weight(js, y);
  const double v00 = at(is, js);
  const double v01 = at(is, js + 1);
  const double v10 = at(is + 1, js);
  const double v11 = at(is + 1, js + 1);
  const double v0 = v00 + ty * (v01 - v00);
  const double v1 = v10 + ty * (v11 - v10);
  return v0 + tx * (v1 - v0);
}

namespace {

/// Candidate coordinates for the extrema search: the query endpoints plus
/// every axis knot strictly inside (lo, hi). Endpoints first so a degenerate
/// query evaluates exactly once at the query point.
void collect_candidates(const Axis& axis, double lo, double hi, std::vector<double>& out) {
  out.clear();
  out.push_back(lo);
  if (hi > lo) {
    for (std::size_t i = 0; i < axis.size(); ++i) {
      const double p = axis[i];
      if (p > lo && p < hi) out.push_back(p);
    }
    out.push_back(hi);
  }
}

/// Σ|w| of the 1-D linear weights {1 - t, t}: 1 inside the segment,
/// |1 - t| + |t| when extrapolating.
double weight_amp(const Axis& axis, double x) {
  if (axis.size() < 2) return 1.0;
  const std::size_t seg = axis.bracket(x);
  const double t = axis.weight(seg, x);
  const double amp = ((t < 0.0) ? -t : t) + ((t < 1.0) ? 1.0 - t : t - 1.0);
  return amp < 1.0 ? 1.0 : amp;
}

}  // namespace

TableRange table_range(const Table2D& table, double x_lo, double x_hi, double y_lo, double y_hi) {
  static thread_local std::vector<double> xs;
  static thread_local std::vector<double> ys;
  collect_candidates(table.x_axis(), x_lo, x_hi, xs);
  collect_candidates(table.y_axis(), y_lo, y_hi, ys);
  TableRange r;
  bool first = true;
  for (const double x : xs) {
    for (const double y : ys) {
      const double v = table.lookup(x, y);
      if (first) {
        r.lo = v;
        r.hi = v;
        first = false;
      } else {
        if (v < r.lo) r.lo = v;
        if (v > r.hi) r.hi = v;
      }
    }
  }
  // Extrapolation amplification is separable and monotone away from the
  // table, so the per-axis maximum is at a query endpoint.
  const double amp_x = std::max(weight_amp(table.x_axis(), x_lo), weight_amp(table.x_axis(), x_hi));
  const double amp_y = std::max(weight_amp(table.y_axis(), y_lo), weight_amp(table.y_axis(), y_hi));
  r.amp = amp_x * amp_y;
  return r;
}

}  // namespace rw::util
