#include "util/thread_pool.hpp"

#include "flow/cancel.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <memory>
#include <string>

namespace rw::util {

namespace {

/// Set while this thread is executing batch indices; nested parallel_for
/// calls detect it and run inline instead of re-entering the queue (which
/// could deadlock a fully-busy pool).
thread_local bool t_in_worker = false;

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RW_THREADS"); env != nullptr && *env != '\0') {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One parallel_for invocation: indices are claimed atomically, results go
/// into caller-owned slots, and the lowest-index exception wins so failure
/// behavior matches a serial loop.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t active = 0;  ///< threads currently inside run_indices (guarded by mutex)
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      batch = queue_.front();
      queue_.pop_front();
    }
    t_in_worker = true;
    run_indices(*batch);
    t_in_worker = false;
  }
}

void ThreadPool::run_indices(Batch& batch) {
  {
    std::lock_guard<std::mutex> lock(batch.mutex);
    ++batch.active;
  }
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) break;
    try {
      flow::throw_if_cancelled();
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.mutex);
      if (i < batch.error_index) {
        batch.error_index = i;
        batch.error = std::current_exception();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(batch.mutex);
    --batch.active;
  }
  batch.done_cv.notify_all();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Serial paths: trivial loops, a 1-wide pool, or a nested call from a
  // worker thread. Semantics (slot writes, lowest-index exception) are
  // identical by construction.
  if (n == 1 || workers_.empty() || t_in_worker) {
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        flow::throw_if_cancelled();
        body(i);
      } catch (...) {
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;
  // One queue entry per worker that could usefully help; each entry drains
  // indices until the batch is exhausted.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(batch);
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }

  run_indices(*batch);

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] {
    return batch->active == 0 && batch->next.load(std::memory_order_relaxed) >= batch->n;
  });
  // Workers that dequeued the batch but never claimed an index may still
  // touch batch fields; `active` accounting above covers them because they
  // increment before claiming. The shared_ptr keeps the Batch alive for any
  // worker still between dequeue and its first claim.
  if (batch->error) std::rethrow_exception(batch->error);
}

namespace {

std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool>& shared_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::size_t g_shared_threads = 0;  // 0 = default_thread_count() at creation

}  // namespace

ThreadPool& ThreadPool::shared() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  auto& pool = shared_slot();
  if (!pool) pool = std::make_unique<ThreadPool>(g_shared_threads);
  return *pool;
}

void set_shared_thread_count(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  g_shared_threads = n;
  auto& pool = shared_slot();
  const std::size_t want = n == 0 ? default_thread_count() : n;
  if (pool && pool->size() != want) pool.reset();
  // Recreated lazily by the next shared() call.
}

std::size_t consume_thread_flag(int& argc, char** argv) {
  std::size_t requested = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      value = argv[++i];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    }
    if (value != nullptr) {
      const long n = std::strtol(value, nullptr, 10);
      if (n > 0) requested = static_cast<std::size_t>(n);
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  if (requested > 0) set_shared_thread_count(requested);
  return requested;
}

}  // namespace rw::util
