#include "util/rng.hpp"

namespace rw::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  return next_u64() % bound;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

int Rng::uniform_int(int lo, int hi) {
  return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::chance(double probability) { return next_double() < probability; }

}  // namespace rw::util
