#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses (histograms for
/// Fig. 2, averages across circuits for Fig. 5/6).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rw::util {

double mean(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// p in [0, 1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// Fraction of entries satisfying x < 0 (used to report "share of gate delays
/// that *improve* under aging", Fig. 2 right).
double fraction_negative(std::span<const double> xs);

/// Fixed-width histogram.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;  ///< counts.size() bins over [lo, hi)
  std::size_t underflow = 0;
  std::size_t overflow = 0;

  [[nodiscard]] double bin_width() const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t total() const;
};

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins);

/// Render a histogram as fixed-width ASCII rows ("center  count  bar").
std::string render_histogram(const Histogram& h, std::size_t bar_width = 50);

}  // namespace rw::util
