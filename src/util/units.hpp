#pragma once

/// \file units.hpp
/// Unit conventions used throughout the library.
///
/// All physical quantities are carried as `double` with the unit fixed by
/// convention and encoded in variable/field names:
///   - time:        picoseconds   (`*_ps`)
///   - capacitance: femtofarads   (`*_ff`)
///   - voltage:     volts         (`*_v`)
///   - current:     microamperes  (`*_ua`)  (consistent with ps/fF/V: I = C dV/dt)
///   - area:        square micrometers (`*_um2`)
///
/// The ps/fF/V/uA system is internally consistent: 1 fF * 1 V / 1 ps = 1 mA;
/// we therefore scale currents by 1e3 so that C dV/dt in fF*V/ps equals
/// current in mA. To avoid mixed mental models the SPICE core works directly
/// in (ps, fF, V, mA); helper constants below convert to/from SI.

namespace rw::units {

inline constexpr double kPsPerSecond = 1e12;
inline constexpr double kFfPerFarad = 1e15;
inline constexpr double kSecondsPerYear = 3600.0 * 24.0 * 365.25;

/// Convert a lifetime expressed in years to seconds (used by the aging model,
/// which works in SI).
constexpr double years_to_seconds(double years) { return years * kSecondsPerYear; }

/// Boltzmann constant times temperature at 300 K, in eV (thermal voltage ~25.9 mV).
inline constexpr double kThermalVoltage300K = 0.02585;

/// Elementary charge in coulombs.
inline constexpr double kElementaryCharge = 1.602176634e-19;

}  // namespace rw::units
