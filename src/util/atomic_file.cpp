#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/io.hpp"

namespace rw::util {

namespace fs = std::filesystem;

namespace {

/// Unique temp sibling of `path`: pid distinguishes processes, the sequence
/// counter distinguishes threads/writes within one process.
std::string temp_sibling(const std::string& path) {
  static std::atomic<unsigned> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

[[noreturn]] void fail(const std::string& tmp, const std::string& what) {
  std::error_code ignore;
  fs::remove(tmp, ignore);
  throw std::runtime_error("write_file_atomic: " + what);
}

/// fsync the directory holding `path` so the rename itself is durable — a
/// power cut or SIGKILL right after publish must not resurrect the old file
/// (or no file). Best-effort: some filesystems refuse directory fsync, and
/// the rename is still atomic for every live observer.
void sync_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  while (::fsync(fd) != 0 && errno == EINTR) {
  }
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  const std::string tmp = temp_sibling(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
  if (!io::write_all(fd, content.data(), content.size())) {
    ::close(fd);
    fail(tmp, "write failed for " + tmp);
  }
  // Flush file *content* before the rename publishes the name: without this
  // ordering a crash can expose a fully renamed but zero-length file — the
  // torn cache entry the whole temp+rename dance exists to prevent.
  int rc = 0;
  while ((rc = ::fsync(fd)) != 0 && errno == EINTR) {
  }
  if (rc != 0) {
    ::close(fd);
    fail(tmp, "fsync failed for " + tmp + ": " + std::strerror(errno));
  }
  if (::close(fd) != 0) fail(tmp, "close failed for " + tmp + ": " + std::strerror(errno));
  fs::rename(tmp, path, ec);
  if (ec) fail(tmp, "rename to " + path + " failed: " + ec.message());
  sync_parent_dir(path);
}

bool write_file_atomic_nothrow(const std::string& path, std::string_view content) noexcept {
  try {
    write_file_atomic(path, content);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace rw::util
