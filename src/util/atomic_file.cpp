#include "util/atomic_file.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace rw::util {

namespace fs = std::filesystem;

namespace {

/// Unique temp sibling of `path`: pid distinguishes processes, the sequence
/// counter distinguishes threads/writes within one process.
std::string temp_sibling(const std::string& path) {
  static std::atomic<unsigned> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  const std::string tmp = temp_sibling(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      throw std::runtime_error("write_file_atomic: write failed for " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw std::runtime_error("write_file_atomic: rename to " + path + " failed: " + ec.message());
  }
}

bool write_file_atomic_nothrow(const std::string& path, std::string_view content) noexcept {
  try {
    write_file_atomic(path, content);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace rw::util
