#pragma once

/// \file interp.hpp
/// 1-D and 2-D lookup tables with linear interpolation and linear
/// extrapolation at the boundaries — the semantics used by Liberty NLDM
/// (non-linear delay model) tables.

#include <cstddef>
#include <vector>

namespace rw::util {

/// A strictly increasing axis of sample points.
///
/// `bracket()` returns the index i such that the query lies between
/// axis[i] and axis[i+1]; queries outside the range clamp to the first/last
/// segment (yielding linear extrapolation when used by the tables below).
class Axis {
 public:
  Axis() = default;
  /// \throws std::invalid_argument if fewer than 1 point or not strictly increasing.
  explicit Axis(std::vector<double> points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] double operator[](std::size_t i) const { return points_[i]; }
  [[nodiscard]] const std::vector<double>& points() const { return points_; }
  [[nodiscard]] double front() const { return points_.front(); }
  [[nodiscard]] double back() const { return points_.back(); }

  /// Segment index for interpolation; clamped to [0, size()-2].
  /// For a single-point axis returns 0 (callers must handle size()==1).
  [[nodiscard]] std::size_t bracket(double x) const;

  /// Interpolation weight t in segment `seg` (unclamped: <0 or >1 when
  /// extrapolating).
  [[nodiscard]] double weight(std::size_t seg, double x) const;

 private:
  std::vector<double> points_;
};

/// y = f(x) with linear interpolation/extrapolation.
class Table1D {
 public:
  Table1D() = default;
  /// \throws std::invalid_argument on size mismatch.
  Table1D(Axis axis, std::vector<double> values);

  [[nodiscard]] double lookup(double x) const;
  [[nodiscard]] const Axis& axis() const { return axis_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  Axis axis_;
  std::vector<double> values_;
};

/// z = f(x, y) with bilinear interpolation/extrapolation. Values are stored
/// row-major: value(i, j) corresponds to (x_axis[i], y_axis[j]).
class Table2D {
 public:
  Table2D() = default;
  /// \throws std::invalid_argument on size mismatch.
  Table2D(Axis x_axis, Axis y_axis, std::vector<double> values);

  [[nodiscard]] double lookup(double x, double y) const;
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;
  double& at(std::size_t i, std::size_t j);

  [[nodiscard]] const Axis& x_axis() const { return x_; }
  [[nodiscard]] const Axis& y_axis() const { return y_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::vector<double>& values() { return values_; }

  /// Element-wise transform helper (used e.g. to scale a table uniformly).
  template <typename Fn>
  void transform(Fn&& fn) {
    for (double& v : values_) v = fn(v);
  }

 private:
  Axis x_;
  Axis y_;
  std::vector<double> values_;
};

/// Exact range of a `Table2D` over an axis-aligned query rectangle, plus the
/// worst-case extrapolation amplification for certified per-entry error
/// bounds (see charlib/adaptive.hpp and sta/interval_sta.hpp).
struct TableRange {
  double lo = 0.0;
  double hi = 0.0;
  /// Max over the rectangle of Σ|w_i| for the bilinear weights w used by
  /// `lookup`. Exactly 1 inside the table; > 1 when the rectangle reaches
  /// into the linear-extrapolation region, where a per-entry error bound of
  /// b yields a lookup error bound of amp * b.
  double amp = 1.0;
};

/// Exact `[min, max]` of `table.lookup` over `[x_lo, x_hi] × [y_lo, y_hi]`
/// under the table's own piecewise-bilinear interpolation/extrapolation
/// semantics: the extrema of a piecewise-bilinear function over a box lie at
/// the box corners or on interior grid knots, so evaluating `lookup` at
/// those candidate points is exhaustive, and a degenerate rectangle
/// (x_lo == x_hi, y_lo == y_hi) reproduces `lookup(x, y)` bitwise.
/// \pre x_lo <= x_hi and y_lo <= y_hi.
TableRange table_range(const Table2D& table, double x_lo, double x_hi, double y_lo, double y_hi);

}  // namespace rw::util
