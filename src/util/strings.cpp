#include "util/strings.hpp"

#include <cstdio>
#include <cstdlib>

namespace rw::util {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return {};
  const auto last = text.find_last_not_of(" \t\r\n");
  return text.substr(first, last - first + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_lambda(double lambda) { return format_fixed(lambda, 2); }

std::string indexed_cell_name(std::string_view base, double lambda_p, double lambda_n) {
  std::string name{base};
  name += '_';
  name += format_lambda(lambda_p);
  name += '_';
  name += format_lambda(lambda_n);
  return name;
}

bool parse_indexed_cell_name(std::string_view name, std::string& base, double& lambda_p,
                             double& lambda_n) {
  // Expect <base>_<d.dd>_<d.dd>; search from the end.
  const auto last = name.rfind('_');
  if (last == std::string_view::npos || last == 0) return false;
  const auto prev = name.rfind('_', last - 1);
  if (prev == std::string_view::npos || prev == 0) return false;
  const std::string lp_str{name.substr(prev + 1, last - prev - 1)};
  const std::string ln_str{name.substr(last + 1)};
  char* end = nullptr;
  const double lp = std::strtod(lp_str.c_str(), &end);
  if (end == lp_str.c_str() || *end != '\0') return false;
  end = nullptr;
  const double ln = std::strtod(ln_str.c_str(), &end);
  if (end == ln_str.c_str() || *end != '\0') return false;
  if (lp < 0.0 || lp > 1.0 || ln < 0.0 || ln > 1.0) return false;
  base = std::string{name.substr(0, prev)};
  lambda_p = lp;
  lambda_n = ln;
  return true;
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace rw::util
