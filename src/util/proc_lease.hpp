#pragma once

/// \file proc_lease.hpp
/// Cross-process leader election over a lease *file*: `O_CREAT | O_EXCL`
/// guarantees exactly one process creates `<path>`, and that process is the
/// leader for whatever the lease guards (one (scenario, cell)
/// characterization in the factory's disk cache, the daemon's socket
/// ownership). Everyone else observes the lease and rendezvouses on the
/// leader's published result.
///
/// Crash tolerance is the point: a leader that dies mid-work leaves the file
/// behind, so a lease is *stale* — and may be broken by any observer — when
/// its recorded pid no longer exists, or when it has outlived its TTL
/// (covers pid recycling and wedged-but-alive leaders). The file body is one
/// JSON line `{"pid":N,"ttl_ms":N}`; age is measured from the file's mtime
/// so observers need no shared clock beyond the filesystem's.
///
/// Lint rule SV001 uses `observe_lease` to flag leases that expired without
/// ever being released (the footprint of a crashed worker).

#include <optional>
#include <string>

#include <sys/types.h>

namespace rw::util {

/// What an observer can learn about a lease file without holding it.
struct LeaseObservation {
  bool exists = false;
  bool parsed = false;   ///< body was a well-formed lease record
  pid_t pid = 0;         ///< recorded holder ("0" when !parsed)
  bool pid_alive = false;
  double ttl_ms = 0.0;
  double age_ms = 0.0;   ///< now - file mtime (clamped at 0)
};

/// Reads `<path>` and probes the recorded pid with `kill(pid, 0)`. A missing
/// file yields `exists == false`; an unparsable one yields `parsed == false`
/// (treated as stale — only a torn write or foreign file looks like that).
LeaseObservation observe_lease(const std::string& path);

/// A stale lease is safe to break: the file exists but its holder is
/// provably gone (dead pid) or it outlived its TTL (wedged or recycled pid).
bool lease_is_stale(const LeaseObservation& obs);

/// Unlinks `<path>` iff it is observably stale right now. Returns true when
/// the file was removed (the caller may then race others for acquisition).
bool break_lease_if_stale(const std::string& path);

/// RAII lease ownership; releasing unlinks the file. Move-only.
class FileLease {
 public:
  /// One shot at leadership: O_EXCL-creates `<path>` recording this process
  /// and `ttl_ms`. `std::nullopt` when the file already exists (someone else
  /// leads) or on I/O failure (treat as contention, not corruption).
  static std::optional<FileLease> try_acquire(const std::string& path, double ttl_ms);

  FileLease(FileLease&& other) noexcept;
  FileLease& operator=(FileLease&& other) noexcept;
  FileLease(const FileLease&) = delete;
  FileLease& operator=(const FileLease&) = delete;
  ~FileLease() { release(); }

  /// Unlinks the lease file (idempotent). Publish results *before* calling
  /// this: release is the signal observers rendezvous on.
  void release();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit FileLease(std::string path) : path_(std::move(path)) {}
  std::string path_;  ///< "" once released / moved from
};

}  // namespace rw::util
