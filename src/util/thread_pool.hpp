#pragma once

/// \file thread_pool.hpp
/// A fixed-size thread pool with a deterministic `parallel_for` — the
/// parallel-execution layer behind cell characterization. Design rules:
///
///  * Workers never append to shared containers; callers pre-size result
///    slots and each index writes only its own slot, so a 1-thread and an
///    N-thread run produce bitwise-identical results.
///  * `parallel_for` called from inside a pool worker runs the nested loop
///    inline on that worker (no deadlock, no oversubscription).
///  * Exceptions thrown by loop bodies are captured and the one from the
///    lowest index is rethrown on the calling thread after the loop drains,
///    so error reporting is also independent of the thread count.
///
/// The process-wide pool (`ThreadPool::shared()`) is sized from `RW_THREADS`
/// when set, else `std::thread::hardware_concurrency()`; benches and
/// examples override it via a `--threads N` flag (see `consume_thread_flag`).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rw::util {

/// Thread count from $RW_THREADS (when a positive integer), else
/// `hardware_concurrency()`, never less than 1. Read on every call so tests
/// and tools can adjust the environment before pools are built.
std::size_t default_thread_count();

class ThreadPool {
 public:
  /// `threads == 0` means `default_thread_count()`. A pool of size 1 spawns
  /// no workers at all; every `parallel_for` then runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width including the calling thread.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Invokes `body(i)` exactly once for every i in [0, n). The calling
  /// thread participates; returns only after all indices completed. Safe to
  /// call concurrently from several threads and from inside loop bodies
  /// (nested calls run inline).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// The process-wide pool, created on first use with
  /// `default_thread_count()` threads (or the last `set_shared_thread_count`
  /// value).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();
  static void run_indices(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

/// Resizes the pool returned by `ThreadPool::shared()`. `n == 0` restores
/// `default_thread_count()`. Must not race with in-flight `parallel_for`
/// calls on the shared pool — call it at program start (the `--threads`
/// flag) before characterization work begins.
void set_shared_thread_count(std::size_t n);

/// Scans argv for `--threads N` (or `--threads=N`), applies it via
/// `set_shared_thread_count`, and removes the flag from argv/argc so
/// positional argument parsing is unaffected. Returns the requested count
/// (0 when the flag is absent).
std::size_t consume_thread_flag(int& argc, char** argv);

}  // namespace rw::util
