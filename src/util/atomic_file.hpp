#pragma once

/// \file atomic_file.hpp
/// The one crash-safe file writer for every artifact the toolchain emits:
/// Liberty libraries, run manifests, flow checkpoints, bench JSON baselines,
/// and PGM images. Content is written to a unique temp sibling
/// (`<path>.tmp.<pid>.<seq>`), fsync'd, and published with an atomic rename
/// followed by a directory fsync, so a concurrent reader — or a reader after
/// `kill -9` mid-write, or after a power cut right after publish — only ever
/// sees the previous complete file or the new complete file, never a
/// truncated hybrid. Parent directories are created on demand.

#include <string>
#include <string_view>

namespace rw::util {

/// Atomically replaces `path` with `content` (binary-safe).
/// \throws std::runtime_error when the temp file cannot be written or the
/// rename fails (the temp file is cleaned up first).
void write_file_atomic(const std::string& path, std::string_view content);

/// Best-effort variant for optimization-only artifacts (caches,
/// checkpoints): failures are swallowed and reported via the return value,
/// never by an exception. Returns true when the rename landed.
bool write_file_atomic_nothrow(const std::string& path, std::string_view content) noexcept;

}  // namespace rw::util
