#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rw::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double t = rank - static_cast<double>(lo);
  return xs[lo] + t * (xs[hi] - xs[lo]);
}

double fraction_negative(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x < 0.0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

std::size_t Histogram::total() const {
  std::size_t n = underflow + overflow;
  for (std::size_t c : counts) n += c;
  return n;
}

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("make_histogram: bad range/bins");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    if (x < lo) {
      ++h.underflow;
    } else if (x >= hi) {
      ++h.overflow;
    } else {
      auto idx = static_cast<std::size_t>((x - lo) / w);
      if (idx >= bins) idx = bins - 1;  // guard against FP edge
      ++h.counts[idx];
    }
  }
  return h;
}

std::string render_histogram(const Histogram& h, std::size_t bar_width) {
  std::ostringstream os;
  std::size_t max_count = 1;
  for (std::size_t c : h.counts) max_count = std::max(max_count, c);
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::size_t len = h.counts[i] * bar_width / max_count;
    os.setf(std::ios::fixed);
    os.precision(1);
    os.width(8);
    os << h.bin_center(i) << "  ";
    os.width(8);
    os << h.counts[i] << "  " << std::string(len, '#') << '\n';
  }
  if (h.underflow != 0) os << "  underflow: " << h.underflow << '\n';
  if (h.overflow != 0) os << "  overflow:  " << h.overflow << '\n';
  return os.str();
}

}  // namespace rw::util
