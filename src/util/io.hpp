#pragma once

/// \file io.hpp
/// EINTR-hardened POSIX I/O for the characterization service and every CLI
/// that talks over pipes or Unix-domain sockets. Raw `read`/`write`/`poll`
/// return EINTR whenever a signal lands — and the daemon *lives* on signals
/// (SIGCHLD from dying workers, SIGTERM drains) — so every byte that crosses
/// a process boundary goes through these retrying wrappers instead.
///
/// Also home to the SIGPIPE guard: a client that vanishes mid-response must
/// surface as an EPIPE error on the write path, never as a process-killing
/// signal, so daemons and CLIs call `ignore_sigpipe()` once at startup.

#include <string>

namespace rw::util::io {

/// Makes SIGPIPE a no-op for the whole process (idempotent). A dead peer
/// then reports as EPIPE from `write`, which callers handle like any other
/// I/O failure.
void ignore_sigpipe();

/// `read(fd, ...)` retrying EINTR. Returns the byte count, 0 at EOF, or -1
/// with errno set (never EINTR).
long read_some(int fd, void* buf, std::size_t n);

/// Writes all `n` bytes, retrying EINTR and short writes. Returns false with
/// errno set on any hard failure (EPIPE, ECONNRESET, ...).
bool write_all(int fd, const void* buf, std::size_t n);
bool write_all(int fd, const std::string& data);

/// `poll` on one fd for `events`, retrying EINTR (the remaining timeout is
/// re-derived from a steady clock). Returns >0 when ready (revents), 0 on
/// timeout, -1 on error. `timeout_ms < 0` blocks indefinitely.
int poll_one(int fd, short events, int timeout_ms);

/// O_NONBLOCK on/off; returns false on fcntl failure.
bool set_nonblocking(int fd, bool enabled);

/// Creates, binds, and listens on a Unix-domain stream socket. An existing
/// socket file that refuses connections (a dead daemon's leftover) is
/// unlinked and rebound; a *live* one makes this throw, so two daemons never
/// fight over one path. \throws std::runtime_error on any socket failure.
int listen_unix(const std::string& path, int backlog);

/// Connects to a Unix-domain stream socket. Returns the fd, or -1 with errno
/// set (ECONNREFUSED for a stale socket file, ENOENT for none at all).
int connect_unix(const std::string& path);

/// Buffered newline-framed reader over a blocking fd — the receive half of
/// the serve protocol (one JSON document per line).
class LineReader {
 public:
  enum class Status {
    kLine,     ///< a complete line was read (returned without the '\n')
    kEof,      ///< peer closed; no complete line buffered
    kTimeout,  ///< timeout_ms elapsed without a complete line
    kError,    ///< read failed (errno preserved)
  };

  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads until a full line, EOF, error, or timeout. `timeout_ms < 0`
  /// blocks; `timeout_ms == 0` consumes whatever is already readable
  /// without blocking (the event-loop drain mode). EINTR never surfaces. A
  /// trailing partial line at EOF is reported as kEof (the protocol treats
  /// torn frames as peer death).
  Status read_line(std::string& line, int timeout_ms = -1);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace rw::util::io
