#include "util/io.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace rw::util::io {

namespace {

int steady_ms_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
}

/// Binds `addr` from `path`, throwing when the path exceeds sun_path.
sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long (" + std::to_string(path.size()) +
                             " >= " + std::to_string(sizeof(addr.sun_path)) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

long read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::read(fd, buf, n);
    if (got >= 0) return static_cast<long>(got);
    if (errno != EINTR) return -1;
  }
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote > 0) {
      p += wrote;
      n -= static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;  // 0 or a hard error (EPIPE with SIGPIPE ignored, ...)
  }
  return true;
}

bool write_all(int fd, const std::string& data) { return write_all(fd, data.data(), data.size()); }

int poll_one(int fd, short events, int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    int remaining = timeout_ms;
    if (timeout_ms > 0) {
      remaining = timeout_ms - steady_ms_since(t0);
      if (remaining <= 0) return 0;
    }
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc > 0) return pfd.revents;
    if (rc == 0) return 0;
    if (errno != EINTR) return -1;
  }
}

bool set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_addr(path);
  // A leftover socket file from a crashed daemon would make bind() fail with
  // EADDRINUSE. Probe it: refused/absent means dead (unlink and take over);
  // a successful connect means a live daemon owns the path.
  const int probe = connect_unix(path);
  if (probe >= 0) {
    ::close(probe);
    throw std::runtime_error("another daemon is live on " + path);
  }
  ::unlink(path.c_str());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX): " + std::string(std::strerror(errno)));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind " + path + ": " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error("listen " + path + ": " + err);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  try {
    addr = unix_addr(path);
  } catch (const std::exception&) {
    errno = ENAMETOOLONG;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
}

LineReader::Status LineReader::read_line(std::string& line, int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (timeout_ms >= 0) {
      // timeout 0 = "consume whatever is already readable, never block":
      // the poll below runs with 0 and gates the read.
      int remaining = 0;
      if (timeout_ms > 0) {
        remaining = timeout_ms - steady_ms_since(t0);
        if (remaining <= 0) return Status::kTimeout;
      }
      const int ready = poll_one(fd_, POLLIN, remaining);
      if (ready == 0) return Status::kTimeout;
      if (ready < 0) return Status::kError;
    }
    char chunk[4096];
    const long got = read_some(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // raced the poll
      return Status::kError;
    }
    if (got == 0) return Status::kEof;
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

}  // namespace rw::util::io
