#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation. Every stochastic element of
/// the reproduction (workload stimulus, synthetic images, randomized tests)
/// draws from this generator with an explicit seed, so all experiments are
/// bit-reproducible across runs and platforms.

#include <cstdint>

namespace rw::util {

/// xoshiro256** — fast, high-quality, tiny state; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias for practical purposes.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Bernoulli trial.
  bool chance(double probability);

 private:
  std::uint64_t s_[4];
};

}  // namespace rw::util
