#pragma once

/// \file table.hpp
/// NLDM timing tables: delay and output slew as bilinear functions of
/// (input slew, output load), exactly as in Liberty `cell_rise`/`cell_fall`/
/// `rise_transition`/`fall_transition` groups.

#include <string>

#include "util/interp.hpp"

namespace rw::liberty {

struct TimingTable {
  util::Table2D delay_ps;     ///< (input_slew_ps, load_ff) -> propagation delay
  util::Table2D out_slew_ps;  ///< (input_slew_ps, load_ff) -> output transition time

  [[nodiscard]] bool empty() const { return delay_ps.values().empty(); }
};

/// Timing sense of an input->output arc (Liberty `timing_sense`).
enum class TimingSense { kPositiveUnate, kNegativeUnate, kNonUnate };

const char* to_string(TimingSense sense);
TimingSense sense_from_string(const std::string& text);

/// One characterized input->output arc. `rise`/`fall` are indexed by the
/// *output* transition direction (Liberty convention); the input edge that
/// causes each output edge follows from `sense` (for non-unate arcs both
/// input edges are assumed possible and STA takes the worst).
struct TimingArc {
  std::string related_pin;
  TimingSense sense = TimingSense::kNonUnate;
  bool clocked = false;  ///< true for the CK->Q arc of a flop
  TimingTable rise;      ///< output rising
  TimingTable fall;      ///< output falling
};

}  // namespace rw::liberty
