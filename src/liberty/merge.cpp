#include "liberty/merge.hpp"

#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace rw::liberty {

Library merge_libraries(const std::vector<ScenarioLibrary>& parts,
                        const std::string& merged_name) {
  Library merged(merged_name);
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& part : parts) {
    if (part.library == nullptr) throw std::invalid_argument("merge_libraries: null library");
    const std::string lp = util::format_lambda(part.scenario.lambda_p);
    const std::string ln = util::format_lambda(part.scenario.lambda_n);
    if (!seen.emplace(lp, ln).second) {
      throw std::invalid_argument("merge_libraries: duplicate lambda index " + lp + "/" + ln);
    }
    for (const auto& cell : part.library->cells()) {
      Cell copy = cell;
      copy.name =
          util::indexed_cell_name(cell.name, part.scenario.lambda_p, part.scenario.lambda_n);
      merged.add_cell(std::move(copy));
    }
  }
  return merged;
}

}  // namespace rw::liberty
