#pragma once

/// \file parser.hpp
/// Parser for the Liberty subset produced by writer.hpp (and tolerant of
/// ordinary Liberty whitespace/comment conventions). Round-trips everything
/// the data model holds.

#include <string>

#include "liberty/library.hpp"

namespace rw::liberty {

/// \throws std::runtime_error with a line-numbered message on syntax errors.
Library parse_library(const std::string& text);

/// \throws std::runtime_error on I/O or syntax errors.
Library parse_library_file(const std::string& path);

}  // namespace rw::liberty
