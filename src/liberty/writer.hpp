#pragma once

/// \file writer.hpp
/// Serializes a Library to a Liberty-style text format (a faithful subset of
/// Synopsys Liberty syntax, with a few `rw_*` extension attributes carrying
/// function truth tables and family/drive metadata so that a round trip
/// through the parser is lossless). The paper publishes its 121
/// degradation-aware libraries in Liberty form for direct tool-flow use;
/// this writer plays that role here and doubles as the characterization
/// disk-cache format.

#include <string>

#include "liberty/library.hpp"

namespace rw::liberty {

/// Renders the whole library.
std::string write_library(const Library& library);

/// Writes to a file. \throws std::runtime_error on I/O failure.
void write_library_file(const Library& library, const std::string& path);

}  // namespace rw::liberty
