#include "liberty/library.hpp"

#include <algorithm>
#include <stdexcept>

namespace rw::liberty {

std::vector<const Pin*> Cell::input_pins() const {
  std::vector<const Pin*> out;
  for (const auto& p : pins) {
    if (p.is_input) out.push_back(&p);
  }
  return out;
}

int Cell::n_inputs() const {
  int n = 0;
  for (const auto& p : pins) {
    if (p.is_input) ++n;
  }
  return n;
}

const Pin* Cell::find_pin(const std::string& pin_name) const {
  for (const auto& p : pins) {
    if (p.name == pin_name) return &p;
  }
  return nullptr;
}

double Cell::input_cap_ff(const std::string& pin_name) const {
  const Pin* p = find_pin(pin_name);
  if (p == nullptr || !p->is_input) {
    throw std::out_of_range("Cell::input_cap_ff: no input pin " + pin_name + " on " + name);
  }
  return p->cap_ff;
}

const TimingArc* Cell::arc_from(const std::string& related_pin) const {
  for (const auto& a : arcs) {
    if (a.related_pin == related_pin) return &a;
  }
  return nullptr;
}

Library::Library(std::string name) : name_(std::move(name)) {}

void Library::add_cell(Cell cell) {
  if (index_.contains(cell.name)) {
    throw std::invalid_argument("Library::add_cell: duplicate cell " + cell.name);
  }
  index_.emplace(cell.name, cells_.size());
  cells_.push_back(std::move(cell));
}

const Cell* Library::find(const std::string& cell_name) const {
  const auto it = index_.find(cell_name);
  return it == index_.end() ? nullptr : &cells_[it->second];
}

const Cell& Library::at(const std::string& cell_name) const {
  const Cell* c = find(cell_name);
  if (c == nullptr) {
    throw std::out_of_range("Library::at: no cell " + cell_name + " in " + name_);
  }
  return *c;
}

std::vector<const Cell*> Library::family(const std::string& family_name) const {
  std::vector<const Cell*> out;
  for (const auto& c : cells_) {
    if (c.family == family_name) out.push_back(&c);
  }
  std::sort(out.begin(), out.end(),
            [](const Cell* a, const Cell* b) { return a->drive_x < b->drive_x; });
  return out;
}

}  // namespace rw::liberty
