#pragma once

/// \file merge.hpp
/// Merging per-scenario degradation-aware libraries into one *complete*
/// library (Section 4.1 of the paper): each cell is replicated per aging
/// corner and renamed `<cell>_<λp>_<λn>` (e.g. AND2_X1_0.40_0.60), so that a
/// workload-annotated netlist can be timed against a single library that
/// contains the delays of every cell under every (λp, λn) stress.

#include <vector>

#include "aging/scenario.hpp"
#include "liberty/library.hpp"

namespace rw::liberty {

struct ScenarioLibrary {
  aging::AgingScenario scenario;
  const Library* library = nullptr;
};

/// Builds the merged ("complete") library. Cell names gain the λ index; all
/// other cell data is copied verbatim. \throws std::invalid_argument if two
/// entries share the same (λp, λn) index.
Library merge_libraries(const std::vector<ScenarioLibrary>& parts,
                        const std::string& merged_name = "reliaware_complete");

}  // namespace rw::liberty
