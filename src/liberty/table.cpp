#include "liberty/table.hpp"

#include <stdexcept>
#include <string>

namespace rw::liberty {

const char* to_string(TimingSense sense) {
  switch (sense) {
    case TimingSense::kPositiveUnate:
      return "positive_unate";
    case TimingSense::kNegativeUnate:
      return "negative_unate";
    case TimingSense::kNonUnate:
      return "non_unate";
  }
  return "non_unate";
}

TimingSense sense_from_string(const std::string& text) {
  if (text == "positive_unate") return TimingSense::kPositiveUnate;
  if (text == "negative_unate") return TimingSense::kNegativeUnate;
  if (text == "non_unate") return TimingSense::kNonUnate;
  throw std::invalid_argument("sense_from_string: unknown timing_sense '" + text + "'");
}

}  // namespace rw::liberty
