#include "liberty/parser.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace rw::liberty {

namespace {

/// Generic Liberty group tree: `name (args) { attr : value; subgroups... }`.
struct Group {
  std::string name;
  std::vector<std::string> args;
  std::vector<std::pair<std::string, std::string>> attributes;
  /// Complex attributes: `name ("a", "b", ...);` — e.g. index_1 / values.
  std::vector<std::pair<std::string, std::vector<std::string>>> complex_attrs;
  std::vector<Group> children;

  [[nodiscard]] const std::string* attr(const std::string& key) const {
    for (const auto& [k, v] : attributes) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::vector<std::string>* complex_attr(const std::string& key) const {
    for (const auto& [k, v] : complex_attrs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  struct Token {
    enum class Kind { kIdent, kString, kPunct, kEnd } kind = Kind::kEnd;
    std::string value;
    int line = 0;
  };

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = Token::Kind::kEnd;
      return t;
    }
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
          pos_ += 2;  // line continuation inside a string
          ++line_;
          continue;
        }
        if (text_[pos_] == '\n') ++line_;
        s += text_[pos_++];
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      ++pos_;
      t.kind = Token::Kind::kString;
      t.value = std::move(s);
      return t;
    }
    if (std::string("{}();:,").find(c) != std::string::npos) {
      ++pos_;
      t.kind = Token::Kind::kPunct;
      t.value = std::string(1, c);
      return t;
    }
    std::string s;
    while (pos_ < text_.size() &&
           std::string(" \t\r\n{}();:,\"").find(text_[pos_]) == std::string::npos) {
      s += text_[pos_++];
    }
    if (s.empty()) fail("unexpected character");
    t.kind = Token::Kind::kIdent;
    t.value = std::move(s);
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("liberty parse error at line " + std::to_string(line_) + ": " +
                             message);
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < text_.size() &&
                 (text_[pos_ + 1] == '\n' || text_[pos_ + 1] == '\r')) {
        pos_ += 2;  // line continuation
        ++line_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() && !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= text_.size()) fail("unterminated comment");
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }

  Group parse_group() {
    expect_ident();
    Group g;
    g.name = token_.value;
    advance();
    expect_punct("(");
    advance();
    while (!is_punct(")")) {
      if (token_.kind == Lexer::Token::Kind::kIdent ||
          token_.kind == Lexer::Token::Kind::kString) {
        g.args.push_back(token_.value);
        advance();
      } else if (is_punct(",")) {
        advance();
      } else {
        lexer_.fail("unexpected token in group arguments");
      }
    }
    advance();  // ')'
    if (is_punct(";")) {
      advance();  // statement group without body (complex attribute at top)
      return g;
    }
    expect_punct("{");
    advance();
    while (!is_punct("}")) {
      parse_statement(g);
    }
    advance();  // '}'
    return g;
  }

 private:
  void parse_statement(Group& parent) {
    expect_ident();
    const std::string name = token_.value;
    advance();
    if (is_punct(":")) {
      advance();
      std::string value;
      // Value may span identifiers/strings until ';'.
      while (!is_punct(";")) {
        if (token_.kind == Lexer::Token::Kind::kEnd) lexer_.fail("missing ';' after attribute");
        if (!value.empty()) value += ' ';
        value += token_.value;
        advance();
      }
      advance();  // ';'
      parent.attributes.emplace_back(name, value);
      return;
    }
    if (is_punct("(")) {
      // Either a complex attribute `name (...);` or a subgroup `name (...) { }`.
      advance();
      std::vector<std::string> args;
      while (!is_punct(")")) {
        if (token_.kind == Lexer::Token::Kind::kIdent ||
            token_.kind == Lexer::Token::Kind::kString) {
          args.push_back(token_.value);
          advance();
        } else if (is_punct(",")) {
          advance();
        } else {
          lexer_.fail("unexpected token in attribute arguments");
        }
      }
      advance();  // ')'
      if (is_punct(";")) {
        advance();
        parent.complex_attrs.emplace_back(name, std::move(args));
        return;
      }
      expect_punct("{");
      advance();
      Group child;
      child.name = name;
      child.args = std::move(args);
      while (!is_punct("}")) parse_statement(child);
      advance();
      parent.children.push_back(std::move(child));
      return;
    }
    lexer_.fail("expected ':' or '(' after identifier '" + name + "'");
  }

  void advance() { token_ = lexer_.next(); }
  bool is_punct(const char* p) const {
    return token_.kind == Lexer::Token::Kind::kPunct && token_.value == p;
  }
  void expect_punct(const char* p) {
    if (!is_punct(p)) lexer_.fail(std::string("expected '") + p + "'");
  }
  void expect_ident() {
    if (token_.kind != Lexer::Token::Kind::kIdent) lexer_.fail("expected identifier");
  }

  Lexer lexer_;
  Lexer::Token token_;
};

std::vector<double> parse_number_list(const std::vector<std::string>& args) {
  std::vector<double> out;
  for (const auto& arg : args) {
    for (const auto& tok : util::split(arg, ", \t\n")) {
      out.push_back(std::strtod(tok.c_str(), nullptr));
    }
  }
  return out;
}

util::Table2D parse_table(const Group& g) {
  const auto* idx1 = g.complex_attr("index_1");
  const auto* idx2 = g.complex_attr("index_2");
  const auto* values = g.complex_attr("values");
  if (idx1 == nullptr || idx2 == nullptr || values == nullptr) {
    throw std::runtime_error("liberty parse error: table group '" + g.name +
                             "' missing index_1/index_2/values");
  }
  return util::Table2D(util::Axis(parse_number_list(*idx1)), util::Axis(parse_number_list(*idx2)),
                       parse_number_list(*values));
}

TimingArc parse_arc(const Group& g) {
  TimingArc arc;
  if (const auto* rp = g.attr("related_pin")) arc.related_pin = *rp;
  if (const auto* sense = g.attr("timing_sense")) arc.sense = sense_from_string(*sense);
  if (const auto* tt = g.attr("timing_type")) arc.clocked = (*tt == "rising_edge");
  for (const auto& child : g.children) {
    if (child.name == "cell_rise") arc.rise.delay_ps = parse_table(child);
    if (child.name == "rise_transition") arc.rise.out_slew_ps = parse_table(child);
    if (child.name == "cell_fall") arc.fall.delay_ps = parse_table(child);
    if (child.name == "fall_transition") arc.fall.out_slew_ps = parse_table(child);
  }
  return arc;
}

Cell parse_cell(const Group& g) {
  Cell cell;
  if (g.args.empty()) throw std::runtime_error("liberty parse error: cell without a name");
  cell.name = g.args.front();
  if (const auto* a = g.attr("area")) cell.area_um2 = std::strtod(a->c_str(), nullptr);
  if (const auto* f = g.attr("rw_family")) cell.family = *f;
  if (const auto* d = g.attr("rw_drive")) cell.drive_x = std::atoi(d->c_str());
  if (const auto* fl = g.attr("rw_is_flop")) cell.is_flop = (*fl == "true");
  if (const auto* s = g.attr("rw_setup")) cell.setup_ps = std::strtod(s->c_str(), nullptr);
  if (const auto* h = g.attr("rw_hold")) cell.hold_ps = std::strtod(h->c_str(), nullptr);
  if (const auto* t = g.attr("rw_truth")) cell.truth = std::strtoull(t->c_str(), nullptr, 10);
  if (const auto* fb = g.complex_attr("rw_fallback")) {
    for (const auto& entry : *fb) {
      const auto parts = util::split(entry, ":");
      if (parts.size() != 4) {
        throw std::runtime_error("liberty parse error: malformed rw_fallback entry '" + entry +
                                 "' in cell " + cell.name);
      }
      FallbackPoint f;
      f.related_pin = parts[0];
      f.rising = (parts[1] == "rise");
      f.slew_index = std::atoi(parts[2].c_str());
      f.load_index = std::atoi(parts[3].c_str());
      cell.fallbacks.push_back(std::move(f));
    }
  }
  if (const auto* ip = g.complex_attr("rw_interp")) {
    if (ip->size() != 1) {
      throw std::runtime_error("liberty parse error: rw_interp takes one entry in cell " +
                               cell.name);
    }
    const auto parts = util::split(ip->front(), ":");
    if (parts.size() != 5) {
      throw std::runtime_error("liberty parse error: malformed rw_interp entry '" + ip->front() +
                               "' in cell " + cell.name);
    }
    InterpMarker m;
    m.lambda_p_lo = std::strtod(parts[0].c_str(), nullptr);
    m.lambda_p_hi = std::strtod(parts[1].c_str(), nullptr);
    m.lambda_n_lo = std::strtod(parts[2].c_str(), nullptr);
    m.lambda_n_hi = std::strtod(parts[3].c_str(), nullptr);
    m.bound_ps = std::strtod(parts[4].c_str(), nullptr);
    cell.interp = m;
  }
  for (const auto& child : g.children) {
    if (child.name != "pin") continue;
    Pin pin;
    pin.name = child.args.empty() ? "" : child.args.front();
    if (const auto* dir = child.attr("direction")) pin.is_input = (*dir == "input");
    if (const auto* cap = child.attr("capacitance")) pin.cap_ff = std::strtod(cap->c_str(), nullptr);
    if (const auto* ck = child.attr("clock")) pin.is_clock = (*ck == "true");
    if (!pin.is_input) {
      cell.output_pin = pin.name;
      for (const auto& arc_group : child.children) {
        if (arc_group.name == "timing") cell.arcs.push_back(parse_arc(arc_group));
      }
    }
    cell.pins.push_back(std::move(pin));
  }
  return cell;
}

}  // namespace

Library parse_library(const std::string& text) {
  Parser parser(text);
  const Group root = parser.parse_group();
  if (root.name != "library") {
    throw std::runtime_error("liberty parse error: expected top-level 'library' group");
  }
  Library lib(root.args.empty() ? "unnamed" : root.args.front());
  for (const auto& child : root.children) {
    if (child.name == "cell") lib.add_cell(parse_cell(child));
  }
  return lib;
}

Library parse_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_library_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_library(ss.str());
}

}  // namespace rw::liberty
