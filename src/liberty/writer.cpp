#include "liberty/writer.hpp"

#include <sstream>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace rw::liberty {

namespace {

void write_axis(std::ostringstream& os, const char* key, const util::Axis& axis,
                const char* indent) {
  os << indent << key << " (\"";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i != 0) os << ", ";
    os << util::format_fixed(axis[i], 4);
  }
  os << "\");\n";
}

void write_table(std::ostringstream& os, const char* group, const util::Table2D& table,
                 const char* indent) {
  const std::string inner = std::string(indent) + "  ";
  os << indent << group << " () {\n";
  write_axis(os, "index_1", table.x_axis(), inner.c_str());
  write_axis(os, "index_2", table.y_axis(), inner.c_str());
  os << inner << "values ( \\\n";
  for (std::size_t i = 0; i < table.x_axis().size(); ++i) {
    os << inner << "  \"";
    for (std::size_t j = 0; j < table.y_axis().size(); ++j) {
      if (j != 0) os << ", ";
      os << util::format_fixed(table.at(i, j), 4);
    }
    os << "\"";
    os << (i + 1 == table.x_axis().size() ? " \\\n" : ", \\\n");
  }
  os << inner << ");\n";
  os << indent << "}\n";
}

void write_arc(std::ostringstream& os, const TimingArc& arc) {
  os << "    timing () {\n";
  os << "      related_pin : \"" << arc.related_pin << "\";\n";
  os << "      timing_sense : " << to_string(arc.sense) << ";\n";
  if (arc.clocked) os << "      timing_type : rising_edge;\n";
  if (!arc.rise.empty()) {
    write_table(os, "cell_rise", arc.rise.delay_ps, "      ");
    write_table(os, "rise_transition", arc.rise.out_slew_ps, "      ");
  }
  if (!arc.fall.empty()) {
    write_table(os, "cell_fall", arc.fall.delay_ps, "      ");
    write_table(os, "fall_transition", arc.fall.out_slew_ps, "      ");
  }
  os << "    }\n";
}

}  // namespace

std::string write_library(const Library& library) {
  std::ostringstream os;
  os << "/* degradation-aware cell library written by reliaware */\n";
  os << "library (" << library.name() << ") {\n";
  os << "  time_unit : \"1ps\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  voltage_unit : \"1V\";\n";
  for (const auto& cell : library.cells()) {
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << util::format_fixed(cell.area_um2, 4) << ";\n";
    os << "    rw_family : \"" << cell.family << "\";\n";
    os << "    rw_drive : " << cell.drive_x << ";\n";
    if (cell.is_flop) {
      os << "    rw_is_flop : true;\n";
      os << "    rw_setup : " << util::format_fixed(cell.setup_ps, 4) << ";\n";
      os << "    rw_hold : " << util::format_fixed(cell.hold_ps, 4) << ";\n";
    } else {
      os << "    rw_truth : " << cell.truth << ";\n";
    }
    if (!cell.fallbacks.empty()) {
      os << "    rw_fallback (";
      for (std::size_t i = 0; i < cell.fallbacks.size(); ++i) {
        const auto& f = cell.fallbacks[i];
        if (i != 0) os << ", ";
        os << '"' << f.related_pin << ':' << (f.rising ? "rise" : "fall") << ':' << f.slew_index
           << ':' << f.load_index << '"';
      }
      os << ");\n";
    }
    if (cell.interp.has_value()) {
      const InterpMarker& m = *cell.interp;
      os << "    rw_interp (\"" << util::format_fixed(m.lambda_p_lo, 4) << ':'
         << util::format_fixed(m.lambda_p_hi, 4) << ':' << util::format_fixed(m.lambda_n_lo, 4)
         << ':' << util::format_fixed(m.lambda_n_hi, 4) << ':'
         << util::format_fixed(m.bound_ps, 6) << "\");\n";
    }
    for (const auto& pin : cell.pins) {
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : " << (pin.is_input ? "input" : "output") << ";\n";
      if (pin.is_input) {
        os << "      capacitance : " << util::format_fixed(pin.cap_ff, 4) << ";\n";
        if (pin.is_clock) os << "      clock : true;\n";
      }
      if (!pin.is_input) {
        for (const auto& arc : cell.arcs) write_arc(os, arc);
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

void write_library_file(const Library& library, const std::string& path) {
  util::write_file_atomic(path, write_library(library));
}

}  // namespace rw::liberty
