#pragma once

/// \file library.hpp
/// The cell library data model: cells with pins, NLDM timing arcs, function
/// (truth table over input pins), area, and flop constraints. A `Library` is
/// what timing analysis and synthesis consume — plugging a degradation-aware
/// library into them is the paper's core mechanism.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/table.hpp"

namespace rw::liberty {

struct Pin {
  std::string name;
  bool is_input = true;
  bool is_clock = false;
  double cap_ff = 0.0;  ///< input pin capacitance (0 for outputs)
};

/// One OPC grid point whose SPICE solve never converged even through the
/// retry ladder; its table entry was interpolated from converged neighbors.
/// Carried through Liberty text as the `rw_fallback` complex attribute
/// ("<related_pin>:<rise|fall>:<slew_index>:<load_index>") so lint (LB006)
/// and STA consumers can see which entries are second-class data.
struct FallbackPoint {
  std::string related_pin;
  bool rising = true;   ///< rise table (else fall)
  int slew_index = 0;   ///< index into the table's slew axis
  int load_index = 0;   ///< index into the table's load axis

  [[nodiscard]] bool operator==(const FallbackPoint&) const = default;
};

/// Marks a cell whose tables were served by certified interpolation between
/// characterized λ-lattice corners instead of direct SPICE characterization
/// (the adaptive corner grid). Carried through Liberty text as the
/// `rw_interp` complex attribute
/// ("<λp_lo>:<λp_hi>:<λn_lo>:<λn_hi>:<bound_ps>") so lint (LB007) and flow
/// consumers can audit the certified error bound against their tolerance.
struct InterpMarker {
  double lambda_p_lo = 0.0;  ///< bracketing lattice corner, λp low side
  double lambda_p_hi = 0.0;
  double lambda_n_lo = 0.0;
  double lambda_n_hi = 0.0;
  /// Certified worst-case error over every interpolated entry [ps]: the true
  /// value lies within the bracketing corners' range for per-axis monotone
  /// aging response, so |error| <= max(v - min_corner, max_corner - v).
  double bound_ps = 0.0;

  [[nodiscard]] bool operator==(const InterpMarker&) const = default;
};

class Cell {
 public:
  std::string name;    ///< library name; merged libraries use "<base>_<λp>_<λn>"
  std::string family;  ///< function family, e.g. "NAND2" (drive sizing moves within it)
  int drive_x = 1;
  double area_um2 = 0.0;
  bool is_flop = false;
  double setup_ps = 0.0;  ///< flop setup constraint (0 for combinational)
  double hold_ps = 0.0;
  std::vector<Pin> pins;   ///< inputs first (truth-table bit order), then the output
  std::string output_pin;  ///< single-output cells only
  std::uint64_t truth = 0;  ///< over input pins in pin order; unused for flops
  std::vector<TimingArc> arcs;
  /// Interpolated (non-converged) grid points; empty for healthy cells.
  std::vector<FallbackPoint> fallbacks;
  /// Set when the whole cell was λ-interpolated (adaptive corner grid).
  std::optional<InterpMarker> interp;

  [[nodiscard]] std::vector<const Pin*> input_pins() const;
  [[nodiscard]] int n_inputs() const;
  [[nodiscard]] const Pin* find_pin(const std::string& pin_name) const;
  [[nodiscard]] double input_cap_ff(const std::string& pin_name) const;
  /// Arc whose related_pin matches; nullptr when absent.
  [[nodiscard]] const TimingArc* arc_from(const std::string& related_pin) const;
};

class Library {
 public:
  explicit Library(std::string name = "reliaware");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \throws std::invalid_argument on duplicate cell name.
  void add_cell(Cell cell);

  [[nodiscard]] const Cell* find(const std::string& cell_name) const;
  /// \throws std::out_of_range when absent.
  [[nodiscard]] const Cell& at(const std::string& cell_name) const;
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Cells of a family ordered by drive strength (for gate sizing).
  [[nodiscard]] std::vector<const Cell*> family(const std::string& family_name) const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace rw::liberty
