#pragma once

/// \file netlist.hpp
/// Transistor-level circuit description consumed by the transient solver —
/// the reproduction's equivalent of a SPICE deck. Elements: MOSFETs,
/// grounded/floating capacitors, resistors, and ideal voltage sources (DC or
/// piecewise-linear). Node 0 is always ground.

#include <optional>
#include <string>
#include <vector>

#include "device/mosfet.hpp"

namespace rw::spice {

using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Piecewise-linear voltage waveform (time in ps, value in V). Flat before
/// the first and after the last breakpoint.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(std::vector<std::pair<double, double>> points);

  /// A constant level.
  static Pwl dc(double volts);

  /// A linear transition from v0 to v1 whose 10–90 % transition time equals
  /// `slew_ps` (the Liberty slew convention used throughout this library);
  /// the full ramp therefore spans slew_ps / 0.8 centred on t_start_ps.
  static Pwl ramp(double t_start_ps, double slew_ps, double v0, double v1);

  [[nodiscard]] double value(double t_ps) const;
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }

  /// First breakpoint strictly after `t_ps` (the solver never steps across a
  /// source breakpoint).
  [[nodiscard]] std::optional<double> next_breakpoint(double t_ps) const;

 private:
  std::vector<std::pair<double, double>> points_;
};

struct MosfetElement {
  device::Mosfet model;
  NodeId gate;
  NodeId drain;
  NodeId source;
};

struct CapacitorElement {
  NodeId a;
  NodeId b;
  double cap_ff;
};

struct ResistorElement {
  NodeId a;
  NodeId b;
  double kohm;  ///< kΩ: with V in volts and I in mA, R = V/I is in kΩ
};

struct SourceElement {
  NodeId node;
  Pwl waveform;
};

/// A flat transistor-level circuit.
class Circuit {
 public:
  Circuit();

  /// Creates a node; names must be unique (ground is pre-created as "0").
  NodeId add_node(const std::string& name);
  /// \throws std::out_of_range if no node has this name.
  [[nodiscard]] NodeId node(const std::string& name) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] int node_count() const { return static_cast<int>(node_names_.size()); }

  void add_mosfet(device::Mosfet model, NodeId gate, NodeId drain, NodeId source);
  void add_capacitor(NodeId a, NodeId b, double cap_ff);
  void add_resistor(NodeId a, NodeId b, double kohm);
  /// Drives `node` with an ideal voltage source. A node can have at most one
  /// source; sourced nodes are eliminated from the solve.
  void add_source(NodeId node, Pwl waveform);

  [[nodiscard]] const std::vector<MosfetElement>& mosfets() const { return mosfets_; }
  [[nodiscard]] const std::vector<CapacitorElement>& capacitors() const { return capacitors_; }
  [[nodiscard]] const std::vector<ResistorElement>& resistors() const { return resistors_; }
  [[nodiscard]] const std::vector<SourceElement>& sources() const { return sources_; }
  [[nodiscard]] bool is_sourced(NodeId id) const;

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> node_names_;
  std::vector<MosfetElement> mosfets_;
  std::vector<CapacitorElement> capacitors_;
  std::vector<ResistorElement> resistors_;
  std::vector<SourceElement> sources_;
  std::vector<bool> sourced_;
};

}  // namespace rw::spice
