#pragma once

/// \file workspace.hpp
/// Structure-reusing sparse solve engine for the transient solver.
///
/// A standard-cell bench is a tiny circuit, but characterization runs
/// millions of Newton solves over the *same topology* (every OPC grid point,
/// Newton iteration, and timestep shares one connectivity). Rebuilding the
/// nodal system and assembling a dense finite-difference Jacobian from
/// scratch for each solve is where the seed characterizer spent its time.
///
/// `SolverWorkspace` is built once per circuit topology and reused for every
/// subsequent solve on that topology:
///  * the unknown-node mapping and MNA sparsity pattern are precomputed;
///  * a greedy minimum-degree ordering permutes the unknowns, and the LU
///    fill-in is computed symbolically once, so numeric refactorization is
///    an in-place sweep over precomputed row/column lists;
///  * the Jacobian is *stamped* analytically from `device::Mosfet`
///    derivatives (one model evaluation per device per iteration, instead of
///    n_unknowns+1 full residual sweeps of finite differencing);
///  * all stamp/RHS/solution buffers are owned by the workspace — a solve
///    performs no heap allocation.
///
/// Numeric robustness: the sparse path uses static (diagonal) pivoting,
/// which the gmin conductance keeps well-posed; if a pivot still collapses
/// the workspace transparently falls back to dense partial-pivot LU for that
/// iteration (counted in `SolverCounters::dense_fallbacks`) so convergence
/// behavior is never worse than the seed solver.
///
/// `workspace_for()` maintains a per-thread topology-keyed cache, which
/// makes reuse automatic across Newton iterations, timesteps, retry-ladder
/// rungs, OPC grid points, and λ corners without any API change for callers
/// — and keeps the workspace free of cross-thread sharing (TSan-clean by
/// construction).

#include <cstdint>
#include <string>
#include <vector>

#include "spice/netlist.hpp"

namespace rw::spice {

/// Thrown internally on a numerically singular pivot; `row` is the unknown
/// index (original, pre-ordering) of the offending pivot. Callers translate
/// it into a structured Newton failure with the node name attached.
struct SingularRow {
  int row;
};

class SolverWorkspace {
 public:
  explicit SolverWorkspace(const Circuit& circuit);

  /// Connectivity hash (nodes, sources, element terminals). Two circuits
  /// with equal signatures almost surely share a topology; `matches()`
  /// verifies exactly.
  static std::uint64_t topology_signature(const Circuit& circuit);

  [[nodiscard]] std::uint64_t signature() const { return signature_; }
  /// Exact connectivity equality with `circuit` (element values ignored).
  [[nodiscard]] bool matches(const Circuit& circuit) const;

  [[nodiscard]] int n_unknowns() const { return n_unknowns_; }
  [[nodiscard]] const std::vector<int>& unknown_index() const { return unknown_index_; }

  /// Full node-voltage vector with sources evaluated at `t_ps` (scaled by
  /// `source_scale`) and unknowns taken from `x`. Reuses no internal state;
  /// `v_full` is caller-owned so nested residual closures stay independent.
  void scatter(const Circuit& circuit, const std::vector<double>& x, double t_ps,
               double source_scale, std::vector<double>& v_full) const;

  // --- One Newton linear system: zero, stamp, (optionally poison), solve ---

  /// Zeroes the residual and every structurally reachable matrix position.
  void begin_stamp();

  /// Stamps device currents (+ analytic conductances), resistors, and the
  /// gmin leak for the static (DC) part of the residual/Jacobian.
  void stamp_static(const Circuit& circuit, const std::vector<double>& v_full,
                    double gmin_ma_per_v);

  /// Adds backward-Euler capacitor currents and conductances.
  void stamp_capacitors(const Circuit& circuit, const std::vector<double>& v_full,
                        const std::vector<double>& v_prev_full, double dt_ps);

  /// Adds the pseudo-transient homotopy's virtual capacitors: a `cap_ff`
  /// capacitor to ground on every unknown, integrated from `x_prev`.
  void stamp_virtual_caps(const std::vector<double>& x, const std::vector<double>& x_prev,
                          double cap_ff, double dt_ps);

  /// Poisons the residual with NaN (fault-injection hook).
  void poison_residual();

  /// Max |f| over the stamped residual; `worst_row` receives the original
  /// unknown index (NaN counts as worst). Returns 0 for empty systems.
  [[nodiscard]] double residual_max(int& worst_row) const;

  /// Solves J dx = -f for the stamped system, writing `dx` indexed by the
  /// original unknown order. Sparse refactorization first; dense
  /// partial-pivot fallback on pivot collapse. \throws SingularRow if even
  /// the dense path hits a singular column.
  void solve_newton_step(std::vector<double>& dx);

 private:
  void sparse_factor_and_solve(std::vector<double>& dx);
  void dense_factor_and_solve(std::vector<double>& dx);

  [[nodiscard]] std::size_t pos(int row, int col) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(n_unknowns_) +
           static_cast<std::size_t>(col);
  }
  /// Accumulates into the permuted matrix at original (row, col) unknowns.
  void add_jac(int row_u, int col_u, double v) {
    vals_[pos(perm_pos_[static_cast<std::size_t>(row_u)],
              perm_pos_[static_cast<std::size_t>(col_u)])] += v;
  }

  std::uint64_t signature_ = 0;
  std::vector<std::int32_t> topo_;  ///< exact connectivity record for matches()

  int n_unknowns_ = 0;
  std::vector<int> unknown_index_;  ///< node id -> unknown index (-1 = sourced)

  // Fill-reducing ordering: order_[k] = original unknown eliminated at step
  // k; perm_pos_ is its inverse (original -> permuted position).
  std::vector<int> order_;
  std::vector<int> perm_pos_;

  // Symbolic structure on the permuted matrix, including fill-in.
  std::vector<std::size_t> filled_positions_;  ///< every position touched by LU
  std::vector<std::vector<int>> rows_below_;   ///< per pivot k: rows r>k with (r,k)
  std::vector<std::vector<int>> cols_right_;   ///< per pivot k: cols c>k with (k,c)

  // Reusable numeric buffers (sized n x n; only pattern positions are used).
  std::vector<double> vals_;   ///< stamped Jacobian (permuted), factored in place
  std::vector<double> dense_;  ///< dense-fallback scratch copy
  std::vector<double> f_;      ///< residual, original unknown indexing
  std::vector<double> rhs_;    ///< permuted right-hand side / solution scratch
};

/// Per-thread topology-keyed workspace cache. The returned reference stays
/// valid for the lifetime of the calling thread; callers must not hold it
/// across a different circuit topology's solve on the same thread.
SolverWorkspace& workspace_for(const Circuit& circuit);

}  // namespace rw::spice
