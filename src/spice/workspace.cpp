#include "spice/workspace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "spice/stats.hpp"

namespace rw::spice {

namespace {

constexpr double kPivotMin = 1e-30;

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

/// Exact connectivity record: everything that determines the unknown
/// mapping and the sparsity pattern (element values excluded).
std::vector<std::int32_t> topology_record(const Circuit& circuit) {
  std::vector<std::int32_t> t;
  t.reserve(2 + circuit.sources().size() + 3 * circuit.mosfets().size() +
            2 * (circuit.resistors().size() + circuit.capacitors().size()));
  t.push_back(circuit.node_count());
  for (const auto& s : circuit.sources()) t.push_back(s.node);
  t.push_back(-1);
  for (const auto& m : circuit.mosfets()) {
    t.push_back(m.gate);
    t.push_back(m.drain);
    t.push_back(m.source);
  }
  t.push_back(-2);
  for (const auto& r : circuit.resistors()) {
    t.push_back(r.a);
    t.push_back(r.b);
  }
  t.push_back(-3);
  for (const auto& c : circuit.capacitors()) {
    t.push_back(c.a);
    t.push_back(c.b);
  }
  return t;
}

}  // namespace

std::uint64_t SolverWorkspace::topology_signature(const Circuit& circuit) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::int32_t v : topology_record(circuit)) {
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  return h;
}

bool SolverWorkspace::matches(const Circuit& circuit) const {
  return topo_ == topology_record(circuit);
}

SolverWorkspace::SolverWorkspace(const Circuit& circuit)
    : signature_(topology_signature(circuit)), topo_(topology_record(circuit)) {
  unknown_index_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
  for (NodeId n = 0; n < circuit.node_count(); ++n) {
    if (!circuit.is_sourced(n)) unknown_index_[static_cast<std::size_t>(n)] = n_unknowns_++;
  }
  const auto n = static_cast<std::size_t>(n_unknowns_);

  // Structural pattern in *original* unknown coordinates. The gmin leak puts
  // every diagonal in the pattern, which also keeps static pivoting sane.
  std::vector<char> structural(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) structural[i * n + i] = 1;
  const auto u_of = [&](NodeId node) { return unknown_index_[static_cast<std::size_t>(node)]; };
  const auto mark = [&](int r, int c) {
    if (r >= 0 && c >= 0) structural[static_cast<std::size_t>(r) * n + static_cast<std::size_t>(c)] = 1;
  };
  for (const auto& m : circuit.mosfets()) {
    const int ug = u_of(m.gate);
    const int ud = u_of(m.drain);
    const int us = u_of(m.source);
    for (const int row : {ud, us}) {
      mark(row, ug);
      mark(row, ud);
      mark(row, us);
    }
  }
  const auto mark_pair = [&](NodeId a, NodeId b) {
    const int ua = u_of(a);
    const int ub = u_of(b);
    mark(ua, ua);
    mark(ua, ub);
    mark(ub, ua);
    mark(ub, ub);
  };
  for (const auto& r : circuit.resistors()) mark_pair(r.a, r.b);
  for (const auto& c : circuit.capacitors()) mark_pair(c.a, c.b);

  // Greedy minimum-degree ordering on the symmetrized pattern: eliminate the
  // lowest-degree unknown, clique-connect its remaining neighbors, repeat.
  // Ties break on the lowest index so the ordering is deterministic.
  std::vector<char> sym(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (structural[r * n + c] != 0) sym[r * n + c] = sym[c * n + r] = 1;
    }
  }
  order_.resize(n);
  perm_pos_.resize(n);
  std::vector<char> alive(n, 1);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_deg = n + 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] == 0) continue;
      std::size_t deg = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i && alive[j] != 0 && sym[i * n + j] != 0) ++deg;
      }
      if (deg < best_deg) {
        best_deg = deg;
        best = i;
      }
    }
    order_[step] = static_cast<int>(best);
    perm_pos_[best] = static_cast<int>(step);
    alive[best] = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (alive[a] == 0 || sym[best * n + a] == 0) continue;
      for (std::size_t b = 0; b < n; ++b) {
        if (b != a && alive[b] != 0 && sym[best * n + b] != 0) sym[a * n + b] = 1;
      }
    }
  }

  // Permuted pattern + symbolic Gaussian elimination (fill-in), recorded as
  // per-pivot row/column lists for the in-place numeric kernel.
  std::vector<char> fill(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (structural[r * n + c] != 0) {
        fill[static_cast<std::size_t>(perm_pos_[r]) * n +
             static_cast<std::size_t>(perm_pos_[c])] = 1;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t r = k + 1; r < n; ++r) {
      if (fill[r * n + k] == 0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        if (fill[k * n + c] != 0) fill[r * n + c] = 1;
      }
    }
  }
  rows_below_.assign(n, {});
  cols_right_.assign(n, {});
  filled_positions_.clear();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (fill[r * n + c] == 0) continue;
      filled_positions_.push_back(r * n + c);
      if (r > c) rows_below_[c].push_back(static_cast<int>(r));
      if (c > r) cols_right_[r].push_back(static_cast<int>(c));
    }
  }

  vals_.assign(n * n, 0.0);
  dense_.assign(n * n, 0.0);
  f_.assign(n, 0.0);
  rhs_.assign(n, 0.0);
}

void SolverWorkspace::scatter(const Circuit& circuit, const std::vector<double>& x, double t_ps,
                              double source_scale, std::vector<double>& v_full) const {
  v_full.assign(static_cast<std::size_t>(circuit.node_count()), 0.0);
  for (const auto& src : circuit.sources()) {
    v_full[static_cast<std::size_t>(src.node)] = source_scale * src.waveform.value(t_ps);
  }
  for (NodeId node = 0; node < circuit.node_count(); ++node) {
    const int u = unknown_index_[static_cast<std::size_t>(node)];
    if (u >= 0) v_full[static_cast<std::size_t>(node)] = x[static_cast<std::size_t>(u)];
  }
}

void SolverWorkspace::begin_stamp() {
  std::fill(f_.begin(), f_.end(), 0.0);
  for (const std::size_t p : filled_positions_) vals_[p] = 0.0;
}

void SolverWorkspace::stamp_static(const Circuit& circuit, const std::vector<double>& v_full,
                                   double gmin_ma_per_v) {
  for (const auto& m : circuit.mosfets()) {
    const auto d = m.model.drain_current_derivs_ma(v_full[static_cast<std::size_t>(m.gate)],
                                                   v_full[static_cast<std::size_t>(m.drain)],
                                                   v_full[static_cast<std::size_t>(m.source)]);
    const int ug = unknown_index_[static_cast<std::size_t>(m.gate)];
    const int ud = unknown_index_[static_cast<std::size_t>(m.drain)];
    const int us = unknown_index_[static_cast<std::size_t>(m.source)];
    if (ud >= 0) {
      f_[static_cast<std::size_t>(ud)] -= d.id_ma;
      if (ug >= 0) add_jac(ud, ug, -d.did_dvg);
      if (ud >= 0) add_jac(ud, ud, -d.did_dvd);
      if (us >= 0) add_jac(ud, us, -d.did_dvs);
    }
    if (us >= 0) {
      f_[static_cast<std::size_t>(us)] += d.id_ma;
      if (ug >= 0) add_jac(us, ug, d.did_dvg);
      if (ud >= 0) add_jac(us, ud, d.did_dvd);
      add_jac(us, us, d.did_dvs);
    }
  }
  for (const auto& r : circuit.resistors()) {
    const double g = 1.0 / r.kohm;
    const double i_ab =
        (v_full[static_cast<std::size_t>(r.a)] - v_full[static_cast<std::size_t>(r.b)]) * g;
    const int ua = unknown_index_[static_cast<std::size_t>(r.a)];
    const int ub = unknown_index_[static_cast<std::size_t>(r.b)];
    if (ua >= 0) {
      f_[static_cast<std::size_t>(ua)] -= i_ab;
      add_jac(ua, ua, -g);
      if (ub >= 0) add_jac(ua, ub, g);
    }
    if (ub >= 0) {
      f_[static_cast<std::size_t>(ub)] += i_ab;
      add_jac(ub, ub, -g);
      if (ua >= 0) add_jac(ub, ua, g);
    }
  }
  for (NodeId node = 0; node < static_cast<NodeId>(unknown_index_.size()); ++node) {
    const int u = unknown_index_[static_cast<std::size_t>(node)];
    if (u < 0) continue;
    f_[static_cast<std::size_t>(u)] -= gmin_ma_per_v * v_full[static_cast<std::size_t>(node)];
    add_jac(u, u, -gmin_ma_per_v);
  }
}

void SolverWorkspace::stamp_capacitors(const Circuit& circuit, const std::vector<double>& v_full,
                                       const std::vector<double>& v_prev_full, double dt_ps) {
  for (const auto& c : circuit.capacitors()) {
    const double g = c.cap_ff / dt_ps;  // fF/ps = mA/V
    const double dv_now =
        v_full[static_cast<std::size_t>(c.a)] - v_full[static_cast<std::size_t>(c.b)];
    const double dv_prev =
        v_prev_full[static_cast<std::size_t>(c.a)] - v_prev_full[static_cast<std::size_t>(c.b)];
    const double i_ab = g * (dv_now - dv_prev);
    const int ua = unknown_index_[static_cast<std::size_t>(c.a)];
    const int ub = unknown_index_[static_cast<std::size_t>(c.b)];
    if (ua >= 0) {
      f_[static_cast<std::size_t>(ua)] -= i_ab;
      add_jac(ua, ua, -g);
      if (ub >= 0) add_jac(ua, ub, g);
    }
    if (ub >= 0) {
      f_[static_cast<std::size_t>(ub)] += i_ab;
      add_jac(ub, ub, -g);
      if (ua >= 0) add_jac(ub, ua, g);
    }
  }
}

void SolverWorkspace::stamp_virtual_caps(const std::vector<double>& x,
                                         const std::vector<double>& x_prev, double cap_ff,
                                         double dt_ps) {
  const double g = cap_ff / dt_ps;
  for (std::size_t i = 0; i < f_.size(); ++i) {
    f_[i] -= g * (x[i] - x_prev[i]);
    add_jac(static_cast<int>(i), static_cast<int>(i), -g);
  }
}

void SolverWorkspace::poison_residual() {
  if (!f_.empty()) f_[0] = std::numeric_limits<double>::quiet_NaN();
}

double SolverWorkspace::residual_max(int& worst_row) const {
  double fmax = 0.0;
  worst_row = 0;
  for (std::size_t i = 0; i < f_.size(); ++i) {
    if (!(std::fabs(f_[i]) <= fmax)) {  // also catches NaN
      fmax = std::fabs(f_[i]);
      worst_row = static_cast<int>(i);
    }
  }
  return fmax;
}

void SolverWorkspace::solve_newton_step(std::vector<double>& dx) {
  const auto n = static_cast<std::size_t>(n_unknowns_);
  dx.assign(n, 0.0);
  if (n == 0) return;
  for (std::size_t u = 0; u < n; ++u) rhs_[static_cast<std::size_t>(perm_pos_[u])] = -f_[u];
  sparse_factor_and_solve(dx);
}

void SolverWorkspace::sparse_factor_and_solve(std::vector<double>& dx) {
  const auto n = static_cast<std::size_t>(n_unknowns_);
  // Snapshot the stamped matrix first: the in-place factorization destroys
  // it, and a collapsed pivot then re-solves densely from the snapshot.
  std::copy(vals_.begin(), vals_.end(), dense_.begin());
  stats::add_factorization();
  bool ok = true;
  for (std::size_t k = 0; k < n && ok; ++k) {
    const double piv = vals_[k * n + k];
    if (!(std::fabs(piv) >= kPivotMin)) {  // NaN pivots fail too
      ok = false;
      break;
    }
    for (const int ri : rows_below_[k]) {
      const auto r = static_cast<std::size_t>(ri);
      const double factor = vals_[r * n + k] / piv;
      vals_[r * n + k] = factor;
      if (factor == 0.0) continue;
      for (const int ci : cols_right_[k]) {
        const auto c = static_cast<std::size_t>(ci);
        vals_[r * n + c] -= factor * vals_[k * n + c];
      }
    }
  }
  if (!ok) {
    stats::add_dense_fallback();
    dense_factor_and_solve(dx);
    return;
  }
  // Forward substitution over the recorded L structure...
  for (std::size_t k = 0; k < n; ++k) {
    const double bk = rhs_[k];
    if (bk == 0.0) continue;
    for (const int ri : rows_below_[k]) {
      rhs_[static_cast<std::size_t>(ri)] -= vals_[static_cast<std::size_t>(ri) * n + k] * bk;
    }
  }
  // ...and back substitution over the U structure.
  for (std::size_t r = n; r-- > 0;) {
    double sum = rhs_[r];
    for (const int ci : cols_right_[r]) {
      sum -= vals_[r * n + static_cast<std::size_t>(ci)] * rhs_[static_cast<std::size_t>(ci)];
    }
    rhs_[r] = sum / vals_[r * n + r];
  }
  for (std::size_t u = 0; u < n; ++u) dx[u] = rhs_[static_cast<std::size_t>(perm_pos_[u])];
}

void SolverWorkspace::dense_factor_and_solve(std::vector<double>& dx) {
  const auto n = static_cast<std::size_t>(n_unknowns_);
  for (std::size_t u = 0; u < n; ++u) rhs_[static_cast<std::size_t>(perm_pos_[u])] = -f_[u];
  // Classic LU with partial pivoting on the snapshot copy.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(dense_[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::fabs(dense_[r * n + col]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (!(best >= kPivotMin)) throw SingularRow{order_[col]};
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(dense_[pivot * n + c], dense_[col * n + c]);
      std::swap(rhs_[pivot], rhs_[col]);
    }
    const double diag = dense_[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = dense_[r * n + col] / diag;
      if (factor == 0.0) continue;
      dense_[r * n + col] = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) dense_[r * n + c] -= factor * dense_[col * n + c];
      rhs_[r] -= factor * rhs_[col];
    }
  }
  for (std::size_t r = n; r-- > 0;) {
    double sum = rhs_[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= dense_[r * n + c] * rhs_[c];
    rhs_[r] = sum / dense_[r * n + r];
  }
  for (std::size_t u = 0; u < n; ++u) dx[u] = rhs_[static_cast<std::size_t>(perm_pos_[u])];
}

SolverWorkspace& workspace_for(const Circuit& circuit) {
  // Per-thread cache: characterization threads each sweep many solves over a
  // handful of bench topologies, so a small LRU-free list suffices. Clearing
  // on overflow (rare: only pathological topology churn) just costs a
  // rebuild.
  thread_local std::vector<std::unique_ptr<SolverWorkspace>> cache;
  const std::uint64_t sig = SolverWorkspace::topology_signature(circuit);
  for (const auto& w : cache) {
    if (w->signature() == sig && w->matches(circuit)) {
      stats::add_workspace_reuse();
      return *w;
    }
  }
  if (cache.size() >= 64) cache.clear();
  stats::add_workspace_build();
  cache.push_back(std::make_unique<SolverWorkspace>(circuit));
  return *cache.back();
}

}  // namespace rw::spice
