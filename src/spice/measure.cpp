#include "spice/measure.hpp"

#include <cmath>

namespace rw::spice {

std::optional<EdgeTiming> measure_edge(const Waveform& output, double input_t50_ps,
                                       bool output_rising, double vdd_v) {
  const double v10 = 0.1 * vdd_v;
  const double v50 = 0.5 * vdd_v;
  const double v90 = 0.9 * vdd_v;

  const auto t50 = output.last_crossing(v50, output_rising);
  if (!t50) return std::nullopt;
  // Require the output to actually settle near the target rail.
  if (!settled_at(output, output_rising ? vdd_v : 0.0)) return std::nullopt;

  const auto t_first = output.last_crossing(output_rising ? v10 : v90, output_rising);
  const auto t_last = output.last_crossing(output_rising ? v90 : v10, output_rising);
  if (!t_first || !t_last) return std::nullopt;

  EdgeTiming timing;
  timing.delay_ps = *t50 - input_t50_ps;
  timing.slew_ps = std::fabs(*t_last - *t_first);
  timing.output_rising = output_rising;
  return timing;
}

bool settled_at(const Waveform& output, double level_v, double tolerance_v) {
  if (output.empty()) return false;
  return std::fabs(output.back_value() - level_v) <= tolerance_v;
}

}  // namespace rw::spice
