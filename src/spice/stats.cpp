#include "spice/stats.hpp"

#include <atomic>

namespace rw::spice {

namespace {

struct AtomicCounters {
  std::atomic<std::uint64_t> newton_iterations{0};
  std::atomic<std::uint64_t> factorizations{0};
  std::atomic<std::uint64_t> dense_fallbacks{0};
  std::atomic<std::uint64_t> dc_solves{0};
  std::atomic<std::uint64_t> transient_attempts{0};
  std::atomic<std::uint64_t> warm_start_hits{0};
  std::atomic<std::uint64_t> warm_start_misses{0};
  std::atomic<std::uint64_t> workspace_builds{0};
  std::atomic<std::uint64_t> workspace_reuses{0};
};

AtomicCounters& counters() {
  static AtomicCounters c;
  return c;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

SolverCounters solver_counters() {
  const AtomicCounters& c = counters();
  SolverCounters s;
  s.newton_iterations = c.newton_iterations.load(kRelaxed);
  s.factorizations = c.factorizations.load(kRelaxed);
  s.dense_fallbacks = c.dense_fallbacks.load(kRelaxed);
  s.dc_solves = c.dc_solves.load(kRelaxed);
  s.transient_attempts = c.transient_attempts.load(kRelaxed);
  s.warm_start_hits = c.warm_start_hits.load(kRelaxed);
  s.warm_start_misses = c.warm_start_misses.load(kRelaxed);
  s.workspace_builds = c.workspace_builds.load(kRelaxed);
  s.workspace_reuses = c.workspace_reuses.load(kRelaxed);
  return s;
}

void reset_solver_counters() {
  AtomicCounters& c = counters();
  c.newton_iterations.store(0, kRelaxed);
  c.factorizations.store(0, kRelaxed);
  c.dense_fallbacks.store(0, kRelaxed);
  c.dc_solves.store(0, kRelaxed);
  c.transient_attempts.store(0, kRelaxed);
  c.warm_start_hits.store(0, kRelaxed);
  c.warm_start_misses.store(0, kRelaxed);
  c.workspace_builds.store(0, kRelaxed);
  c.workspace_reuses.store(0, kRelaxed);
}

namespace stats {

void add_newton_iterations(std::uint64_t n) { counters().newton_iterations.fetch_add(n, kRelaxed); }
void add_factorization() { counters().factorizations.fetch_add(1, kRelaxed); }
void add_dense_fallback() { counters().dense_fallbacks.fetch_add(1, kRelaxed); }
void add_dc_solve() { counters().dc_solves.fetch_add(1, kRelaxed); }
void add_transient_attempt() { counters().transient_attempts.fetch_add(1, kRelaxed); }
void add_warm_start_hit() { counters().warm_start_hits.fetch_add(1, kRelaxed); }
void add_warm_start_miss() { counters().warm_start_misses.fetch_add(1, kRelaxed); }
void add_workspace_build() { counters().workspace_builds.fetch_add(1, kRelaxed); }
void add_workspace_reuse() { counters().workspace_reuses.fetch_add(1, kRelaxed); }

}  // namespace stats

}  // namespace rw::spice
