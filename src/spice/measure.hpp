#pragma once

/// \file measure.hpp
/// Delay and slew measurement conventions (shared by characterization and
/// tests):
///   - propagation delay: input 50 %-Vdd crossing to the *last* output
///     50 %-Vdd crossing in the settling direction (robust against
///     short-circuit glitches, which matter at the large input slews where
///     the paper's Fig. 1 effects live);
///   - output slew: 10 %–90 % Vdd transition time of the settling edge.

#include <optional>

#include "spice/waveform.hpp"

namespace rw::spice {

struct EdgeTiming {
  double delay_ps = 0.0;  ///< may be negative for very slow inputs driving fast gates
  double slew_ps = 0.0;
  bool output_rising = false;
};

/// Measures the output edge given the input's 50 % crossing time.
/// Returns nullopt when the output never completes the expected transition
/// (e.g. the vector does not toggle the output).
std::optional<EdgeTiming> measure_edge(const Waveform& output, double input_t50_ps,
                                       bool output_rising, double vdd_v);

/// True when the waveform has settled within `tolerance_v` of the expected
/// rail at its final sample.
bool settled_at(const Waveform& output, double level_v, double tolerance_v = 0.08);

}  // namespace rw::spice
