#include "spice/waveform.hpp"

#include <algorithm>
#include <stdexcept>

namespace rw::spice {

void Waveform::append(double t_ps, double volts) {
  if (!t_.empty() && t_ps < t_.back()) {
    throw std::invalid_argument("Waveform: time must be non-decreasing");
  }
  t_.push_back(t_ps);
  v_.push_back(volts);
}

double Waveform::at(double t_ps) const {
  if (t_.empty()) throw std::out_of_range("Waveform: empty");
  if (t_ps <= t_.front()) return v_.front();
  if (t_ps >= t_.back()) return v_.back();
  const auto it = std::lower_bound(t_.begin(), t_.end(), t_ps);
  const auto i = static_cast<std::size_t>(it - t_.begin());
  const double t0 = t_[i - 1];
  const double t1 = t_[i];
  if (t1 == t0) return v_[i];
  const double w = (t_ps - t0) / (t1 - t0);
  return v_[i - 1] + w * (v_[i] - v_[i - 1]);
}

namespace {

std::optional<double> interp_crossing(double t0, double v0, double t1, double v1, double level) {
  if (v1 == v0) return std::nullopt;
  const double w = (level - v0) / (v1 - v0);
  if (w < 0.0 || w > 1.0) return std::nullopt;
  return t0 + w * (t1 - t0);
}

}  // namespace

std::optional<double> Waveform::first_crossing(double level, bool rising, double from_ps) const {
  for (std::size_t i = 1; i < t_.size(); ++i) {
    if (t_[i] < from_ps) continue;
    const double v0 = v_[i - 1];
    const double v1 = v_[i];
    const bool crosses = rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (!crosses) continue;
    const auto t = interp_crossing(t_[i - 1], v0, t_[i], v1, level);
    if (t && *t >= from_ps) return t;
  }
  return std::nullopt;
}

std::optional<double> Waveform::last_crossing(double level, bool rising) const {
  std::optional<double> result;
  for (std::size_t i = 1; i < t_.size(); ++i) {
    const double v0 = v_[i - 1];
    const double v1 = v_[i];
    const bool crosses = rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (!crosses) continue;
    if (const auto t = interp_crossing(t_[i - 1], v0, t_[i], v1, level)) result = t;
  }
  return result;
}

double Waveform::min_value() const {
  if (v_.empty()) throw std::out_of_range("Waveform: empty");
  return *std::min_element(v_.begin(), v_.end());
}

double Waveform::max_value() const {
  if (v_.empty()) throw std::out_of_range("Waveform: empty");
  return *std::max_element(v_.begin(), v_.end());
}

}  // namespace rw::spice
