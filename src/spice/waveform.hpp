#pragma once

/// \file waveform.hpp
/// Sampled voltage waveform produced by the transient solver, with the
/// crossing-time queries needed for delay/slew measurement.

#include <optional>
#include <vector>

namespace rw::spice {

class Waveform {
 public:
  void append(double t_ps, double volts);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] double time(std::size_t i) const { return t_[i]; }
  [[nodiscard]] double value(std::size_t i) const { return v_[i]; }
  [[nodiscard]] double front_value() const { return v_.front(); }
  [[nodiscard]] double back_value() const { return v_.back(); }
  [[nodiscard]] double back_time() const { return t_.back(); }

  /// Voltage at arbitrary time (linear interpolation; clamped at the ends).
  [[nodiscard]] double at(double t_ps) const;

  /// Time of the *first* crossing of `level` in the given direction at or
  /// after `from_ps` (linear interpolation between samples).
  [[nodiscard]] std::optional<double> first_crossing(double level, bool rising,
                                                     double from_ps = 0.0) const;

  /// Time of the *last* crossing of `level` in the given direction — robust
  /// against non-monotone glitches (short-circuit bumps) before settling.
  [[nodiscard]] std::optional<double> last_crossing(double level, bool rising) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

}  // namespace rw::spice
