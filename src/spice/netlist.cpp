#include "spice/netlist.hpp"

#include <stdexcept>
#include <unordered_map>

namespace rw::spice {

Pwl::Pwl(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first < points_[i - 1].first) {
      throw std::invalid_argument("Pwl: time points must be non-decreasing");
    }
  }
}

Pwl Pwl::dc(double volts) { return Pwl{{{0.0, volts}}}; }

Pwl Pwl::ramp(double t_start_ps, double slew_ps, double v0, double v1) {
  const double full = slew_ps / 0.8;
  return Pwl{{{t_start_ps, v0}, {t_start_ps + full, v1}}};
}

double Pwl::value(double t_ps) const {
  if (points_.empty()) return 0.0;
  if (t_ps <= points_.front().first) return points_.front().second;
  if (t_ps >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (t_ps <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      if (t1 == t0) return v1;
      return v0 + (v1 - v0) * (t_ps - t0) / (t1 - t0);
    }
  }
  return points_.back().second;
}

std::optional<double> Pwl::next_breakpoint(double t_ps) const {
  for (const auto& [t, v] : points_) {
    if (t > t_ps + 1e-12) return t;
  }
  return std::nullopt;
}

Circuit::Circuit() {
  node_names_.push_back("0");
  sourced_.push_back(true);  // ground is implicitly fixed at 0 V
}

NodeId Circuit::add_node(const std::string& name) {
  for (const auto& existing : node_names_) {
    if (existing == name) throw std::invalid_argument("Circuit: duplicate node name " + name);
  }
  node_names_.push_back(name);
  sourced_.push_back(false);
  return static_cast<NodeId>(node_names_.size() - 1);
}

NodeId Circuit::node(const std::string& name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return static_cast<NodeId>(i);
  }
  throw std::out_of_range("Circuit: no node named " + name);
}

const std::string& Circuit::node_name(NodeId id) const {
  check_node(id);
  return node_names_[static_cast<std::size_t>(id)];
}

void Circuit::check_node(NodeId id) const {
  if (id < 0 || id >= node_count()) throw std::out_of_range("Circuit: invalid node id");
}

void Circuit::add_mosfet(device::Mosfet model, NodeId gate, NodeId drain, NodeId source) {
  check_node(gate);
  check_node(drain);
  check_node(source);
  mosfets_.push_back(MosfetElement{std::move(model), gate, drain, source});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double cap_ff) {
  check_node(a);
  check_node(b);
  if (cap_ff < 0.0) throw std::invalid_argument("Circuit: negative capacitance");
  capacitors_.push_back(CapacitorElement{a, b, cap_ff});
}

void Circuit::add_resistor(NodeId a, NodeId b, double kohm) {
  check_node(a);
  check_node(b);
  if (kohm <= 0.0) throw std::invalid_argument("Circuit: resistance must be positive");
  resistors_.push_back(ResistorElement{a, b, kohm});
}

void Circuit::add_source(NodeId node, Pwl waveform) {
  check_node(node);
  if (sourced_[static_cast<std::size_t>(node)]) {
    throw std::invalid_argument("Circuit: node already sourced: " + node_name(node));
  }
  sourced_[static_cast<std::size_t>(node)] = true;
  sources_.push_back(SourceElement{node, std::move(waveform)});
}

bool Circuit::is_sourced(NodeId id) const {
  check_node(id);
  return sourced_[static_cast<std::size_t>(id)];
}

}  // namespace rw::spice
