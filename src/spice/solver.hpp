#pragma once

/// \file solver.hpp
/// Transient circuit solver: nodal analysis with ideal-source node
/// elimination, backward-Euler integration, damped Newton iteration with a
/// numerically assembled Jacobian, and local-truncation-style timestep
/// control based on the per-step voltage change. Small dense systems (a
/// standard cell has only a handful of non-sourced nodes) are solved by LU
/// with partial pivoting.
///
/// Failure handling: every non-convergence surfaces as a structured
/// `SolverError` (failing node, simulation time, iteration budget, circuit
/// size, attempt history). `simulate_transient` applies a convergence retry
/// ladder controlled by `TransientOptions::retry` — on Newton failure the
/// transient is re-run with progressively relaxed settings (smaller initial
/// timestep, gmin stepping, source ramping) before giving up, so a single
/// hard OPC point cannot abort an hours-long characterization campaign.
/// Rung 0 runs with the caller's exact options, so fault-free results are
/// bitwise identical to a ladder-free solver.

#include <stdexcept>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/waveform.hpp"

namespace rw::spice {

/// Convergence retry ladder. Rung 0 is always the caller's own options;
/// rungs 1..max_retries relax them progressively:
///   rung 1: dt_initial/dt_min shrunk by `dt_shrink`, doubled Newton budget;
///   rung 2: additionally gmin stepping (gmin raised by `gmin_boost`);
///   rung 3+: additionally source ramping for the initial operating point.
struct RetryPolicy {
  int max_retries = 3;       ///< extra attempts after the first failure
  double dt_shrink = 0.1;    ///< timestep scale per relaxation rung
  double gmin_boost = 1e3;   ///< gmin multiplier for the gmin-stepping rung
  bool source_ramp = true;   ///< enable the source-ramping rung

  /// `max_retries` from $RW_CHAR_MAX_RETRIES when set (>= 0), else 3.
  static RetryPolicy from_env();
};

struct TransientOptions {
  double t_stop_ps = 1000.0;
  double dt_initial_ps = 0.1;
  double dt_min_ps = 0.01;
  double dt_max_ps = 5.0;
  /// Timestep controller targets this max node-voltage change per step.
  double dv_target_v = 0.04;
  int max_newton = 30;
  double tol_v = 1e-6;       ///< Newton update convergence tolerance [V]
  double tol_i_ma = 1e-8;    ///< residual convergence tolerance [mA]
  double gmin_ma_per_v = 1e-6;  ///< leak conductance to ground for conditioning
  RetryPolicy retry{};       ///< convergence retry ladder (see above)
  /// Per-attempt wall-clock watchdog [ms]. A transient attempt that runs
  /// longer throws a SolverError, turning a hung solve into a retry-ladder
  /// rung failure instead of an infinite stall. 0 defers to the process-wide
  /// default (`solve_watchdog_ms()`, seeded from $RW_SOLVE_WATCHDOG_MS);
  /// negative disables the watchdog outright.
  double watchdog_ms = 0.0;
  /// Optional warm-start seed: full node-voltage vector (indexed by NodeId)
  /// for the t=0 operating point, typically the DC solution of a
  /// neighboring sweep point on the same topology. The solver polishes the
  /// seed with a full-tolerance Newton solve and falls back to the cold DC
  /// escalation chain if the polish does not converge, so a stale or wrong
  /// seed can cost time but never accuracy. The pointed-to vector must
  /// outlive the solve; the solver never mutates it. Non-owning.
  const std::vector<double>* initial_state = nullptr;
};

/// Process-wide default for `TransientOptions::watchdog_ms == 0`, lazily
/// initialized from $RW_SOLVE_WATCHDOG_MS (0 = no watchdog). Tests and the
/// chaos harness override it programmatically.
double solve_watchdog_ms();
void set_solve_watchdog_ms(double ms);

/// One rung of the retry ladder, for post-mortem reporting.
struct SolveAttempt {
  int attempt = 0;       ///< 0-based rung index
  std::string settings;  ///< human-readable effective options for the rung
  std::string outcome;   ///< failure detail for the rung
};

/// Structured non-convergence report. `what()` carries the full story
/// (stage, node, time, iterations, circuit size, attempt history) so even
/// catch sites that only log the message stay informative.
class SolverError : public std::runtime_error {
 public:
  SolverError(std::string stage, std::string detail, std::string node, double time_ps,
              int iterations, int n_unknowns, std::vector<SolveAttempt> attempts = {});

  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }
  /// Name of the node with the worst residual at failure ("" when unknown).
  [[nodiscard]] const std::string& node() const { return node_; }
  [[nodiscard]] double time_ps() const { return time_ps_; }
  [[nodiscard]] int iterations() const { return iterations_; }
  [[nodiscard]] int n_unknowns() const { return n_unknowns_; }
  [[nodiscard]] const std::vector<SolveAttempt>& attempts() const { return attempts_; }

 private:
  std::string stage_;
  std::string detail_;
  std::string node_;
  double time_ps_;
  int iterations_;
  int n_unknowns_;
  std::vector<SolveAttempt> attempts_;
};

/// Waveforms for the probed nodes plus the final full solution vector.
class TransientResult {
 public:
  TransientResult(std::vector<NodeId> probes, int node_count);

  [[nodiscard]] const Waveform& waveform(NodeId node) const;
  void record(double t_ps, const std::vector<double>& node_voltages);
  [[nodiscard]] double final_voltage(NodeId node) const;
  [[nodiscard]] const std::vector<double>& final_voltages() const { return final_; }

 private:
  std::vector<NodeId> probes_;
  std::vector<Waveform> waveforms_;
  std::vector<double> final_;
};

/// Solves the DC operating point at time `t_ps` (sources held at their value
/// at that instant, capacitors open). Returns the full node-voltage vector
/// indexed by NodeId. \throws SolverError if Newton fails to converge even
/// with source stepping and pseudo-transient homotopy.
std::vector<double> dc_operating_point(const Circuit& circuit, double t_ps = 0.0,
                                       const TransientOptions& options = {});

/// Runs a transient analysis from the DC operating point at t=0, retrying
/// through `options.retry` on non-convergence. \throws SolverError carrying
/// the full attempt history once the ladder is exhausted.
TransientResult simulate_transient(const Circuit& circuit, const TransientOptions& options,
                                   const std::vector<NodeId>& probes);

}  // namespace rw::spice
