#pragma once

/// \file solver.hpp
/// Transient circuit solver: nodal analysis with ideal-source node
/// elimination, backward-Euler integration, damped Newton iteration with a
/// numerically assembled Jacobian, and local-truncation-style timestep
/// control based on the per-step voltage change. Small dense systems (a
/// standard cell has only a handful of non-sourced nodes) are solved by LU
/// with partial pivoting.

#include <vector>

#include "spice/netlist.hpp"
#include "spice/waveform.hpp"

namespace rw::spice {

struct TransientOptions {
  double t_stop_ps = 1000.0;
  double dt_initial_ps = 0.1;
  double dt_min_ps = 0.01;
  double dt_max_ps = 5.0;
  /// Timestep controller targets this max node-voltage change per step.
  double dv_target_v = 0.04;
  int max_newton = 30;
  double tol_v = 1e-6;       ///< Newton update convergence tolerance [V]
  double tol_i_ma = 1e-8;    ///< residual convergence tolerance [mA]
  double gmin_ma_per_v = 1e-6;  ///< leak conductance to ground for conditioning
};

/// Waveforms for the probed nodes plus the final full solution vector.
class TransientResult {
 public:
  TransientResult(std::vector<NodeId> probes, int node_count);

  [[nodiscard]] const Waveform& waveform(NodeId node) const;
  void record(double t_ps, const std::vector<double>& node_voltages);
  [[nodiscard]] double final_voltage(NodeId node) const;
  [[nodiscard]] const std::vector<double>& final_voltages() const { return final_; }

 private:
  std::vector<NodeId> probes_;
  std::vector<Waveform> waveforms_;
  std::vector<double> final_;
};

/// Solves the DC operating point at time `t_ps` (sources held at their value
/// at that instant, capacitors open). Returns the full node-voltage vector
/// indexed by NodeId. \throws std::runtime_error if Newton fails to converge
/// even with source stepping.
std::vector<double> dc_operating_point(const Circuit& circuit, double t_ps = 0.0,
                                       const TransientOptions& options = {});

/// Runs a transient analysis from the DC operating point at t=0.
/// \throws std::runtime_error on non-convergence at the minimum timestep.
TransientResult simulate_transient(const Circuit& circuit, const TransientOptions& options,
                                   const std::vector<NodeId>& probes);

}  // namespace rw::spice
