#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the transient solver — the test harness
/// behind the resilience layer (retry ladder, OPC fallback, factory
/// quarantine). The injector is compiled in always but completely inert
/// unless armed: the solver pays one relaxed atomic load per transient
/// attempt, nothing else.
///
/// Three trigger modes (exclusive per arming):
///  * nth    — fail the Nth solve attempt observed while armed (1-based);
///  * match  — fail every solve whose context tag contains a substring
///             (the characterizer tags solves with cell/arc/OPC/scenario);
/// and three failure actions:
///  * forced convergence failure (a `SolverError` thrown before the solve);
///  * NaN residual injection (the Newton loop must detect the poisoned
///    residual, reject the step, and fail naturally at the minimum timestep);
///  * a stall (the solver sleeps `stall_ms` before the timestep loop), which
///    exercises the per-solve wall-clock watchdog and cancellation polls.
///
/// A `times` budget bounds how many solves fail, so a test can make the
/// first K retry-ladder rungs fail and let rung K+1 succeed. Arming is
/// programmatic (tests) or via `RW_FAULT_INJECT` (CLI/bench drills), e.g.
///   RW_FAULT_INJECT="match=NAND2_X1;times=2"
///   RW_FAULT_INJECT="nth=5"
///   RW_FAULT_INJECT="mode=nan;match=arc=A dir=rise"
///   RW_FAULT_INJECT="mode=stall;nth=3;stall_ms=200"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace rw::spice {

class FaultInjector {
 public:
  /// What the solver should do for one transient attempt.
  enum class Action {
    kNone,             ///< proceed normally
    kFailConvergence,  ///< throw a SolverError before solving
    kNanResidual,      ///< poison residual evaluations with NaN
    kStall,            ///< sleep `stall_ms()` before solving (watchdog drill)
  };

  /// The process-wide injector. The first call arms from $RW_FAULT_INJECT
  /// when the variable is set and non-empty.
  static FaultInjector& instance();

  /// Fail the `nth` solve attempt observed from now on (1-based), and the
  /// following `times - 1` attempts after it. Resets counters.
  void arm_fail_nth(std::uint64_t nth, std::uint64_t times = 1,
                    Action action = Action::kFailConvergence);

  /// Fail every solve attempt whose context contains `needle`, up to
  /// `times` failures in total (`times == 0` means unlimited). Resets
  /// counters.
  void arm_fail_matching(std::string needle, std::uint64_t times = 0,
                         Action action = Action::kFailConvergence);

  /// Return to the inert state (keeps counters readable).
  void disarm();

  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Solve attempts observed while armed (for tests asserting "no SPICE ran").
  [[nodiscard]] std::uint64_t observed_solves() const;
  /// Failures actually injected since the last arming.
  [[nodiscard]] std::uint64_t injected_failures() const;

  /// Called by the solver at the start of every transient attempt. Returns
  /// the action for this attempt and consumes the failure budget.
  Action on_solve_attempt(const std::string& context);

  /// How long a kStall action sleeps (default 50 ms; `stall_ms=` in the env
  /// spec or the programmatic setter override it).
  [[nodiscard]] double stall_ms() const { return stall_ms_.load(std::memory_order_relaxed); }
  void set_stall_ms(double ms) { stall_ms_.store(ms, std::memory_order_relaxed); }

  /// RAII thread-local context tag; nested scopes concatenate. The
  /// characterizer tags each OPC solve with cell/arc/direction/OPC/scenario
  /// so faults can target one grid point deterministically.
  class ScopedContext {
   public:
    explicit ScopedContext(const std::string& tag);
    ~ScopedContext();
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

   private:
    std::size_t previous_size_;
  };

  /// The calling thread's current context tag ("" outside any scope).
  static const std::string& current_context();

 private:
  FaultInjector();

  void arm_from_env(const char* spec);

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;  ///< guards the trigger configuration below
  Action action_ = Action::kFailConvergence;
  bool use_nth_ = false;
  std::uint64_t nth_ = 0;
  std::string needle_;
  std::uint64_t times_ = 0;  ///< 0 = unlimited (match mode only)
  std::atomic<double> stall_ms_{50.0};
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace rw::spice
