#include "spice/fault.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace rw::spice {

namespace {

/// Thread-local context tag; ScopedContext appends " / <tag>" segments.
thread_local std::string t_context;  // NOLINT(runtime/string): thread-local by design

}  // namespace

FaultInjector::FaultInjector() {
  if (const char* spec = std::getenv("RW_FAULT_INJECT"); spec != nullptr && *spec != '\0') {
    arm_from_env(spec);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm_fail_nth(std::uint64_t nth, std::uint64_t times, Action action) {
  std::lock_guard<std::mutex> lock(mutex_);
  use_nth_ = true;
  nth_ = nth;
  needle_.clear();
  times_ = times == 0 ? 1 : times;
  action_ = action;
  observed_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_fail_matching(std::string needle, std::uint64_t times, Action action) {
  std::lock_guard<std::mutex> lock(mutex_);
  use_nth_ = false;
  nth_ = 0;
  needle_ = std::move(needle);
  times_ = times;
  action_ = action;
  observed_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

std::uint64_t FaultInjector::observed_solves() const {
  return observed_.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_failures() const {
  return injected_.load(std::memory_order_relaxed);
}

FaultInjector::Action FaultInjector::on_solve_attempt(const std::string& context) {
  if (!armed()) return Action::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed()) return Action::kNone;  // disarmed while waiting on the lock
  const std::uint64_t ordinal = observed_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool hit = false;
  if (use_nth_) {
    hit = ordinal >= nth_ && ordinal < nth_ + times_;
  } else if (!needle_.empty()) {
    hit = context.find(needle_) != std::string::npos &&
          (times_ == 0 || injected_.load(std::memory_order_relaxed) < times_);
  }
  if (!hit) return Action::kNone;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return action_;
}

FaultInjector::ScopedContext::ScopedContext(const std::string& tag)
    : previous_size_(t_context.size()) {
  if (!t_context.empty()) t_context += " / ";
  t_context += tag;
}

FaultInjector::ScopedContext::~ScopedContext() { t_context.resize(previous_size_); }

const std::string& FaultInjector::current_context() { return t_context; }

void FaultInjector::arm_from_env(const char* spec) {
  // "key=value;key=value" with keys: mode=fail|nan|stall, nth=N,
  // match=SUBSTR, times=K, stall_ms=M. Malformed pieces are ignored — the
  // drill knob must never be able to crash a production run.
  Action action = Action::kFailConvergence;
  std::uint64_t nth = 0;
  std::uint64_t times = 0;
  std::string needle;
  for (const auto& part : util::split(spec, ";")) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) continue;
    const std::string key{util::trim(part.substr(0, eq))};
    const std::string value{util::trim(part.substr(eq + 1))};
    if (key == "mode") {
      if (value == "nan") action = Action::kNanResidual;
      if (value == "stall") action = Action::kStall;
    } else if (key == "stall_ms") {
      const double ms = std::strtod(value.c_str(), nullptr);
      if (ms > 0.0) set_stall_ms(ms);
    } else if (key == "nth") {
      nth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "times") {
      times = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "match") {
      needle = value;
    }
  }
  if (nth > 0) {
    arm_fail_nth(nth, times == 0 ? 1 : times, action);
  } else if (!needle.empty()) {
    arm_fail_matching(needle, times, action);
  }
}

}  // namespace rw::spice
